//! # Resource Central — a reproduction in Rust
//!
//! A full reimplementation of *Resource Central: Understanding and
//! Predicting Workloads for Improved Resource Management in Large Cloud
//! Platforms* (SOSP 2017): workload characterization, an offline
//! learning pipeline with from-scratch Random Forests / gradient-boosted
//! trees / FFT periodicity detection, a client-side prediction-serving
//! library, and a prediction-informed oversubscribing VM scheduler with
//! its simulator.
//!
//! This crate re-exports the whole workspace under one roof:
//!
//! - [`types`]: shared domain vocabulary (VMs, SKUs, buckets, time).
//! - [`trace`]: the calibrated synthetic Azure-like workload generator.
//! - [`ml`]: the learning substrate.
//! - [`store`]: the simulated highly-available versioned store.
//! - [`core`]: Resource Central itself (pipeline + client library).
//! - [`lifecycle`]: the continuous control loop (rolling retrain, shadow
//!   validation, auto-promote/rollback).
//! - [`obs`]: observability (metrics, drift monitors, distribution
//!   sketches, bench reports).
//! - [`scheduler`]: Algorithm 1 and the cluster simulator.
//! - [`analysis`]: §3 characterization (Figures 1–8).
//!
//! ## Quickstart
//!
//! ```
//! use resource_central::prelude::*;
//!
//! // 1. A synthetic cloud workload, calibrated to the paper's figures.
//! let config = TraceConfig { target_vms: 4_000, n_subscriptions: 200, days: 24, ..TraceConfig::small() };
//! let trace = Trace::generate(&config);
//!
//! // 2. Learn models offline; publish models + feature data to the store.
//! let output = run_pipeline(&trace, &PipelineConfig::fast(24)).unwrap();
//! let store = Store::in_memory();
//! output.publish(&store, 0.5).unwrap();
//!
//! // 3. Serve predictions from the client library.
//! let client = RcClient::new(store, ClientConfig::default());
//! assert!(client.initialize());
//! let inputs = rc_core::labels::vm_inputs(&trace, rc_types::VmId(42));
//! let response = client.predict_single("VM_P95UTIL", &inputs);
//! assert!(response.is_predicted() || response == PredictionResponse::NoPrediction);
//! ```

pub use rc_analysis as analysis;
pub use rc_core as core;
pub use rc_loop as lifecycle;
pub use rc_ml as ml;
pub use rc_obs as obs;
pub use rc_scheduler as scheduler;
pub use rc_store as store;
pub use rc_trace as trace;
pub use rc_types as types;

/// The most commonly used items, in one import.
pub mod prelude {
    pub use rc_analysis::{Cdf, CorrelationMatrix};
    pub use rc_core::{
        cleanup, run_pipeline, BreakerConfig, CacheMode, ClientConfig, ClientHealth, ClientInputs,
        DegradedReason, PipelineConfig, PipelineError, PipelineOutput, Prediction,
        PredictionResponse, PublishGate, QuarantineReport, RcClient, RetryPolicy, Served,
    };
    pub use rc_loop::{ChaosPlan, LoopConfig, LoopController, LoopSummary, WorkloadShift};
    pub use rc_ml::Classifier;
    pub use rc_obs::{
        AccuracyTracker, BenchReport, DriftConfig, DriftSignal, LeadingDriftConfig,
        LeadingDriftMonitor, WindowSketch,
    };
    pub use rc_scheduler::{
        simulate, simulate_partitioned, simulate_stream, suggest_server_count,
        suggest_server_count_stream, PolicyKind, SchedulerConfig, SimConfig, SimReport,
        StreamRequestSource, VmRequest,
    };
    pub use rc_store::{
        rollback, FaultPlan, FaultyStore, LatencyModel, Manifest, Store, StoreBackend,
    };
    pub use rc_trace::{DirtyPlan, DirtyVmStream, Trace, TraceConfig, VmStream};
    pub use rc_types::{PredictionMetric, Timestamp, VmId};
}
