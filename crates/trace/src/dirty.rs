//! Deterministic telemetry corruption for pipeline-hardening tests.
//!
//! The paper's Figure 9 gives the offline workflow an explicit `cleanup`
//! stage because production telemetry is dirty: collectors drop and
//! duplicate records, agents emit garbage utilization, clocks skew, and
//! joins leave dangling foreign keys. The synthetic generator is too
//! polite to produce any of that, so this module corrupts a clean
//! [`Trace`] on purpose, mirroring `rc_store::FaultPlan`'s design: a
//! seeded [`DirtyPlan`] whose decisions come from one RNG drawing a fixed
//! number of uniforms per VM record, making a corruption schedule
//! bit-reproducible across runs. The exact per-category counts come back
//! in a [`DirtyReport`], which the pipeline's `QuarantineReport` must
//! reconcile against.
//!
//! Telemetry readings are lazily derived from per-VM [`UtilParams`], so
//! "dropped/duplicated readings" are modelled at the record level: a
//! dropped VM loses its whole telemetry stream, a duplicated VM replays
//! it. Each corrupted record lands in exactly one category so the
//! accounting stays exact.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rc_types::time::Timestamp;
use rc_types::vm::DeploymentId;

use crate::trace::Trace;

/// A seeded schedule of telemetry corruption.
///
/// All probabilities are per-VM-record and mutually exclusive — the first
/// matching category in field order wins, so a record is corrupted at
/// most once. A plan with every probability zero is the identity.
#[derive(Debug, Clone, Copy)]
pub struct DirtyPlan {
    /// Seed for the corruption RNG; two applications of the same plan to
    /// the same trace produce bit-identical results.
    pub seed: u64,
    /// Probability a VM record (and its telemetry) is dropped entirely.
    pub p_drop: f64,
    /// Probability a VM record is duplicated: a verbatim copy (same
    /// `vm_id`) is appended, replaying its telemetry stream.
    pub p_duplicate: f64,
    /// Probability the VM's utilization parameters are poisoned with NaN.
    pub p_nan_util: f64,
    /// Probability the VM's utilization parameters leave `[0, 1]`.
    pub p_out_of_range_util: f64,
    /// Probability the VM's timestamps are clock-skewed so that deletion
    /// precedes creation.
    pub p_clock_skew: f64,
    /// Probability the VM record is truncated: SKU fields zeroed as a
    /// collector that lost the tail of the record would leave them.
    pub p_truncate: f64,
    /// Probability the VM's deployment id is re-pointed past the end of
    /// the deployment table.
    pub p_orphan_deployment: f64,
}

/// The number of corruption categories a [`DirtyPlan`] spreads a uniform
/// rate across.
pub const DIRTY_CATEGORIES: usize = 7;

/// What happened to one record after its eight corruption draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecordFate {
    /// Present in the dirty output (possibly corrupted in place).
    Kept,
    /// Absent from the dirty output.
    Dropped,
    /// Present, and a verbatim copy replays at the end of the stream.
    Duplicated,
}

impl DirtyPlan {
    /// A plan that corrupts nothing (the identity baseline).
    pub fn clean(seed: u64) -> Self {
        DirtyPlan {
            seed,
            p_drop: 0.0,
            p_duplicate: 0.0,
            p_nan_util: 0.0,
            p_out_of_range_util: 0.0,
            p_clock_skew: 0.0,
            p_truncate: 0.0,
            p_orphan_deployment: 0.0,
        }
    }

    /// Spreads a total corruption `rate` evenly across all
    /// [`DIRTY_CATEGORIES`] categories: each VM record is corrupted with
    /// probability ≈ `rate`.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        let p = (rate / DIRTY_CATEGORIES as f64).clamp(0.0, 1.0);
        DirtyPlan {
            seed,
            p_drop: p,
            p_duplicate: p,
            p_nan_util: p,
            p_out_of_range_util: p,
            p_clock_skew: p,
            p_truncate: p,
            p_orphan_deployment: p,
        }
    }

    /// Draws one record's corruption schedule (exactly eight uniforms,
    /// whatever the outcome, so two applications stay in lock-step) and
    /// applies any in-place category. Shared by [`DirtyPlan::apply`] and
    /// the streaming adapter so the two cannot diverge.
    pub(crate) fn corrupt_record(
        &self,
        rng: &mut StdRng,
        vm: &mut rc_types::telemetry::VmRecord,
        util: &mut crate::utilization::UtilParams,
        n_deployments: u64,
        report: &mut DirtyReport,
    ) -> RecordFate {
        let u_drop: f64 = rng.gen();
        let u_dup: f64 = rng.gen();
        let u_nan: f64 = rng.gen();
        let u_range: f64 = rng.gen();
        let u_skew: f64 = rng.gen();
        let u_trunc: f64 = rng.gen();
        let u_orphan: f64 = rng.gen();
        let salt: u64 = rng.gen();

        if u_drop < self.p_drop {
            report.dropped += 1;
            return RecordFate::Dropped;
        } else if u_dup < self.p_duplicate {
            report.duplicated += 1;
            return RecordFate::Duplicated;
        } else if u_nan < self.p_nan_util {
            util.base = f64::NAN;
            util.p95_level = f64::NAN;
            report.nan_util += 1;
        } else if u_range < self.p_out_of_range_util {
            // Far outside [0, 1] in a salt-determined direction.
            let magnitude = 2.0 + (salt % 97) as f64 / 10.0;
            if salt & 1 == 0 {
                util.base = magnitude;
                util.p95_level = magnitude + 1.0;
            } else {
                util.base = -magnitude;
                util.p95_level = -magnitude / 2.0;
            }
            report.out_of_range_util += 1;
        } else if u_skew < self.p_clock_skew {
            // The collector's clock ran ahead: deletion lands a
            // salt-determined stretch *before* creation.
            let created = vm.created.as_secs().max(2);
            vm.created = Timestamp::from_secs(created);
            vm.deleted = Timestamp::from_secs(created.saturating_sub(1 + salt % 86_400).max(1));
            report.clock_skew += 1;
        } else if u_trunc < self.p_truncate {
            vm.sku.cores = 0;
            vm.sku.memory_gb = 0.0;
            report.truncated += 1;
        } else if u_orphan < self.p_orphan_deployment {
            vm.deployment = DeploymentId(n_deployments + salt % 1_000);
            report.orphaned += 1;
        }
        RecordFate::Kept
    }

    /// Corrupts a trace, returning the dirtied copy and exact per-category
    /// counts. Deterministic: the schedule is a pure function of
    /// `(plan, trace.vms.len())`, with exactly eight RNG draws per VM
    /// record whatever the outcome.
    pub fn apply(&self, trace: &Trace) -> (Trace, DirtyReport) {
        let mut dirty = trace.clone();
        let mut report = DirtyReport::default();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n_deployments = trace.deployments.len() as u64;

        let mut keep = vec![true; dirty.vms.len()];
        let mut duplicates: Vec<usize> = Vec::new();
        for (i, (vm, util)) in dirty.vms.iter_mut().zip(dirty.util.iter_mut()).enumerate() {
            let fate = self.corrupt_record(&mut rng, vm, util, n_deployments, &mut report);
            match fate {
                RecordFate::Dropped => keep[i] = false,
                RecordFate::Duplicated => duplicates.push(i),
                RecordFate::Kept => {}
            }
        }

        if report.dropped > 0 {
            let mut kept = keep.iter().copied();
            let mut kept_util = keep.iter().copied();
            let mut kept_intent = keep.iter().copied();
            dirty.vms.retain(|_| kept.next().unwrap_or(true));
            dirty.util.retain(|_| kept_util.next().unwrap_or(true));
            dirty.interactive_intent.retain(|_| kept_intent.next().unwrap_or(true));
        }
        // Duplicates replay at the end of the parallel arrays, keeping
        // their original `vm_id` field — exactly what a collector that
        // re-delivered a batch would produce.
        for &i in &duplicates {
            if keep[i] {
                dirty.vms.push(trace.vms[i].clone());
                dirty.util.push(trace.util[i]);
                dirty.interactive_intent.push(trace.interactive_intent[i]);
            } else {
                // The original was dropped by an earlier decision in the
                // same pass; nothing to replay. Keep the accounting exact.
                report.duplicated -= 1;
            }
        }

        (dirty, report)
    }
}

/// FNV-1a fingerprint over every VM record, utilization model, and
/// deployment in a trace, hashing floats by bit pattern — usable on dirty
/// traces whose NaNs JSON cannot encode. Two traces with the same
/// fingerprint are bit-identical for the pipeline's purposes.
pub fn trace_fingerprint(trace: &Trace) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    };
    for (vm, util) in trace.vms.iter().zip(&trace.util) {
        mix(vm.vm_id.0);
        mix(vm.subscription.0 as u64);
        mix(vm.deployment.0);
        mix(vm.created.as_secs());
        mix(vm.deleted.as_secs());
        mix(vm.sku.cores as u64);
        mix(vm.sku.memory_gb.to_bits());
        mix(util.seed);
        mix(util.base.to_bits());
        mix(util.p95_level.to_bits());
        mix(util.diurnal_amplitude.to_bits());
        mix(util.noise.to_bits());
    }
    for dep in &trace.deployments {
        mix(dep.id.0);
        mix(dep.subscription.0 as u64);
        mix(dep.created.as_secs());
        mix(dep.n_vms as u64);
        mix(dep.n_cores as u64);
    }
    h
}

/// Exact counts of corrupted records, by category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirtyReport {
    /// VM records dropped (telemetry stream lost).
    pub dropped: u64,
    /// VM records duplicated (telemetry stream replayed).
    pub duplicated: u64,
    /// VM records with NaN utilization parameters.
    pub nan_util: u64,
    /// VM records with out-of-range utilization parameters.
    pub out_of_range_util: u64,
    /// VM records with clock-skewed timestamps.
    pub clock_skew: u64,
    /// VM records truncated to sentinel fields.
    pub truncated: u64,
    /// VM records re-pointed at a nonexistent deployment.
    pub orphaned: u64,
}

impl DirtyReport {
    /// Every corrupted record, all categories.
    pub fn total(&self) -> u64 {
        self.dropped
            + self.duplicated
            + self.nan_util
            + self.out_of_range_util
            + self.clock_skew
            + self.truncated
            + self.orphaned
    }

    /// Corrupted records that are still *present* in the dirty trace —
    /// what a downstream cleanup stage can actually quarantine (dropped
    /// records are simply absent).
    pub fn detectable(&self) -> u64 {
        self.total() - self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceConfig;

    fn base_trace() -> Trace {
        Trace::generate(&TraceConfig {
            target_vms: 2_000,
            n_subscriptions: 100,
            days: 12,
            ..TraceConfig::small()
        })
    }

    #[test]
    fn clean_plan_is_the_identity() {
        let trace = base_trace();
        let (dirty, report) = DirtyPlan::clean(7).apply(&trace);
        assert_eq!(report, DirtyReport::default());
        // A clean trace has no NaNs, so JSON equality works here and is
        // the strongest identity check available.
        assert_eq!(
            serde_json::to_vec(&dirty).unwrap(),
            serde_json::to_vec(&trace).unwrap(),
            "a zero-rate plan must leave the trace byte-identical"
        );
        assert_eq!(trace_fingerprint(&dirty), trace_fingerprint(&trace));
    }

    #[test]
    fn same_seed_applications_are_bit_identical() {
        let trace = base_trace();
        let plan = DirtyPlan::uniform(42, 0.2);
        let (a, ra) = plan.apply(&trace);
        let (b, rb) = plan.apply(&trace);
        assert_eq!(ra, rb);
        // JSON cannot encode the injected NaNs; compare bit-pattern
        // fingerprints instead.
        assert_eq!(trace_fingerprint(&a), trace_fingerprint(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let trace = base_trace();
        let (a, ra) = DirtyPlan::uniform(1, 0.2).apply(&trace);
        let (b, rb) = DirtyPlan::uniform(2, 0.2).apply(&trace);
        assert!(
            ra != rb || trace_fingerprint(&a) != trace_fingerprint(&b),
            "two seeds produced identical corruption"
        );
    }

    #[test]
    fn every_category_fires_at_a_nonzero_rate() {
        let trace = base_trace();
        let (dirty, report) = DirtyPlan::uniform(3, 0.3).apply(&trace);
        assert!(report.dropped > 0, "{report:?}");
        assert!(report.duplicated > 0, "{report:?}");
        assert!(report.nan_util > 0, "{report:?}");
        assert!(report.out_of_range_util > 0, "{report:?}");
        assert!(report.clock_skew > 0, "{report:?}");
        assert!(report.truncated > 0, "{report:?}");
        assert!(report.orphaned > 0, "{report:?}");
        // Total rate lands near the requested 30%.
        let rate = report.total() as f64 / trace.vms.len() as f64;
        assert!((0.2..0.4).contains(&rate), "rate {rate}");
        // Parallel arrays stay parallel.
        assert_eq!(dirty.vms.len(), dirty.util.len());
        assert_eq!(dirty.vms.len(), dirty.interactive_intent.len());
        assert_eq!(
            dirty.vms.len() as u64,
            trace.vms.len() as u64 - report.dropped + report.duplicated
        );
    }

    #[test]
    fn corruption_matches_its_category() {
        let trace = base_trace();
        let n_deployments = trace.deployments.len() as u64;
        let (dirty, report) = DirtyPlan::uniform(11, 0.3).apply(&trace);
        let nan = dirty.util.iter().filter(|u| u.base.is_nan()).count() as u64;
        assert_eq!(nan, report.nan_util);
        let out_of_range = dirty
            .util
            .iter()
            .filter(|u| !u.base.is_nan() && !(0.0..=1.0).contains(&u.base))
            .count() as u64;
        assert_eq!(out_of_range, report.out_of_range_util);
        let skewed = dirty.vms.iter().filter(|v| v.deleted < v.created).count() as u64;
        assert_eq!(skewed, report.clock_skew);
        let truncated = dirty.vms.iter().filter(|v| v.sku.cores == 0).count() as u64;
        assert_eq!(truncated, report.truncated);
        let orphaned = dirty.vms.iter().filter(|v| v.deployment.0 >= n_deployments).count() as u64;
        assert_eq!(orphaned, report.orphaned);
    }
}
