//! Latent behavioural profiles of subscriptions.
//!
//! §3 of the paper observes, for every metric, that "VMs from the same
//! subscription tend to exhibit similar behaviors" (CoV below 1 for most
//! subscriptions) — and §6.1 attributes prediction accuracy chiefly to
//! per-subscription history features. The generator therefore samples a
//! *subscription-level* center for each behaviour from the calibrated
//! party-level mixtures, and individual VMs jitter around their
//! subscription's center. Aggregate marginals then match the paper's
//! figures while per-subscription consistency makes history predictive.

use rand::Rng;
use serde::{Deserialize, Serialize};

use rc_types::time::Timestamp;
use rc_types::vm::{OsType, Party, ProdTag, RegionId, SubscriptionId, VmRole, VmType};

use crate::calibration as cal;
use crate::sampler::{log_uniform, weighted_choice, zipf};

/// Service-name id 0 is reserved for the first-party VM-creation-test
/// workload the paper calls out in §3.2.
pub const CREATION_TEST_SERVICE: u8 = 0;

/// The latent profile of one subscription.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubscriptionProfile {
    /// Subscription identity.
    pub id: SubscriptionId,
    /// First- or third-party.
    pub party: Party,
    /// Role most of this subscription's VMs carry.
    pub primary_role: VmRole,
    /// True for the 96% of subscriptions that stick to one VM type.
    pub single_type: bool,
    /// Top first-party service id, or `None` ("unknown" service name).
    pub service: Option<u8>,
    /// Production annotation (subscription-level, as in §5).
    pub prod: ProdTag,
    /// Preferred guest OS.
    pub os: OsType,
    /// True for first-party VM-creation-test subscriptions.
    pub is_creation_test: bool,
    /// Subscription-level average-utilization bucket and center.
    pub avg_util_bucket: usize,
    /// Center of the per-VM average-utilization draw.
    pub avg_util_center: f64,
    /// Subscription-level P95-of-max bucket and center.
    pub p95_bucket: usize,
    /// Center of the per-VM P95 draw.
    pub p95_center: f64,
    /// Log-space sigma of per-VM utilization jitter (kept below ~0.35 so
    /// most subscriptions have utilization CoV < 1, per §3.2).
    pub util_sigma: f64,
    /// True for the rare subscriptions dominated by interactive VMs.
    pub interactive_dominant: bool,
    /// Probability a VM of this subscription runs an interactive workload.
    pub interactive_prob: f64,
    /// Most likely lifetime bucket for this subscription's VMs.
    pub lifetime_primary_bucket: usize,
    /// Median lifetime (seconds) within the primary bucket.
    pub lifetime_median_secs: f64,
    /// Log-space sigma of per-VM lifetime jitter within the primary bucket.
    pub lifetime_sigma: f64,
    /// Most likely deployment-size bucket.
    pub deploy_size_bucket: usize,
    /// Mean VMs per deployment.
    pub deploy_size_center: f64,
    /// Primary/secondary SKU catalog indices.
    pub primary_sku: usize,
    /// Secondary SKU catalog index (used ~15% of the time).
    pub secondary_sku: usize,
    /// Region most deployments target.
    pub home_region: RegionId,
    /// First instant the subscription creates deployments.
    pub active_from: Timestamp,
    /// Last instant the subscription creates deployments.
    pub active_until: Timestamp,
    /// Deployments created per day while active (before global scaling).
    pub deployment_rate_per_day: f64,
}

/// Per-(party, type) multiplier on the weight of the >24 h lifetime bucket.
///
/// §3.1 reports that third-party core-hours are 85% IaaS while first-party
/// core-hours are 77% PaaS; long-lived VMs carry almost all core-hours
/// (§3.5), so steering *who lives long* by (party, type) reproduces that
/// split.
fn long_bucket_boost(party: Party, vm_type: VmType) -> f64 {
    match (party, vm_type) {
        (Party::First, VmType::Iaas) => 0.55,
        (Party::First, VmType::Paas) => 1.50,
        (Party::Third, VmType::Iaas) => 1.85,
        (Party::Third, VmType::Paas) => 0.45,
    }
}

/// Removes the creation-test VMs' contribution from a first-party share
/// vector.
///
/// The calibration targets are *overall* marginals, but creation-test VMs
/// (≈15% of first-party VMs) are forced into bucket 0 of the utilization
/// and lifetime metrics — so the non-test subscriptions must sample from
/// shares with that mass taken back out of bucket 0, or bucket 0 ends up
/// double-counted.
fn non_test_adjusted(mut shares: [f64; 4], party: Party) -> [f64; 4] {
    if party == Party::First {
        shares[0] = (shares[0] - cal::FIRST_PARTY_CREATION_TEST_FRACTION).max(0.01);
        let total: f64 = shares.iter().sum();
        for s in shares.iter_mut() {
            *s /= total;
        }
    }
    shares
}

/// Sub-ranges used when drawing a subscription's utilization center inside
/// a Table 3 bucket. Log-uniform draws inside bucket 0 reproduce Figure
/// 1's steep low-utilization CDF (60% of VMs below 20% average).
fn util_center_range(bucket: usize) -> (f64, f64) {
    match bucket {
        0 => (0.015, 0.22),
        1 => (0.27, 0.48),
        2 => (0.52, 0.73),
        _ => (0.77, 0.97),
    }
}

/// Knobs for sampling subscription profiles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileConfig {
    /// Length of the observation window in days.
    pub days: u32,
    /// Number of regions VMs may target.
    pub n_regions: u16,
    /// Fraction of first-party subscriptions that are creation-test fleets.
    /// Their elevated arrival rate makes their VMs ~15% of first-party VMs.
    pub creation_test_subscription_fraction: f64,
    /// Probability a non-test first-party subscription is tagged
    /// non-production (calibrated so ~71% of all VMs are production, the
    /// §6.2 workload mix).
    pub first_party_non_production_fraction: f64,
    /// Fraction of subscriptions dominated by interactive workloads.
    pub interactive_subscription_fraction: f64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            days: 90,
            n_regions: 4,
            creation_test_subscription_fraction: 0.08,
            first_party_non_production_fraction: 0.235,
            interactive_subscription_fraction: 0.022,
        }
    }
}

impl SubscriptionProfile {
    /// Samples one subscription profile.
    pub fn sample<R: Rng + ?Sized>(id: SubscriptionId, cfg: &ProfileConfig, rng: &mut R) -> Self {
        let party = if rng.gen::<f64>() < cal::FIRST_PARTY_VM_FRACTION {
            Party::First
        } else {
            Party::Third
        };
        let is_creation_test =
            party == Party::First && rng.gen::<f64>() < cfg.creation_test_subscription_fraction;

        let iaas_fraction = match party {
            Party::First => cal::FIRST_PARTY_IAAS_FRACTION,
            Party::Third => cal::THIRD_PARTY_IAAS_FRACTION,
        };
        let primary_role = if rng.gen::<f64>() < iaas_fraction {
            VmRole::Iaas
        } else {
            // PaaS functional roles: web-heavy, worker-heavy mix.
            let w = [0.35, 0.38, 0.10, 0.17];
            match weighted_choice(rng, &w) {
                0 => VmRole::PaasWebServer,
                1 => VmRole::PaasWorker,
                2 => VmRole::PaasCache,
                _ => VmRole::PaasData,
            }
        };
        let single_type = rng.gen::<f64>() < cal::SINGLE_TYPE_SUBSCRIPTION_FRACTION;

        let service = if is_creation_test {
            Some(CREATION_TEST_SERVICE)
        } else if party == Party::First && rng.gen::<f64>() < 0.55 {
            // Zipf over the named services, skipping the reserved id 0.
            Some(zipf(rng, (cal::N_TOP_SERVICES - 1) as u64, 1.2) as u8)
        } else {
            None
        };

        let prod = if party == Party::Third {
            ProdTag::Production
        } else if is_creation_test || rng.gen::<f64>() < cfg.first_party_non_production_fraction {
            ProdTag::NonProduction
        } else {
            ProdTag::Production
        };

        let os = match party {
            Party::First => {
                if rng.gen::<f64>() < 0.62 {
                    OsType::Windows
                } else {
                    OsType::Linux
                }
            }
            Party::Third => {
                if rng.gen::<f64>() < 0.45 {
                    OsType::Windows
                } else {
                    OsType::Linux
                }
            }
        };

        // Utilization centers.
        let (avg_util_bucket, avg_util_center, p95_bucket, p95_center) = if is_creation_test {
            (0, 0.01, 0, 0.03)
        } else {
            let avg_bucket =
                weighted_choice(rng, &non_test_adjusted(cal::avg_util_bucket_shares(party), party));
            let (lo, hi) = util_center_range(avg_bucket);
            // Figure 1 pins two close anchors — 60% of VMs below 20% but
            // 74% below 25% average utilization — so the lowest bucket
            // needs a mass concentration just under its upper edge.
            let avg_center = if avg_bucket == 0 {
                if rng.gen::<f64>() < 0.72 {
                    log_uniform(rng, 0.015, 0.19)
                } else {
                    0.19 + rng.gen::<f64>() * 0.045
                }
            } else {
                log_uniform(rng, lo, hi)
            };
            // The (avg bucket 0, P95 bucket 0) cell also absorbs the
            // creation-test mass; deflate it for non-test subscriptions.
            let mut p95_row = cal::p95_given_avg(party)[avg_bucket];
            if party == Party::First && avg_bucket == 0 {
                let raw_b0 = cal::avg_util_bucket_shares(party)[0];
                let joint00 =
                    (raw_b0 * p95_row[0] - cal::FIRST_PARTY_CREATION_TEST_FRACTION).max(0.005);
                p95_row[0] = joint00 / raw_b0;
                let total: f64 = p95_row.iter().sum();
                for p in p95_row.iter_mut() {
                    *p /= total;
                }
            }
            let p95_bucket = weighted_choice(rng, &p95_row);
            let (plo, phi) = util_center_range(p95_bucket);
            // Correlate the P95 center with the average's position inside
            // its bucket (Figure 8: the two utilization metrics are
            // strongly positively rank-correlated).
            let lo_eff = if p95_bucket == avg_bucket { avg_center.max(plo) } else { plo };
            let u = ((avg_center - lo) / (hi - lo)).clamp(0.0, 1.0);
            let mix = 0.65 * u + 0.35 * rng.gen::<f64>();
            // Keep centers away from bucket edges so per-VM jitter rarely
            // knocks the realized P95 out of the intended bucket.
            let p95_center = lo_eff + (0.2 + 0.7 * mix) * (phi - lo_eff).max(0.0);
            (avg_bucket, avg_center, p95_bucket, p95_center)
        };
        let util_sigma = (0.08 + rng.gen::<f64>() * 0.30).min(0.38);

        let interactive_dominant =
            !is_creation_test && rng.gen::<f64>() < cfg.interactive_subscription_fraction;
        let interactive_prob = if interactive_dominant { 0.90 } else { 0.001 };

        // Lifetime mixture: party shares, reweighted by (party, type) to
        // steer core-hours, pinned long for interactive subscriptions.
        let lifetime_primary_bucket = if is_creation_test {
            0
        } else if interactive_dominant {
            3
        } else {
            let mut shares = non_test_adjusted(cal::lifetime_bucket_shares(party), party);
            shares[3] *= long_bucket_boost(party, primary_role.vm_type());
            weighted_choice(rng, &shares)
        };
        let bounds = &cal::LIFETIME_BUCKET_BOUNDS[lifetime_primary_bucket];
        let lifetime_median_secs = if is_creation_test {
            log_uniform(rng, 140.0, 420.0)
        } else if lifetime_primary_bucket == 3 {
            if interactive_dominant {
                log_uniform(rng, 10.0 * 86_400.0, 40.0 * 86_400.0)
            } else {
                log_uniform(rng, 2.0 * 86_400.0, 14.0 * 86_400.0)
            }
        } else {
            log_uniform(rng, bounds.lo_secs * 1.1, bounds.hi_secs * 0.9)
        };
        let lifetime_sigma = 0.15 + rng.gen::<f64>() * 0.25;

        // Deployment sizing.
        let deploy_size_bucket = weighted_choice(rng, &cal::deployment_size_bucket_shares(party));
        let deploy_size_center = match deploy_size_bucket {
            0 => 1.0,
            1 => log_uniform(rng, 2.0, 10.0),
            2 => log_uniform(rng, 11.0, 100.0),
            _ => log_uniform(rng, 101.0, 700.0),
        };

        // SKUs.
        let weights = cal::sku_weights(party);
        let primary_sku = weighted_choice(rng, &weights);
        let secondary_sku = weighted_choice(rng, &weights);

        let home_region = RegionId(rng.gen_range(0..cfg.n_regions.max(1)));

        // Activity window: most subscriptions span the whole trace; some
        // appear late or disappear early (those exercise the "recently
        // created subscription" no-prediction path).
        let window_secs = cfg.days as u64 * 86_400;
        let roll: f64 = rng.gen();
        let (active_from, active_until) = if roll < 0.70 {
            (Timestamp::ZERO, Timestamp::from_secs(window_secs))
        } else if roll < 0.85 {
            let start = rng.gen_range(0..window_secs * 3 / 4);
            (Timestamp::from_secs(start), Timestamp::from_secs(window_secs))
        } else {
            let end = rng.gen_range(window_secs / 4..window_secs);
            (Timestamp::ZERO, Timestamp::from_secs(end))
        };

        // Busy-ness varies over orders of magnitude across subscriptions;
        // creation-test fleets churn much faster. The division by
        // sqrt(deployment size) tempers — without erasing — the dominance
        // of large-deployment subscriptions over the VM population.
        let base_rate = log_uniform(rng, 0.08, 5.0) / deploy_size_center.sqrt();
        let deployment_rate_per_day = if is_creation_test {
            base_rate * 2.0
        } else if interactive_dominant {
            // Interactive services deploy steadily; a narrow rate band
            // keeps the (rare) interactive population from collapsing to
            // one or two lucky subscriptions.
            log_uniform(rng, 0.5, 2.5) / deploy_size_center.sqrt()
        } else {
            base_rate
        };

        SubscriptionProfile {
            id,
            party,
            primary_role,
            single_type,
            service,
            prod,
            os,
            is_creation_test,
            avg_util_bucket,
            avg_util_center,
            p95_bucket,
            p95_center,
            util_sigma,
            interactive_dominant,
            interactive_prob,
            lifetime_primary_bucket,
            lifetime_median_secs,
            lifetime_sigma,
            deploy_size_bucket,
            deploy_size_center,
            primary_sku,
            secondary_sku,
            home_region,
            active_from,
            active_until,
            deployment_rate_per_day,
        }
    }

    /// Expected number of VMs this subscription creates over its activity
    /// window, before global rate scaling.
    pub fn expected_vms(&self) -> f64 {
        let active_days = self.active_until.since(self.active_from).as_days_f64();
        self.deployment_rate_per_day * active_days * self.deploy_size_center
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_many(n: usize) -> Vec<SubscriptionProfile> {
        let cfg = ProfileConfig::default();
        let mut rng = StdRng::seed_from_u64(7);
        (0..n)
            .map(|i| SubscriptionProfile::sample(SubscriptionId(i as u32), &cfg, &mut rng))
            .collect()
    }

    #[test]
    fn party_mix_matches_calibration() {
        let profiles = sample_many(5000);
        let first = profiles.iter().filter(|p| p.party == Party::First).count();
        let frac = first as f64 / profiles.len() as f64;
        assert!((frac - cal::FIRST_PARTY_VM_FRACTION).abs() < 0.02, "{frac}");
    }

    #[test]
    fn third_party_is_always_production() {
        for p in sample_many(2000) {
            if p.party == Party::Third {
                assert_eq!(p.prod, ProdTag::Production);
            }
        }
    }

    #[test]
    fn creation_test_subscriptions_are_first_party_and_shortlived() {
        let profiles = sample_many(5000);
        let tests: Vec<_> = profiles.iter().filter(|p| p.is_creation_test).collect();
        assert!(!tests.is_empty());
        for p in &tests {
            assert_eq!(p.party, Party::First);
            assert_eq!(p.lifetime_primary_bucket, 0);
            assert_eq!(p.prod, ProdTag::NonProduction);
            assert_eq!(p.service, Some(CREATION_TEST_SERVICE));
            assert!(p.avg_util_center < 0.05);
        }
    }

    #[test]
    fn p95_center_never_below_avg_center() {
        for p in sample_many(3000) {
            assert!(
                p.p95_center >= p.avg_util_center - 1e-9,
                "sub {:?}: avg {} p95 {}",
                p.id,
                p.avg_util_center,
                p.p95_center
            );
            assert!(p.p95_bucket >= p.avg_util_bucket);
        }
    }

    #[test]
    fn interactive_subscriptions_live_long() {
        let profiles = sample_many(20_000);
        let interactive: Vec<_> = profiles.iter().filter(|p| p.interactive_dominant).collect();
        assert!(!interactive.is_empty());
        for p in &interactive {
            assert_eq!(p.lifetime_primary_bucket, 3);
            assert!(p.lifetime_median_secs >= 10.0 * 86_400.0);
            assert!(p.interactive_prob > 0.5);
        }
        let frac = interactive.len() as f64 / profiles.len() as f64;
        assert!((0.007..0.027).contains(&frac), "{frac}");
    }

    #[test]
    fn most_subscriptions_are_single_type() {
        let profiles = sample_many(5000);
        let single = profiles.iter().filter(|p| p.single_type).count();
        let frac = single as f64 / profiles.len() as f64;
        assert!((frac - 0.96).abs() < 0.015, "{frac}");
    }

    #[test]
    fn activity_windows_are_well_formed() {
        for p in sample_many(2000) {
            assert!(p.active_from < p.active_until);
            assert!(p.active_until.as_secs() <= 90 * 86_400);
        }
    }

    #[test]
    fn expected_vms_is_positive() {
        for p in sample_many(500) {
            assert!(p.expected_vms() > 0.0);
        }
    }
}
