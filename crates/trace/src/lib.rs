//! Calibrated synthetic Azure-like VM workload traces.
//!
//! The paper's evaluation runs on three months of production telemetry
//! that we cannot have; this crate substitutes a generator whose output is
//! *calibrated to every distribution the paper reports* (see
//! [`calibration`] for the figure-by-figure targets) and which preserves
//! the one property the whole system rests on: VMs of the same
//! subscription behave consistently, so per-subscription history predicts
//! the future.
//!
//! ```
//! use rc_trace::{Trace, TraceConfig};
//!
//! let config = TraceConfig { target_vms: 2_000, n_subscriptions: 100, days: 20, ..TraceConfig::small() };
//! let trace = Trace::generate(&config);
//! assert!(trace.n_vms() > 500);
//! let id = rc_types::VmId(0);
//! let (avg_util, p95_util) = trace.vm_util_summary(id, 1_000);
//! assert!(avg_util <= p95_util + 1e-9);
//! ```

pub mod arrival;
pub mod calibration;
pub mod dataset;
pub mod degrade;
pub mod dirty;
pub mod generator;
pub mod profile;
pub mod sampler;
pub mod stream;
pub mod trace;
pub mod utilization;

pub use arrival::{ArrivalIter, ArrivalProcess};
pub use dataset::{read_vm_table, vm_table, write_cpu_readings, write_vm_table, VmTableRow};

/// Minimum observed days before the dataset export assigns a workload
/// category (mirrors §3.6's three-day requirement).
pub const DATASET_CLASSIFY_MIN_DAYS: f64 = 3.0;
pub use degrade::{ramp_severity, TelemetryDegrade};
pub use dirty::{trace_fingerprint, DirtyPlan, DirtyReport};
pub use generator::TraceConfig;
pub use profile::{ProfileConfig, SubscriptionProfile};
pub use stream::{DirtyVmStream, StreamedVm, VmStream};
pub use trace::{DeploymentRecord, Trace};
pub use utilization::UtilParams;
