//! The trace generator: profiles → arrivals → deployments → VMs.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use rc_types::telemetry::VmRecord;
use rc_types::time::Timestamp;
use rc_types::vm::{DeploymentId, OsType, SubscriptionId, VmId, VmRole, SKU_CATALOG};

use crate::arrival::ArrivalProcess;
use crate::calibration as cal;
use crate::profile::{ProfileConfig, SubscriptionProfile};
use crate::sampler::{clamped_lognormal, log_uniform, weighted_choice};
use crate::trace::{DeploymentRecord, Trace};
use crate::utilization::UtilParams;

/// Configuration of a synthetic trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Master RNG seed; the whole trace is a pure function of the config.
    pub seed: u64,
    /// Observation window length in days (the paper's dataset spans ~92).
    pub days: u32,
    /// Number of subscriptions.
    pub n_subscriptions: usize,
    /// Approximate total VM count; subscription rates are scaled to hit it.
    pub target_vms: usize,
    /// Number of regions.
    pub n_regions: u16,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            seed: 0xA27E,
            days: 90,
            n_subscriptions: 2_500,
            target_vms: 100_000,
            n_regions: 4,
        }
    }
}

impl TraceConfig {
    /// A small configuration for unit tests: quick to generate but large
    /// enough for distribution checks.
    pub fn small() -> Self {
        TraceConfig {
            seed: 0xA27E,
            days: 35,
            n_subscriptions: 500,
            target_vms: 15_000,
            n_regions: 2,
        }
    }
}

/// Fraction of a deployment's VMs created right at deployment time; the
/// remainder trickles in within a day ("deployments may grow over time",
/// §3.4).
const INITIAL_DEPLOYMENT_FRACTION: f64 = 0.8;

/// Samples every subscription profile from the master RNG.
///
/// Profiles are the only thing the master seed controls; all VM-level
/// randomness lives in per-subscription streams (see [`sub_stream_rngs`]),
/// which is what lets the streaming path regenerate any subscription
/// independently without replaying the whole trace.
pub(crate) fn sample_profiles(config: &TraceConfig) -> Vec<SubscriptionProfile> {
    assert!(config.n_subscriptions > 0 && config.days > 0, "degenerate config");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let profile_cfg = ProfileConfig {
        days: config.days,
        n_regions: config.n_regions,
        ..ProfileConfig::default()
    };
    (0..config.n_subscriptions)
        .map(|i| SubscriptionProfile::sample(SubscriptionId(i as u32), &profile_cfg, &mut rng))
        .collect()
}

/// Water-filling rate scales: every subscription's deployment rate is
/// scaled so the expected VM count hits the target, while capping any
/// single subscription at ~3% of the population. Without the cap, a single
/// busy subscription can dominate the trace and swamp every aggregate
/// distribution with its idiosyncrasies.
pub(crate) fn subscription_scales(
    config: &TraceConfig,
    subscriptions: &[SubscriptionProfile],
) -> Vec<f64> {
    let expected: Vec<f64> = subscriptions.iter().map(|s| s.expected_vms()).collect();
    let cap = (config.target_vms as f64 * 0.03).max(50.0);
    // Solve `sum(min(lambda * e_i, cap)) = target` for the global rate
    // multiplier lambda by bisection; the left side is monotone in
    // lambda, so this converges for any expectation profile.
    let target = config.target_vms as f64;
    let total_at = |lambda: f64| -> f64 { expected.iter().map(|e| (lambda * e).min(cap)).sum() };
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while total_at(hi) < target && hi < 1e12 {
        hi *= 2.0;
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if total_at(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let lambda = 0.5 * (lo + hi);
    expected.iter().map(|e| if lambda * e > cap { cap / e.max(1e-9) } else { lambda }).collect()
}

/// The two private RNGs of one subscription's generation stream: one
/// drives its arrival process, the other everything inside a deployment.
///
/// Splitting them means the arrival schedule can be replayed (e.g. to
/// count deployments ahead of time) without disturbing VM bodies, and the
/// derived seeds keep the whole trace a pure function of the config.
pub(crate) fn sub_stream_rngs(seed: u64, sub: SubscriptionId) -> (StdRng, StdRng) {
    use crate::sampler::splitmix64;
    let base = splitmix64(seed ^ 0x5452_4143_455f_5354); // "TRACE_ST"
    let k = splitmix64(base ^ sub.0 as u64);
    (StdRng::seed_from_u64(splitmix64(k ^ 0xA331)), StdRng::seed_from_u64(splitmix64(k ^ 0xB0D1)))
}

/// One VM produced by [`generate_deployment`].
#[derive(Debug, Clone)]
pub(crate) struct GeneratedVm {
    pub record: VmRecord,
    pub util: UtilParams,
    pub interactive: bool,
}

/// One deployment's worth of generated VMs plus its summary record.
#[derive(Debug, Clone)]
pub(crate) struct GeneratedDeployment {
    pub deployment: DeploymentRecord,
    pub vms: Vec<GeneratedVm>,
}

/// Generates one deployment (region, size, and every VM body) from the
/// subscription's body RNG. Shared verbatim between [`Trace::generate`]
/// and the streaming path so the two cannot diverge.
pub(crate) fn generate_deployment<R: Rng + ?Sized>(
    sub: &SubscriptionProfile,
    dep_id: DeploymentId,
    deploy_time: Timestamp,
    n_regions: u16,
    rng: &mut R,
) -> GeneratedDeployment {
    let region = if rng.gen::<f64>() < 0.85 || n_regions <= 1 {
        sub.home_region
    } else {
        rc_types::vm::RegionId(rng.gen_range(0..n_regions))
    };

    // Deployment size around the subscription center.
    let n = clamped_lognormal(rng, sub.deploy_size_center, 0.30, 1.0, 2_000.0).round().max(1.0)
        as usize;
    let initial = ((n as f64) * INITIAL_DEPLOYMENT_FRACTION).ceil() as usize;

    // VMs of a deployment usually share a lifetime bucket.
    let dep_lifetime_bucket = sample_lifetime_bucket(sub, rng);
    let mut n_cores = 0u32;
    let mut vms = Vec::with_capacity(n);

    for k in 0..n {
        let created = if k < initial {
            Timestamp::from_secs(deploy_time.as_secs() + rng.gen_range(0..120))
        } else {
            Timestamp::from_secs(deploy_time.as_secs() + rng.gen_range(120..86_400))
        };

        let lifetime_bucket = if rng.gen::<f64>() < 0.8 {
            dep_lifetime_bucket
        } else {
            sample_lifetime_bucket(sub, rng)
        };
        let lifetime_secs = sample_lifetime(sub, lifetime_bucket, rng);
        let deleted = Timestamp::from_secs(created.as_secs() + lifetime_secs);

        let role = sample_role(sub, rng);
        let sku_idx = if rng.gen::<f64>() < 0.85 { sub.primary_sku } else { sub.secondary_sku };
        let sku = SKU_CATALOG[sku_idx];
        n_cores += sku.cores;

        let os = if rng.gen::<f64>() < 0.93 {
            sub.os
        } else {
            match sub.os {
                OsType::Windows => OsType::Linux,
                OsType::Linux => OsType::Windows,
            }
        };

        let interactive = rng.gen::<f64>() < sub.interactive_prob;
        let params = sample_util_params(sub, interactive, rng);

        vms.push(GeneratedVm {
            record: VmRecord {
                vm_id: VmId(0), // assigned once the global arrival order is known
                subscription: sub.id,
                deployment: dep_id,
                region,
                party: sub.party,
                role,
                prod: sub.prod,
                os,
                sku,
                created,
                deleted,
            },
            util: params,
            interactive,
        });
    }

    GeneratedDeployment {
        deployment: DeploymentRecord {
            id: dep_id,
            subscription: sub.id,
            region,
            created: deploy_time,
            n_vms: n as u32,
            n_cores,
        },
        vms,
    }
}

impl Trace {
    /// Generates a full synthetic trace from the configuration.
    ///
    /// Deterministic: equal configs yield equal traces, and the result is
    /// bit-identical to draining [`crate::stream::VmStream`] — both paths
    /// run the same per-subscription RNG streams through
    /// [`generate_deployment`].
    ///
    /// # Panics
    ///
    /// Panics when the config has zero subscriptions or zero days.
    pub fn generate(config: &TraceConfig) -> Trace {
        let subscriptions = sample_profiles(config);
        let scales = subscription_scales(config, &subscriptions);

        let mut vms: Vec<VmRecord> = Vec::with_capacity(config.target_vms + config.target_vms / 4);
        let mut util: Vec<UtilParams> = Vec::with_capacity(vms.capacity());
        let mut interactive_intent: Vec<bool> = Vec::with_capacity(vms.capacity());
        let mut deployments: Vec<DeploymentRecord> = Vec::new();

        for sub in &subscriptions {
            let scale = scales[sub.id.0 as usize];
            let proc = ArrivalProcess::new(sub.deployment_rate_per_day * scale);
            let (mut arrival_rng, mut body_rng) = sub_stream_rngs(config.seed, sub.id);
            let arrivals = proc.generate(&mut arrival_rng, sub.active_from, sub.active_until);
            for deploy_time in arrivals {
                let dep_id = DeploymentId(deployments.len() as u64);
                let generated =
                    generate_deployment(sub, dep_id, deploy_time, config.n_regions, &mut body_rng);
                for gvm in generated.vms {
                    vms.push(gvm.record);
                    util.push(gvm.util);
                    interactive_intent.push(gvm.interactive);
                }
                deployments.push(generated.deployment);
            }
        }

        // Sort VMs by creation time and assign dense ids.
        let mut order: Vec<usize> = (0..vms.len()).collect();
        order.sort_by_key(|&i| (vms[i].created, i));
        let mut sorted_vms = Vec::with_capacity(vms.len());
        let mut sorted_util = Vec::with_capacity(vms.len());
        let mut sorted_intent = Vec::with_capacity(vms.len());
        for (new_id, &i) in order.iter().enumerate() {
            let mut vm = vms[i].clone();
            vm.vm_id = VmId(new_id as u64);
            sorted_vms.push(vm);
            sorted_util.push(util[i]);
            sorted_intent.push(interactive_intent[i]);
        }

        Trace {
            config: config.clone(),
            subscriptions,
            vms: sorted_vms,
            util: sorted_util,
            interactive_intent: sorted_intent,
            deployments,
        }
    }
}

/// Samples a lifetime bucket: mostly the subscription's primary bucket,
/// with leakage toward the party-level shares.
fn sample_lifetime_bucket<R: Rng + ?Sized>(sub: &SubscriptionProfile, rng: &mut R) -> usize {
    if sub.is_creation_test || rng.gen::<f64>() < 0.85 {
        sub.lifetime_primary_bucket
    } else {
        weighted_choice(rng, &cal::lifetime_bucket_shares(sub.party))
    }
}

/// Samples a lifetime in seconds for the given bucket.
fn sample_lifetime<R: Rng + ?Sized>(sub: &SubscriptionProfile, bucket: usize, rng: &mut R) -> u64 {
    let bounds = &cal::LIFETIME_BUCKET_BOUNDS[bucket];
    let secs = if bucket == sub.lifetime_primary_bucket {
        clamped_lognormal(
            rng,
            sub.lifetime_median_secs,
            sub.lifetime_sigma,
            bounds.lo_secs,
            bounds.hi_secs,
        )
    } else {
        log_uniform(rng, bounds.lo_secs, bounds.hi_secs)
    };
    secs.max(60.0) as u64
}

/// Samples a VM role: the subscription's primary role, with type leakage
/// for the 4% of subscriptions that mix types.
fn sample_role<R: Rng + ?Sized>(sub: &SubscriptionProfile, rng: &mut R) -> VmRole {
    if sub.single_type || rng.gen::<f64>() < 0.85 {
        sub.primary_role
    } else {
        // Flip to the other type.
        match sub.primary_role {
            VmRole::Iaas => {
                let w = [0.35, 0.38, 0.10, 0.17];
                match weighted_choice(rng, &w) {
                    0 => VmRole::PaasWebServer,
                    1 => VmRole::PaasWorker,
                    2 => VmRole::PaasCache,
                    _ => VmRole::PaasData,
                }
            }
            _ => VmRole::Iaas,
        }
    }
}

/// Samples per-VM utilization parameters around the subscription centers.
///
/// The burst seed derives from the subscription id so sibling VMs' maxima
/// align in time (see `rc_trace::utilization`).
fn sample_util_params<R: Rng + ?Sized>(
    sub: &SubscriptionProfile,
    interactive: bool,
    rng: &mut R,
) -> UtilParams {
    let burst_seed = crate::sampler::splitmix64(0xb065_7000 ^ sub.id.0 as u64);
    if sub.is_creation_test {
        return UtilParams { burst_seed, ..UtilParams::creation_test(rng.gen()) };
    }
    // Per-VM jitter around the subscription centers, with the avg and P95
    // deviations sharing most of their randomness — a VM that runs hotter
    // than its siblings is hotter in both metrics (Figure 8's strong
    // avg/P95 rank correlation).
    let z1 = crate::sampler::hash_normal(rng.gen(), 0);
    let z2 = 0.8 * z1 + 0.6 * crate::sampler::hash_normal(rng.gen(), 1);
    let base = (sub.avg_util_center * (sub.util_sigma * z1).exp()).clamp(0.003, 0.98);
    let p95 = (sub.p95_center * (sub.util_sigma * 0.35 * z2).exp()).clamp(base, 1.0);
    let (amplitude, peak_hour) = if interactive {
        (0.5 + rng.gen::<f64>() * 0.4, 11.0 + rng.gen::<f64>() * 6.0)
    } else {
        (0.0, 0.0)
    };
    UtilParams {
        seed: rng.gen(),
        burst_seed,
        base,
        p95_level: p95,
        diurnal_amplitude: amplitude,
        peak_hour,
        noise: 0.01 + rng.gen::<f64>() * 0.03,
    }
    .sanitized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_types::buckets::{Bucketizer, LifetimeBucketizer};
    use rc_types::vm::Party;

    fn small_trace() -> Trace {
        Trace::generate(&TraceConfig::small())
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_trace();
        let b = small_trace();
        assert_eq!(a.n_vms(), b.n_vms());
        for (x, y) in a.vms.iter().zip(&b.vms).take(200) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn vm_count_is_near_target() {
        let t = small_trace();
        let target = t.config.target_vms as f64;
        let got = t.n_vms() as f64;
        // Heavy-tailed per-subscription rates (by design) make the total
        // noisy; the harnesses report actual counts.
        assert!((got / target - 1.0).abs() < 0.55, "target {target}, generated {got}");
    }

    #[test]
    fn vms_are_sorted_with_dense_ids() {
        let t = small_trace();
        for (i, vm) in t.vms.iter().enumerate() {
            assert_eq!(vm.vm_id, VmId(i as u64));
        }
        for w in t.vms.windows(2) {
            assert!(w[0].created <= w[1].created);
        }
    }

    #[test]
    fn deployments_match_vm_groups() {
        let t = small_trace();
        let mut counts = vec![0u32; t.deployments.len()];
        for vm in &t.vms {
            counts[vm.deployment.0 as usize] += 1;
        }
        for (dep, &count) in t.deployments.iter().zip(&counts) {
            assert_eq!(dep.n_vms, count, "deployment {:?}", dep.id);
        }
    }

    #[test]
    fn lifetime_bucket_shares_track_calibration() {
        // Measured on *true* lifetimes of all VMs (the window censors the
        // long tail; Figure 5 measured fully-observed VMs of a 92-day
        // window, where censoring is mild). Heavy-tailed per-subscription
        // rates mean a handful of subscriptions dominate the VM count, so
        // the tolerance is generous.
        let t = small_trace();
        let b = LifetimeBucketizer;
        let mut counts = [0usize; 4];
        for id in t.vm_ids() {
            counts[b.bucket(&t.vm(id).lifetime())] += 1;
        }
        let n = t.n_vms();
        let shares: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        let target = [0.29, 0.32, 0.32, 0.07];
        for (got, want) in shares.iter().zip(target) {
            assert!((got - want).abs() < 0.12, "lifetime shares {shares:?} vs Table 4 {target:?}");
        }
        // Figure 5's knee: the vast majority of lifetimes end within a day.
        assert!(shares[0] + shares[1] + shares[2] > 0.85);
    }

    #[test]
    fn party_mix_and_prod_mix() {
        let t = small_trace();
        let first = t.vms.iter().filter(|v| v.party == Party::First).count();
        let frac = first as f64 / t.n_vms() as f64;
        assert!((0.70..0.96).contains(&frac), "first-party VM share {frac}");

        let prod = t.vms.iter().filter(|v| v.prod == rc_types::vm::ProdTag::Production).count();
        let pfrac = prod as f64 / t.n_vms() as f64;
        // §6.2 uses 71% production VMs.
        assert!((0.55..0.85).contains(&pfrac), "production share {pfrac}");
    }

    #[test]
    fn util_params_are_sane() {
        let t = small_trace();
        for id in t.vm_ids() {
            let p = t.util_params(id);
            assert!((0.0..=1.0).contains(&p.base));
            assert!(p.p95_level >= p.base - 1e-12);
            assert!(p.p95_level <= 1.0);
        }
    }

    #[test]
    fn interactive_vms_are_rare_and_long() {
        let t = small_trace();
        let n_interactive = t.interactive_intent.iter().filter(|&&i| i).count();
        let frac = n_interactive as f64 / t.n_vms() as f64;
        assert!((0.002..0.04).contains(&frac), "interactive share {frac} (n = {n_interactive})");
    }

    #[test]
    fn subscription_utilization_is_consistent() {
        // §3.2: 80% of subscriptions have an avg-utilization CoV < 1.
        // Check the *parameters* (the realized series adds sampling noise).
        let t = small_trace();
        let mut per_sub: std::collections::HashMap<u32, Vec<f64>> = Default::default();
        for id in t.vm_ids() {
            per_sub.entry(t.vm(id).subscription.0).or_default().push(t.util_params(id).base);
        }
        let mut low_cov = 0usize;
        let mut total = 0usize;
        for bases in per_sub.values() {
            if bases.len() < 3 {
                continue;
            }
            let mean = bases.iter().sum::<f64>() / bases.len() as f64;
            let var = bases.iter().map(|b| (b - mean).powi(2)).sum::<f64>() / bases.len() as f64;
            let cov = var.sqrt() / mean.max(1e-9);
            total += 1;
            if cov < 1.0 {
                low_cov += 1;
            }
        }
        let frac = low_cov as f64 / total.max(1) as f64;
        assert!(frac > 0.8, "only {frac} of subscriptions have CoV < 1");
    }
}
