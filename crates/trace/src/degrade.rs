//! Slow-degrading telemetry: gradual corruption that stays in-range.
//!
//! [`DirtyPlan`](crate::dirty::DirtyPlan) models telemetry that is
//! *broken* — NaNs, impossible ranges, inverted timestamps — which the
//! pipeline's cleanup stage catches and quarantines. Real collectors
//! also fail the other way: a sensor drifts, a buffer under-samples, a
//! clock creeps — and every reading stays individually plausible while
//! the *distribution* walks away from what the model was trained on.
//! That failure mode is invisible to record-level validation and to
//! label-based accuracy tracking until predictions have already gone
//! stale; it is exactly what leading-indicator drift detection exists
//! to catch early.
//!
//! [`TelemetryDegrade`] applies that corruption deterministically: a
//! severity in `[0, 1]` scales additive bias and extra noise on each
//! VM's [`UtilParams`], plus a forward clock skew on its timestamps.
//! Everything is a pure function of `(degrade, vm index, severity)` —
//! re-applying at the same severity is idempotent on a fresh copy, and
//! results are bit-reproducible across runs. Degraded parameters are
//! re-sanitized, so the output is always a *valid* workload, just a
//! shifted one: the blast radius is bounded by construction.

use rc_types::telemetry::VmRecord;
use rc_types::time::Timestamp;

use crate::sampler::{hash_normal, hash_unit};
use crate::utilization::UtilParams;

/// A deterministic telemetry-degradation model.
///
/// The `*_ramp` fields are the corruption applied at severity 1.0;
/// severity scales them linearly, so a ramped episode degrades
/// gradually instead of garbling at once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryDegrade {
    /// Seed decorrelating this degradation from every other random
    /// stream; per-VM decisions hash `(seed, vm index)`.
    pub seed: u64,
    /// Additive shift applied to `base` and `p95_level` at severity
    /// 1.0, in utilization units. Direction is per-VM (hash-chosen) so
    /// the fleet mean moves but individual VMs move both ways, like a
    /// miscalibrated sensor population.
    pub bias_ramp: f64,
    /// Extra noise amplitude added to [`UtilParams::noise`] at
    /// severity 1.0 (the sanitizer caps total noise at 0.2).
    pub noise_ramp: f64,
    /// Forward clock skew, in seconds, applied to creation/deletion
    /// timestamps at severity 1.0. Ordering (`deleted >= created`) is
    /// preserved — this is drift, not the inversion `DirtyPlan`
    /// injects.
    pub skew_secs: u64,
}

impl Default for TelemetryDegrade {
    fn default() -> Self {
        TelemetryDegrade { seed: 0x0DE6_9ADE, bias_ramp: 0.25, noise_ramp: 0.1, skew_secs: 3_600 }
    }
}

impl TelemetryDegrade {
    /// Degrades one VM's utilization model in place at `severity`
    /// (clamped to `[0, 1]`). Pure in `(self, vm_index, severity)`.
    pub fn degrade_util(&self, vm_index: u64, severity: f64, util: &mut UtilParams) {
        let severity = sat(severity);
        if severity == 0.0 {
            return;
        }
        // Per-VM direction and magnitude: most of the fleet drifts the
        // hash-majority way, each VM by its own fraction of the ramp.
        let direction =
            if hash_unit(self.seed, vm_index.wrapping_mul(4) + 1) < 0.8 { 1.0 } else { -1.0 };
        let magnitude = 0.5 + 0.5 * hash_unit(self.seed, vm_index.wrapping_mul(4) + 2);
        let bias = direction * magnitude * self.bias_ramp * severity;
        util.base += bias;
        util.p95_level += bias;
        util.noise +=
            self.noise_ramp * severity * hash_unit(self.seed, vm_index.wrapping_mul(4) + 3);
        // A slowly-failing sensor also wobbles: small zero-mean jitter
        // on the base keeps the corruption from being a pure translate.
        util.base += 0.02 * severity * hash_normal(self.seed, vm_index.wrapping_mul(4) + 4);
        *util = util.sanitized();
    }

    /// Skews one VM record's clock forward at `severity`, preserving
    /// `deleted >= created`. Pure in `(self, vm_index, severity)`.
    pub fn skew_clock(&self, vm_index: u64, severity: f64, vm: &mut VmRecord) {
        let severity = sat(severity);
        let shift =
            (self.skew_secs as f64 * severity * hash_unit(self.seed, vm_index ^ 0x5EED)) as u64;
        if shift == 0 {
            return;
        }
        vm.created = Timestamp::from_secs(vm.created.as_secs().saturating_add(shift));
        vm.deleted = Timestamp::from_secs(
            vm.deleted.as_secs().saturating_add(shift).max(vm.created.as_secs()),
        );
    }
}

/// Linear ramp severity for a degradation episode: 0 before
/// `from_tick`, rising to 1.0 at `until_tick`, and 1.0 after. A
/// zero-length episode (`until_tick <= from_tick`) is a step to 1.0.
pub fn ramp_severity(tick: u64, from_tick: u64, until_tick: u64) -> f64 {
    if tick < from_tick {
        return 0.0;
    }
    if until_tick <= from_tick {
        return 1.0;
    }
    sat((tick - from_tick) as f64 / (until_tick - from_tick) as f64)
}

fn sat(x: f64) -> f64 {
    if x.is_finite() {
        x.clamp(0.0, 1.0)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn util() -> UtilParams {
        UtilParams {
            seed: 7,
            burst_seed: 9,
            base: 0.3,
            p95_level: 0.6,
            diurnal_amplitude: 0.0,
            peak_hour: 0.0,
            noise: 0.02,
        }
    }

    #[test]
    fn zero_severity_is_the_identity() {
        let d = TelemetryDegrade::default();
        for i in 0..50u64 {
            let mut u = util();
            d.degrade_util(i, 0.0, &mut u);
            assert_eq!(u.base, util().base);
            assert_eq!(u.noise, util().noise);
        }
    }

    #[test]
    fn degradation_is_deterministic_and_stays_valid() {
        let d = TelemetryDegrade::default();
        for i in 0..200u64 {
            let mut a = util();
            let mut b = util();
            d.degrade_util(i, 0.7, &mut a);
            d.degrade_util(i, 0.7, &mut b);
            assert_eq!(a.base.to_bits(), b.base.to_bits(), "vm {i}");
            assert_eq!(a.noise.to_bits(), b.noise.to_bits(), "vm {i}");
            // Bounded blast radius: every degraded model is still a
            // valid workload the sanitizer accepts unchanged.
            assert!((0.0..=1.0).contains(&a.base), "vm {i}: base {}", a.base);
            assert!(a.p95_level >= a.base, "vm {i}");
            assert!(a.noise <= 0.2, "vm {i}");
        }
    }

    #[test]
    fn severity_scales_the_fleet_shift() {
        let d = TelemetryDegrade::default();
        let mean_shift = |severity: f64| {
            let mut total = 0.0;
            for i in 0..500u64 {
                let mut u = util();
                d.degrade_util(i, severity, &mut u);
                total += u.base - util().base;
            }
            total / 500.0
        };
        let mild = mean_shift(0.2);
        let severe = mean_shift(1.0);
        // The hash-majority direction is positive, so the fleet mean
        // rises — and rises further at higher severity.
        assert!(mild > 0.01, "mild shift {mild}");
        assert!(severe > mild * 2.0, "mild {mild} severe {severe}");
    }

    fn record(i: u64) -> VmRecord {
        use rc_types::vm::{OsType, Party, ProdTag, VmRole, SKU_CATALOG};
        VmRecord {
            vm_id: rc_types::VmId(i),
            subscription: rc_types::SubscriptionId(1),
            deployment: rc_types::vm::DeploymentId(0),
            region: rc_types::vm::RegionId(0),
            party: Party::Third,
            role: VmRole::Iaas,
            prod: ProdTag::Production,
            os: OsType::Linux,
            sku: SKU_CATALOG[0],
            created: Timestamp::from_secs(1_000_000),
            deleted: Timestamp::from_secs(1_003_600),
        }
    }

    #[test]
    fn clock_skew_preserves_ordering() {
        let d = TelemetryDegrade { skew_secs: 7_200, ..TelemetryDegrade::default() };
        for i in 0..100u64 {
            let mut vm = record(i);
            let before = vm.created;
            d.skew_clock(i, 1.0, &mut vm);
            assert!(vm.created >= before, "skew is forward-only");
            assert!(vm.deleted >= vm.created, "ordering preserved for vm {i}");
            assert!(vm.created.as_secs() - before.as_secs() <= 7_200);
        }
    }

    #[test]
    fn ramp_severity_is_a_linear_ramp() {
        assert_eq!(ramp_severity(3, 5, 10), 0.0);
        assert_eq!(ramp_severity(5, 5, 10), 0.0);
        assert!((ramp_severity(7, 5, 10) - 0.4).abs() < 1e-12);
        assert_eq!(ramp_severity(10, 5, 10), 1.0);
        assert_eq!(ramp_severity(99, 5, 10), 1.0);
        // Degenerate episode: a step function.
        assert_eq!(ramp_severity(5, 5, 5), 1.0);
        assert_eq!(ramp_severity(4, 5, 5), 0.0);
    }
}
