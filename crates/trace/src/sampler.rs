//! Small sampling utilities shared by the generator.

use rand::Rng;

/// SplitMix64 hash step — used to derive independent deterministic streams
/// (e.g. one per VM, one per telemetry slot) from a single seed.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` derived from a hash of `(seed, stream)`.
pub fn hash_unit(seed: u64, stream: u64) -> f64 {
    let h = splitmix64(seed ^ stream.wrapping_mul(0xd6e8_feb8_6659_fd93));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Standard-normal-ish value derived from two hash streams (Box-Muller).
pub fn hash_normal(seed: u64, stream: u64) -> f64 {
    let u1 = hash_unit(seed, stream.wrapping_mul(2)).max(1e-12);
    let u2 = hash_unit(seed, stream.wrapping_mul(2) + 1);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples an index from unnormalized weights.
///
/// # Panics
///
/// Panics when `weights` is empty or sums to a non-positive value.
pub fn weighted_choice<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(!weights.is_empty() && total > 0.0, "need positive weights");
    let mut x = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Log-uniform sample in `[lo, hi]`.
///
/// # Panics
///
/// Panics when the bounds are non-positive or inverted.
pub fn log_uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo > 0.0 && hi >= lo, "log_uniform needs 0 < lo <= hi");
    (rng.gen::<f64>() * (hi.ln() - lo.ln()) + lo.ln()).exp()
}

/// Log-normal sample around `median` with log-space sigma, truncated into
/// `[lo, hi]` by clamping.
pub fn clamped_lognormal<R: Rng + ?Sized>(
    rng: &mut R,
    median: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    let z: f64 = {
        // Box-Muller on the caller's RNG.
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    (median * (sigma * z).exp()).clamp(lo, hi)
}

/// A 1-based Zipf-like sampler over `{1, .., max}` with exponent `s`.
pub fn zipf<R: Rng + ?Sized>(rng: &mut R, max: u64, s: f64) -> u64 {
    // Inverse-CDF on the continuous approximation, then rounded.
    debug_assert!(max >= 1);
    let u: f64 = rng.gen::<f64>().max(1e-12);
    if (s - 1.0).abs() < 1e-9 {
        // Harmonic case: invert u = ln(x)/ln(max+1).
        return ((max as f64 + 1.0).powf(u) as u64).clamp(1, max);
    }
    let a = 1.0 - s;
    let hi = (max as f64 + 1.0).powf(a);
    let x = (1.0 + u * (hi - 1.0)).powf(1.0 / a);
    (x as u64).clamp(1, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hash_unit_is_deterministic_and_in_range() {
        for stream in 0..1000 {
            let a = hash_unit(42, stream);
            let b = hash_unit(42, stream);
            assert_eq!(a, b);
            assert!((0.0..1.0).contains(&a));
        }
        assert_ne!(hash_unit(42, 0), hash_unit(43, 0));
    }

    #[test]
    fn hash_normal_moments() {
        let n = 20_000;
        let mean: f64 = (0..n).map(|i| hash_normal(7, i)).sum::<f64>() / n as f64;
        let var: f64 =
            (0..n).map(|i| hash_normal(7, i).powi(2)).sum::<f64>() / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let weights = [0.1, 0.0, 0.9];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[weighted_choice(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > 8_500 && counts[2] < 9_500, "{counts:?}");
    }

    #[test]
    fn log_uniform_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = log_uniform(&mut rng, 60.0, 86_400.0);
            assert!((60.0..=86_400.0).contains(&v));
        }
    }

    #[test]
    fn clamped_lognormal_clamps() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = clamped_lognormal(&mut rng, 10.0, 2.0, 5.0, 20.0);
            assert!((5.0..=20.0).contains(&v));
        }
    }

    #[test]
    fn zipf_favors_small_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 10_000;
        let ones = (0..n).filter(|_| zipf(&mut rng, 100, 1.6) == 1).count();
        // The continuous inverse-CDF approximation puts ~0.36 on 1 for
        // s = 1.6 (the exact Zipf would give ~0.48); heavy head is enough.
        assert!(ones as f64 / n as f64 > 0.25, "P(1) = {}", ones as f64 / n as f64);
        for _ in 0..1000 {
            let v = zipf(&mut rng, 100, 1.6);
            assert!((1..=100).contains(&v));
        }
    }
}
