//! The trace container: every VM, deployment, and utilization model of one
//! synthetic observation window.

use serde::{Deserialize, Serialize};

use rc_types::telemetry::VmRecord;
use rc_types::time::{Duration, Timestamp, TELEMETRY_INTERVAL};
use rc_types::vm::{DeploymentId, RegionId, SubscriptionId, VmId};

use crate::generator::TraceConfig;
use crate::profile::SubscriptionProfile;
use crate::utilization::UtilParams;

/// One deployment: a group of VMs a subscription creates together in a
/// region (§3.4's day-grouped redefinition is applied by the analysis
/// crate; the generator records the literal groups it created).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeploymentRecord {
    /// Deployment identity.
    pub id: DeploymentId,
    /// Owning subscription.
    pub subscription: SubscriptionId,
    /// Target region.
    pub region: RegionId,
    /// Creation time of the deployment (first VM).
    pub created: Timestamp,
    /// Maximum number of VMs the deployment reaches.
    pub n_vms: u32,
    /// Total cores across those VMs.
    pub n_cores: u32,
}

/// A full synthetic trace.
///
/// `vms[i]` has `VmId(i as u64)`; `util[i]` is its utilization model, and
/// `interactive_intent[i]` records whether the generator *meant* it to be
/// interactive (ground truth for validating the FFT classifier — the
/// production system never sees this).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// The configuration that generated this trace.
    pub config: TraceConfig,
    /// Profiles of every subscription, indexed by `SubscriptionId`.
    pub subscriptions: Vec<SubscriptionProfile>,
    /// Every VM, sorted by creation time; index == `VmId`.
    pub vms: Vec<VmRecord>,
    /// Per-VM utilization models, parallel to `vms`.
    pub util: Vec<UtilParams>,
    /// Generator intent: is VM `i` interactive? (test oracle only).
    pub interactive_intent: Vec<bool>,
    /// Every deployment, indexed by `DeploymentId`.
    pub deployments: Vec<DeploymentRecord>,
}

impl Trace {
    /// Length of the observation window.
    pub fn window(&self) -> Duration {
        Duration::from_days(self.config.days as u64)
    }

    /// End of the observation window.
    pub fn window_end(&self) -> Timestamp {
        Timestamp::ZERO + self.window()
    }

    /// Number of VMs.
    pub fn n_vms(&self) -> usize {
        self.vms.len()
    }

    /// The VM record for an id.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn vm(&self, id: VmId) -> &VmRecord {
        &self.vms[id.0 as usize]
    }

    /// The utilization model for a VM id.
    ///
    /// # Panics
    ///
    /// Panics when the id is out of range.
    pub fn util_params(&self, id: VmId) -> &UtilParams {
        &self.util[id.0 as usize]
    }

    /// The subscription profile backing a VM.
    pub fn subscription_of(&self, id: VmId) -> &SubscriptionProfile {
        &self.subscriptions[self.vm(id).subscription.0 as usize]
    }

    /// First and one-past-last telemetry slots of a VM, clipped to the
    /// observation window.
    pub fn vm_slots(&self, id: VmId) -> (u64, u64) {
        let vm = self.vm(id);
        let step = TELEMETRY_INTERVAL.as_secs();
        let first = vm.created.as_secs().div_ceil(step);
        let end = vm.deleted.min(self.window_end()).as_secs() / step;
        (first, end.max(first))
    }

    /// Observed lifetime summary: `(avg of avg readings, p95 of max
    /// readings)` for a VM, subsampled to at most `max_samples` readings.
    pub fn vm_util_summary(&self, id: VmId, max_samples: usize) -> (f64, f64) {
        let (first, last) = self.vm_slots(id);
        self.util_params(id).summarize(first, last, max_samples)
    }

    /// True when the VM both starts and ends inside the window (the
    /// population Figure 5 draws lifetimes from — 94% of VMs).
    pub fn fully_observed(&self, id: VmId) -> bool {
        let vm = self.vm(id);
        vm.created >= Timestamp::ZERO && vm.deleted <= self.window_end()
    }

    /// Iterator over all VM ids.
    pub fn vm_ids(&self) -> impl Iterator<Item = VmId> + '_ {
        (0..self.vms.len() as u64).map(VmId)
    }

    /// Total core-hours across all VMs, clipped to the window.
    pub fn total_core_hours(&self) -> f64 {
        self.vms
            .iter()
            .map(|vm| {
                let end = vm.deleted.min(self.window_end());
                vm.sku.cores as f64 * end.since(vm.created).as_hours_f64()
            })
            .sum()
    }
}
