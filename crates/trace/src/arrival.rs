//! Deployment arrival processes (§3.7).
//!
//! The paper observes bursty, heavy-tailed arrivals (Weibull fits "nearly
//! perfectly") with diurnal shape and quieter weekends. We model each
//! subscription's deployments as a Weibull renewal process (shape < 1 for
//! burstiness) *thinned* by the diurnal/weekend rate multiplier, so the
//! superposition across subscriptions reproduces Figure 7's weekly shape.

use rand::Rng;
use rand_distr::{Distribution, Weibull};

use rc_types::time::Timestamp;

use crate::calibration as cal;

/// Lanczos approximation of the Gamma function, needed to convert a
/// Weibull scale into a target mean. Accurate to ~1e-10 for `x > 0`.
pub fn gamma_fn(x: f64) -> f64 {
    // Coefficients for g = 7, n = 9.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma_fn(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// A bursty, diurnally-modulated arrival process for one subscription.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    /// Mean arrivals per day, averaged over the diurnal/weekly cycle.
    pub rate_per_day: f64,
    /// Weibull shape of the renewal inter-arrival times (< 1 is bursty).
    pub shape: f64,
}

impl ArrivalProcess {
    /// Creates a process with the calibrated burstiness.
    pub fn new(rate_per_day: f64) -> Self {
        ArrivalProcess { rate_per_day, shape: cal::ARRIVAL_WEIBULL_SHAPE }
    }

    /// Generates arrival timestamps in `[start, end)`.
    ///
    /// The renewal process runs at the *peak* rate and each candidate is
    /// kept with probability `multiplier(t) / max_multiplier`, which thins
    /// it down to the diurnal/weekend shape without losing burstiness.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        start: Timestamp,
        end: Timestamp,
    ) -> Vec<Timestamp> {
        self.iter(rng, start, end).collect()
    }

    /// A lazy, pull-based version of [`ArrivalProcess::generate`].
    ///
    /// Draw-for-draw identical to the eager path (which is implemented on
    /// top of this iterator), so a streaming consumer and a materializing
    /// consumer handed equal RNG states observe equal timestamps.
    pub fn iter<R: Rng>(&self, mut rng: R, start: Timestamp, end: Timestamp) -> ArrivalIter<R> {
        if self.rate_per_day <= 0.0 || start >= end {
            return ArrivalIter {
                rng,
                weibull: None,
                max_mult: 1.0,
                t: f64::INFINITY,
                end_secs: 0.0,
            };
        }
        let max_mult = (1.0 + cal::DIURNAL_ARRIVAL_AMPLITUDE).max(1e-9);
        // Mean inter-arrival (secs) at the peak-thinned rate.
        let mean_gap_secs = 86_400.0 / (self.rate_per_day * max_mult);
        // Weibull mean = scale * Gamma(1 + 1/shape).
        let scale = mean_gap_secs / gamma_fn(1.0 + 1.0 / self.shape);
        let weibull = Weibull::new(scale, self.shape).expect("valid weibull");

        let mut t = start.as_secs() as f64;
        // Random phase so subscriptions do not all start at `start`.
        t += weibull.sample(&mut rng) * rng.gen::<f64>();
        ArrivalIter { rng, weibull: Some(weibull), max_mult, t, end_secs: end.as_secs() as f64 }
    }
}

/// Lazy arrival iterator; see [`ArrivalProcess::iter`].
#[derive(Debug)]
pub struct ArrivalIter<R> {
    rng: R,
    /// `None` for a degenerate (empty) process.
    weibull: Option<Weibull>,
    max_mult: f64,
    /// Next candidate arrival instant, in fractional seconds.
    t: f64,
    end_secs: f64,
}

impl<R: Rng> Iterator for ArrivalIter<R> {
    type Item = Timestamp;

    fn next(&mut self) -> Option<Timestamp> {
        let weibull = self.weibull?;
        while self.t < self.end_secs {
            let ts = Timestamp::from_secs(self.t as u64);
            let mult = cal::arrival_rate_multiplier(ts.hour_of_day(), ts.weekday());
            let keep = self.rng.gen::<f64>() * self.max_mult < mult;
            self.t += weibull.sample(&mut self.rng).max(1.0);
            if keep {
                return Some(ts);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gamma_matches_known_values() {
        assert!((gamma_fn(1.0) - 1.0).abs() < 1e-9);
        assert!((gamma_fn(2.0) - 1.0).abs() < 1e-9);
        assert!((gamma_fn(5.0) - 24.0).abs() < 1e-7);
        assert!((gamma_fn(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
        // Value used by the default shape 0.55.
        let g = gamma_fn(1.0 + 1.0 / 0.55);
        assert!((g - 1.70).abs() < 0.02, "Gamma(2.818) = {g}");
    }

    #[test]
    fn mean_rate_is_close_to_target() {
        let mut rng = StdRng::seed_from_u64(11);
        let proc = ArrivalProcess::new(20.0);
        let days = 60;
        let arrivals = proc.generate(&mut rng, Timestamp::ZERO, Timestamp::from_days(days));
        let rate = arrivals.len() as f64 / days as f64;
        // Thinning by the weekly multiplier (mean < 1) lands below peak.
        assert!((10.0..=26.0).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn arrivals_are_sorted_and_in_range() {
        let mut rng = StdRng::seed_from_u64(12);
        let proc = ArrivalProcess::new(50.0);
        let arrivals = proc.generate(&mut rng, Timestamp::from_days(2), Timestamp::from_days(9));
        assert!(!arrivals.is_empty());
        for w in arrivals.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(arrivals.first().unwrap().as_secs() >= 2 * 86_400);
        assert!(arrivals.last().unwrap().as_secs() < 9 * 86_400);
    }

    #[test]
    fn weekdays_busier_than_weekends() {
        let mut rng = StdRng::seed_from_u64(13);
        let proc = ArrivalProcess::new(200.0);
        let arrivals = proc.generate(&mut rng, Timestamp::ZERO, Timestamp::from_days(28));
        let (mut weekday, mut weekend) = (0usize, 0usize);
        for a in &arrivals {
            if a.is_weekend() {
                weekend += 1;
            } else {
                weekday += 1;
            }
        }
        // 5 weekdays vs 2 weekend days; normalize per day.
        let wd_rate = weekday as f64 / 20.0;
        let we_rate = weekend as f64 / 8.0;
        assert!(we_rate < wd_rate * 0.75, "weekday {wd_rate}/d weekend {we_rate}/d");
    }

    #[test]
    fn interarrivals_are_heavy_tailed() {
        // Shape < 1 means CoV of gaps > 1 (burstier than Poisson).
        let mut rng = StdRng::seed_from_u64(14);
        let proc = ArrivalProcess::new(100.0);
        let arrivals = proc.generate(&mut rng, Timestamp::ZERO, Timestamp::from_days(60));
        let gaps: Vec<f64> =
            arrivals.windows(2).map(|w| (w[1].as_secs() - w[0].as_secs()) as f64).collect();
        assert!(gaps.len() > 500);
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cov = var.sqrt() / mean;
        assert!(cov > 1.1, "CoV = {cov}");
    }

    #[test]
    fn zero_rate_yields_nothing() {
        let mut rng = StdRng::seed_from_u64(15);
        let proc = ArrivalProcess::new(0.0);
        assert!(proc.generate(&mut rng, Timestamp::ZERO, Timestamp::from_days(10)).is_empty());
    }
}
