//! Pull-based streaming trace generation.
//!
//! [`Trace::generate`] materializes every VM before anything can consume
//! one — fine at the paper's 336k-arrival scale (§6.1), hopeless at the
//! Azure scale the roadmap targets. [`VmStream`] produces the *identical*
//! VM sequence lazily: each subscription owns two private RNG streams
//! (arrivals and VM bodies, see `generator::sub_stream_rngs`), so the
//! stream can expand one deployment at a time and merge subscriptions by
//! creation time with a bounded pending buffer instead of a full sort.
//!
//! # Bit-identity
//!
//! Both paths run the same per-subscription RNGs through the same
//! `generate_deployment`, and the merge emits VMs in exactly the
//! materialized sort order `(created, insertion index)` — insertion order
//! is subscription-major, so the tie-break key is `(subscription,
//! deployment, vm-within-deployment)`. Draining a stream therefore yields
//! `Trace::generate`'s arrays element for element, ids included; the
//! equivalence suite pins this with `trace_fingerprint`.
//!
//! # Memory
//!
//! A VM enters the pending heap when its deployment's arrival crosses the
//! merge watermark and leaves when emitted; creation jitter spreads a
//! deployment's VMs over at most a day, so the buffer holds ~a day of
//! arrivals regardless of trace length ([`VmStream::peak_pending`]
//! reports the high-water mark).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rc_types::telemetry::VmRecord;
use rc_types::time::{Duration, Timestamp};
use rc_types::vm::{DeploymentId, VmId};

use crate::arrival::{ArrivalIter, ArrivalProcess};
use crate::dirty::{DirtyPlan, DirtyReport, RecordFate};
use crate::generator::{
    generate_deployment, sample_profiles, sub_stream_rngs, subscription_scales, TraceConfig,
};
use crate::profile::SubscriptionProfile;
use crate::trace::{DeploymentRecord, Trace};
use crate::utilization::UtilParams;

/// One VM pulled from a [`VmStream`], with its deployment's summary
/// record attached (the streaming consumer has no deployment table to
/// index into).
#[derive(Debug, Clone)]
pub struct StreamedVm {
    /// The VM record, with its final dense [`VmId`] assigned.
    pub record: VmRecord,
    /// The VM's utilization model.
    pub util: UtilParams,
    /// Generator intent: interactive workload? (test oracle only).
    pub interactive: bool,
    /// The owning deployment's summary record.
    pub deployment: DeploymentRecord,
}

/// One subscription's lazy generation state.
struct SubStream {
    arrivals: ArrivalIter<StdRng>,
    body_rng: StdRng,
    next_arrival: Option<Timestamp>,
    /// Subscription-local index of the next deployment to expand.
    next_dep: u64,
    /// Global id of this subscription's first deployment (prefix sum of
    /// arrival counts, so streamed ids match the materialized table).
    dep_id_base: u64,
}

/// A VM waiting in the merge buffer. Ordered by the materialized sort key.
struct PendingVm {
    /// `(created secs, subscription, local deployment index, vm index)`.
    key: (u64, u32, u64, u32),
    record: VmRecord,
    util: UtilParams,
    interactive: bool,
    deployment: DeploymentRecord,
}

impl PartialEq for PendingVm {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for PendingVm {}
impl PartialOrd for PendingVm {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingVm {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the smallest key pops first.
        other.key.cmp(&self.key)
    }
}

/// Streaming equivalent of [`Trace::generate`]; see the module docs.
pub struct VmStream {
    config: TraceConfig,
    subscriptions: Vec<SubscriptionProfile>,
    streams: Vec<SubStream>,
    /// Streams with a pending arrival, keyed by `(arrival secs, sub)`.
    open: BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
    pending: BinaryHeap<PendingVm>,
    next_vm_id: u64,
    n_deployments: u64,
    peak_pending: usize,
}

impl VmStream {
    /// Builds the stream: samples profiles from the master RNG, then runs
    /// a cheap counting pass over every subscription's arrival schedule
    /// (a clone of its arrival RNG) to pre-assign the dense global
    /// deployment-id ranges the materialized path hands out in order.
    pub fn new(config: &TraceConfig) -> VmStream {
        let subscriptions = sample_profiles(config);
        let scales = subscription_scales(config, &subscriptions);

        let mut streams = Vec::with_capacity(subscriptions.len());
        let mut open = BinaryHeap::with_capacity(subscriptions.len());
        let mut dep_id_base = 0u64;
        for sub in &subscriptions {
            let scale = scales[sub.id.0 as usize];
            let proc = ArrivalProcess::new(sub.deployment_rate_per_day * scale);
            let (arrival_rng, body_rng) = sub_stream_rngs(config.seed, sub.id);
            let n_arrivals =
                proc.iter(arrival_rng.clone(), sub.active_from, sub.active_until).count() as u64;
            let mut arrivals = proc.iter(arrival_rng, sub.active_from, sub.active_until);
            let next_arrival = arrivals.next();
            if let Some(t) = next_arrival {
                open.push(std::cmp::Reverse((t.as_secs(), sub.id.0)));
            }
            streams.push(SubStream { arrivals, body_rng, next_arrival, next_dep: 0, dep_id_base });
            dep_id_base += n_arrivals;
        }

        VmStream {
            config: config.clone(),
            subscriptions,
            streams,
            open,
            pending: BinaryHeap::new(),
            next_vm_id: 0,
            n_deployments: dep_id_base,
            peak_pending: 0,
        }
    }

    /// The configuration this stream generates.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// The subscription profiles (identical to the materialized trace's).
    pub fn subscriptions(&self) -> &[SubscriptionProfile] {
        &self.subscriptions
    }

    /// Total number of deployments the stream will produce (known upfront
    /// from the counting pass).
    pub fn n_deployments(&self) -> u64 {
        self.n_deployments
    }

    /// End of the observation window.
    pub fn window_end(&self) -> Timestamp {
        Timestamp::ZERO + Duration::from_days(self.config.days as u64)
    }

    /// High-water mark of the pending merge buffer — the streaming path's
    /// peak per-VM memory footprint.
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Expands one deployment of subscription `s` into the pending buffer.
    fn expand(&mut self, s: u32) {
        let stream = &mut self.streams[s as usize];
        let deploy_time = stream.next_arrival.take().expect("open stream has an arrival");
        let dep_idx = stream.next_dep;
        stream.next_dep += 1;
        let dep_id = DeploymentId(stream.dep_id_base + dep_idx);
        let generated = generate_deployment(
            &self.subscriptions[s as usize],
            dep_id,
            deploy_time,
            self.config.n_regions,
            &mut stream.body_rng,
        );
        let deployment = generated.deployment;
        for (k, gvm) in generated.vms.into_iter().enumerate() {
            self.pending.push(PendingVm {
                key: (gvm.record.created.as_secs(), s, dep_idx, k as u32),
                record: gvm.record,
                util: gvm.util,
                interactive: gvm.interactive,
                deployment: deployment.clone(),
            });
        }
        self.peak_pending = self.peak_pending.max(self.pending.len());
        stream.next_arrival = stream.arrivals.next();
        if let Some(t) = stream.next_arrival {
            self.open.push(std::cmp::Reverse((t.as_secs(), s)));
        }
    }

    /// Drains the stream into a materialized [`Trace`] — bit-identical to
    /// [`Trace::generate`] on the same config (pinned by the equivalence
    /// suite). Mostly useful for tests; at scale, consume the iterator.
    pub fn collect_trace(mut self) -> Trace {
        let mut vms = Vec::new();
        let mut util = Vec::new();
        let mut interactive_intent = Vec::new();
        let mut deployments: Vec<Option<DeploymentRecord>> =
            vec![None; self.n_deployments as usize];
        for svm in self.by_ref() {
            let slot = &mut deployments[svm.deployment.id.0 as usize];
            if slot.is_none() {
                *slot = Some(svm.deployment);
            }
            vms.push(svm.record);
            util.push(svm.util);
            interactive_intent.push(svm.interactive);
        }
        let deployments = deployments
            .into_iter()
            .map(|d| d.expect("every deployment has at least one VM"))
            .collect();
        Trace {
            config: self.config,
            subscriptions: self.subscriptions,
            vms,
            util,
            interactive_intent,
            deployments,
        }
    }
}

impl Iterator for VmStream {
    type Item = StreamedVm;

    fn next(&mut self) -> Option<StreamedVm> {
        loop {
            // Watermark rule: as long as some stream's next arrival is at
            // or before the earliest pending VM's creation second, a
            // not-yet-expanded deployment could still owe a VM that sorts
            // first (creation jitter is non-negative, and ties break by
            // subscription-major insertion order) — expand it. Once every
            // open arrival is strictly later, the earliest pending VM is
            // globally next.
            let watermark = self.pending.peek().map(|p| p.key.0);
            match self.open.peek() {
                Some(&std::cmp::Reverse((t, s))) if watermark.is_none_or(|w| t <= w) => {
                    self.open.pop();
                    self.expand(s);
                }
                _ => {
                    let mut p = self.pending.pop()?;
                    p.record.vm_id = VmId(self.next_vm_id);
                    self.next_vm_id += 1;
                    return Some(StreamedVm {
                        record: p.record,
                        util: p.util,
                        interactive: p.interactive,
                        deployment: p.deployment,
                    });
                }
            }
        }
    }
}

/// A [`VmStream`] corrupted on the fly by a [`DirtyPlan`] — the streaming
/// equivalent of [`DirtyPlan::apply`], drawing the same eight uniforms
/// per clean record in the same (emission) order.
///
/// Duplicated records replay *after* the clean stream ends, exactly where
/// `apply` appends them; the buffer holding them is the one part of this
/// adapter whose memory scales with the duplicate count rather than the
/// watermark.
pub struct DirtyVmStream {
    inner: VmStream,
    plan: DirtyPlan,
    rng: StdRng,
    n_deployments: u64,
    report: DirtyReport,
    /// The *clean* deployment table, observed before corruption — a
    /// deployment stays listed even when drops eat all its VMs, exactly
    /// as under [`DirtyPlan::apply`].
    deployments: Vec<Option<DeploymentRecord>>,
    duplicates: Vec<StreamedVm>,
    /// Index of the next duplicate to replay once `inner` is exhausted.
    next_duplicate: usize,
}

impl DirtyVmStream {
    /// Builds the corrupted stream.
    pub fn new(config: &TraceConfig, plan: DirtyPlan) -> DirtyVmStream {
        let inner = VmStream::new(config);
        let n_deployments = inner.n_deployments();
        DirtyVmStream {
            inner,
            rng: StdRng::seed_from_u64(plan.seed),
            plan,
            n_deployments,
            report: DirtyReport::default(),
            deployments: vec![None; n_deployments as usize],
            duplicates: Vec::new(),
            next_duplicate: 0,
        }
    }

    /// Per-category corruption counts so far (exact and final once the
    /// stream is exhausted).
    pub fn report(&self) -> DirtyReport {
        self.report
    }

    /// Drains into a materialized dirty trace plus its report —
    /// bit-identical to `DirtyPlan::apply(&Trace::generate(config))`.
    pub fn collect_trace(mut self) -> (Trace, DirtyReport) {
        let mut vms = Vec::new();
        let mut util = Vec::new();
        let mut interactive_intent = Vec::new();
        for svm in self.by_ref() {
            vms.push(svm.record);
            util.push(svm.util);
            interactive_intent.push(svm.interactive);
        }
        let deployments = self
            .deployments
            .into_iter()
            .map(|d| d.expect("every deployment was observed pre-corruption"))
            .collect();
        let trace = Trace {
            config: self.inner.config,
            subscriptions: self.inner.subscriptions,
            vms,
            util,
            interactive_intent,
            deployments,
        };
        (trace, self.report)
    }
}

impl Iterator for DirtyVmStream {
    type Item = StreamedVm;

    fn next(&mut self) -> Option<StreamedVm> {
        for mut svm in self.inner.by_ref() {
            // Observe the clean deployment before any corruption (orphan
            // corruption re-points `record.deployment`; the table stays
            // clean, as it does under `apply`).
            let slot = &mut self.deployments[svm.deployment.id.0 as usize];
            if slot.is_none() {
                *slot = Some(svm.deployment.clone());
            }
            match self.plan.corrupt_record(
                &mut self.rng,
                &mut svm.record,
                &mut svm.util,
                self.n_deployments,
                &mut self.report,
            ) {
                RecordFate::Dropped => continue,
                RecordFate::Duplicated => {
                    self.duplicates.push(svm.clone());
                    return Some(svm);
                }
                RecordFate::Kept => return Some(svm),
            }
        }
        // Clean stream exhausted: replay duplicates in arrival order.
        let svm = self.duplicates.get(self.next_duplicate)?.clone();
        self.next_duplicate += 1;
        Some(svm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dirty::trace_fingerprint;

    fn test_config() -> TraceConfig {
        TraceConfig { target_vms: 3_000, n_subscriptions: 150, days: 14, ..TraceConfig::small() }
    }

    #[test]
    fn stream_is_bit_identical_to_generate() {
        let config = test_config();
        let materialized = Trace::generate(&config);
        let streamed = VmStream::new(&config).collect_trace();
        assert_eq!(trace_fingerprint(&streamed), trace_fingerprint(&materialized));
        // The fingerprint skips subscriptions/regions/intent; JSON equality
        // closes the gap (a clean trace has no NaNs).
        assert_eq!(
            serde_json::to_vec(&streamed).unwrap(),
            serde_json::to_vec(&materialized).unwrap()
        );
    }

    #[test]
    fn streamed_ids_are_dense_and_sorted() {
        let config = test_config();
        let mut last = Timestamp::ZERO;
        for (i, svm) in VmStream::new(&config).enumerate() {
            assert_eq!(svm.record.vm_id, VmId(i as u64));
            assert!(svm.record.created >= last, "VM {i} out of order");
            last = svm.record.created;
        }
    }

    #[test]
    fn pending_buffer_stays_bounded() {
        // The watermark holds ~a day of arrivals, not the whole trace.
        let config = test_config();
        let mut stream = VmStream::new(&config);
        let n = stream.by_ref().count();
        assert!(n > 1_000, "trace too small to be meaningful: {n}");
        assert!(
            stream.peak_pending() < n / 2,
            "pending peak {} vs {} VMs — watermark is not bounding memory",
            stream.peak_pending(),
            n
        );
    }

    #[test]
    fn dirty_stream_matches_dirty_apply() {
        let config = test_config();
        let plan = DirtyPlan::uniform(42, 0.25);
        let (eager, eager_report) = plan.apply(&Trace::generate(&config));
        let (streamed, stream_report) = DirtyVmStream::new(&config, plan).collect_trace();
        assert_eq!(stream_report, eager_report);
        assert_eq!(trace_fingerprint(&streamed), trace_fingerprint(&eager));
    }

    #[test]
    fn clean_dirty_stream_is_identity() {
        let config = test_config();
        let (streamed, report) = DirtyVmStream::new(&config, DirtyPlan::clean(9)).collect_trace();
        assert_eq!(report, DirtyReport::default());
        assert_eq!(trace_fingerprint(&streamed), trace_fingerprint(&Trace::generate(&config)));
    }
}
