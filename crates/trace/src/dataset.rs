//! Export/import in the Azure Public Dataset layout.
//!
//! Alongside the paper, the authors released sanitized traces at
//! `github.com/Azure/AzurePublicDataset`. Its `vmtable` schema carries,
//! per VM: identifiers (VM, subscription, deployment), creation/deletion
//! times, max/avg/P95-of-max CPU, a VM category, and the core/memory
//! allocation. This module writes synthetic traces in that layout (so
//! tools built against the public dataset can consume them) and reads
//! them back.
//!
//! Columns (CSV, with header):
//! `vmid,subscriptionid,deploymentid,vmcreated,vmdeleted,maxcpu,avgcpu,
//! p95maxcpu,vmcategory,vmcorecount,vmmemory`
//!
//! Times are seconds since the trace start; CPU values are percentages;
//! `vmcategory` is the public dataset's `Delay-insensitive` /
//! `Interactive` / `Unknown` labelling, which we fill from the FFT
//! classifier's inputs-equivalent (the generator's intent is *not* used).

use std::io::{BufRead, Write};

use rc_types::time::Timestamp;
use rc_types::vm::VmId;

use crate::trace::Trace;

/// One row of the `vmtable` export.
#[derive(Debug, Clone, PartialEq)]
pub struct VmTableRow {
    /// VM identifier.
    pub vmid: u64,
    /// Owning subscription.
    pub subscriptionid: u32,
    /// Deployment identifier.
    pub deploymentid: u64,
    /// Creation time, seconds since trace start.
    pub vmcreated: u64,
    /// Deletion time, seconds since trace start.
    pub vmdeleted: u64,
    /// Maximum observed CPU, percent.
    pub maxcpu: f64,
    /// Average observed CPU, percent.
    pub avgcpu: f64,
    /// 95th percentile of the per-interval max CPU, percent.
    pub p95maxcpu: f64,
    /// `Delay-insensitive`, `Interactive`, or `Unknown`.
    pub vmcategory: String,
    /// Core allocation.
    pub vmcorecount: u32,
    /// Memory allocation in GB.
    pub vmmemory: f64,
}

/// The CSV header line.
pub const VMTABLE_HEADER: &str = "vmid,subscriptionid,deploymentid,vmcreated,vmdeleted,maxcpu,avgcpu,p95maxcpu,vmcategory,vmcorecount,vmmemory";

/// Errors raised when parsing a `vmtable` file.
#[derive(Debug)]
pub enum DatasetError {
    /// I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::Io(e) => write!(f, "dataset I/O error: {e}"),
            DatasetError::Malformed { line, reason } => {
                write!(f, "malformed vmtable line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

/// Builds the export rows for a trace.
///
/// `max_util_samples` bounds the telemetry read per VM for the CPU
/// summary columns; the category column uses the same FFT analysis as
/// §3.6 (VMs observed less than 3 days are `Unknown`).
pub fn vm_table(trace: &Trace, max_util_samples: usize) -> Vec<VmTableRow> {
    use rc_ml::fft::{detect_diurnal_periodicity, PeriodicityConfig};
    let cfg = PeriodicityConfig::default();
    let mut rows = Vec::with_capacity(trace.n_vms());
    for id in trace.vm_ids() {
        let vm = trace.vm(id);
        let (avg, p95) = trace.vm_util_summary(id, max_util_samples);
        // Max over the sampled window: approximate with the p95 level's
        // burst ceiling, which the model can exceed by at most 15%.
        let (first, last) = trace.vm_slots(id);
        let max = if last > first {
            let params = trace.util_params(id);
            let stride = ((last - first) as usize / max_util_samples.max(1)).max(1) as u64;
            let mut m: f64 = 0.0;
            let mut slot = first;
            while slot < last {
                m = m.max(params.reading(slot).max);
                slot += stride;
            }
            m
        } else {
            p95
        };
        let category = if vm.lifetime().as_days_f64() < crate::DATASET_CLASSIFY_MIN_DAYS {
            "Unknown"
        } else {
            let series = trace.util_params(id).avg_series(first, last.min(first + 6 * 288));
            let result = detect_diurnal_periodicity(&series, &cfg);
            if !result.enough_data {
                "Unknown"
            } else if result.periodic {
                "Interactive"
            } else {
                "Delay-insensitive"
            }
        };
        rows.push(VmTableRow {
            vmid: id.0,
            subscriptionid: vm.subscription.0,
            deploymentid: vm.deployment.0,
            vmcreated: vm.created.as_secs(),
            vmdeleted: vm.deleted.as_secs(),
            maxcpu: max * 100.0,
            avgcpu: avg * 100.0,
            p95maxcpu: p95 * 100.0,
            vmcategory: category.to_string(),
            vmcorecount: vm.sku.cores,
            vmmemory: vm.sku.memory_gb,
        });
    }
    rows
}

/// Writes rows as CSV (with header) to any writer.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_vm_table<W: Write>(rows: &[VmTableRow], mut out: W) -> std::io::Result<()> {
    writeln!(out, "{VMTABLE_HEADER}")?;
    for r in rows {
        writeln!(
            out,
            "{},{},{},{},{},{:.2},{:.2},{:.2},{},{},{}",
            r.vmid,
            r.subscriptionid,
            r.deploymentid,
            r.vmcreated,
            r.vmdeleted,
            r.maxcpu,
            r.avgcpu,
            r.p95maxcpu,
            r.vmcategory,
            r.vmcorecount,
            r.vmmemory
        )?;
    }
    Ok(())
}

/// Parses a `vmtable` CSV (with or without header) from any reader.
///
/// # Errors
///
/// Returns [`DatasetError::Malformed`] on the first bad line.
pub fn read_vm_table<R: BufRead>(input: R) -> Result<Vec<VmTableRow>, DatasetError> {
    let mut rows = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with("vmid") {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() != 11 {
            return Err(DatasetError::Malformed {
                line: i + 1,
                reason: format!("expected 11 fields, got {}", fields.len()),
            });
        }
        let parse_u64 = |s: &str, what: &str| -> Result<u64, DatasetError> {
            s.parse().map_err(|_| DatasetError::Malformed {
                line: i + 1,
                reason: format!("bad {what}: {s:?}"),
            })
        };
        let parse_f64 = |s: &str, what: &str| -> Result<f64, DatasetError> {
            s.parse().map_err(|_| DatasetError::Malformed {
                line: i + 1,
                reason: format!("bad {what}: {s:?}"),
            })
        };
        rows.push(VmTableRow {
            vmid: parse_u64(fields[0], "vmid")?,
            subscriptionid: parse_u64(fields[1], "subscriptionid")? as u32,
            deploymentid: parse_u64(fields[2], "deploymentid")?,
            vmcreated: parse_u64(fields[3], "vmcreated")?,
            vmdeleted: parse_u64(fields[4], "vmdeleted")?,
            maxcpu: parse_f64(fields[5], "maxcpu")?,
            avgcpu: parse_f64(fields[6], "avgcpu")?,
            p95maxcpu: parse_f64(fields[7], "p95maxcpu")?,
            vmcategory: fields[8].to_string(),
            vmcorecount: parse_u64(fields[9], "vmcorecount")? as u32,
            vmmemory: parse_f64(fields[10], "vmmemory")?,
        });
    }
    Ok(rows)
}

/// Writes the per-VM 5-minute readings of one VM in the public dataset's
/// `vm_cpu_readings` layout: `timestamp,vmid,mincpu,maxcpu,avgcpu`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_cpu_readings<W: Write>(trace: &Trace, id: VmId, mut out: W) -> std::io::Result<u64> {
    let (first, last) = trace.vm_slots(id);
    let params = trace.util_params(id);
    let mut n = 0;
    for slot in first..last {
        let r = params.reading(slot);
        writeln!(
            out,
            "{},{},{:.2},{:.2},{:.2}",
            Timestamp::from_secs(slot * 300).as_secs(),
            id.0,
            r.min * 100.0,
            r.avg * 100.0,
            r.max * 100.0
        )?;
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceConfig;

    fn small_trace() -> Trace {
        Trace::generate(&TraceConfig {
            target_vms: 1_500,
            n_subscriptions: 100,
            days: 15,
            ..TraceConfig::small()
        })
    }

    #[test]
    fn vm_table_covers_all_vms_with_sane_columns() {
        let t = small_trace();
        let rows = vm_table(&t, 60);
        assert_eq!(rows.len(), t.n_vms());
        for r in rows.iter().take(300) {
            assert!(r.vmdeleted > r.vmcreated);
            assert!((0.0..=115.0).contains(&r.maxcpu), "{r:?}");
            assert!(r.avgcpu <= r.p95maxcpu + 1.0, "{r:?}");
            assert!(matches!(
                r.vmcategory.as_str(),
                "Delay-insensitive" | "Interactive" | "Unknown"
            ));
            assert!(r.vmcorecount >= 1);
        }
    }

    #[test]
    fn csv_round_trip_preserves_rows() {
        let t = small_trace();
        let rows = vm_table(&t, 60);
        let mut buf = Vec::new();
        write_vm_table(&rows, &mut buf).unwrap();
        let parsed = read_vm_table(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(parsed.len(), rows.len());
        for (a, b) in rows.iter().zip(&parsed) {
            assert_eq!(a.vmid, b.vmid);
            assert_eq!(a.subscriptionid, b.subscriptionid);
            assert_eq!(a.vmcreated, b.vmcreated);
            assert_eq!(a.vmcategory, b.vmcategory);
            assert!((a.avgcpu - b.avgcpu).abs() < 0.01);
        }
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        let bad = "1,2,3,4\n";
        let err = read_vm_table(std::io::BufReader::new(bad.as_bytes())).unwrap_err();
        assert!(matches!(err, DatasetError::Malformed { line: 1, .. }), "{err}");
        let bad_num = "x,2,3,0,10,50,10,60,Unknown,2,3.5\n";
        let err = read_vm_table(std::io::BufReader::new(bad_num.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("vmid"));
    }

    #[test]
    fn header_and_blank_lines_are_skipped() {
        let input = format!("{VMTABLE_HEADER}\n\n7,1,2,0,600,50.00,10.00,45.00,Unknown,2,3.5\n");
        let rows = read_vm_table(std::io::BufReader::new(input.as_bytes())).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].vmid, 7);
    }

    #[test]
    fn cpu_readings_export_matches_slot_count() {
        let t = small_trace();
        // Find a VM with a decent number of readings.
        let id = t
            .vm_ids()
            .find(|&id| {
                let (a, b) = t.vm_slots(id);
                b - a > 10
            })
            .expect("some VM has readings");
        let mut buf = Vec::new();
        let n = write_cpu_readings(&t, id, &mut buf).unwrap();
        let (a, b) = t.vm_slots(id);
        assert_eq!(n, b - a);
        assert_eq!(buf.iter().filter(|&&c| c == b'\n').count() as u64, n);
    }
}
