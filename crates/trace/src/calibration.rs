//! Calibration targets distilled from the paper's characterization (§3).
//!
//! Every constant here traces back to a specific figure, table, or sentence
//! of the paper; the comments cite them. The generator consumes these
//! targets, and `tests/` in this crate re-measure generated traces against
//! them, so calibration drift fails the build.
//!
//! One quantity the paper withholds ("due to confidentiality reasons, we
//! omit certain exact numbers") is the first-/third-party split. Two
//! reported facts pin it down:
//!
//! - overall VM type split is 52% IaaS / 48% PaaS, while first-party
//!   workloads are 53% IaaS and third-party 47% IaaS (§3.1). Writing
//!   `w*0.53 + (1-w)*0.47 = 0.52` gives `w ≈ 0.83` of VMs first-party.
//! - PaaS holds 61% of core-hours overall, third-party core-hours are 85%
//!   IaaS and first-party 23% IaaS. Writing `f*0.23 + (1-f)*0.85 = 0.39`
//!   gives `f ≈ 0.74` of core-hours first-party.
//!
//! We therefore target 83% of VMs (and ~74% of core-hours) first-party.

use rc_types::vm::Party;

/// Fraction of VMs owned by first-party subscriptions (derived above).
pub const FIRST_PARTY_VM_FRACTION: f64 = 0.83;

/// Fraction of first-party VMs that are IaaS (§3.1).
pub const FIRST_PARTY_IAAS_FRACTION: f64 = 0.53;

/// Fraction of third-party VMs that are IaaS (§3.1).
pub const THIRD_PARTY_IAAS_FRACTION: f64 = 0.47;

/// Fraction of subscriptions whose VMs are all one type (§3.1: 96%).
pub const SINGLE_TYPE_SUBSCRIPTION_FRACTION: f64 = 0.96;

/// Fraction of first-party VMs that exist only to test VM creation —
/// created and killed within minutes at near-zero utilization (§3.2).
pub const FIRST_PARTY_CREATION_TEST_FRACTION: f64 = 0.15;

/// Target share of VMs whose *average* CPU utilization falls in each
/// Table 3 bucket (0–25 / 25–50 / 50–75 / 75–100%), per party.
///
/// The blend `0.83*first + 0.17*third` reproduces Table 4's true shares
/// (74 / 19 / 6 / 2) and Figure 1's ordering (first-party lower).
pub fn avg_util_bucket_shares(party: Party) -> [f64; 4] {
    match party {
        Party::First => [0.765, 0.180, 0.045, 0.010],
        Party::Third => [0.620, 0.240, 0.085, 0.055],
    }
}

/// Conditional distribution of the P95-of-max utilization bucket given the
/// average-utilization bucket, per party.
///
/// Rows are avg buckets, columns P95 buckets; rows only place mass on
/// columns `>=` the row (P95 of max can never fall below the average).
/// The blend of the implied marginals reproduces Table 4's P95 true shares
/// (25 / 15 / 14 / 46) and Figure 1's "more than one third low even at the
/// 95th percentile, large percentage above 80%" shape.
pub fn p95_given_avg(party: Party) -> [[f64; 4]; 4] {
    match party {
        // First-party: lower tails (overprovisioned services + test VMs).
        Party::First => [
            [0.366, 0.176, 0.127, 0.331],
            [0.0, 0.140, 0.220, 0.640],
            [0.0, 0.0, 0.180, 0.820],
            [0.0, 0.0, 0.0, 1.0],
        ],
        // Third-party: heavy mass at very high P95 (§3.2).
        Party::Third => [
            [0.161, 0.127, 0.098, 0.614],
            [0.0, 0.090, 0.180, 0.730],
            [0.0, 0.0, 0.130, 0.870],
            [0.0, 0.0, 0.0, 1.0],
        ],
    }
}

/// SKU selection weights per party, indexed like
/// [`rc_types::vm::SKU_CATALOG`].
///
/// Calibrated against Figures 2–3: ~80% of VMs need 1–2 cores, ~70% need
/// <4 GB, and third-party users pick more 0.75-GB and 3.5-GB sizes but
/// fewer 1.75-GB ones than first-party users.
pub fn sku_weights(party: Party) -> [f64; 15] {
    match party {
        //            A0     A1     A2     A3     A4     A5     A6     A7     D1     D2     D3     D4     D13    D14    G5
        Party::First => [
            0.105, 0.360, 0.205, 0.085, 0.035, 0.030, 0.014, 0.006, 0.045, 0.055, 0.028, 0.012,
            0.004, 0.014, 0.002,
        ],
        Party::Third => [
            0.155, 0.245, 0.225, 0.070, 0.033, 0.028, 0.012, 0.006, 0.105, 0.055, 0.026, 0.012,
            0.005, 0.021, 0.002,
        ],
    }
}

/// Target share of VM *lifetimes* in each Table 3 bucket
/// (≤15 min / 15–60 min / 1–24 h / >24 h), per party.
///
/// The blend reproduces Table 4's true shares (29 / 32 / 32 / 7) and
/// Figure 5's shape: a knee around one day with >90% of lifetimes below
/// it, and first-party VMs living shorter (creation-test workloads).
pub fn lifetime_bucket_shares(party: Party) -> [f64; 4] {
    match party {
        Party::First => [0.320, 0.325, 0.295, 0.060],
        Party::Third => [0.145, 0.295, 0.445, 0.115],
    }
}

/// Mean sizes (in log-space) of the per-bucket lifetime distributions.
///
/// Within a bucket, lifetimes are log-normal-ish; the >24 h bucket has a
/// long tail so the few long-running VMs carry >95% of core-hours (§3.5).
pub struct LifetimeBucketShape {
    /// Lower bound of the bucket in seconds.
    pub lo_secs: f64,
    /// Upper bound of the bucket in seconds.
    pub hi_secs: f64,
}

/// Boundaries of the four lifetime buckets in seconds.
pub const LIFETIME_BUCKET_BOUNDS: [LifetimeBucketShape; 4] = [
    LifetimeBucketShape { lo_secs: 120.0, hi_secs: 900.0 },
    LifetimeBucketShape { lo_secs: 900.0, hi_secs: 3600.0 },
    LifetimeBucketShape { lo_secs: 3600.0, hi_secs: 86_400.0 },
    LifetimeBucketShape { lo_secs: 86_400.0, hi_secs: 90.0 * 86_400.0 },
];

/// Probability that a deployment has exactly one VM (§3.4: roughly 40%;
/// Table 4 measures 49% over the test month — we target the middle).
pub fn single_vm_deployment_fraction(party: Party) -> f64 {
    match party {
        Party::First => 0.40,
        Party::Third => 0.50,
    }
}

/// Target deployment-size bucket shares (1 / 2–10 / 11–100 / >100 VMs).
///
/// Blend reproduces Table 4 (49 / 40 / 10 / 1) and Figure 4 (80% of
/// deployments hold at most 5 VMs; third-party groups smaller).
pub fn deployment_size_bucket_shares(party: Party) -> [f64; 4] {
    match party {
        Party::First => [0.455, 0.405, 0.125, 0.015],
        Party::Third => [0.560, 0.360, 0.075, 0.005],
    }
}

/// Fraction of *long-running* VMs (≥3 days) that are interactive.
///
/// Table 4 reports 1% of classified VMs interactive, yet interactive VMs
/// consume ~28% of core-hours (Figure 6) — so the interactive few must be
/// long-lived and concentrated in a minority of subscriptions (§3.6: 76%
/// of subscriptions with long-running VMs are dominated by one class).
pub const INTERACTIVE_LONG_RUNNER_FRACTION: f64 = 0.22;

/// Fraction of all classified VMs that are interactive (Table 4 bucket 2).
pub const INTERACTIVE_VM_FRACTION: f64 = 0.01;

/// Weibull shape parameter for deployment inter-arrival times within a
/// subscription. Shapes below 1 give the heavy-tailed, bursty arrivals of
/// §3.7 ("we verified that the arrival times are heavy-tailed by fitting
/// Weibull distributions").
pub const ARRIVAL_WEIBULL_SHAPE: f64 = 0.55;

/// Multiplier applied to arrival rates on weekends (Figure 7 shows lower
/// weekend load).
pub const WEEKEND_ARRIVAL_FACTOR: f64 = 0.55;

/// Relative amplitude of the diurnal arrival-rate modulation.
pub const DIURNAL_ARRIVAL_AMPLITUDE: f64 = 0.55;

/// Hour of peak arrival rate (mid business day).
pub const DIURNAL_PEAK_HOUR: f64 = 14.0;

/// Number of distinct "top first-party service" names; other subscriptions
/// report "unknown" (§6.1 lists service name among predictive attributes).
pub const N_TOP_SERVICES: usize = 12;

/// Diurnal arrival-rate multiplier at hour `h` of a day of weekday `wd`
/// (0 = Monday). Averages to ~1.0 over a week.
pub fn arrival_rate_multiplier(hour: f64, weekday: u32) -> f64 {
    let phase = 2.0 * std::f64::consts::PI * (hour - DIURNAL_PEAK_HOUR) / 24.0;
    let diurnal = 1.0 + DIURNAL_ARRIVAL_AMPLITUDE * phase.cos();
    let weekend = if weekday >= 5 { WEEKEND_ARRIVAL_FACTOR } else { 1.0 };
    diurnal * weekend
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blend(fp: [f64; 4], tp: [f64; 4]) -> [f64; 4] {
        let w = FIRST_PARTY_VM_FRACTION;
        [
            w * fp[0] + (1.0 - w) * tp[0],
            w * fp[1] + (1.0 - w) * tp[1],
            w * fp[2] + (1.0 - w) * tp[2],
            w * fp[3] + (1.0 - w) * tp[3],
        ]
    }

    #[test]
    fn party_split_reproduces_overall_iaas_share() {
        let overall = FIRST_PARTY_VM_FRACTION * FIRST_PARTY_IAAS_FRACTION
            + (1.0 - FIRST_PARTY_VM_FRACTION) * THIRD_PARTY_IAAS_FRACTION;
        assert!((overall - 0.52).abs() < 0.005, "overall IaaS = {overall}");
    }

    #[test]
    fn avg_util_shares_blend_to_table4() {
        let b = blend(avg_util_bucket_shares(Party::First), avg_util_bucket_shares(Party::Third));
        let target = [0.74, 0.19, 0.06, 0.02];
        for (got, want) in b.iter().zip(target) {
            assert!((got - want).abs() < 0.015, "blend {b:?} vs Table 4 {target:?}");
        }
    }

    #[test]
    fn p95_conditionals_are_stochastic_and_ordered() {
        for party in Party::ALL {
            let c = p95_given_avg(party);
            for (i, row) in c.iter().enumerate() {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "row {i} sums to {s}");
                for (j, &p) in row.iter().enumerate() {
                    if j < i {
                        assert_eq!(p, 0.0, "P95 bucket below avg bucket");
                    }
                }
            }
        }
    }

    #[test]
    fn p95_marginal_blends_to_table4() {
        let mut overall = [0.0f64; 4];
        for party in Party::ALL {
            let w = match party {
                Party::First => FIRST_PARTY_VM_FRACTION,
                Party::Third => 1.0 - FIRST_PARTY_VM_FRACTION,
            };
            let avg = avg_util_bucket_shares(party);
            let c = p95_given_avg(party);
            for i in 0..4 {
                for j in 0..4 {
                    overall[j] += w * avg[i] * c[i][j];
                }
            }
        }
        let target = [0.25, 0.15, 0.14, 0.46];
        for (got, want) in overall.iter().zip(target) {
            assert!((got - want).abs() < 0.02, "P95 marginal {overall:?} vs {target:?}");
        }
    }

    #[test]
    fn sku_weights_hit_size_figures() {
        use rc_types::vm::SKU_CATALOG;
        for party in Party::ALL {
            let w = sku_weights(party);
            let total: f64 = w.iter().sum();
            assert!((total - 1.0).abs() < 0.02, "{party:?} weights sum {total}");
            let small_cores: f64 = w
                .iter()
                .zip(SKU_CATALOG.iter())
                .filter(|(_, s)| s.cores <= 2)
                .map(|(w, _)| w)
                .sum();
            assert!(
                (0.72..=0.88).contains(&(small_cores / total)),
                "{party:?}: 1-2 core share = {small_cores}"
            );
            let small_mem: f64 = w
                .iter()
                .zip(SKU_CATALOG.iter())
                .filter(|(_, s)| s.memory_gb < 4.0)
                .map(|(w, _)| w)
                .sum();
            assert!(
                (0.62..=0.78).contains(&(small_mem / total)),
                "{party:?}: <4GB share = {small_mem}"
            );
        }
        // §3.3's party differences: third-party picks more 0.75 GB and
        // 3.5 GB sizes but fewer 1.75 GB ones than first-party.
        let share = |party: Party, gb: f64| -> f64 {
            sku_weights(party)
                .iter()
                .zip(SKU_CATALOG.iter())
                .filter(|(_, s)| (s.memory_gb - gb).abs() < 1e-9)
                .map(|(w, _)| w)
                .sum()
        };
        assert!(share(Party::Third, 0.75) > share(Party::First, 0.75));
        assert!(share(Party::Third, 3.5) > share(Party::First, 3.5));
        assert!(share(Party::Third, 1.75) < share(Party::First, 1.75));
    }

    #[test]
    fn lifetime_shares_blend_to_table4() {
        let b = blend(lifetime_bucket_shares(Party::First), lifetime_bucket_shares(Party::Third));
        let target = [0.29, 0.32, 0.32, 0.07];
        for (got, want) in b.iter().zip(target) {
            assert!((got - want).abs() < 0.02, "blend {b:?} vs Table 4 {target:?}");
        }
        // >90% of lifetimes end below one day (Figure 5's knee).
        assert!(b[0] + b[1] + b[2] > 0.90);
    }

    #[test]
    fn deployment_shares_blend_to_table4() {
        let b = blend(
            deployment_size_bucket_shares(Party::First),
            deployment_size_bucket_shares(Party::Third),
        );
        let target = [0.49, 0.40, 0.10, 0.01];
        for (got, want) in b.iter().zip(target) {
            assert!((got - want).abs() < 0.035, "blend {b:?} vs Table 4 {target:?}");
        }
    }

    #[test]
    fn arrival_multiplier_peaks_on_weekday_afternoon() {
        let peak = arrival_rate_multiplier(DIURNAL_PEAK_HOUR, 1);
        let trough = arrival_rate_multiplier(DIURNAL_PEAK_HOUR + 12.0, 1);
        let weekend = arrival_rate_multiplier(DIURNAL_PEAK_HOUR, 6);
        assert!(peak > trough * 2.0);
        assert!(weekend < peak * 0.7);
    }
}
