//! Lazy per-VM CPU-utilization models.
//!
//! Storing three months of 5-minute readings for hundreds of thousands of
//! VMs would dwarf memory, so each VM instead carries a compact
//! [`UtilParams`] and readings are *derived on demand*: the reading for any
//! telemetry slot is a pure function of `(params, slot)` via hash-based
//! randomness, so repeated queries agree and the whole series never has to
//! exist at once.
//!
//! The model produces the behaviours §3 describes:
//!
//! - a base load (the average-utilization target),
//! - a per-interval *maximum* riding just below the VM's P95 level, with
//!   rare subscription-correlated bursts above it (so "P95 of max" lands
//!   where the generator intended and above-P95 excursions can align
//!   across co-located VMs),
//! - an optional diurnal swing for interactive workloads (detected later
//!   by the FFT classifier), and
//! - near-zero activity for first-party creation-test VMs.

use serde::{Deserialize, Serialize};

use rc_types::telemetry::UtilReading;
use rc_types::time::{Timestamp, TELEMETRY_INTERVAL};

use crate::sampler::{hash_normal, hash_unit};

/// Fraction of 15-minute windows in which a subscription bursts *above*
/// its P95 level.
///
/// The per-interval maximum is modelled as the VM's P95 level scaled by a
/// factor that usually lies just below 1 and, during bursts, just above it
/// — so the 95th percentile of the max series lands at `p95_level` by
/// construction (`0.05 × 0.9 ≈ 4.5%` of slots exceed it). Bursts are
/// *correlated within a subscription* (VMs of one subscription run the
/// same workload, §3.2), which is what makes simultaneous above-P95
/// maxima — and hence the rare >100% server readings §6.2 counts — align
/// in time: "resource exhaustion might occur when higher percentile
/// utilizations for multiple non-production VMs happen to align in time,
/// even when predictions are perfectly accurate".
pub const BURST_WINDOW_PROBABILITY: f64 = 0.05;

/// Probability a VM joins its subscription's burst in a given slot.
pub const BURST_JOIN_PROBABILITY: f64 = 0.9;

/// Telemetry slots per burst window (3 slots = 15 minutes).
pub const BURST_WINDOW_SLOTS: u64 = 3;

/// Relative spread of the per-slot maximum below the P95 level outside
/// bursts (`max ∈ [1 - spread, 1] × p95_level`).
pub const MAX_BELOW_P95_SPREAD: f64 = 0.25;

/// Relative overshoot of the per-slot maximum above the P95 level during
/// bursts (`max ∈ [1, 1 + overshoot] × p95_level`, clamped to 100%).
pub const MAX_BURST_OVERSHOOT: f64 = 0.15;

/// Compact description of one VM's utilization behaviour.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UtilParams {
    /// Per-VM random stream seed.
    pub seed: u64,
    /// Shared burst-stream seed — equal for all VMs of a subscription, so
    /// their maxima align in time.
    pub burst_seed: u64,
    /// Target mean of the per-interval average utilization, in `[0, 1]`.
    pub base: f64,
    /// Level the per-interval maximum spikes to (the P95-of-max target).
    pub p95_level: f64,
    /// Relative diurnal amplitude of the average (0 = flat, interactive
    /// workloads use 0.5–0.9).
    pub diurnal_amplitude: f64,
    /// Hour of day at which the diurnal swing peaks.
    pub peak_hour: f64,
    /// Absolute noise amplitude added to the average.
    pub noise: f64,
}

impl UtilParams {
    /// A model for a creation-test VM: near-zero everything.
    pub fn creation_test(seed: u64) -> Self {
        UtilParams {
            seed,
            burst_seed: seed,
            base: 0.01,
            p95_level: 0.03,
            diurnal_amplitude: 0.0,
            peak_hour: 0.0,
            noise: 0.005,
        }
    }

    /// Clamps parameters into their valid ranges, preserving
    /// `p95_level >= base`.
    pub fn sanitized(mut self) -> Self {
        self.base = self.base.clamp(0.0, 1.0);
        self.p95_level = self.p95_level.clamp(self.base, 1.0);
        self.diurnal_amplitude = self.diurnal_amplitude.clamp(0.0, 0.95);
        self.noise = self.noise.clamp(0.0, 0.2);
        self
    }

    /// The telemetry reading for a global 5-minute slot index.
    ///
    /// Pure: the same `(params, slot)` always yields the same reading.
    pub fn reading(&self, slot: u64) -> UtilReading {
        let ts = Timestamp::from_secs(slot * TELEMETRY_INTERVAL.as_secs());
        let hour = ts.hour_of_day();

        // Diurnal swing multiplies the base; cos integrates to zero over a
        // day so the daily mean stays near `base`.
        let phase = 2.0 * std::f64::consts::PI * (hour - self.peak_hour) / 24.0;
        let diurnal = 1.0 + self.diurnal_amplitude * phase.cos();

        let noise = self.noise * hash_normal(self.seed, slot.wrapping_mul(3) + 1);
        let avg = (self.base * diurnal + noise).clamp(0.0, 1.0);

        // Interactive VMs burst slightly more while busy (daytime); flat
        // VMs burst uniformly. The burst stream is shared across the
        // subscription so sibling VMs exceed their P95 together; the
        // per-VM roll decides whether this VM joins the burst.
        let burst_bias = if self.diurnal_amplitude > 0.0 { (diurnal - 1.0) * 0.08 } else { 0.0 };
        let window = slot / BURST_WINDOW_SLOTS;
        let bursting = hash_unit(self.burst_seed, window) < BURST_WINDOW_PROBABILITY + burst_bias;
        let joins = hash_unit(self.seed, slot.wrapping_mul(3) + 2) < BURST_JOIN_PROBABILITY;
        let shape = hash_unit(self.seed, slot.wrapping_mul(3) + 3);
        let factor = if bursting && joins {
            1.0 + MAX_BURST_OVERSHOOT * shape
        } else {
            1.0 - MAX_BELOW_P95_SPREAD * (1.0 - shape)
        };
        let max = (self.p95_level * factor).clamp(avg, 1.0);

        let min = avg * (0.35 + 0.4 * hash_unit(self.seed, slot.wrapping_mul(3) + 4));
        UtilReading::new(ts, min, avg, max)
    }

    /// Summarizes the series over `[first_slot, last_slot)` with at most
    /// `max_samples` evenly strided slots: returns
    /// `(mean of avg, 95th percentile of max)`.
    ///
    /// Returns `(base, p95_level)` when the range is empty — the model's
    /// targets are the best available estimate for a VM too short to have
    /// produced a reading.
    pub fn summarize(&self, first_slot: u64, last_slot: u64, max_samples: usize) -> (f64, f64) {
        if last_slot <= first_slot || max_samples == 0 {
            return (self.base, self.p95_level);
        }
        let n_slots = last_slot - first_slot;
        let stride = (n_slots as usize).div_ceil(max_samples).max(1) as u64;
        let mut maxes: Vec<f64> = Vec::with_capacity((n_slots / stride + 1) as usize);
        let mut sum_avg = 0.0;
        let mut n = 0usize;
        let mut slot = first_slot;
        while slot < last_slot {
            let r = self.reading(slot);
            sum_avg += r.avg;
            maxes.push(r.max);
            n += 1;
            slot += stride;
        }
        maxes.sort_by(|a, b| a.partial_cmp(b).expect("finite utils"));
        let p95_idx = ((maxes.len() as f64) * 0.95).floor() as usize;
        let p95 = maxes[p95_idx.min(maxes.len() - 1)];
        (sum_avg / n as f64, p95)
    }

    /// The average-utilization time series over a slot range, one value per
    /// slot — the input to the FFT workload classifier.
    pub fn avg_series(&self, first_slot: u64, last_slot: u64) -> Vec<f64> {
        (first_slot..last_slot).map(|s| self.reading(s).avg).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(base: f64, p95: f64) -> UtilParams {
        UtilParams {
            seed: 77,
            burst_seed: 123,
            base,
            p95_level: p95,
            diurnal_amplitude: 0.0,
            peak_hour: 0.0,
            noise: 0.02,
        }
        .sanitized()
    }

    #[test]
    fn readings_are_deterministic_and_valid() {
        let p = flat(0.3, 0.8);
        for slot in 0..500 {
            let a = p.reading(slot);
            let b = p.reading(slot);
            assert_eq!(a, b);
            assert!(a.is_valid(), "invalid reading at slot {slot}: {a:?}");
        }
    }

    #[test]
    fn mean_avg_tracks_base() {
        for base in [0.05, 0.3, 0.6] {
            let p = flat(base, (base + 0.3).min(1.0));
            let (avg, _) = p.summarize(0, 288 * 7, usize::MAX);
            assert!((avg - base).abs() < 0.05, "base {base} -> mean {avg}");
        }
    }

    #[test]
    fn p95_of_max_tracks_target() {
        for p95 in [0.4, 0.7, 0.95] {
            let p = flat(0.1, p95);
            let (_, got) = p.summarize(0, 288 * 7, usize::MAX);
            assert!((got - p95).abs() < 0.08, "target {p95} -> p95 {got}");
        }
    }

    #[test]
    fn diurnal_model_swings_daily() {
        let p = UtilParams {
            seed: 9,
            burst_seed: 44,
            base: 0.4,
            p95_level: 0.9,
            diurnal_amplitude: 0.7,
            peak_hour: 14.0,
            noise: 0.02,
        };
        // Mean near the peak hour should exceed the mean near the trough.
        let day_mean: f64 = (0..12).map(|i| p.reading(14 * 12 + i).avg).sum::<f64>() / 12.0;
        let night_mean: f64 = (0..12).map(|i| p.reading(2 * 12 + i).avg).sum::<f64>() / 12.0;
        assert!(day_mean > night_mean + 0.3, "day {day_mean} night {night_mean}");
    }

    #[test]
    fn creation_test_vms_are_idle() {
        let p = UtilParams::creation_test(5);
        let (avg, p95) = p.summarize(0, 3, usize::MAX);
        assert!(avg < 0.05);
        assert!(p95 < 0.1);
    }

    #[test]
    fn sanitize_restores_ordering() {
        let p = UtilParams {
            seed: 0,
            burst_seed: 0,
            base: 0.9,
            p95_level: 0.2,
            diurnal_amplitude: 2.0,
            peak_hour: 0.0,
            noise: 1.0,
        }
        .sanitized();
        assert!(p.p95_level >= p.base);
        assert!(p.diurnal_amplitude <= 0.95);
        assert!(p.noise <= 0.2);
    }

    #[test]
    fn summarize_with_stride_approximates_full() {
        let p = flat(0.3, 0.8);
        let (full_avg, full_p95) = p.summarize(0, 288 * 10, usize::MAX);
        let (s_avg, s_p95) = p.summarize(0, 288 * 10, 500);
        assert!((full_avg - s_avg).abs() < 0.03);
        assert!((full_p95 - s_p95).abs() < 0.05);
    }

    #[test]
    fn empty_range_returns_targets() {
        let p = flat(0.3, 0.8);
        assert_eq!(p.summarize(10, 10, 100), (0.3, 0.8));
    }

    #[test]
    fn avg_series_matches_readings() {
        let p = flat(0.2, 0.5);
        let series = p.avg_series(100, 130);
        assert_eq!(series.len(), 30);
        for (i, &v) in series.iter().enumerate() {
            assert_eq!(v, p.reading(100 + i as u64).avg);
        }
    }
}
