//! The pipeline's cleanup stage: dirty-telemetry quarantine.
//!
//! §4.2's pipeline runs "extraction, cleanup, aggregation" before any
//! featurization; production telemetry arrives with dropped and duplicated
//! readings, impossible utilization values, clock-skewed lifetimes,
//! truncated records, and dangling references. This module detects each
//! of those categories, quarantines the offending VM records (the
//! downstream stages never see them), and accounts for every record
//! exactly: `extracted == cleaned + quarantined`, per category, with a
//! first-matching-category-wins rule so each record lands in exactly one
//! bucket.
//!
//! Detection is by *invariant*, not by provenance: the generator only
//! emits sanitized utilization parameters (finite, in `[0, 1]`),
//! lifetimes with `created <= deleted`, non-zero SKUs, and in-bounds
//! deployment indices — so on a clean trace every check passes and
//! cleanup is the identity (it does not even copy the trace).

use std::borrow::Cow;
use std::collections::HashSet;

use rc_trace::Trace;

/// Exact per-category accounting of what cleanup quarantined.
///
/// Categories are checked in field-declaration order and each quarantined
/// record is counted once, under the first category that matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuarantineReport {
    /// VM records extracted from the raw trace.
    pub extracted: u64,
    /// Records that passed every check and feed the rest of the pipeline.
    pub cleaned: u64,
    /// Second and later sightings of an already-seen VM id (duplicated
    /// telemetry deliveries; the first sighting is kept).
    pub duplicates: u64,
    /// Non-finite or out-of-`[0, 1]` utilization parameters — the values
    /// that would otherwise poison `UtilParams::reading`'s clamp and the
    /// summary sort with NaN.
    pub invalid_util: u64,
    /// Records deleted before they were created (collector clock skew;
    /// `Timestamp::since` would silently saturate their lifetime to 0).
    pub clock_skew: u64,
    /// Truncated records: a SKU with zero cores carries no capacity
    /// signal and breaks per-core normalization.
    pub truncated: u64,
    /// Records referencing a deployment id past the deployment table
    /// (dangling reference; indexing it would panic the labelling stage).
    pub orphaned: u64,
}

impl QuarantineReport {
    /// Total quarantined records, summed over every category.
    pub fn quarantined(&self) -> u64 {
        self.duplicates + self.invalid_util + self.clock_skew + self.truncated + self.orphaned
    }

    /// The accounting invariant every cleanup run must satisfy.
    pub fn balanced(&self) -> bool {
        self.extracted == self.cleaned + self.quarantined()
    }
}

impl std::fmt::Display for QuarantineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "extracted {} = cleaned {} + quarantined {} \
             (dup {}, util {}, skew {}, trunc {}, orphan {})",
            self.extracted,
            self.cleaned,
            self.quarantined(),
            self.duplicates,
            self.invalid_util,
            self.clock_skew,
            self.truncated,
            self.orphaned,
        )
    }
}

fn in_unit(x: f64) -> bool {
    x.is_finite() && (0.0..=1.0).contains(&x)
}

/// Scrubs a raw trace: quarantines every VM record that violates a
/// telemetry invariant and returns the cleaned trace plus the exact
/// accounting. A fully clean trace is returned by reference — cleanup is
/// observably (and bit-identically) the identity on it.
///
/// The deployment table is passed through uncompacted: surviving records
/// index into it by position, so dropping rows would dangle every
/// reference behind the dropped row.
pub fn cleanup(trace: &Trace) -> (Cow<'_, Trace>, QuarantineReport) {
    let n = trace.vms.len();
    let mut report = QuarantineReport { extracted: n as u64, ..QuarantineReport::default() };
    let n_deployments = trace.deployments.len() as u64;

    let mut seen = HashSet::with_capacity(n);
    let mut keep = vec![true; n];
    for (i, vm) in trace.vms.iter().enumerate() {
        let util = &trace.util[i];
        if !seen.insert(vm.vm_id) {
            report.duplicates += 1;
        } else if !in_unit(util.base) || !in_unit(util.p95_level) {
            report.invalid_util += 1;
        } else if vm.deleted.as_secs() < vm.created.as_secs() {
            report.clock_skew += 1;
        } else if vm.sku.cores == 0 {
            report.truncated += 1;
        } else if vm.deployment.0 >= n_deployments {
            report.orphaned += 1;
        } else {
            report.cleaned += 1;
            continue;
        }
        keep[i] = false;
    }
    debug_assert!(report.balanced(), "quarantine accounting must balance: {report}");

    let registry = rc_obs::global();
    registry.counter(rc_obs::PIPELINE_EXTRACTED_RECORDS).add(report.extracted);
    registry.counter(rc_obs::PIPELINE_CLEANED_RECORDS).add(report.cleaned);
    registry.counter(rc_obs::PIPELINE_QUARANTINED_RECORDS).add(report.quarantined());
    registry.counter(rc_obs::PIPELINE_QUARANTINED_DUPLICATES).add(report.duplicates);
    registry.counter(rc_obs::PIPELINE_QUARANTINED_INVALID_UTIL).add(report.invalid_util);
    registry.counter(rc_obs::PIPELINE_QUARANTINED_CLOCK_SKEW).add(report.clock_skew);
    registry.counter(rc_obs::PIPELINE_QUARANTINED_TRUNCATED).add(report.truncated);
    registry.counter(rc_obs::PIPELINE_QUARANTINED_ORPHANED).add(report.orphaned);

    if report.quarantined() == 0 {
        return (Cow::Borrowed(trace), report);
    }

    let mut cleaned = trace.clone();
    let mut keep_vms = keep.iter().copied();
    cleaned.vms.retain(|_| keep_vms.next().unwrap());
    let mut keep_util = keep.iter().copied();
    cleaned.util.retain(|_| keep_util.next().unwrap());
    let mut keep_intent = keep.iter().copied();
    cleaned.interactive_intent.retain(|_| keep_intent.next().unwrap());
    (Cow::Owned(cleaned), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_trace::{DirtyPlan, TraceConfig};

    fn small_trace() -> Trace {
        let config =
            TraceConfig { target_vms: 600, n_subscriptions: 40, days: 10, ..TraceConfig::small() };
        Trace::generate(&config)
    }

    #[test]
    fn clean_trace_passes_untouched() {
        let trace = small_trace();
        let (cleaned, report) = cleanup(&trace);
        assert!(matches!(cleaned, Cow::Borrowed(_)), "clean trace must not be copied");
        assert_eq!(report.quarantined(), 0);
        assert_eq!(report.extracted, trace.vms.len() as u64);
        assert_eq!(report.cleaned, report.extracted);
        assert!(report.balanced());
    }

    #[test]
    fn dirty_trace_quarantine_balances_and_matches_the_plan() {
        let trace = small_trace();
        let plan = DirtyPlan::uniform(0xC1EA1, 0.25);
        let (dirty, dirty_report) = plan.apply(&trace);
        let (cleaned, report) = cleanup(&dirty);
        assert!(report.balanced(), "{report}");
        assert_eq!(report.extracted, dirty.vms.len() as u64);
        // Every detectable corruption is caught, category by category.
        // (Drops are invisible to cleanup: the record simply isn't there.)
        assert_eq!(report.duplicates, dirty_report.duplicated);
        assert_eq!(report.invalid_util, dirty_report.nan_util + dirty_report.out_of_range_util);
        assert_eq!(report.clock_skew, dirty_report.clock_skew);
        assert_eq!(report.truncated, dirty_report.truncated);
        assert_eq!(report.orphaned, dirty_report.orphaned);
        assert_eq!(report.quarantined(), dirty_report.detectable());
        // The cleaned output is itself clean: a second pass is the identity.
        let (again, second) = cleanup(&cleaned);
        assert!(matches!(again, Cow::Borrowed(_)));
        assert_eq!(second.quarantined(), 0);
        // Parallel arrays stay parallel.
        assert_eq!(cleaned.vms.len(), cleaned.util.len());
        assert_eq!(cleaned.vms.len(), cleaned.interactive_intent.len());
    }

    #[test]
    fn same_seed_cleanup_is_bit_identical() {
        let trace = small_trace();
        let plan = DirtyPlan::uniform(77, 0.2);
        let (dirty_a, _) = plan.apply(&trace);
        let (dirty_b, _) = plan.apply(&trace);
        let (clean_a, report_a) = cleanup(&dirty_a);
        let (clean_b, report_b) = cleanup(&dirty_b);
        assert_eq!(report_a, report_b);
        assert_eq!(rc_trace::trace_fingerprint(&clean_a), rc_trace::trace_fingerprint(&clean_b));
    }

    #[test]
    fn deployments_survive_uncompacted() {
        let trace = small_trace();
        let plan = DirtyPlan::uniform(3, 0.3);
        let (dirty, _) = plan.apply(&trace);
        let (cleaned, _) = cleanup(&dirty);
        assert_eq!(cleaned.deployments.len(), dirty.deployments.len());
        // Every surviving reference resolves.
        for vm in &cleaned.vms {
            assert!((vm.deployment.0 as usize) < cleaned.deployments.len());
        }
    }
}
