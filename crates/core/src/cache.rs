//! Client-side caches: results, models, feature data, and the local disk
//! cache (§4.2, "Cache management").

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::time::{Duration as StdDuration, SystemTime};

use rc_types::vm::SubscriptionId;

use crate::features::SubscriptionFeatures;
use crate::prediction::Prediction;

/// The result cache: a capacity-bounded hash table keyed by the hash of
/// `(model name, client inputs)`. Each entry stores "only the
/// corresponding prediction value and score" (§4.2).
#[derive(Debug)]
pub struct ResultCache {
    map: HashMap<u64, Prediction>,
    /// Insertion order for FIFO eviction once the capacity is reached.
    order: VecDeque<u64>,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
}

/// A point-in-time copy of a [`ResultCache`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResultCacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries removed to make room.
    pub evictions: u64,
    /// Entries written (including overwrites of existing keys).
    pub insertions: u64,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "result cache needs capacity");
        ResultCache {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            order: VecDeque::new(),
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
            insertions: 0,
        }
    }

    /// Looks a key up, recording hit/miss statistics.
    pub fn get(&mut self, key: u64) -> Option<Prediction> {
        match self.map.get(&key) {
            Some(p) => {
                self.hits += 1;
                Some(*p)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a prediction, evicting the oldest entry when full.
    /// Returns `true` when the insert displaced an older entry.
    pub fn insert(&mut self, key: u64, prediction: Prediction) -> bool {
        let mut evicted = false;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            while let Some(old) = self.order.pop_front() {
                if self.map.remove(&old).is_some() {
                    self.evictions += 1;
                    evicted = true;
                    break;
                }
            }
        }
        self.insertions += 1;
        if self.map.insert(key, prediction).is_none() {
            self.order.push_back(key);
        }
        evicted
    }

    /// Empties the cache (statistics are kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Insertions performed so far (including overwrites).
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// All counters at once.
    pub fn stats(&self) -> ResultCacheStats {
        ResultCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            insertions: self.insertions,
        }
    }

    /// Hit rate over all lookups (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// In-memory feature-data cache with the store version it was loaded at.
#[derive(Debug, Default, Clone)]
pub struct FeatureCache {
    records: HashMap<SubscriptionId, SubscriptionFeatures>,
    /// Store version of the last refresh (0 = never loaded).
    pub version: u64,
}

impl FeatureCache {
    /// Looks up a subscription's record.
    pub fn get(&self, sub: SubscriptionId) -> Option<&SubscriptionFeatures> {
        self.records.get(&sub)
    }

    /// Replaces the whole cache (a push-mode refresh).
    pub fn replace(
        &mut self,
        records: HashMap<SubscriptionId, SubscriptionFeatures>,
        version: u64,
    ) {
        self.records = records;
        self.version = version;
    }

    /// Inserts one record (a pull-mode fill).
    pub fn insert(&mut self, record: SubscriptionFeatures) {
        self.records.insert(record.subscription, record);
    }

    /// Number of cached records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are cached.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Clears all records.
    pub fn clear(&mut self) {
        self.records.clear();
        self.version = 0;
    }

    /// Read-only view of all records (used when persisting to disk).
    pub fn records(&self) -> &HashMap<SubscriptionId, SubscriptionFeatures> {
        &self.records
    }
}

/// The local disk cache. RC "stores the content of the model and feature
/// data caches in the local file system" and consults it only when the
/// store is unavailable, ignoring it once expired (§4.2).
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
    expiry: StdDuration,
}

impl DiskCache {
    /// Creates a disk cache rooted at `dir` with the given expiry.
    ///
    /// The directory is created on first write.
    pub fn new(dir: PathBuf, expiry: StdDuration) -> Self {
        DiskCache { dir, expiry }
    }

    fn path_for(&self, kind: &str, name: &str) -> PathBuf {
        // Keys contain '/' (e.g. "model/VM_P95UTIL"); flatten for the fs.
        let safe: String = name.chars().map(|c| if c == '/' { '_' } else { c }).collect();
        self.dir.join(format!("{kind}_{safe}.bin"))
    }

    /// Persists a record.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, kind: &str, name: &str, bytes: &[u8]) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        std::fs::write(self.path_for(kind, name), bytes)
    }

    /// Loads a record if present *and* younger than the expiry.
    pub fn load_if_fresh(&self, kind: &str, name: &str) -> Option<Vec<u8>> {
        let path = self.path_for(kind, name);
        let meta = std::fs::metadata(&path).ok()?;
        let age = SystemTime::now().duration_since(meta.modified().ok()?).ok()?;
        if age > self.expiry {
            return None;
        }
        std::fs::read(&path).ok()
    }

    /// Names of all persisted records of a kind (fresh or not).
    pub fn list(&self, kind: &str) -> Vec<String> {
        let prefix = format!("{kind}_");
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut names: Vec<String> = dir
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let fname = e.file_name().into_string().ok()?;
                let stem = fname.strip_suffix(".bin")?;
                stem.strip_prefix(&prefix).map(|s| s.to_string())
            })
            .collect();
        names.sort();
        names
    }

    /// Removes every record.
    pub fn flush(&self) {
        if let Ok(dir) = std::fs::read_dir(&self.dir) {
            for entry in dir.filter_map(|e| e.ok()) {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(v: usize) -> Prediction {
        Prediction { value: v, score: 0.9 }
    }

    #[test]
    fn result_cache_hits_and_misses() {
        let mut c = ResultCache::new(8);
        assert_eq!(c.get(1), None);
        c.insert(1, pred(2));
        assert_eq!(c.get(1).unwrap().value, 2);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn result_cache_evicts_fifo() {
        let mut c = ResultCache::new(3);
        for k in 0..3 {
            c.insert(k, pred(k as usize));
        }
        c.insert(99, pred(99));
        assert_eq!(c.len(), 3);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.get(0), None, "oldest entry evicted");
        assert!(c.get(99).is_some());
    }

    #[test]
    fn result_cache_reinsert_does_not_grow() {
        let mut c = ResultCache::new(2);
        c.insert(1, pred(1));
        c.insert(1, pred(2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1).unwrap().value, 2);
        assert_eq!(c.insertions(), 2, "overwrites still count as insertions");
    }

    #[test]
    fn result_cache_stats_track_all_counters() {
        let mut c = ResultCache::new(2);
        c.get(1); // miss
        assert!(!c.insert(1, pred(1)));
        assert!(!c.insert(2, pred(2)));
        assert!(c.insert(3, pred(3)), "third insert must evict");
        c.get(3); // hit
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.insertions, 3);
    }

    #[test]
    fn feature_cache_basics() {
        let mut f = FeatureCache::default();
        assert!(f.is_empty());
        f.insert(SubscriptionFeatures::new(SubscriptionId(7)));
        assert_eq!(f.len(), 1);
        assert!(f.get(SubscriptionId(7)).is_some());
        assert!(f.get(SubscriptionId(8)).is_none());
        f.clear();
        assert!(f.is_empty());
    }

    #[test]
    fn disk_cache_round_trip_and_expiry() {
        let dir = std::env::temp_dir().join(format!("rc_disk_cache_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DiskCache::new(dir.clone(), StdDuration::from_secs(3_600));
        cache.save("model", "model/VM_P95UTIL", b"abc").unwrap();
        assert_eq!(cache.load_if_fresh("model", "model/VM_P95UTIL").unwrap(), b"abc");
        assert_eq!(cache.list("model"), vec!["model_VM_P95UTIL".to_string()]);

        // An expired cache must be ignored.
        let strict = DiskCache::new(dir.clone(), StdDuration::ZERO);
        std::thread::sleep(StdDuration::from_millis(15));
        assert_eq!(strict.load_if_fresh("model", "model/VM_P95UTIL"), None);

        cache.flush();
        assert_eq!(cache.load_if_fresh("model", "model/VM_P95UTIL"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
