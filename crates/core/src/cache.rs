//! Client-side caches: results, models, feature data, and the local disk
//! cache (§4.2, "Cache management").

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, SystemTime};

use arc_swap::ArcSwap;
use crossbeam::utils::CachePadded;
use parking_lot::Mutex;

use rc_types::vm::SubscriptionId;

use crate::features::SubscriptionFeatures;
use crate::prediction::Prediction;

/// The result cache: a capacity-bounded hash table keyed by the hash of
/// `(model name, client inputs)`. Each entry stores "only the
/// corresponding prediction value and score" (§4.2).
#[derive(Debug)]
pub struct ResultCache {
    map: HashMap<u64, Prediction>,
    /// Insertion order for FIFO eviction once the capacity is reached.
    order: VecDeque<u64>,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
}

/// A point-in-time copy of a [`ResultCache`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResultCacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries removed to make room.
    pub evictions: u64,
    /// Entries written (including overwrites of existing keys).
    pub insertions: u64,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "result cache needs capacity");
        ResultCache {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            order: VecDeque::new(),
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
            insertions: 0,
        }
    }

    /// Looks a key up, recording hit/miss statistics.
    pub fn get(&mut self, key: u64) -> Option<Prediction> {
        match self.map.get(&key) {
            Some(p) => {
                self.hits += 1;
                Some(*p)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a prediction, evicting the oldest entry when full.
    /// Returns `true` when the insert displaced an older entry.
    pub fn insert(&mut self, key: u64, prediction: Prediction) -> bool {
        let mut evicted = false;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            while let Some(old) = self.order.pop_front() {
                if self.map.remove(&old).is_some() {
                    self.evictions += 1;
                    evicted = true;
                    break;
                }
            }
        }
        self.insertions += 1;
        if self.map.insert(key, prediction).is_none() {
            self.order.push_back(key);
        }
        evicted
    }

    /// Empties the cache (statistics are kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Insertions performed so far (including overwrites).
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// All counters at once.
    pub fn stats(&self) -> ResultCacheStats {
        ResultCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            insertions: self.insertions,
        }
    }

    /// Hit rate over all lookups (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One shard's immutable, atomically published view: the live entries
/// split across small copy-on-write chunks. Readers resolve a key with
/// two array indexes and one `HashMap::get` — no locks, no allocation.
/// A write clones only the touched chunk(s) plus the spine of `Arc`
/// pointers, so publish cost stays O(chunk) rather than O(shard).
#[derive(Debug)]
struct ShardSnap {
    chunks: Box<[Arc<HashMap<u64, Prediction>>]>,
    /// Live entries across all chunks (maintained at build time so
    /// `len()` stays lock-free too).
    len: usize,
}

impl ShardSnap {
    fn empty(n_chunks: usize) -> ShardSnap {
        let empty = Arc::new(HashMap::new());
        ShardSnap { chunks: vec![empty; n_chunks].into_boxed_slice(), len: 0 }
    }
}

/// One shard's mutable state, touched only by writers (insert / evict /
/// clear) under the shard's mutex. Readers never look here.
#[derive(Debug)]
struct ShardWrite {
    /// Insertion order for FIFO eviction, exactly as in [`ResultCache`].
    order: VecDeque<u64>,
    capacity: usize,
    insertions: u64,
    evictions: u64,
}

#[derive(Debug)]
struct Shard {
    /// The published view; readers go through `snap.with(..)` only.
    snap: ArcSwap<ShardSnap>,
    write: Mutex<ShardWrite>,
    /// Lookup counters live outside the snapshot so a hit is a relaxed
    /// `fetch_add`, not a snapshot rebuild; padded so two shards' hit
    /// counters never share a cache line.
    hits: CachePadded<AtomicU64>,
    misses: CachePadded<AtomicU64>,
}

/// An N-way sharded result cache with an RCU-style read path.
///
/// The single-mutex cache serializes every `predict_single` in the
/// process; §6.1's microsecond in-cache latencies only hold if concurrent
/// resource managers don't queue on one lock. PR 7 sharded the mutex;
/// this version removes it from the read path entirely: each shard
/// publishes an immutable [`ShardSnap`] through an epoch-protected
/// [`ArcSwap`], so `get` is a pinned pointer load plus a `HashMap`
/// probe — zero locks, zero heap allocations. Writes still serialize
/// per shard (mutex around the FIFO order book and the copy-on-write
/// rebuild) and publish the successor snapshot with one atomic store,
/// making every insert immediately visible to subsequent gets.
///
/// Statistics stay *exact*: hits/misses are per-shard padded atomics
/// bumped once per lookup; insertions/evictions are updated under the
/// shard's write mutex. [`ShardedResultCache::stats`] sums them.
#[derive(Debug)]
pub struct ShardedResultCache {
    shards: Vec<Shard>,
    /// `n_shards - 1`; the shard count is always a power of two.
    mask: u64,
    /// `n_chunks - 1` within each shard; also a power of two.
    chunk_mask: u64,
}

impl ShardedResultCache {
    /// Creates a cache of `n_shards` shards (rounded up to a power of
    /// two) splitting `capacity` entries across them.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize, n_shards: usize) -> Self {
        assert!(capacity > 0, "result cache needs capacity");
        let n_shards = n_shards.clamp(1, 1 << 16).next_power_of_two();
        let per_shard = capacity.div_ceil(n_shards).max(1);
        // Aim for ~64 entries per chunk so a copy-on-write insert clones
        // a bounded slice of the shard, not the whole map.
        let n_chunks = (per_shard / 64).next_power_of_two().clamp(1, 256);
        let shards = (0..n_shards)
            .map(|_| Shard {
                snap: ArcSwap::new(Arc::new(ShardSnap::empty(n_chunks))),
                write: Mutex::new(ShardWrite {
                    order: VecDeque::new(),
                    capacity: per_shard,
                    insertions: 0,
                    evictions: 0,
                }),
                hits: CachePadded::new(AtomicU64::new(0)),
                misses: CachePadded::new(AtomicU64::new(0)),
            })
            .collect();
        ShardedResultCache {
            shards,
            mask: (n_shards - 1) as u64,
            chunk_mask: (n_chunks - 1) as u64,
        }
    }

    /// Picks the default shard count for a machine: enough shards that
    /// concurrent predictors rarely collide, capped so tiny caches don't
    /// fragment.
    pub fn default_shards() -> usize {
        let cores = std::thread::available_parallelism().map_or(4, |p| p.get());
        (cores * 8).next_power_of_two().clamp(8, 256)
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key lives in.
    #[inline]
    pub fn shard_index(&self, key: u64) -> usize {
        // Fold the high bits in so the shard choice and the in-shard
        // HashMap bucket don't depend on the same low bits alone.
        ((key ^ (key >> 32)) & self.mask) as usize
    }

    /// The chunk (within a shard) a key lives in. A multiplicative mix
    /// decorrelates this from [`ShardedResultCache::shard_index`]'s
    /// xor-fold so chunks fill evenly.
    #[inline]
    fn chunk_index(&self, key: u64) -> usize {
        ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) & self.chunk_mask) as usize
    }

    /// Looks a key up against the shard's published snapshot — no locks,
    /// no heap allocation. Records exactly one hit or miss.
    #[inline]
    pub fn get(&self, key: u64) -> Option<Prediction> {
        let shard = &self.shards[self.shard_index(key)];
        let ci = self.chunk_index(key);
        let found = shard.snap.with(|s| s.chunks[ci].get(&key).copied());
        match found {
            Some(p) => {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                Some(p)
            }
            None => {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Applies one insert to a working copy of a shard's chunk spine.
    /// `Arc::make_mut` clones a chunk the first time the working copy
    /// touches it and mutates in place thereafter, so a batch clones
    /// each chunk at most once. Returns `true` on displacement.
    fn insert_into(
        &self,
        write: &mut ShardWrite,
        chunks: &mut [Arc<HashMap<u64, Prediction>>],
        len: &mut usize,
        key: u64,
        prediction: Prediction,
    ) -> bool {
        let mut evicted = false;
        let ci = self.chunk_index(key);
        if *len >= write.capacity && !chunks[ci].contains_key(&key) {
            while let Some(old) = write.order.pop_front() {
                let oci = self.chunk_index(old);
                if Arc::make_mut(&mut chunks[oci]).remove(&old).is_some() {
                    write.evictions += 1;
                    *len -= 1;
                    evicted = true;
                    break;
                }
            }
        }
        write.insertions += 1;
        if Arc::make_mut(&mut chunks[ci]).insert(key, prediction).is_none() {
            write.order.push_back(key);
            *len += 1;
        }
        evicted
    }

    /// Inserts a prediction into the owning shard, evicting that shard's
    /// oldest entry when it is full, and publishes the successor
    /// snapshot (immediately visible to every `get`). Returns `true` on
    /// displacement.
    pub fn insert(&self, key: u64, prediction: Prediction) -> bool {
        let shard = &self.shards[self.shard_index(key)];
        let mut write = shard.write.lock();
        let cur = shard.snap.load_full();
        let mut chunks = cur.chunks.to_vec();
        let mut len = cur.len;
        let evicted = self.insert_into(&mut write, &mut chunks, &mut len, key, prediction);
        shard.snap.store(Arc::new(ShardSnap { chunks: chunks.into_boxed_slice(), len }));
        evicted
    }

    /// Batch lookup, positional (`out[i]` answers `keys[i]`). Each key
    /// occurrence records exactly one hit or miss, so `hits + misses`
    /// still equals total lookups. With the lock-free read path there is
    /// no shard grouping to amortize — each get is already uncontended.
    pub fn get_batch(&self, keys: &[u64]) -> Vec<Option<Prediction>> {
        keys.iter().map(|&k| self.get(k)).collect()
    }

    /// Batch insert: groups entries by shard, taking each touched
    /// shard's write lock once and publishing one successor snapshot per
    /// shard. Returns the number of entries whose insert displaced an
    /// older one.
    pub fn insert_batch(&self, entries: &[(u64, Prediction)]) -> u64 {
        let mut order: Vec<(usize, usize)> =
            entries.iter().enumerate().map(|(i, &(k, _))| (self.shard_index(k), i)).collect();
        order.sort_unstable();
        let mut evicted = 0;
        let mut at = 0;
        while at < order.len() {
            let shard_idx = order[at].0;
            let shard = &self.shards[shard_idx];
            let mut write = shard.write.lock();
            let cur = shard.snap.load_full();
            let mut chunks = cur.chunks.to_vec();
            let mut len = cur.len;
            while at < order.len() && order[at].0 == shard_idx {
                let (key, prediction) = entries[order[at].1];
                if self.insert_into(&mut write, &mut chunks, &mut len, key, prediction) {
                    evicted += 1;
                }
                at += 1;
            }
            shard.snap.store(Arc::new(ShardSnap { chunks: chunks.into_boxed_slice(), len }));
        }
        evicted
    }

    /// Empties every shard (statistics are kept).
    pub fn clear(&self) {
        let n_chunks = (self.chunk_mask + 1) as usize;
        for shard in &self.shards {
            let mut write = shard.write.lock();
            write.order.clear();
            shard.snap.store(Arc::new(ShardSnap::empty(n_chunks)));
        }
    }

    /// Entries currently cached across all shards (lock-free).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.snap.with(|snap| snap.len)).sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.snap.with(|snap| snap.len == 0))
    }

    fn one_shard_stats(shard: &Shard) -> ResultCacheStats {
        let write = shard.write.lock();
        ResultCacheStats {
            hits: shard.hits.load(Ordering::Relaxed),
            misses: shard.misses.load(Ordering::Relaxed),
            evictions: write.evictions,
            insertions: write.insertions,
        }
    }

    /// Exact aggregate counters, summed across shards.
    pub fn stats(&self) -> ResultCacheStats {
        let mut total = ResultCacheStats::default();
        for shard in &self.shards {
            let s = Self::one_shard_stats(shard);
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.insertions += s.insertions;
        }
        total
    }

    /// Per-shard counters, in shard order (for observability dumps).
    pub fn shard_stats(&self) -> Vec<ResultCacheStats> {
        self.shards.iter().map(Self::one_shard_stats).collect()
    }

    /// Aggregate hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.shards.iter().map(|s| s.hits.load(Ordering::Relaxed)).sum()
    }

    /// Aggregate hit rate over all lookups (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let s = self.stats();
        let total = s.hits + s.misses;
        if total == 0 {
            0.0
        } else {
            s.hits as f64 / total as f64
        }
    }
}

/// In-memory feature-data cache with the store version it was loaded at.
#[derive(Debug, Default, Clone)]
pub struct FeatureCache {
    records: HashMap<SubscriptionId, SubscriptionFeatures>,
    /// Store version of the last refresh (0 = never loaded).
    pub version: u64,
}

impl FeatureCache {
    /// Looks up a subscription's record.
    pub fn get(&self, sub: SubscriptionId) -> Option<&SubscriptionFeatures> {
        self.records.get(&sub)
    }

    /// Replaces the whole cache (a push-mode refresh).
    pub fn replace(
        &mut self,
        records: HashMap<SubscriptionId, SubscriptionFeatures>,
        version: u64,
    ) {
        self.records = records;
        self.version = version;
    }

    /// Inserts one record (a pull-mode fill).
    pub fn insert(&mut self, record: SubscriptionFeatures) {
        self.records.insert(record.subscription, record);
    }

    /// Number of cached records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are cached.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Clears all records.
    pub fn clear(&mut self) {
        self.records.clear();
        self.version = 0;
    }

    /// Read-only view of all records (used when persisting to disk).
    pub fn records(&self) -> &HashMap<SubscriptionId, SubscriptionFeatures> {
        &self.records
    }
}

/// Escapes a record name into a filename-safe stem, losslessly.
///
/// Store keys contain `/` (e.g. "model/VM_P95UTIL"). The old scheme
/// flattened `/` to `_`, which collided distinct keys like `a_b` and
/// `a/b` on disk; percent-escaping the three fs-hostile characters keeps
/// every key distinct and invertible.
fn escape_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            '%' => out.push_str("%25"),
            '/' => out.push_str("%2F"),
            '\\' => out.push_str("%5C"),
            _ => out.push(c),
        }
    }
    out
}

/// Inverts [`escape_name`]. Malformed escapes are kept verbatim so a
/// hand-placed file still lists as *something* rather than panicking.
fn unescape_name(stem: &str) -> String {
    let bytes = stem.as_bytes();
    let mut out = String::with_capacity(stem.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 3 <= bytes.len() {
            if let Ok(hex) = std::str::from_utf8(&bytes[i + 1..i + 3]) {
                if let Ok(b) = u8::from_str_radix(hex, 16) {
                    out.push(b as char);
                    i += 3;
                    continue;
                }
            }
        }
        // Multi-byte UTF-8 never starts with '%', so byte-wise advance is
        // only taken on ASCII here; non-ASCII is copied per char below.
        let c = stem[i..].chars().next().expect("in-bounds char");
        out.push(c);
        i += c.len_utf8();
    }
    out
}

/// How a disk-cache load resolved (see [`DiskCache::load_graced`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskLoadResult {
    /// Present, checksum valid, younger than the expiry.
    Fresh(Vec<u8>),
    /// Present and valid, but past the expiry — inside the caller's grace
    /// window (stale-while-revalidate serving).
    Stale(Vec<u8>),
    /// Present and valid, but older than expiry + grace.
    Expired,
    /// Present but torn, truncated, or checksum-mismatched.
    Corrupt,
    /// No entry on disk.
    Missing,
}

/// Frame magic for disk-cache entries ("RC cache v1").
const DISK_MAGIC: [u8; 4] = *b"RCC1";

/// FNV-1a over a payload — the disk frame's integrity checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h = (h ^ *b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The local disk cache. RC "stores the content of the model and feature
/// data caches in the local file system" and consults it only when the
/// store is unavailable, ignoring it once expired (§4.2).
///
/// Entries are framed (`RCC1` magic + FNV-1a checksum + payload) and
/// written atomically (temp file in the same directory, then rename), so
/// a crash mid-write can never leave a truncated entry that later loads
/// as data — a torn or hand-mangled file surfaces as
/// [`DiskLoadResult::Corrupt`] instead.
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
    expiry: StdDuration,
}

impl DiskCache {
    /// Creates a disk cache rooted at `dir` with the given expiry.
    ///
    /// The directory is created on first write.
    pub fn new(dir: PathBuf, expiry: StdDuration) -> Self {
        DiskCache { dir, expiry }
    }

    fn path_for(&self, kind: &str, name: &str) -> PathBuf {
        self.dir.join(format!("{kind}_{}.bin", escape_name(name)))
    }

    /// Persists a record crash-safely: the framed entry is written to a
    /// unique temp file in the cache directory and renamed into place, so
    /// readers only ever observe a complete frame (rename is atomic on
    /// POSIX within one filesystem).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, kind: &str, name: &str, bytes: &[u8]) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let mut framed = Vec::with_capacity(12 + bytes.len());
        framed.extend_from_slice(&DISK_MAGIC);
        framed.extend_from_slice(&fnv1a(bytes).to_le_bytes());
        framed.extend_from_slice(bytes);
        static TEMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = TEMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = self.dir.join(format!(".tmp_{}_{seq}", std::process::id()));
        std::fs::write(&tmp, &framed)?;
        let result = std::fs::rename(&tmp, self.path_for(kind, name));
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Unframes one entry's file contents, verifying magic and checksum.
    fn unframe(raw: &[u8]) -> Option<Vec<u8>> {
        if raw.len() < 12 || raw[..4] != DISK_MAGIC {
            return None;
        }
        let stored = u64::from_le_bytes(raw[4..12].try_into().expect("8 bytes"));
        let payload = &raw[12..];
        (fnv1a(payload) == stored).then(|| payload.to_vec())
    }

    /// Loads a record, classifying it by age against the expiry and a
    /// caller-supplied grace window: younger than `expiry` is
    /// [`DiskLoadResult::Fresh`], within `expiry + grace` is
    /// [`DiskLoadResult::Stale`], older is [`DiskLoadResult::Expired`].
    /// Frame or checksum violations are [`DiskLoadResult::Corrupt`].
    pub fn load_graced(&self, kind: &str, name: &str, grace: StdDuration) -> DiskLoadResult {
        let path = self.path_for(kind, name);
        let Ok(meta) = std::fs::metadata(&path) else {
            return DiskLoadResult::Missing;
        };
        let age = meta
            .modified()
            .ok()
            .and_then(|m| SystemTime::now().duration_since(m).ok())
            .unwrap_or(StdDuration::MAX);
        if age > self.expiry.saturating_add(grace) {
            return DiskLoadResult::Expired;
        }
        let Ok(raw) = std::fs::read(&path) else {
            return DiskLoadResult::Missing;
        };
        match Self::unframe(&raw) {
            None => DiskLoadResult::Corrupt,
            Some(payload) if age > self.expiry => DiskLoadResult::Stale(payload),
            Some(payload) => DiskLoadResult::Fresh(payload),
        }
    }

    /// Loads a record if present, intact, *and* younger than the expiry.
    pub fn load_if_fresh(&self, kind: &str, name: &str) -> Option<Vec<u8>> {
        match self.load_graced(kind, name, StdDuration::ZERO) {
            DiskLoadResult::Fresh(bytes) => Some(bytes),
            _ => None,
        }
    }

    /// Names of all persisted records of a kind (fresh or not), restored
    /// to their original (unescaped) form — a listed name can be passed
    /// straight back to [`DiskCache::load_if_fresh`].
    pub fn list(&self, kind: &str) -> Vec<String> {
        let prefix = format!("{kind}_");
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut names: Vec<String> = dir
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let fname = e.file_name().into_string().ok()?;
                let stem = fname.strip_suffix(".bin")?;
                stem.strip_prefix(&prefix).map(unescape_name)
            })
            .collect();
        names.sort();
        names
    }

    /// Removes every record.
    pub fn flush(&self) {
        if let Ok(dir) = std::fs::read_dir(&self.dir) {
            for entry in dir.filter_map(|e| e.ok()) {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(v: usize) -> Prediction {
        Prediction { value: v, score: 0.9 }
    }

    #[test]
    fn result_cache_hits_and_misses() {
        let mut c = ResultCache::new(8);
        assert_eq!(c.get(1), None);
        c.insert(1, pred(2));
        assert_eq!(c.get(1).unwrap().value, 2);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn result_cache_evicts_fifo() {
        let mut c = ResultCache::new(3);
        for k in 0..3 {
            c.insert(k, pred(k as usize));
        }
        c.insert(99, pred(99));
        assert_eq!(c.len(), 3);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.get(0), None, "oldest entry evicted");
        assert!(c.get(99).is_some());
    }

    #[test]
    fn result_cache_reinsert_does_not_grow() {
        let mut c = ResultCache::new(2);
        c.insert(1, pred(1));
        c.insert(1, pred(2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1).unwrap().value, 2);
        assert_eq!(c.insertions(), 2, "overwrites still count as insertions");
    }

    #[test]
    fn result_cache_stats_track_all_counters() {
        let mut c = ResultCache::new(2);
        c.get(1); // miss
        assert!(!c.insert(1, pred(1)));
        assert!(!c.insert(2, pred(2)));
        assert!(c.insert(3, pred(3)), "third insert must evict");
        c.get(3); // hit
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.insertions, 3);
    }

    #[test]
    fn feature_cache_basics() {
        let mut f = FeatureCache::default();
        assert!(f.is_empty());
        f.insert(SubscriptionFeatures::new(SubscriptionId(7)));
        assert_eq!(f.len(), 1);
        assert!(f.get(SubscriptionId(7)).is_some());
        assert!(f.get(SubscriptionId(8)).is_none());
        f.clear();
        assert!(f.is_empty());
    }

    #[test]
    fn disk_cache_round_trip_and_expiry() {
        let dir = std::env::temp_dir().join(format!("rc_disk_cache_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DiskCache::new(dir.clone(), StdDuration::from_secs(3_600));
        cache.save("model", "model/VM_P95UTIL", b"abc").unwrap();
        assert_eq!(cache.load_if_fresh("model", "model/VM_P95UTIL").unwrap(), b"abc");
        // `list` round-trips the original name, slash intact.
        assert_eq!(cache.list("model"), vec!["model/VM_P95UTIL".to_string()]);

        // An expired cache must be ignored.
        let strict = DiskCache::new(dir.clone(), StdDuration::ZERO);
        std::thread::sleep(StdDuration::from_millis(15));
        assert_eq!(strict.load_if_fresh("model", "model/VM_P95UTIL"), None);

        cache.flush();
        assert_eq!(cache.load_if_fresh("model", "model/VM_P95UTIL"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_cache_keeps_collision_prone_keys_distinct() {
        // The old '/'-to-'_' flattening mapped these three keys onto the
        // same file; percent-escaping must keep them separate and make
        // `list` invertible.
        let dir = std::env::temp_dir().join(format!("rc_disk_collide_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DiskCache::new(dir.clone(), StdDuration::from_secs(3_600));
        cache.save("model", "model/a_b", b"underscore").unwrap();
        cache.save("model", "model/a/b", b"slash").unwrap();
        cache.save("model", "model_a/b", b"prefix").unwrap();
        cache.save("model", "model/50%_off", b"percent").unwrap();
        assert_eq!(cache.load_if_fresh("model", "model/a_b").unwrap(), b"underscore");
        assert_eq!(cache.load_if_fresh("model", "model/a/b").unwrap(), b"slash");
        assert_eq!(cache.load_if_fresh("model", "model_a/b").unwrap(), b"prefix");
        assert_eq!(cache.load_if_fresh("model", "model/50%_off").unwrap(), b"percent");
        let mut names = cache.list("model");
        names.sort();
        assert_eq!(names, vec!["model/50%_off", "model/a/b", "model/a_b", "model_a/b"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_cache_detects_torn_writes() {
        let dir = std::env::temp_dir().join(format!("rc_disk_torn_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DiskCache::new(dir.clone(), StdDuration::from_secs(3_600));
        cache.save("model", "m", b"intact payload").unwrap();
        let path = dir.join("model_m.bin");
        let full = std::fs::read(&path).unwrap();

        // A crash mid-write leaves a prefix of the frame: every prefix
        // must classify as Corrupt (or Missing for the empty file), never
        // as data.
        for cut in [0, 3, 11, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert_eq!(
                cache.load_graced("model", "m", StdDuration::ZERO),
                DiskLoadResult::Corrupt,
                "torn at {cut} bytes"
            );
            assert_eq!(cache.load_if_fresh("model", "m"), None);
        }

        // Bit rot inside the payload trips the checksum.
        let mut rotted = full.clone();
        let last = rotted.len() - 1;
        rotted[last] ^= 0x40;
        std::fs::write(&path, &rotted).unwrap();
        assert_eq!(cache.load_graced("model", "m", StdDuration::ZERO), DiskLoadResult::Corrupt);

        // The intact frame still round-trips.
        std::fs::write(&path, &full).unwrap();
        assert_eq!(cache.load_if_fresh("model", "m").unwrap(), b"intact payload");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_cache_save_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("rc_disk_tmp_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DiskCache::new(dir.clone(), StdDuration::from_secs(3_600));
        for i in 0..20 {
            cache.save("model", &format!("m{i}"), b"x").unwrap();
        }
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp_"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must be renamed away");
        assert_eq!(cache.list("model").len(), 20);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_cache_grace_window_serves_stale() {
        let dir = std::env::temp_dir().join(format!("rc_disk_grace_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Expiry zero: everything is stale the moment it lands.
        let cache = DiskCache::new(dir.clone(), StdDuration::ZERO);
        cache.save("model", "m", b"old but usable").unwrap();
        std::thread::sleep(StdDuration::from_millis(15));
        assert_eq!(cache.load_if_fresh("model", "m"), None, "fresh load rejects expired");
        assert_eq!(
            cache.load_graced("model", "m", StdDuration::from_secs(3_600)),
            DiskLoadResult::Stale(b"old but usable".to_vec()),
            "grace window serves it as stale"
        );
        assert_eq!(
            cache.load_graced("model", "m", StdDuration::ZERO),
            DiskLoadResult::Expired,
            "no grace, no serve"
        );
        assert_eq!(cache.load_graced("model", "nope", StdDuration::ZERO), DiskLoadResult::Missing);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn escape_round_trips() {
        for name in ["model/VM_P95UTIL", "a_b", "a/b", "a%2Fb", "100%", "%", "nested/x/y_z"] {
            assert_eq!(unescape_name(&escape_name(name)), name, "round-trip of {name:?}");
            assert!(!escape_name(name).contains('/'), "{name:?} escapes to a flat filename");
        }
        // Distinct names never escape to the same stem.
        assert_ne!(escape_name("a_b"), escape_name("a/b"));
        assert_ne!(escape_name("a%2Fb"), escape_name("a/b"));
    }

    /// Alphabet for the percent-escaping properties: every fs-hostile
    /// character the scheme handles, the escape characters themselves,
    /// hex digits (so malformed-looking sequences like `%2F` arise
    /// naturally), and ordinary name characters.
    const HOSTILE: &[char] =
        &['%', '/', '\\', '2', '5', 'F', 'C', 'f', 'c', 'a', '_', '.', '-', 'Z', '0'];

    proptest::proptest! {
        #[test]
        fn escape_round_trips_arbitrary_keys(
            picks in proptest::collection::vec(0usize..HOSTILE.len(), 0..24)
        ) {
            let name: String = picks.iter().map(|&i| HOSTILE[i]).collect();
            let escaped = escape_name(&name);
            proptest::prop_assert_eq!(unescape_name(&escaped), name.clone());
            proptest::prop_assert!(!escaped.contains('/'), "escaped stem must be flat: {:?}", escaped);
            proptest::prop_assert!(!escaped.contains('\\'));
        }

        #[test]
        fn escape_and_path_for_are_injective(
            a in proptest::collection::vec(0usize..HOSTILE.len(), 0..16),
            b in proptest::collection::vec(0usize..HOSTILE.len(), 0..16)
        ) {
            let na: String = a.iter().map(|&i| HOSTILE[i]).collect();
            let nb: String = b.iter().map(|&i| HOSTILE[i]).collect();
            let cache = DiskCache::new(std::path::PathBuf::from("/tmp/rc-prop"), StdDuration::ZERO);
            if na != nb {
                proptest::prop_assert!(escape_name(&na) != escape_name(&nb));
                proptest::prop_assert!(cache.path_for("model", &na) != cache.path_for("model", &nb));
            } else {
                proptest::prop_assert_eq!(cache.path_for("model", &na), cache.path_for("model", &nb));
            }
        }
    }

    #[test]
    fn sharded_cache_routes_and_counts_exactly() {
        let c = ShardedResultCache::new(1024, 8);
        assert_eq!(c.n_shards(), 8);
        for k in 0..500u64 {
            assert_eq!(c.get(k), None);
            assert!(!c.insert(k, pred(k as usize)));
        }
        for k in 0..500u64 {
            assert_eq!(c.get(k).unwrap().value, k as usize);
        }
        let s = c.stats();
        assert_eq!(s.hits, 500);
        assert_eq!(s.misses, 500);
        assert_eq!(s.insertions, 500);
        assert_eq!(s.evictions, 0);
        assert_eq!(c.len(), 500);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
        // Every lookup was counted on exactly one shard.
        let per_shard = c.shard_stats();
        assert_eq!(per_shard.iter().map(|s| s.hits + s.misses).sum::<u64>(), 1000);
        assert!(per_shard.iter().filter(|s| s.insertions > 0).count() > 1, "keys spread out");
    }

    #[test]
    fn sharded_cache_capacity_splits_across_shards() {
        let c = ShardedResultCache::new(64, 4);
        // Overfill: per-shard FIFO keeps each shard at 16, so the total
        // sits at the configured capacity.
        for k in 0..10_000u64 {
            c.insert(k, pred(1));
        }
        assert_eq!(c.len(), 64);
        assert_eq!(c.stats().evictions, 10_000 - 64);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().insertions, 10_000, "clear keeps statistics");
    }

    #[test]
    fn sharded_cache_rounds_shards_to_power_of_two() {
        assert_eq!(ShardedResultCache::new(100, 3).n_shards(), 4);
        assert_eq!(ShardedResultCache::new(100, 1).n_shards(), 1);
        assert_eq!(ShardedResultCache::new(100, 0).n_shards(), 1);
        let d = ShardedResultCache::default_shards();
        assert!(d.is_power_of_two() && (8..=256).contains(&d));
    }

    #[test]
    fn sharded_batch_get_is_positional_and_counts_per_occurrence() {
        let c = ShardedResultCache::new(256, 4);
        c.insert(7, pred(70));
        c.insert(9, pred(90));
        // Duplicate keys and misses interleaved.
        let keys = [7u64, 1, 9, 7, 2, 7];
        let out = c.get_batch(&keys);
        assert_eq!(out.len(), keys.len());
        assert_eq!(out[0].unwrap().value, 70);
        assert_eq!(out[1], None);
        assert_eq!(out[2].unwrap().value, 90);
        assert_eq!(out[3].unwrap().value, 70);
        assert_eq!(out[4], None);
        assert_eq!(out[5].unwrap().value, 70);
        let s = c.stats();
        assert_eq!(s.hits, 4);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn sharded_batch_insert_reports_evictions() {
        let c = ShardedResultCache::new(4, 4); // one entry per shard
        let entries: Vec<(u64, Prediction)> = (0..64).map(|k| (k, pred(k as usize))).collect();
        let evicted = c.insert_batch(&entries);
        assert_eq!(c.len(), 4);
        assert_eq!(evicted, c.stats().evictions);
        assert_eq!(c.stats().insertions, 64);
    }

    #[test]
    fn sharded_cache_is_exact_under_contention() {
        let c = std::sync::Arc::new(ShardedResultCache::new(1 << 12, 8));
        let n_threads = 8u64;
        let per_thread = 4_000u64;
        let mut handles = Vec::new();
        for t in 0..n_threads {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    let key = t * per_thread + i;
                    if c.get(key).is_none() {
                        c.insert(key, pred(1));
                    }
                    let _ = c.get(key);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = c.stats();
        // Each thread does exactly 2 lookups and 1 insert per unique key
        // (keys are disjoint across threads, so the first get misses).
        assert_eq!(s.hits + s.misses, 2 * n_threads * per_thread, "no lost lookup counts");
        assert_eq!(s.insertions, n_threads * per_thread, "no lost insert counts");
        assert!(s.misses >= n_threads * per_thread, "first lookup of each unique key misses");
    }
}
