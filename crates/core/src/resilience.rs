//! Client-side resilience: retry policy, per-key circuit breakers, and
//! the health probe (§4.3: RC "is not on the critical path" — consumers
//! must degrade gracefully, never block or crash, when the store fails).
//!
//! Everything here is deterministic by construction so chaos tests can
//! assert exact schedules: backoff jitter comes from a seeded RNG, and
//! breaker cooldowns are counted in *calls*, not wall-clock time.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration as StdDuration, SystemTime};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rc_obs::{Counter, Gauge};

/// Retry policy for store pulls: jittered exponential backoff under a
/// per-call deadline.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total tries per call (first attempt included). `1` disables
    /// retries.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: StdDuration,
    /// Backoff ceiling.
    pub max_backoff: StdDuration,
    /// Wall-clock budget for one logical call, attempts and backoffs
    /// included. A retry that would overrun the deadline is abandoned.
    pub call_deadline: StdDuration,
    /// Seed for backoff jitter (kept apart from any fault-plan seed so
    /// the two schedules don't correlate).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: StdDuration::from_millis(1),
            max_backoff: StdDuration::from_millis(50),
            call_deadline: StdDuration::from_millis(250),
            jitter_seed: 0x5eed_cafe,
        }
    }
}

/// The jitter source behind a [`RetryPolicy`]: one seeded RNG shared by
/// every retrying call on a client.
pub struct RetryJitter {
    rng: Mutex<StdRng>,
}

impl RetryJitter {
    /// Builds the jitter source for a policy.
    pub fn new(policy: &RetryPolicy) -> Self {
        RetryJitter { rng: Mutex::new(StdRng::seed_from_u64(policy.jitter_seed)) }
    }

    /// Backoff before retry number `retry` (1-based): exponential,
    /// capped, then scaled into `[50%, 100%]` by the jitter draw.
    pub fn backoff(&self, policy: &RetryPolicy, retry: u32) -> StdDuration {
        let exp = policy.base_backoff.saturating_mul(1u32 << (retry - 1).min(20));
        let capped = exp.min(policy.max_backoff);
        let u: f64 = self.rng.lock().gen();
        capped.mul_f64(0.5 + 0.5 * u)
    }
}

/// Circuit-breaker thresholds.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures that trip Closed → Open.
    pub failure_threshold: u32,
    /// Rejected calls an Open breaker absorbs before letting a probe
    /// through (Open → HalfOpen). Counted in calls, not time, so chaos
    /// schedules replay exactly.
    pub probe_after: u32,
    /// Consecutive probe successes that close a HalfOpen breaker.
    pub success_threshold: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 5, probe_after: 8, success_threshold: 2 }
    }
}

/// One breaker's state (per store key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; counting consecutive failures.
    Closed,
    /// Traffic rejected without touching the store.
    Open,
    /// Probing: limited traffic flows to test recovery.
    HalfOpen,
}

#[derive(Debug)]
enum State {
    Closed { consecutive_failures: u32 },
    Open { rejected: u32 },
    HalfOpen { successes: u32 },
}

/// What [`CircuitBreakers::admit`] decided for a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: proceed normally.
    Allow,
    /// Breaker half-open: proceed, and the outcome decides recovery.
    Probe,
    /// Breaker open: fail fast without touching the store.
    Reject,
}

/// Per-key circuit breakers (Closed → Open → HalfOpen → Closed).
///
/// Keys are store keys (`model/…`, `features/…`), so one flapping record
/// cannot shut off the rest of the store. Transitions increment
/// `rc_client_breaker_transitions`; the number of currently-open breakers
/// is exported on the `rc_client_breaker_open` gauge.
pub struct CircuitBreakers {
    config: BreakerConfig,
    states: Mutex<HashMap<String, State>>,
    transitions: Counter,
    half_open_probes: Counter,
    /// Per-instance mirror of `half_open_probes`: the registry counter
    /// is shared by every breaker set in the process, so a client's own
    /// probe count needs its own cell.
    local_probes: AtomicU64,
    open_gauge: Gauge,
    open_count: Mutex<i64>,
}

impl CircuitBreakers {
    /// Builds the breaker set, resolving its metric handles once.
    pub fn new(config: BreakerConfig) -> Self {
        let reg = rc_obs::global();
        CircuitBreakers {
            config,
            states: Mutex::new(HashMap::new()),
            transitions: reg.counter(rc_obs::CLIENT_BREAKER_TRANSITIONS),
            half_open_probes: reg.counter(rc_obs::CLIENT_BREAKER_HALF_OPEN_PROBES),
            local_probes: AtomicU64::new(0),
            open_gauge: reg.gauge(rc_obs::CLIENT_BREAKER_OPEN),
            open_count: Mutex::new(0),
        }
    }

    fn note_probe(&self) {
        self.half_open_probes.increment();
        self.local_probes.fetch_add(1, Ordering::Relaxed);
    }

    fn note_transition(&self, delta_open: i64) {
        self.transitions.increment();
        let mut open = self.open_count.lock();
        *open += delta_open;
        self.open_gauge.set(*open as f64);
    }

    /// Gatekeeper: call before touching the store for `key`.
    pub fn admit(&self, key: &str) -> Admission {
        let mut states = self.states.lock();
        let state =
            states.entry(key.to_string()).or_insert(State::Closed { consecutive_failures: 0 });
        match state {
            State::Closed { .. } => Admission::Allow,
            State::HalfOpen { .. } => {
                drop(states);
                self.note_probe();
                Admission::Probe
            }
            State::Open { rejected } => {
                *rejected += 1;
                if *rejected >= self.config.probe_after {
                    *state = State::HalfOpen { successes: 0 };
                    drop(states);
                    self.note_transition(-1);
                    self.note_probe();
                    Admission::Probe
                } else {
                    Admission::Reject
                }
            }
        }
    }

    /// Reports the outcome of an admitted call.
    pub fn record(&self, key: &str, success: bool) {
        let mut states = self.states.lock();
        let state =
            states.entry(key.to_string()).or_insert(State::Closed { consecutive_failures: 0 });
        let delta = match (&mut *state, success) {
            (State::Closed { consecutive_failures }, true) => {
                *consecutive_failures = 0;
                return;
            }
            (State::Closed { consecutive_failures }, false) => {
                *consecutive_failures += 1;
                if *consecutive_failures >= self.config.failure_threshold {
                    *state = State::Open { rejected: 0 };
                    1
                } else {
                    return;
                }
            }
            (State::HalfOpen { successes }, true) => {
                *successes += 1;
                if *successes >= self.config.success_threshold {
                    *state = State::Closed { consecutive_failures: 0 };
                    0
                } else {
                    return;
                }
            }
            (State::HalfOpen { .. }, false) => {
                *state = State::Open { rejected: 0 };
                1
            }
            // A late `record` against an Open breaker (e.g. a concurrent
            // call admitted before the trip): fold it into the counts
            // without a transition.
            (State::Open { .. }, _) => return,
        };
        drop(states);
        self.note_transition(delta);
    }

    /// The state of `key`'s breaker (Closed when never touched).
    pub fn state(&self, key: &str) -> BreakerState {
        match self.states.lock().get(key) {
            None | Some(State::Closed { .. }) => BreakerState::Closed,
            Some(State::Open { .. }) => BreakerState::Open,
            Some(State::HalfOpen { .. }) => BreakerState::HalfOpen,
        }
    }

    /// Number of breakers currently Open.
    pub fn open_count(&self) -> usize {
        *self.open_count.lock() as usize
    }

    /// HalfOpen probe admissions so far, across all keys — every call
    /// [`CircuitBreakers::admit`] answered with [`Admission::Probe`].
    /// Mirrored on the `rc_client_breaker_half_open_probes` counter so
    /// probe traffic is visible in registry snapshots next to
    /// transitions and the open gauge.
    pub fn half_open_probe_count(&self) -> u64 {
        self.local_probes.load(Ordering::Relaxed)
    }

    /// Resets every breaker to Closed (used by `flush_cache`). Not a
    /// transition for metric purposes — the client is starting over.
    pub fn reset(&self) {
        let mut states = self.states.lock();
        states.clear();
        *self.open_count.lock() = 0;
        self.open_gauge.set(0.0);
    }
}

/// Why a client reports [`ClientHealth::Degraded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedReason {
    /// Serving from disk-cache entries past their expiry (within grace).
    StaleData,
    /// Store pulls failing; serving from the fresh disk cache.
    DiskFallback,
    /// At least one per-key circuit breaker is open.
    BreakerOpen,
}

impl std::fmt::Display for DegradedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradedReason::StaleData => write!(f, "serving stale data"),
            DegradedReason::DiskFallback => write!(f, "store unreachable, disk fallback"),
            DegradedReason::BreakerOpen => write!(f, "circuit breaker open"),
        }
    }
}

/// The client's health probe, consumed by schedulers: `Offline` tells
/// Algorithm 1 to take its conservative no-prediction path for every VM
/// instead of asking a client that cannot answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientHealth {
    /// Initialized, store reachable, nothing degraded.
    Healthy,
    /// Still answering, but from fallbacks (disk, stale data) or with
    /// open breakers.
    Degraded {
        /// When degradation was first observed.
        since: SystemTime,
        /// The first observed cause.
        reason: DegradedReason,
    },
    /// Not initialized (or flushed): every lookup answers the default.
    Offline,
}

impl ClientHealth {
    /// True when the probe reports `Offline`.
    pub fn is_offline(&self) -> bool {
        matches!(self, ClientHealth::Offline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BreakerConfig {
        BreakerConfig { failure_threshold: 3, probe_after: 2, success_threshold: 2 }
    }

    #[test]
    fn breaker_walks_the_full_state_machine() {
        let breakers = CircuitBreakers::new(config());
        let key = "model/X";
        assert_eq!(breakers.state(key), BreakerState::Closed);
        // Three consecutive failures trip it open.
        for _ in 0..3 {
            assert_eq!(breakers.admit(key), Admission::Allow);
            breakers.record(key, false);
        }
        assert_eq!(breakers.state(key), BreakerState::Open);
        assert_eq!(breakers.open_count(), 1);
        // Open absorbs `probe_after` rejected calls, then half-opens.
        assert_eq!(breakers.admit(key), Admission::Reject);
        assert_eq!(breakers.admit(key), Admission::Probe);
        assert_eq!(breakers.state(key), BreakerState::HalfOpen);
        assert_eq!(breakers.open_count(), 0);
        // Two probe successes close it.
        breakers.record(key, true);
        assert_eq!(breakers.state(key), BreakerState::HalfOpen);
        breakers.record(key, true);
        assert_eq!(breakers.state(key), BreakerState::Closed);
    }

    #[test]
    fn half_open_failure_reopens() {
        let breakers = CircuitBreakers::new(config());
        let key = "model/Y";
        for _ in 0..3 {
            breakers.record(key, false);
        }
        breakers.admit(key);
        breakers.admit(key); // -> HalfOpen
        breakers.record(key, false);
        assert_eq!(breakers.state(key), BreakerState::Open);
        assert_eq!(breakers.open_count(), 1);
        breakers.reset();
        assert_eq!(breakers.state(key), BreakerState::Closed);
        assert_eq!(breakers.open_count(), 0);
    }

    #[test]
    fn success_resets_failure_streak() {
        let breakers = CircuitBreakers::new(config());
        let key = "features/1";
        breakers.record(key, false);
        breakers.record(key, false);
        breakers.record(key, true);
        breakers.record(key, false);
        breakers.record(key, false);
        assert_eq!(breakers.state(key), BreakerState::Closed, "streak was broken");
        breakers.record(key, false);
        assert_eq!(breakers.state(key), BreakerState::Open);
    }

    #[test]
    fn breakers_are_per_key() {
        let breakers = CircuitBreakers::new(config());
        for _ in 0..3 {
            breakers.record("model/A", false);
        }
        assert_eq!(breakers.state("model/A"), BreakerState::Open);
        assert_eq!(breakers.state("model/B"), BreakerState::Closed);
        assert_eq!(breakers.admit("model/B"), Admission::Allow);
        assert_eq!(breakers.open_count(), 1);
    }

    #[test]
    fn half_open_probes_are_counted_and_reconcile() {
        let registry_before =
            rc_obs::global().counter(rc_obs::CLIENT_BREAKER_HALF_OPEN_PROBES).get();
        let breakers = CircuitBreakers::new(config());
        let key = "model/P";
        assert_eq!(breakers.half_open_probe_count(), 0);

        // Trip the breaker open: Allow admissions are not probes.
        for _ in 0..3 {
            assert_eq!(breakers.admit(key), Admission::Allow);
            breakers.record(key, false);
        }
        assert_eq!(breakers.half_open_probe_count(), 0, "Allow/Reject never count");

        // Open absorbs one Reject, then grants the Open→HalfOpen probe.
        assert_eq!(breakers.admit(key), Admission::Reject);
        assert_eq!(breakers.admit(key), Admission::Probe);
        assert_eq!(breakers.half_open_probe_count(), 1);

        // A failed probe re-opens; the next recovery grants probe #2,
        // and each HalfOpen admission before closing is a probe too.
        breakers.record(key, false);
        assert_eq!(breakers.admit(key), Admission::Reject);
        assert_eq!(breakers.admit(key), Admission::Probe); // #2
        breakers.record(key, true);
        assert_eq!(breakers.admit(key), Admission::Probe); // #3: still HalfOpen
        breakers.record(key, true); // success_threshold reached: Closed
        assert_eq!(breakers.state(key), BreakerState::Closed);
        assert_eq!(breakers.admit(key), Admission::Allow);
        assert_eq!(breakers.half_open_probe_count(), 3);

        // Exact reconciliation: every Probe admission — and nothing else
        // — landed on the shared registry counter.
        let registry_after =
            rc_obs::global().counter(rc_obs::CLIENT_BREAKER_HALF_OPEN_PROBES).get();
        assert!(registry_after - registry_before >= 3, "snapshot-visible probe counter");
        // Per-key isolation: another key's probes accumulate on the same
        // instance count.
        for _ in 0..3 {
            breakers.record("model/Q", false);
        }
        breakers.admit("model/Q");
        assert_eq!(breakers.admit("model/Q"), Admission::Probe);
        assert_eq!(breakers.half_open_probe_count(), 4);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            base_backoff: StdDuration::from_millis(4),
            max_backoff: StdDuration::from_millis(10),
            ..RetryPolicy::default()
        };
        let a = RetryJitter::new(&policy);
        let b = RetryJitter::new(&policy);
        for retry in 1..=6 {
            let ba = a.backoff(&policy, retry);
            let bb = b.backoff(&policy, retry);
            assert_eq!(ba, bb, "same seed, same backoff");
            let cap = StdDuration::from_millis(4).saturating_mul(1 << (retry - 1));
            let cap = cap.min(StdDuration::from_millis(10));
            assert!(ba >= cap.mul_f64(0.5) && ba <= cap, "retry {retry}: {ba:?} vs cap {cap:?}");
        }
    }

    #[test]
    fn zero_base_backoff_never_sleeps() {
        let policy = RetryPolicy {
            base_backoff: StdDuration::ZERO,
            max_backoff: StdDuration::ZERO,
            ..RetryPolicy::default()
        };
        let jitter = RetryJitter::new(&policy);
        assert_eq!(jitter.backoff(&policy, 1), StdDuration::ZERO);
        assert_eq!(jitter.backoff(&policy, 5), StdDuration::ZERO);
    }
}
