//! Resource Central: the paper's primary contribution.
//!
//! RC "collects VM telemetry, periodically learns these behaviors into
//! prediction models offline, and provides behavior predictions online to
//! various resource management systems" (§1). This crate implements both
//! halves:
//!
//! - **Offline** ([`pipeline`]): extraction, cleanup, time-ordered
//!   aggregation into per-subscription feature data, featurization
//!   ([`features`], widths matching Table 1), training (Random Forests and
//!   gradient-boosted trees from `rc-ml`, FFT labelling for the workload
//!   class), validation (Table 4's measures), and versioned publication to
//!   the store.
//! - **Online** ([`client`]): the thread-safe client library of Table 2 —
//!   `initialize`, `get_available_models`, `predict_single`,
//!   `predict_many`, `force_reload_cache`, `flush_cache` — with result,
//!   model, and feature caches, push/pull modes, and a local disk cache
//!   consulted when the store is unavailable.

pub(crate) mod admission;
pub mod cache;
pub mod cleanup;
pub mod client;
pub mod features;
pub mod inputs;
pub mod labels;
pub mod models;
pub mod pipeline;
pub mod prediction;
pub mod resilience;

pub use cache::{DiskCache, DiskLoadResult, FeatureCache, ResultCache, ShardedResultCache};
pub use cleanup::{cleanup, QuarantineReport};
pub use client::{CacheMode, ClientConfig, RcClient};
pub use features::SubscriptionFeatures;
pub use inputs::ClientInputs;
pub use labels::{label_deployments, label_vms, LabeledDeployment, LabeledVm};
pub use models::{feature_store_key, Estimator, ModelApproach, ModelSpec, TrainedModel};
pub use pipeline::{
    run_pipeline, BucketStats, MetricReport, PipelineConfig, PipelineError, PipelineOutput,
    PublishGate,
};
pub use prediction::{Prediction, PredictionResponse, Served, ShadowPrediction};
pub use resilience::{BreakerConfig, BreakerState, ClientHealth, DegradedReason, RetryPolicy};
