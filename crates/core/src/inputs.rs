//! Client inputs: what a resource manager knows when it asks for a
//! prediction.
//!
//! §4.2: "The client (e.g., VM scheduler, health monitoring system) calls
//! the DLL passing as input the model name and information about the
//! VM(s) for which it wants predictions. ... Examples of client inputs
//! are subscription id, VM type and size, and deployment size." Everything
//! here is available *at VM deployment time* — no observed behaviour.

use serde::{Deserialize, Serialize};

use rc_types::time::Timestamp;
use rc_types::vm::{OsType, Party, ProdTag, SubscriptionId, VmRole, VmType};

/// The client-input record for one prediction request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientInputs {
    /// Subscription the VM (or deployment) belongs to.
    pub subscription: SubscriptionId,
    /// First- or third-party customer.
    pub party: Party,
    /// VM role (IaaS or PaaS functional role).
    pub role: VmRole,
    /// Production annotation.
    pub prod: ProdTag,
    /// Guest operating system.
    pub os: OsType,
    /// Requested size as a SKU catalog index.
    pub sku_index: usize,
    /// Time of the deployment request.
    pub deployment_time: Timestamp,
    /// Number of VMs requested in the deployment so far.
    pub deployment_size_hint: u32,
    /// Top first-party service id, or `None` for "unknown".
    pub service: Option<u8>,
}

impl ClientInputs {
    /// The VM type implied by the role.
    pub fn vm_type(&self) -> VmType {
        self.role.vm_type()
    }

    /// Stable 64-bit hash of `(model_name, inputs)` used as the result-
    /// cache key (§4.2: "looks up the results cache first by hashing the
    /// model name and client inputs").
    ///
    /// FNV-1a over a canonical byte encoding: stable across processes and
    /// platforms, unlike `std::hash`.
    pub fn cache_key(&self, model_name: &str) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        };
        for b in model_name.as_bytes() {
            eat(*b);
        }
        for b in self.subscription.0.to_le_bytes() {
            eat(b);
        }
        eat(match self.party {
            Party::First => 0,
            Party::Third => 1,
        });
        eat(self.role.index() as u8);
        eat(match self.prod {
            ProdTag::Production => 0,
            ProdTag::NonProduction => 1,
        });
        eat(match self.os {
            OsType::Windows => 0,
            OsType::Linux => 1,
        });
        eat(self.sku_index as u8);
        // §4.2: result caching "works well when the client does not
        // provide any rapidly changing inputs" — so the key buckets the
        // timestamp by day and the deployment-size hint by power of two,
        // rather than hashing their raw values.
        for b in self.deployment_time.day_index().to_le_bytes() {
            eat(b);
        }
        eat(32 - self.deployment_size_hint.leading_zeros() as u8);
        eat(self.service.map_or(0xff, |s| s));
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_types::vm::SubscriptionId;

    fn sample() -> ClientInputs {
        ClientInputs {
            subscription: SubscriptionId(42),
            party: Party::Third,
            role: VmRole::Iaas,
            prod: ProdTag::Production,
            os: OsType::Linux,
            sku_index: 2,
            deployment_time: Timestamp::from_hours(30),
            deployment_size_hint: 5,
            service: None,
        }
    }

    #[test]
    fn cache_key_is_stable_and_model_scoped() {
        let a = sample();
        assert_eq!(a.cache_key("VM_P95UTIL"), a.cache_key("VM_P95UTIL"));
        assert_ne!(a.cache_key("VM_P95UTIL"), a.cache_key("VM_AVGUTIL"));
    }

    #[test]
    fn cache_key_changes_with_inputs() {
        let a = sample();
        let mut b = a;
        b.subscription = SubscriptionId(43);
        assert_ne!(a.cache_key("m"), b.cache_key("m"));
        let mut c = a;
        c.sku_index = 3;
        assert_ne!(a.cache_key("m"), c.cache_key("m"));
    }

    #[test]
    fn cache_key_buckets_deployment_size_by_power_of_two() {
        let a = sample(); // hint = 5
        let mut same_bucket = a;
        same_bucket.deployment_size_hint = 7;
        assert_eq!(a.cache_key("m"), same_bucket.cache_key("m"));
        let mut next_bucket = a;
        next_bucket.deployment_size_hint = 9;
        assert_ne!(a.cache_key("m"), next_bucket.cache_key("m"));
    }

    #[test]
    fn cache_key_buckets_time_by_day() {
        let a = sample();
        let mut same_day = a;
        same_day.deployment_time = Timestamp::from_hours(31);
        assert_eq!(a.cache_key("m"), same_day.cache_key("m"));
        let mut next_day = a;
        next_day.deployment_time = Timestamp::from_hours(50);
        assert_ne!(a.cache_key("m"), next_day.cache_key("m"));
    }

    #[test]
    fn vm_type_follows_role() {
        let mut a = sample();
        assert_eq!(a.vm_type(), VmType::Iaas);
        a.role = VmRole::PaasWorker;
        assert_eq!(a.vm_type(), VmType::Paas);
    }
}
