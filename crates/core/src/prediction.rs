//! Prediction results as the client library returns them.

use serde::{Deserialize, Serialize};

/// One prediction: a bucket index plus the model's confidence score
/// (§4.2: "Each prediction result is typically a predicted value and a
/// score. The score reflects the model's confidence on the predicted
/// value.").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted bucket index (Table 3 semantics per metric).
    pub value: usize,
    /// Confidence in `[0, 1]`.
    pub score: f64,
}

/// A shadow evaluation's paired result: what the serving model answered
/// and what a not-yet-promoted candidate would have answered for the same
/// inputs, both resolved against one pinned serve snapshot. Produced by
/// `RcClient::shadow_predict`; never visible to prediction clients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShadowPrediction {
    /// The serving model's answer; `None` when the model or the
    /// subscription's feature record is not resident.
    pub serving: Option<Prediction>,
    /// The candidate's answer; `None` only when the feature record is
    /// missing.
    pub candidate: Option<Prediction>,
}

/// The client's reply: a prediction, or the no-prediction flag the caller
/// must be prepared to handle (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PredictionResponse {
    /// A prediction was produced (possibly served from cache).
    Predicted(Prediction),
    /// No prediction: unknown model, missing feature data, store
    /// unavailable without a cached copy, or (in pull mode) a cache miss.
    NoPrediction,
}

/// How a lookup was resolved — the degradation ladder rung it landed on.
///
/// Every lookup lands on exactly one rung, so over any interval
/// `Hit + Fresh + Stale + Default` equals the number of lookups; the
/// chaos suite asserts that reconciliation from registry deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Served {
    /// Result-cache hit (no model executed).
    Hit,
    /// Model executed against fresh data (in-memory or store/disk within
    /// expiry).
    Fresh,
    /// Model executed against stale data (disk past expiry, inside the
    /// grace window).
    Stale,
    /// The no-prediction default.
    Default,
}

impl PredictionResponse {
    /// The prediction, if one was produced.
    pub fn prediction(&self) -> Option<Prediction> {
        match self {
            PredictionResponse::Predicted(p) => Some(*p),
            PredictionResponse::NoPrediction => None,
        }
    }

    /// The prediction if its score reaches `threshold`, else `None` —
    /// the "ignore a prediction when the confidence score is too low"
    /// pattern of §4.2 and line 10 of Algorithm 1.
    pub fn confident(&self, threshold: f64) -> Option<Prediction> {
        self.prediction().filter(|p| p.score >= threshold)
    }

    /// True when a prediction was produced.
    pub fn is_predicted(&self) -> bool {
        matches!(self, PredictionResponse::Predicted(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confident_filters_by_score() {
        let low = PredictionResponse::Predicted(Prediction { value: 2, score: 0.4 });
        let high = PredictionResponse::Predicted(Prediction { value: 2, score: 0.9 });
        assert_eq!(low.confident(0.6), None);
        assert_eq!(high.confident(0.6).unwrap().value, 2);
        assert_eq!(PredictionResponse::NoPrediction.confident(0.0), None);
    }

    #[test]
    fn accessors() {
        let p = PredictionResponse::Predicted(Prediction { value: 1, score: 0.7 });
        assert!(p.is_predicted());
        assert_eq!(p.prediction().unwrap().value, 1);
        assert!(!PredictionResponse::NoPrediction.is_predicted());
    }
}
