//! Batch admission for pull-mode refreshes.
//!
//! A pull-mode result-cache miss answers no-prediction immediately and
//! hands the key to a background worker to fill. The old path funneled
//! every miss through `in_flight: Mutex<HashSet<u64>>` — a global lock
//! acquired on the predict path, exactly the thundering-herd shape it
//! was trying to dedup. This module replaces it with two lock-free
//! pieces:
//!
//! - an [`InFlightTable`]: a fixed array of atomic slots keyed by the
//!   cache key. Claiming is a bounded linear probe with one CAS; a key
//!   already present means another caller got there first and the miss
//!   *coalesces* (no second enqueue). On probe-window overflow the key is
//!   admitted anyway — the worst case is one duplicate model execution
//!   writing the same cache entry twice, which is benign, whereas
//!   refusing admission could strand a key unfilled forever.
//! - a bounded MPMC [`ArrayQueue`] carrying the refresh requests, whose
//!   `push` failure *is* the backpressure signal: when producers outrun
//!   the worker the excess misses are rejected (counted, and the caller
//!   already has its default answer) instead of growing an unbounded
//!   channel.
//!
//! The worker parks on a condvar only when the queue runs dry; producers
//! touch that mutex only when the worker is actually parked, so the
//! steady-state submit path is CAS + push + one atomic flag load.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crossbeam::queue::ArrayQueue;

use crate::inputs::ClientInputs;

/// One queued refresh: the model to run, the inputs to run it against,
/// and the result-cache key the response will fill.
pub(crate) type RefreshRequest = (String, ClientInputs, u64);

/// How a submit resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SubmitOutcome {
    /// Admitted into the queue; the worker will process it.
    Enqueued,
    /// An identical key is already in flight — the herd coalesced.
    Coalesced,
    /// The queue was full — backpressure dropped the refresh.
    Rejected,
}

/// Slot value: no key claimed, ever.
const EMPTY: u64 = 0;
/// Slot value: a key was claimed here and has since been released.
/// Distinct from [`EMPTY`] so probes for a *different* key that passed
/// through this slot keep probing instead of stopping early.
const TOMBSTONE: u64 = 1;
/// Slots probed before giving up and admitting the key anyway.
const PROBE_WINDOW: usize = 16;

/// A fixed-size, lock-free membership table for in-flight cache keys.
struct InFlightTable {
    slots: Box<[AtomicU64]>,
    mask: u64,
}

impl InFlightTable {
    fn new(capacity: usize) -> InFlightTable {
        let n = capacity.next_power_of_two().max(64);
        InFlightTable {
            slots: (0..n).map(|_| AtomicU64::new(EMPTY)).collect(),
            mask: (n - 1) as u64,
        }
    }

    /// Cache keys are FNV hashes, so 0 and 1 are vanishingly rare; remap
    /// them off the sentinel values (two remapped keys may alias two
    /// real keys — the cost is one spurious coalesce, which only delays
    /// a cache fill, never corrupts one).
    fn encode(key: u64) -> u64 {
        if key <= TOMBSTONE {
            key.wrapping_add(2)
        } else {
            key
        }
    }

    /// Attempts to claim `key`. `false` means it is already in flight
    /// (coalesce). On probe-window overflow the claim "succeeds" without
    /// recording — see the module docs for why duplicates are benign.
    fn claim(&self, key: u64) -> bool {
        let key = Self::encode(key);
        let mut at = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) & self.mask;
        for _ in 0..PROBE_WINDOW {
            let slot = &self.slots[at as usize];
            loop {
                match slot.load(Ordering::Acquire) {
                    cur if cur == key => return false,
                    cur if cur == EMPTY || cur == TOMBSTONE => {
                        match slot.compare_exchange(cur, key, Ordering::AcqRel, Ordering::Acquire) {
                            Ok(_) => return true,
                            // Someone raced us into this slot; re-examine
                            // it (it might now hold our key).
                            Err(_) => continue,
                        }
                    }
                    _ => break,
                }
            }
            at = (at + 1) & self.mask;
        }
        true
    }

    /// Releases a previously claimed key (no-op for overflow-admitted
    /// keys that were never recorded).
    fn release(&self, key: u64) {
        let key = Self::encode(key);
        let mut at = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) & self.mask;
        for _ in 0..PROBE_WINDOW {
            let slot = &self.slots[at as usize];
            if slot.compare_exchange(key, TOMBSTONE, Ordering::AcqRel, Ordering::Acquire).is_ok() {
                return;
            }
            at = (at + 1) & self.mask;
        }
    }
}

/// The bounded admission queue between predict-path producers and the
/// pull worker.
pub(crate) struct AdmissionQueue {
    queue: ArrayQueue<RefreshRequest>,
    in_flight: InFlightTable,
    /// Requests admitted but not yet completed (queued + in the worker's
    /// hands). `drain` waits on this reaching zero.
    pending: AtomicUsize,
    /// True while the worker is parked on the condvar; producers skip
    /// the park mutex entirely when it is false.
    parked: AtomicBool,
    park: Mutex<()>,
    wake: Condvar,
    closed: AtomicBool,
}

impl AdmissionQueue {
    pub(crate) fn new(capacity: usize) -> AdmissionQueue {
        let capacity = capacity.max(1);
        AdmissionQueue {
            queue: ArrayQueue::new(capacity),
            // Size the dedup table past the queue so claims rarely probe
            // far even at full queue depth.
            in_flight: InFlightTable::new(capacity.saturating_mul(2)),
            pending: AtomicUsize::new(0),
            parked: AtomicBool::new(false),
            park: Mutex::new(()),
            wake: Condvar::new(),
            closed: AtomicBool::new(false),
        }
    }

    /// Producer side: admit one refresh for `key`, coalescing duplicates
    /// and shedding load when the queue is full.
    pub(crate) fn submit(
        &self,
        model_name: &str,
        inputs: &ClientInputs,
        key: u64,
    ) -> SubmitOutcome {
        if !self.in_flight.claim(key) {
            return SubmitOutcome::Coalesced;
        }
        self.pending.fetch_add(1, Ordering::SeqCst);
        match self.queue.push((model_name.to_string(), *inputs, key)) {
            Ok(()) => {
                self.notify();
                SubmitOutcome::Enqueued
            }
            Err(_) => {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                self.in_flight.release(key);
                SubmitOutcome::Rejected
            }
        }
    }

    /// Worker side: next request, if any.
    pub(crate) fn pop(&self) -> Option<RefreshRequest> {
        self.queue.pop()
    }

    /// Worker side: a request popped earlier is fully processed — its
    /// key may be admitted again.
    pub(crate) fn complete(&self, key: u64) {
        self.in_flight.release(key);
        self.pending.fetch_sub(1, Ordering::SeqCst);
    }

    /// Worker side: park until new work is likely (or the timeout
    /// elapses — the worker re-checks shutdown on each wake).
    pub(crate) fn park(&self, timeout: Duration) {
        let guard = self.park.lock().expect("admission park lock");
        self.parked.store(true, Ordering::SeqCst);
        if self.queue.is_empty() && !self.closed.load(Ordering::SeqCst) {
            let _unused = self.wake.wait_timeout(guard, timeout).expect("admission park wait");
        }
        self.parked.store(false, Ordering::SeqCst);
    }

    fn notify(&self) {
        if self.parked.load(Ordering::SeqCst) {
            let _guard = self.park.lock().expect("admission park lock");
            self.wake.notify_all();
        }
    }

    /// Shuts the queue down, waking a parked worker.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let _guard = self.park.lock().expect("admission park lock");
        self.wake.notify_all();
    }

    /// True when every admitted request has completed.
    pub(crate) fn is_idle(&self) -> bool {
        self.pending.load(Ordering::SeqCst) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_types::time::Timestamp;
    use rc_types::vm::{OsType, Party, ProdTag, SubscriptionId, VmRole};

    fn inputs(n: u64) -> ClientInputs {
        ClientInputs {
            subscription: SubscriptionId(n as u32),
            party: Party::First,
            role: VmRole::Iaas,
            prod: ProdTag::Production,
            os: OsType::Linux,
            sku_index: 0,
            deployment_time: Timestamp::ZERO,
            deployment_size_hint: 1,
            service: None,
        }
    }

    #[test]
    fn submit_coalesces_duplicates_until_complete() {
        let q = AdmissionQueue::new(16);
        assert_eq!(q.submit("m", &inputs(1), 42), SubmitOutcome::Enqueued);
        assert_eq!(q.submit("m", &inputs(1), 42), SubmitOutcome::Coalesced);
        assert_eq!(q.submit("m", &inputs(2), 43), SubmitOutcome::Enqueued);
        let (_, _, key) = q.pop().expect("first request queued");
        assert_eq!(key, 42);
        q.complete(key);
        // Released: the key admits again.
        assert_eq!(q.submit("m", &inputs(1), 42), SubmitOutcome::Enqueued);
    }

    #[test]
    fn full_queue_rejects_and_releases_claim() {
        let q = AdmissionQueue::new(2);
        assert_eq!(q.submit("m", &inputs(1), 101), SubmitOutcome::Enqueued);
        assert_eq!(q.submit("m", &inputs(2), 102), SubmitOutcome::Enqueued);
        assert_eq!(q.submit("m", &inputs(3), 103), SubmitOutcome::Rejected);
        // The rejected key was released, so once space frees it admits.
        let (_, _, key) = q.pop().unwrap();
        q.complete(key);
        assert_eq!(q.submit("m", &inputs(3), 103), SubmitOutcome::Enqueued);
    }

    #[test]
    fn pending_tracks_queue_plus_in_worker_depth() {
        let q = AdmissionQueue::new(8);
        assert!(q.is_idle());
        q.submit("m", &inputs(1), 7);
        q.submit("m", &inputs(2), 8);
        assert!(!q.is_idle());
        let (_, _, k1) = q.pop().unwrap();
        assert!(!q.is_idle(), "popped but not completed still counts");
        q.complete(k1);
        let (_, _, k2) = q.pop().unwrap();
        q.complete(k2);
        assert!(q.is_idle());
    }

    #[test]
    fn sentinel_keys_are_remapped_not_lost() {
        let q = AdmissionQueue::new(8);
        assert_eq!(q.submit("m", &inputs(1), 0), SubmitOutcome::Enqueued);
        assert_eq!(q.submit("m", &inputs(1), 0), SubmitOutcome::Coalesced);
        assert_eq!(q.submit("m", &inputs(2), 1), SubmitOutcome::Enqueued);
        q.complete(0);
        assert_eq!(q.submit("m", &inputs(1), 0), SubmitOutcome::Enqueued);
    }

    #[test]
    fn concurrent_submitters_admit_each_key_at_most_once_per_flight() {
        let q = std::sync::Arc::new(AdmissionQueue::new(1024));
        const THREADS: usize = 4;
        const KEYS: u64 = 200;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let q = q.clone();
                s.spawn(move || {
                    for k in 0..KEYS {
                        // Keys far apart so probe windows never overlap.
                        q.submit("m", &inputs(k), k.wrapping_mul(0x9E37_79B9) + 10);
                    }
                });
            }
        });
        // Every key admitted exactly once across all threads.
        let mut drained = 0;
        while let Some((_, _, key)) = q.pop() {
            drained += 1;
            q.complete(key);
        }
        assert_eq!(drained, KEYS, "each key coalesced to one enqueue");
        assert!(q.is_idle());
    }

    #[test]
    fn shutdown_under_backpressure_accounts_exactly() {
        // The client-drop sequence against a saturated queue: submit past
        // capacity, close, then drain the way the pull worker's shutdown
        // path does. Single-threaded, so every count is exact and the
        // outcome of every submit is deterministic.
        let q = AdmissionQueue::new(4);
        let mut enqueued = 0u64;
        let mut coalesced = 0u64;
        let mut rejected = 0u64;
        let mut submits = 0u64;
        let mut tally = |outcome: SubmitOutcome| {
            submits += 1;
            match outcome {
                SubmitOutcome::Enqueued => enqueued += 1,
                SubmitOutcome::Coalesced => coalesced += 1,
                SubmitOutcome::Rejected => rejected += 1,
            }
        };
        for k in 1..=4u64 {
            tally(q.submit("m", &inputs(k), k + 100));
        }
        tally(q.submit("m", &inputs(1), 101)); // duplicate: coalesces
        tally(q.submit("m", &inputs(5), 105)); // full: backpressure
        tally(q.submit("m", &inputs(6), 106)); // still full
        assert_eq!((enqueued, coalesced, rejected), (4, 1, 2));
        assert_eq!(submits, enqueued + coalesced + rejected, "every submit resolves one way");
        assert!(!q.is_idle());

        // Drop-the-client: close, then the worker drains what was
        // admitted. Nothing new may slip in after close has begun
        // rejecting producers' view of the world (the queue itself stays
        // pop-able so admitted work is never stranded).
        q.close();
        let mut executed = 0u64;
        while let Some((_, _, key)) = q.pop() {
            executed += 1;
            q.complete(key);
        }
        assert_eq!(executed, enqueued, "every admitted request drains exactly once");
        assert!(q.is_idle(), "drain leaves no pending work");
        assert!(q.pop().is_none());
    }

    #[test]
    fn concurrent_saturation_then_close_drains_exactly() {
        // Many producers hammer a tiny queue while a worker drains it,
        // then the client drops (close + join). Whatever the
        // interleaving, the accounting identities must hold exactly:
        // submits == enqueued + coalesced + rejected, and every enqueued
        // request is executed exactly once — by the steady-state worker
        // or by its shutdown drain.
        use std::sync::atomic::{AtomicU64, Ordering};
        let q = std::sync::Arc::new(AdmissionQueue::new(8));
        let executed = std::sync::Arc::new(AtomicU64::new(0));

        let worker = {
            let q = q.clone();
            let executed = executed.clone();
            std::thread::spawn(move || loop {
                match q.pop() {
                    Some((_, _, key)) => {
                        executed.fetch_add(1, Ordering::SeqCst);
                        q.complete(key);
                    }
                    None => {
                        if q.closed.load(Ordering::SeqCst) {
                            return;
                        }
                        q.park(Duration::from_millis(1));
                    }
                }
            })
        };

        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 500;
        let totals: Vec<(u64, u64, u64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let q = q.clone();
                    s.spawn(move || {
                        let (mut e, mut c, mut r) = (0u64, 0u64, 0u64);
                        for i in 0..PER_THREAD {
                            // Distinct keys spread over a small range so
                            // coalescing genuinely happens under load.
                            let key = 200 + (t * PER_THREAD + i) % 64;
                            match q.submit("m", &inputs(key), key) {
                                SubmitOutcome::Enqueued => e += 1,
                                SubmitOutcome::Coalesced => c += 1,
                                SubmitOutcome::Rejected => r += 1,
                            }
                        }
                        (e, c, r)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let enqueued: u64 = totals.iter().map(|t| t.0).sum();
        let coalesced: u64 = totals.iter().map(|t| t.1).sum();
        let rejected: u64 = totals.iter().map(|t| t.2).sum();
        assert_eq!(enqueued + coalesced + rejected, THREADS * PER_THREAD);
        assert!(rejected > 0, "a capacity-8 queue under 2000 submits must shed load");

        // Drop the client: close wakes the worker; joining it proves the
        // shutdown drain terminates. The worker exits only once the
        // queue is empty, so executed == enqueued exactly.
        q.close();
        worker.join().unwrap();
        assert_eq!(executed.load(Ordering::SeqCst), enqueued);
        assert!(q.is_idle(), "all claims released after the drain");
        // And released means re-admittable: no key is stranded.
        assert_eq!(q.submit("m", &inputs(1), 200), SubmitOutcome::Enqueued);
    }

    #[test]
    fn park_returns_on_notify_and_close() {
        let q = std::sync::Arc::new(AdmissionQueue::new(8));
        let qc = q.clone();
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            qc.submit("m", &inputs(1), 99);
        });
        // Parks, then wakes when the submit lands (or the timeout trips —
        // either way this returns promptly instead of hanging).
        q.park(Duration::from_secs(5));
        waker.join().unwrap();
        assert!(q.pop().is_some());
        q.close();
        q.park(Duration::from_secs(5)); // closed: returns immediately
    }
}
