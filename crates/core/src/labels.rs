//! Label extraction: turning raw telemetry into training examples.
//!
//! This is the "data extraction, cleanup, aggregation" front of the
//! offline workflow (§4.2). Every VM yields observed buckets for the
//! utilization and lifetime metrics; VMs alive for at least three days
//! also get an FFT workload-class label (§3.6); every deployment yields
//! max-size labels.

use rc_ml::fft::{detect_diurnal_periodicity, PeriodicityConfig};
use rc_trace::Trace;
use rc_types::buckets::{
    Bucketizer, DeploymentSizeBucketizer, LifetimeBucketizer, UtilizationBucketizer,
};
use rc_types::time::Duration;
use rc_types::vm::{OsType, VmId};

use crate::features::{DeploymentObservation, VmObservation};
use crate::inputs::ClientInputs;

/// Days of telemetry required before the FFT classifier will label a VM.
pub const CLASSIFY_MIN_DAYS: f64 = 3.0;

/// Maximum days of telemetry fed to the FFT (longer series are truncated;
/// 6 days is plenty to resolve a diurnal peak).
pub const CLASSIFY_MAX_DAYS: f64 = 6.0;

/// One labelled VM example.
#[derive(Debug, Clone)]
pub struct LabeledVm {
    /// The VM this example describes.
    pub vm_id: VmId,
    /// Client inputs as the scheduler would have seen them at creation.
    pub inputs: ClientInputs,
    /// Observed behaviour (the labels).
    pub obs: VmObservation,
    /// Completion time in seconds (when the observation becomes usable as
    /// history).
    pub completed_secs: u64,
}

/// One labelled deployment example.
#[derive(Debug, Clone)]
pub struct LabeledDeployment {
    /// Client inputs at deployment-creation time. The deployment-size
    /// models must predict the eventual size, so `deployment_size_hint`
    /// is fixed at 1 here (using the real size would leak the label).
    pub inputs: ClientInputs,
    /// Observed size buckets.
    pub obs: DeploymentObservation,
    /// Time at which the deployment's maximum size is known.
    pub completed_secs: u64,
}

/// Extracts labelled VM examples, sorted by creation time.
///
/// `max_util_samples` bounds the telemetry read per VM when summarizing
/// utilization (long-lived VMs are strided).
pub fn label_vms(trace: &Trace, max_util_samples: usize) -> Vec<LabeledVm> {
    let util_b = UtilizationBucketizer;
    let life_b = LifetimeBucketizer;
    let fft_cfg = PeriodicityConfig::default();
    let mut out = Vec::with_capacity(trace.n_vms());
    for id in trace.vm_ids() {
        let vm = trace.vm(id);
        // VMs shorter than one telemetry interval still get labelled:
        // `vm_util_summary` falls back to the model's targets when the
        // slot range is empty (a sub-5-minute VM has one partial reading
        // in production; its parameters are the best estimate of it).
        let (avg, p95) = trace.vm_util_summary(id, max_util_samples);
        let lifetime = vm.lifetime();
        let class = classify_vm(trace, id, lifetime, &fft_cfg);
        let inputs = vm_inputs(trace, id);
        out.push(LabeledVm {
            vm_id: id,
            inputs,
            obs: VmObservation {
                created_secs: vm.created.as_secs(),
                avg_bucket: util_b.bucket(&avg),
                p95_bucket: util_b.bucket(&p95),
                lifetime_bucket: life_b.bucket(&lifetime),
                class,
                cores: vm.sku.cores,
                memory_gb: vm.sku.memory_gb,
                os_windows: vm.os == OsType::Windows,
                avg_util: avg,
                p95_util: p95,
                lifetime_secs: lifetime.as_secs(),
            },
            completed_secs: vm.deleted.as_secs(),
        });
    }
    out
}

/// Runs the FFT periodicity analysis on a VM's average-utilization series.
///
/// Returns `Some(0)` for delay-insensitive, `Some(1)` for interactive,
/// `None` ("Unknown") when the VM lived less than [`CLASSIFY_MIN_DAYS`]
/// inside the observation window.
pub fn classify_vm(
    trace: &Trace,
    id: VmId,
    lifetime: Duration,
    cfg: &PeriodicityConfig,
) -> Option<usize> {
    if lifetime.as_days_f64() < CLASSIFY_MIN_DAYS {
        return None;
    }
    let (first_slot, last_slot) = trace.vm_slots(id);
    let observed_days = (last_slot - first_slot) as f64 * 300.0 / 86_400.0;
    if observed_days < CLASSIFY_MIN_DAYS {
        return None;
    }
    let max_slots = (CLASSIFY_MAX_DAYS * 288.0) as u64;
    let last = last_slot.min(first_slot + max_slots);
    let series = trace.util_params(id).avg_series(first_slot, last);
    let result = detect_diurnal_periodicity(&series, cfg);
    if !result.enough_data {
        return None;
    }
    Some(usize::from(result.periodic))
}

/// The client inputs a scheduler would pass when placing this VM.
pub fn vm_inputs(trace: &Trace, id: VmId) -> ClientInputs {
    let vm = trace.vm(id);
    let sub = trace.subscription_of(id);
    let dep = &trace.deployments[vm.deployment.0 as usize];
    ClientInputs {
        subscription: vm.subscription,
        party: vm.party,
        role: vm.role,
        prod: vm.prod,
        os: vm.os,
        sku_index: vm.sku.catalog_index(),
        deployment_time: vm.created,
        // The scheduler knows the requested deployment size when placing
        // VMs (the deployment request names its VMs).
        deployment_size_hint: dep.n_vms,
        service: sub.service,
    }
}

/// Extracts labelled deployment examples, sorted by creation time.
pub fn label_deployments(trace: &Trace) -> Vec<LabeledDeployment> {
    let size_b = DeploymentSizeBucketizer;
    let mut out: Vec<LabeledDeployment> = trace
        .deployments
        .iter()
        .map(|dep| {
            let sub = &trace.subscriptions[dep.subscription.0 as usize];
            let inputs = ClientInputs {
                subscription: dep.subscription,
                party: sub.party,
                role: sub.primary_role,
                prod: sub.prod,
                os: sub.os,
                sku_index: sub.primary_sku,
                deployment_time: dep.created,
                deployment_size_hint: 1,
                service: sub.service,
            };
            LabeledDeployment {
                inputs,
                obs: DeploymentObservation {
                    created_secs: dep.created.as_secs(),
                    vms_bucket: size_b.bucket(&(dep.n_vms as u64)),
                    cores_bucket: size_b.bucket(&(dep.n_cores as u64)),
                    n_vms: dep.n_vms as u64,
                },
                // The deployment's maximum size is known once its growth
                // window (one day) has passed.
                completed_secs: dep.created.as_secs() + 86_400,
            }
        })
        .collect();
    out.sort_by_key(|d| d.obs.created_secs);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_trace::TraceConfig;

    fn trace() -> Trace {
        Trace::generate(&TraceConfig {
            target_vms: 4_000,
            n_subscriptions: 200,
            days: 25,
            ..TraceConfig::small()
        })
    }

    #[test]
    fn labels_cover_nearly_all_vms() {
        let t = trace();
        let labels = label_vms(&t, 200);
        assert_eq!(labels.len(), t.n_vms(), "every VM gets a label");
        for w in labels.windows(2) {
            assert!(w[0].obs.created_secs <= w[1].obs.created_secs);
        }
    }

    #[test]
    fn observed_buckets_are_consistent() {
        let t = trace();
        for l in label_vms(&t, 200).iter().take(500) {
            assert!(l.obs.p95_bucket >= l.obs.avg_bucket, "p95 >= avg bucket");
            assert!(l.obs.avg_bucket < 4 && l.obs.lifetime_bucket < 4);
            assert!(l.completed_secs >= l.obs.created_secs);
        }
    }

    #[test]
    fn short_vms_are_unclassified() {
        let t = trace();
        for l in label_vms(&t, 200) {
            if (l.obs.lifetime_secs as f64) < CLASSIFY_MIN_DAYS * 86_400.0 {
                assert_eq!(l.obs.class, None);
            }
        }
    }

    #[test]
    fn interactive_intent_mostly_matches_fft_labels() {
        // The FFT classifier should recover the generator's intent for
        // long-running VMs (validating §3.6's methodology end to end).
        let t = trace();
        let labels = label_vms(&t, 200);
        let mut agree = 0usize;
        let mut total = 0usize;
        for l in &labels {
            if let Some(class) = l.obs.class {
                let intent = usize::from(t.interactive_intent[l.vm_id.0 as usize]);
                total += 1;
                if class == intent {
                    agree += 1;
                }
            }
        }
        assert!(total > 20, "need some classified VMs, got {total}");
        assert!(agree as f64 / total as f64 > 0.85, "FFT agrees with intent on {agree}/{total}");
    }

    #[test]
    fn deployment_labels_match_records() {
        let t = trace();
        let labels = label_deployments(&t);
        assert_eq!(labels.len(), t.deployments.len());
        for l in labels.iter().take(300) {
            assert_eq!(l.inputs.deployment_size_hint, 1, "no label leakage");
            assert!(l.obs.vms_bucket < 4 && l.obs.cores_bucket < 4);
        }
    }
}
