//! Model specifications and trained-model containers (Table 1).
//!
//! Data analysts "provide a specification describing the inputs to each
//! model and record them in the store" (§4.2). [`ModelSpec`] is that
//! specification: which metric, which learning approach, and which
//! feature-assembly function. [`TrainedModel`] wraps the trained
//! estimator in a serializable enum the client library can cache.

use serde::{Deserialize, Serialize};

use rc_ml::{Classifier, GradientBoosting, RandomForest};
use rc_types::metrics::PredictionMetric;

use crate::features::{
    class_feature_names, class_features, deployment_feature_names, deployment_features,
    lifetime_feature_names, lifetime_features, utilization_feature_names, utilization_features,
    SubscriptionFeatures,
};
use crate::inputs::ClientInputs;

/// The learning approach used for a metric (Table 1, column 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelApproach {
    /// Random Forest classifier.
    RandomForest,
    /// Extreme Gradient Boosting Tree classifier.
    GradientBoosting,
    /// FFT labelling feeding a Gradient Boosting Tree classifier.
    FftGradientBoosting,
}

impl ModelApproach {
    /// Table 1's label for the approach.
    pub const fn label(self) -> &'static str {
        match self {
            ModelApproach::RandomForest => "Random Forest",
            ModelApproach::GradientBoosting => "Extreme Gradient Boosting Tree",
            ModelApproach::FftGradientBoosting => "FFT, Extreme Gradient Boosting Tree",
        }
    }
}

/// The static specification of one model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// The metric the model predicts.
    pub metric: PredictionMetric,
    /// The learning approach (Table 1).
    pub approach: ModelApproach,
}

impl ModelSpec {
    /// The specification table — one row per metric, mirroring Table 1.
    pub fn all() -> [ModelSpec; 6] {
        [
            ModelSpec {
                metric: PredictionMetric::AvgCpuUtil,
                approach: ModelApproach::RandomForest,
            },
            ModelSpec {
                metric: PredictionMetric::P95MaxCpuUtil,
                approach: ModelApproach::RandomForest,
            },
            ModelSpec {
                metric: PredictionMetric::DeploymentSizeVms,
                approach: ModelApproach::GradientBoosting,
            },
            ModelSpec {
                metric: PredictionMetric::DeploymentSizeCores,
                approach: ModelApproach::GradientBoosting,
            },
            ModelSpec {
                metric: PredictionMetric::Lifetime,
                approach: ModelApproach::GradientBoosting,
            },
            ModelSpec {
                metric: PredictionMetric::WorkloadClass,
                approach: ModelApproach::FftGradientBoosting,
            },
        ]
    }

    /// Looks up the spec for a metric.
    pub fn for_metric(metric: PredictionMetric) -> ModelSpec {
        Self::all()[metric.index()]
    }

    /// Assembles the feature vector this model consumes.
    pub fn features(&self, inputs: &ClientInputs, sub: &SubscriptionFeatures) -> Vec<f64> {
        match self.metric {
            PredictionMetric::AvgCpuUtil | PredictionMetric::P95MaxCpuUtil => {
                utilization_features(inputs, sub)
            }
            PredictionMetric::DeploymentSizeVms | PredictionMetric::DeploymentSizeCores => {
                deployment_features(inputs, sub)
            }
            PredictionMetric::Lifetime => lifetime_features(inputs, sub),
            PredictionMetric::WorkloadClass => class_features(inputs, sub),
        }
    }

    /// Names of the features, aligned with [`ModelSpec::features`].
    pub fn feature_names(&self) -> Vec<String> {
        match self.metric {
            PredictionMetric::AvgCpuUtil | PredictionMetric::P95MaxCpuUtil => {
                utilization_feature_names()
            }
            PredictionMetric::DeploymentSizeVms | PredictionMetric::DeploymentSizeCores => {
                deployment_feature_names()
            }
            PredictionMetric::Lifetime => lifetime_feature_names(),
            PredictionMetric::WorkloadClass => class_feature_names(),
        }
    }

    /// Number of input features (Table 1, column 3).
    pub fn n_features(&self) -> usize {
        self.feature_names().len()
    }

    /// Store key under which the trained model is published.
    pub fn store_key(&self) -> String {
        format!("model/{}", self.metric.model_name())
    }
}

/// Store key for a subscription's feature-data record.
pub fn feature_store_key(subscription: rc_types::vm::SubscriptionId) -> String {
    format!("features/{}", subscription.0)
}

/// A trained model, ready to serve predictions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedModel {
    /// The specification this model implements.
    pub spec: ModelSpec,
    /// Trained estimator.
    pub estimator: Estimator,
}

/// The serializable estimator enum behind [`TrainedModel`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Estimator {
    /// A random forest (utilization metrics).
    Forest(RandomForest),
    /// A gradient-boosted ensemble (deployment size, lifetime, class).
    Boosted(GradientBoosting),
}

impl Classifier for TrainedModel {
    fn n_classes(&self) -> usize {
        match &self.estimator {
            Estimator::Forest(m) => m.n_classes(),
            Estimator::Boosted(m) => m.n_classes(),
        }
    }

    fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        match &self.estimator {
            Estimator::Forest(m) => m.predict_proba(features),
            Estimator::Boosted(m) => m.predict_proba(features),
        }
    }
}

impl TrainedModel {
    /// Unnormalized per-feature importance of the underlying estimator.
    pub fn feature_importance(&self) -> Vec<f64> {
        match &self.estimator {
            Estimator::Forest(m) => m.feature_importance(),
            Estimator::Boosted(m) => m.feature_importance().to_vec(),
        }
    }

    /// Serialized size in bytes (Table 1, column 4).
    pub fn serialized_size(&self) -> usize {
        rc_ml::serialized_size(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_table_covers_all_metrics_once() {
        let specs = ModelSpec::all();
        for (i, m) in PredictionMetric::ALL.iter().enumerate() {
            assert_eq!(specs[i].metric, *m);
            assert_eq!(ModelSpec::for_metric(*m).metric, *m);
        }
    }

    #[test]
    fn approaches_match_table1() {
        use PredictionMetric::*;
        assert_eq!(ModelSpec::for_metric(AvgCpuUtil).approach, ModelApproach::RandomForest);
        assert_eq!(ModelSpec::for_metric(P95MaxCpuUtil).approach, ModelApproach::RandomForest);
        assert_eq!(
            ModelSpec::for_metric(DeploymentSizeVms).approach,
            ModelApproach::GradientBoosting
        );
        assert_eq!(
            ModelSpec::for_metric(WorkloadClass).approach,
            ModelApproach::FftGradientBoosting
        );
    }

    #[test]
    fn feature_counts_match_table1() {
        use PredictionMetric::*;
        assert_eq!(ModelSpec::for_metric(AvgCpuUtil).n_features(), 127);
        assert_eq!(ModelSpec::for_metric(P95MaxCpuUtil).n_features(), 127);
        assert_eq!(ModelSpec::for_metric(DeploymentSizeVms).n_features(), 24);
        assert_eq!(ModelSpec::for_metric(DeploymentSizeCores).n_features(), 24);
        assert_eq!(ModelSpec::for_metric(WorkloadClass).n_features(), 34);
    }

    #[test]
    fn store_keys_are_distinct() {
        let mut keys: Vec<String> = ModelSpec::all().iter().map(|s| s.store_key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 6);
    }
}
