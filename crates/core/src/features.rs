//! Feature data and feature-vector assembly.
//!
//! Two kinds of model input exist in Resource Central (§4.2): *client
//! inputs* supplied with each request, and historical *feature data*
//! fetched from the store — per-subscription aggregates RC recomputes
//! offline and publishes periodically. §6.1: "For all metrics, the most
//! important attributes ... are the percentage of VMs classified into each
//! bucket to date in the subscription", followed by service name,
//! deployment time, operating system and VM size. All of those appear
//! below.
//!
//! Feature-vector widths match Table 1: 127 for the utilization models,
//! 24 for the deployment-size models, 34 for the workload class, and 26
//! for lifetime (the paper leaves that cell blank).

use serde::{Deserialize, Serialize};

use rc_types::vm::{OsType, Party, ProdTag, SubscriptionId, VmType, SKU_CATALOG};

use crate::inputs::ClientInputs;

/// Half-life, in days, of the exponentially-decayed "recent history"
/// counters.
pub const DECAY_HALF_LIFE_DAYS: f64 = 7.0;

/// Distinct core counts in the SKU catalog, for the size-affinity
/// features.
pub const CORES_CLASSES: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// Dense index of a core count in [`CORES_CLASSES`].
pub fn cores_class(cores: u32) -> usize {
    CORES_CLASSES.iter().position(|&c| c == cores).unwrap_or(CORES_CLASSES.len() - 1)
}

/// What the pipeline observed about one finished VM.
#[derive(Debug, Clone, Copy)]
pub struct VmObservation {
    /// Creation time of the VM in seconds since epoch.
    pub created_secs: u64,
    /// Observed average-utilization bucket.
    pub avg_bucket: usize,
    /// Observed P95-of-max utilization bucket.
    pub p95_bucket: usize,
    /// Observed lifetime bucket.
    pub lifetime_bucket: usize,
    /// FFT workload class (0 = delay-insensitive, 1 = interactive), when
    /// the VM lived long enough to classify.
    pub class: Option<usize>,
    /// Allocated cores.
    pub cores: u32,
    /// Allocated memory in GB.
    pub memory_gb: f64,
    /// True for a Windows guest.
    pub os_windows: bool,
    /// Observed average utilization (fraction).
    pub avg_util: f64,
    /// Observed P95-of-max utilization (fraction).
    pub p95_util: f64,
    /// Lifetime in seconds.
    pub lifetime_secs: u64,
}

/// What the pipeline observed about one deployment.
#[derive(Debug, Clone, Copy)]
pub struct DeploymentObservation {
    /// Creation time in seconds since epoch.
    pub created_secs: u64,
    /// Maximum-#VMs bucket.
    pub vms_bucket: usize,
    /// Maximum-#cores bucket.
    pub cores_bucket: usize,
    /// Maximum number of VMs.
    pub n_vms: u64,
}

/// Per-subscription historical aggregates — the "feature data" RC stores
/// and caches. Roughly 850 bytes as JSON, matching §6.1's record size.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SubscriptionFeatures {
    /// Subscription this record describes.
    pub subscription: SubscriptionId,
    /// VMs observed to date.
    pub n_vms: u64,
    /// Deployments observed to date.
    pub n_deployments: u64,
    /// First and last observation times (seconds since epoch).
    pub first_seen_secs: u64,
    /// Last observation time (seconds since epoch).
    pub last_seen_secs: u64,
    /// Bucket counts to date — the paper's headline predictive attribute.
    pub avg_bucket_counts: [u64; 4],
    /// P95-of-max utilization bucket counts.
    pub p95_bucket_counts: [u64; 4],
    /// Lifetime bucket counts.
    pub lifetime_bucket_counts: [u64; 4],
    /// Deployment-size (#VMs) bucket counts.
    pub deploy_vms_bucket_counts: [u64; 4],
    /// Deployment-size (#cores) bucket counts.
    pub deploy_cores_bucket_counts: [u64; 4],
    /// Workload class counts (delay-insensitive, interactive).
    pub class_counts: [u64; 2],
    /// Exponentially-decayed recent bucket fractions (avg utilization).
    pub decayed_avg_buckets: [f64; 4],
    /// Exponentially-decayed recent bucket fractions (P95 utilization).
    pub decayed_p95_buckets: [f64; 4],
    /// Timestamp of the last decay application (seconds).
    pub decay_updated_secs: u64,
    /// Count of VMs per core-class ([`CORES_CLASSES`]).
    pub cores_class_counts: [u64; 6],
    /// Running sums for moment features.
    pub sum_avg_util: f64,
    /// Sum of squared average utilizations.
    pub sum_sq_avg_util: f64,
    /// Sum of P95 utilizations.
    pub sum_p95_util: f64,
    /// Sum of squared P95 utilizations.
    pub sum_sq_p95_util: f64,
    /// Sum of ln(lifetime secs).
    pub sum_log_lifetime: f64,
    /// Sum of squared ln(lifetime secs).
    pub sum_sq_log_lifetime: f64,
    /// Sum of ln(max deployment #VMs).
    pub sum_log_deploy_vms: f64,
    /// Total cores across observed VMs.
    pub sum_cores: u64,
    /// Total memory (GB) across observed VMs.
    pub sum_memory_gb: f64,
    /// Count of Windows-guest VMs.
    pub n_windows: u64,
}

impl SubscriptionFeatures {
    /// Creates an empty record for a subscription.
    pub fn new(subscription: SubscriptionId) -> Self {
        SubscriptionFeatures { subscription, ..Default::default() }
    }

    /// Applies exponential decay to the recent counters up to `now_secs`.
    fn decay_to(&mut self, now_secs: u64) {
        if now_secs <= self.decay_updated_secs {
            return;
        }
        let dt_days = (now_secs - self.decay_updated_secs) as f64 / 86_400.0;
        let factor = 0.5f64.powf(dt_days / DECAY_HALF_LIFE_DAYS);
        for v in self.decayed_avg_buckets.iter_mut() {
            *v *= factor;
        }
        for v in self.decayed_p95_buckets.iter_mut() {
            *v *= factor;
        }
        self.decay_updated_secs = now_secs;
    }

    /// Folds one finished VM into the aggregates.
    pub fn observe_vm(&mut self, obs: &VmObservation) {
        if self.n_vms == 0 && self.n_deployments == 0 {
            self.first_seen_secs = obs.created_secs;
            self.decay_updated_secs = obs.created_secs;
        }
        self.decay_to(obs.created_secs);
        self.n_vms += 1;
        self.last_seen_secs = self.last_seen_secs.max(obs.created_secs);
        self.avg_bucket_counts[obs.avg_bucket] += 1;
        self.p95_bucket_counts[obs.p95_bucket] += 1;
        self.lifetime_bucket_counts[obs.lifetime_bucket] += 1;
        self.decayed_avg_buckets[obs.avg_bucket] += 1.0;
        self.decayed_p95_buckets[obs.p95_bucket] += 1.0;
        self.cores_class_counts[cores_class(obs.cores)] += 1;
        self.sum_avg_util += obs.avg_util;
        self.sum_sq_avg_util += obs.avg_util * obs.avg_util;
        self.sum_p95_util += obs.p95_util;
        self.sum_sq_p95_util += obs.p95_util * obs.p95_util;
        let ll = (obs.lifetime_secs.max(1) as f64).ln();
        self.sum_log_lifetime += ll;
        self.sum_sq_log_lifetime += ll * ll;
        self.sum_cores += obs.cores as u64;
        self.sum_memory_gb += obs.memory_gb;
        if obs.os_windows {
            self.n_windows += 1;
        }
    }

    /// Folds one workload-class observation into the aggregates.
    ///
    /// Kept separate from [`SubscriptionFeatures::observe_vm`] because the
    /// FFT classifier labels a VM after three days of telemetry (§3.6) —
    /// long before a long-running VM completes — and RC's periodic offline
    /// runs pick the label up then.
    pub fn observe_class(&mut self, class: usize) {
        self.class_counts[class] += 1;
    }

    /// Folds one deployment into the aggregates.
    pub fn observe_deployment(&mut self, obs: &DeploymentObservation) {
        if self.n_vms == 0 && self.n_deployments == 0 {
            self.first_seen_secs = obs.created_secs;
            self.decay_updated_secs = obs.created_secs;
        }
        self.n_deployments += 1;
        self.last_seen_secs = self.last_seen_secs.max(obs.created_secs);
        self.deploy_vms_bucket_counts[obs.vms_bucket] += 1;
        self.deploy_cores_bucket_counts[obs.cores_bucket] += 1;
        self.sum_log_deploy_vms += (obs.n_vms.max(1) as f64).ln();
    }

    /// True when the record has seen nothing — the client returns a
    /// no-prediction for such subscriptions.
    pub fn is_empty(&self) -> bool {
        self.n_vms == 0 && self.n_deployments == 0
    }

    fn fraction4(counts: &[u64; 4]) -> [f64; 4] {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return [0.0; 4];
        }
        let t = total as f64;
        [counts[0] as f64 / t, counts[1] as f64 / t, counts[2] as f64 / t, counts[3] as f64 / t]
    }

    fn fraction2(counts: &[u64; 2]) -> [f64; 2] {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return [0.0; 2];
        }
        [counts[0] as f64 / total as f64, counts[1] as f64 / total as f64]
    }

    fn mean_std(sum: f64, sum_sq: f64, n: u64) -> (f64, f64) {
        if n == 0 {
            return (0.0, 0.0);
        }
        let mean = sum / n as f64;
        let var = (sum_sq / n as f64 - mean * mean).max(0.0);
        (mean, var.sqrt())
    }
}

/// Pushes `label: value` onto the two parallel vectors.
macro_rules! feat {
    ($names:ident, $values:ident, $label:expr, $value:expr) => {
        if let Some(names) = $names.as_mut() {
            names.push($label.to_string());
        }
        $values.push($value);
    };
}

/// Shared client-input encoding used by the utilization models.
fn push_client_inputs(
    inputs: &ClientInputs,
    values: &mut Vec<f64>,
    names: &mut Option<&mut Vec<String>>,
) {
    let sku = SKU_CATALOG[inputs.sku_index];
    feat!(names, values, "party_first", f64::from(inputs.party == Party::First));
    feat!(names, values, "is_iaas", f64::from(inputs.vm_type() == VmType::Iaas));
    feat!(names, values, "is_paas", f64::from(inputs.vm_type() == VmType::Paas));
    for (i, role) in rc_types::vm::VmRole::ALL.iter().enumerate() {
        feat!(names, values, format!("role_{}", role.label()), f64::from(inputs.role.index() == i));
    }
    feat!(names, values, "os_windows", f64::from(inputs.os == OsType::Windows));
    feat!(names, values, "os_linux", f64::from(inputs.os == OsType::Linux));
    feat!(names, values, "non_production", f64::from(inputs.prod == ProdTag::NonProduction));
    // Service one-hot: id 0 is the creation-test service, 1..=11 the other
    // named first-party services, plus "unknown".
    for id in 0..12u8 {
        feat!(names, values, format!("service_{id}"), f64::from(inputs.service == Some(id)));
    }
    feat!(names, values, "service_unknown", f64::from(inputs.service.is_none()));
    for (i, s) in SKU_CATALOG.iter().enumerate() {
        feat!(names, values, format!("sku_{}", s.name), f64::from(inputs.sku_index == i));
    }
    feat!(names, values, "cores", sku.cores as f64);
    feat!(names, values, "log2_cores", (sku.cores as f64).log2());
    feat!(names, values, "memory_gb", sku.memory_gb);
    feat!(names, values, "log2_memory", sku.memory_gb.log2());
    feat!(names, values, "memory_per_core", sku.memory_gb / sku.cores as f64);
    let hour = inputs.deployment_time.hour_of_day();
    let phase = 2.0 * std::f64::consts::PI * hour / 24.0;
    feat!(names, values, "hour_sin", phase.sin());
    feat!(names, values, "hour_cos", phase.cos());
    feat!(names, values, "hour", hour);
    for wd in 0..7u32 {
        feat!(
            names,
            values,
            format!("weekday_{wd}"),
            f64::from(inputs.deployment_time.weekday() == wd)
        );
    }
    feat!(names, values, "is_weekend", f64::from(inputs.deployment_time.is_weekend()));
    feat!(names, values, "deploy_size_hint", inputs.deployment_size_hint as f64);
    feat!(names, values, "log1p_deploy_size_hint", (inputs.deployment_size_hint as f64).ln_1p());
}

/// Builds the 127-feature vector of the utilization models (Table 1).
pub fn utilization_features(inputs: &ClientInputs, sub: &SubscriptionFeatures) -> Vec<f64> {
    build_utilization(inputs, sub, &mut None)
}

/// Names of the utilization features, aligned with
/// [`utilization_features`].
pub fn utilization_feature_names() -> Vec<String> {
    let mut names = Vec::new();
    let inputs = dummy_inputs();
    build_utilization(&inputs, &SubscriptionFeatures::default(), &mut Some(&mut names));
    names
}

fn build_utilization(
    inputs: &ClientInputs,
    sub: &SubscriptionFeatures,
    names: &mut Option<&mut Vec<String>>,
) -> Vec<f64> {
    let mut v = Vec::with_capacity(128);
    push_client_inputs(inputs, &mut v, names);

    let sku = SKU_CATALOG[inputs.sku_index];
    let avg_f = SubscriptionFeatures::fraction4(&sub.avg_bucket_counts);
    let p95_f = SubscriptionFeatures::fraction4(&sub.p95_bucket_counts);
    let life_f = SubscriptionFeatures::fraction4(&sub.lifetime_bucket_counts);
    let dvms_f = SubscriptionFeatures::fraction4(&sub.deploy_vms_bucket_counts);
    let dcor_f = SubscriptionFeatures::fraction4(&sub.deploy_cores_bucket_counts);
    let class_f = SubscriptionFeatures::fraction2(&sub.class_counts);

    for (i, &f) in avg_f.iter().enumerate() {
        feat!(names, v, format!("hist_avg_bucket_{i}"), f);
    }
    for (i, &f) in p95_f.iter().enumerate() {
        feat!(names, v, format!("hist_p95_bucket_{i}"), f);
    }
    for (i, &f) in life_f.iter().enumerate() {
        feat!(names, v, format!("hist_lifetime_bucket_{i}"), f);
    }
    for (i, &f) in dvms_f.iter().enumerate() {
        feat!(names, v, format!("hist_deploy_vms_bucket_{i}"), f);
    }
    for (i, &f) in dcor_f.iter().enumerate() {
        feat!(names, v, format!("hist_deploy_cores_bucket_{i}"), f);
    }
    for (i, &f) in class_f.iter().enumerate() {
        feat!(names, v, format!("hist_class_{i}"), f);
    }

    let now = inputs.deployment_time.as_secs();
    let age_days = (now.saturating_sub(sub.first_seen_secs)) as f64 / 86_400.0;
    let idle_days = (now.saturating_sub(sub.last_seen_secs)) as f64 / 86_400.0;
    feat!(names, v, "log1p_n_vms", (sub.n_vms as f64).ln_1p());
    feat!(names, v, "log1p_n_deployments", (sub.n_deployments as f64).ln_1p());
    feat!(names, v, "subscription_age_days", age_days);
    feat!(names, v, "days_since_last_seen", idle_days);
    feat!(names, v, "vms_per_day", sub.n_vms as f64 / age_days.max(1.0));

    let (m_avg, s_avg) =
        SubscriptionFeatures::mean_std(sub.sum_avg_util, sub.sum_sq_avg_util, sub.n_vms);
    let (m_p95, s_p95) =
        SubscriptionFeatures::mean_std(sub.sum_p95_util, sub.sum_sq_p95_util, sub.n_vms);
    let (m_ll, s_ll) =
        SubscriptionFeatures::mean_std(sub.sum_log_lifetime, sub.sum_sq_log_lifetime, sub.n_vms);
    feat!(names, v, "mean_avg_util", m_avg);
    feat!(names, v, "std_avg_util", s_avg);
    feat!(names, v, "mean_p95_util", m_p95);
    feat!(names, v, "std_p95_util", s_p95);
    feat!(names, v, "mean_log_lifetime", m_ll);
    feat!(names, v, "std_log_lifetime", s_ll);

    let nv = sub.n_vms.max(1) as f64;
    feat!(names, v, "mean_cores", sub.sum_cores as f64 / nv);
    feat!(names, v, "mean_memory_gb", sub.sum_memory_gb / nv);
    feat!(names, v, "windows_fraction", sub.n_windows as f64 / nv);

    // Interactions: utilization history conditioned on the requested size.
    let small = f64::from(sku.cores <= 2);
    for (i, &f) in avg_f.iter().enumerate() {
        feat!(names, v, format!("avg_bucket_{i}_x_small_vm"), f * small);
    }
    let lc = (sku.cores as f64).log2();
    for (i, &f) in p95_f.iter().enumerate() {
        feat!(names, v, format!("p95_bucket_{i}_x_log_cores"), f * lc);
    }

    // Recent (decayed) history.
    let d_avg_total: f64 = sub.decayed_avg_buckets.iter().sum();
    let d_p95_total: f64 = sub.decayed_p95_buckets.iter().sum();
    for (i, &c) in sub.decayed_avg_buckets.iter().enumerate() {
        feat!(names, v, format!("recent_avg_bucket_{i}"), c / d_avg_total.max(1e-9));
    }
    for (i, &c) in sub.decayed_p95_buckets.iter().enumerate() {
        feat!(names, v, format!("recent_p95_bucket_{i}"), c / d_p95_total.max(1e-9));
    }

    feat!(names, v, "mean_avg_util_sq", m_avg * m_avg);
    feat!(names, v, "mean_p95_util_sq", m_p95 * m_p95);

    for (i, &c) in sub.avg_bucket_counts.iter().enumerate() {
        feat!(names, v, format!("log1p_avg_count_{i}"), (c as f64).ln_1p());
    }
    for (i, &c) in sub.p95_bucket_counts.iter().enumerate() {
        feat!(names, v, format!("log1p_p95_count_{i}"), (c as f64).ln_1p());
    }

    // Size-affinity: how usual is this size for the subscription?
    let cc_total: u64 = sub.cores_class_counts.iter().sum();
    let cct = cc_total.max(1) as f64;
    for (i, &c) in sub.cores_class_counts.iter().enumerate() {
        feat!(names, v, format!("cores_class_{}_fraction", CORES_CLASSES[i]), c as f64 / cct);
    }
    feat!(
        names,
        v,
        "same_cores_class_fraction",
        sub.cores_class_counts[cores_class(sku.cores)] as f64 / cct
    );

    // Entropy of the avg-bucket history: consistent subscriptions score 0.
    let entropy: f64 = avg_f.iter().filter(|&&p| p > 0.0).map(|&p| -p * p.ln()).sum();
    feat!(names, v, "avg_bucket_entropy", entropy);

    v
}

/// Builds the 24-feature vector of the deployment-size models (Table 1).
pub fn deployment_features(inputs: &ClientInputs, sub: &SubscriptionFeatures) -> Vec<f64> {
    build_deployment(inputs, sub, &mut None)
}

/// Names of the deployment features.
pub fn deployment_feature_names() -> Vec<String> {
    let mut names = Vec::new();
    build_deployment(&dummy_inputs(), &SubscriptionFeatures::default(), &mut Some(&mut names));
    names
}

fn build_deployment(
    inputs: &ClientInputs,
    sub: &SubscriptionFeatures,
    names: &mut Option<&mut Vec<String>>,
) -> Vec<f64> {
    let mut v = Vec::with_capacity(24);
    let sku = SKU_CATALOG[inputs.sku_index];
    feat!(names, v, "party_first", f64::from(inputs.party == Party::First));
    feat!(names, v, "is_iaas", f64::from(inputs.vm_type() == VmType::Iaas));
    feat!(names, v, "os_windows", f64::from(inputs.os == OsType::Windows));
    feat!(names, v, "is_test_service", f64::from(inputs.service == Some(0)));
    feat!(names, v, "is_top_service", f64::from(inputs.service.is_some()));
    let hour = inputs.deployment_time.hour_of_day();
    let phase = 2.0 * std::f64::consts::PI * hour / 24.0;
    feat!(names, v, "hour_sin", phase.sin());
    feat!(names, v, "hour_cos", phase.cos());
    feat!(names, v, "weekday", inputs.deployment_time.weekday() as f64 / 6.0);
    feat!(names, v, "is_weekend", f64::from(inputs.deployment_time.is_weekend()));
    for (i, &f) in SubscriptionFeatures::fraction4(&sub.deploy_vms_bucket_counts).iter().enumerate()
    {
        feat!(names, v, format!("hist_deploy_vms_bucket_{i}"), f);
    }
    for (i, &f) in
        SubscriptionFeatures::fraction4(&sub.deploy_cores_bucket_counts).iter().enumerate()
    {
        feat!(names, v, format!("hist_deploy_cores_bucket_{i}"), f);
    }
    feat!(names, v, "log1p_n_deployments", (sub.n_deployments as f64).ln_1p());
    feat!(names, v, "log1p_n_vms", (sub.n_vms as f64).ln_1p());
    feat!(
        names,
        v,
        "mean_log_deploy_vms",
        sub.sum_log_deploy_vms / sub.n_deployments.max(1) as f64
    );
    let now = inputs.deployment_time.as_secs();
    let age_days = (now.saturating_sub(sub.first_seen_secs)) as f64 / 86_400.0;
    feat!(names, v, "age_days", age_days);
    feat!(names, v, "deployments_per_day", sub.n_deployments as f64 / age_days.max(1.0));
    feat!(names, v, "cores", sku.cores as f64);
    feat!(names, v, "memory_gb", sku.memory_gb);
    v
}

/// Builds the 26-feature vector of the lifetime model.
pub fn lifetime_features(inputs: &ClientInputs, sub: &SubscriptionFeatures) -> Vec<f64> {
    build_lifetime(inputs, sub, &mut None)
}

/// Names of the lifetime features.
pub fn lifetime_feature_names() -> Vec<String> {
    let mut names = Vec::new();
    build_lifetime(&dummy_inputs(), &SubscriptionFeatures::default(), &mut Some(&mut names));
    names
}

fn build_lifetime(
    inputs: &ClientInputs,
    sub: &SubscriptionFeatures,
    names: &mut Option<&mut Vec<String>>,
) -> Vec<f64> {
    let mut v = Vec::with_capacity(26);
    let sku = SKU_CATALOG[inputs.sku_index];
    feat!(names, v, "party_first", f64::from(inputs.party == Party::First));
    feat!(names, v, "is_iaas", f64::from(inputs.vm_type() == VmType::Iaas));
    for (i, role) in rc_types::vm::VmRole::ALL.iter().enumerate() {
        feat!(names, v, format!("role_{}", role.label()), f64::from(inputs.role.index() == i));
    }
    feat!(names, v, "os_windows", f64::from(inputs.os == OsType::Windows));
    feat!(names, v, "is_test_service", f64::from(inputs.service == Some(0)));
    feat!(names, v, "is_top_service", f64::from(inputs.service.is_some()));
    feat!(names, v, "non_production", f64::from(inputs.prod == ProdTag::NonProduction));
    let hour = inputs.deployment_time.hour_of_day();
    let phase = 2.0 * std::f64::consts::PI * hour / 24.0;
    feat!(names, v, "hour_sin", phase.sin());
    feat!(names, v, "hour_cos", phase.cos());
    feat!(names, v, "is_weekend", f64::from(inputs.deployment_time.is_weekend()));
    feat!(names, v, "cores", sku.cores as f64);
    feat!(names, v, "memory_gb", sku.memory_gb);
    for (i, &f) in SubscriptionFeatures::fraction4(&sub.lifetime_bucket_counts).iter().enumerate() {
        feat!(names, v, format!("hist_lifetime_bucket_{i}"), f);
    }
    let (m_ll, s_ll) =
        SubscriptionFeatures::mean_std(sub.sum_log_lifetime, sub.sum_sq_log_lifetime, sub.n_vms);
    feat!(names, v, "mean_log_lifetime", m_ll);
    feat!(names, v, "std_log_lifetime", s_ll);
    feat!(names, v, "log1p_n_vms", (sub.n_vms as f64).ln_1p());
    let now = inputs.deployment_time.as_secs();
    feat!(names, v, "age_days", (now.saturating_sub(sub.first_seen_secs)) as f64 / 86_400.0);
    feat!(names, v, "log1p_deploy_size_hint", (inputs.deployment_size_hint as f64).ln_1p());
    let (m_avg, _) =
        SubscriptionFeatures::mean_std(sub.sum_avg_util, sub.sum_sq_avg_util, sub.n_vms);
    feat!(names, v, "mean_avg_util", m_avg);
    v
}

/// Builds the 34-feature vector of the workload-class model (Table 1).
pub fn class_features(inputs: &ClientInputs, sub: &SubscriptionFeatures) -> Vec<f64> {
    build_class(inputs, sub, &mut None)
}

/// Names of the class features.
pub fn class_feature_names() -> Vec<String> {
    let mut names = Vec::new();
    build_class(&dummy_inputs(), &SubscriptionFeatures::default(), &mut Some(&mut names));
    names
}

fn build_class(
    inputs: &ClientInputs,
    sub: &SubscriptionFeatures,
    names: &mut Option<&mut Vec<String>>,
) -> Vec<f64> {
    let mut v = Vec::with_capacity(34);
    let sku = SKU_CATALOG[inputs.sku_index];
    feat!(names, v, "party_first", f64::from(inputs.party == Party::First));
    feat!(names, v, "is_iaas", f64::from(inputs.vm_type() == VmType::Iaas));
    for (i, role) in rc_types::vm::VmRole::ALL.iter().enumerate() {
        feat!(names, v, format!("role_{}", role.label()), f64::from(inputs.role.index() == i));
    }
    feat!(names, v, "os_windows", f64::from(inputs.os == OsType::Windows));
    feat!(names, v, "is_test_service", f64::from(inputs.service == Some(0)));
    feat!(names, v, "is_top_service", f64::from(inputs.service.is_some()));
    feat!(names, v, "non_production", f64::from(inputs.prod == ProdTag::NonProduction));
    feat!(names, v, "cores", sku.cores as f64);
    feat!(names, v, "memory_gb", sku.memory_gb);
    let hour = inputs.deployment_time.hour_of_day();
    let phase = 2.0 * std::f64::consts::PI * hour / 24.0;
    feat!(names, v, "hour_sin", phase.sin());
    feat!(names, v, "hour_cos", phase.cos());
    feat!(names, v, "is_weekend", f64::from(inputs.deployment_time.is_weekend()));
    for (i, &f) in SubscriptionFeatures::fraction2(&sub.class_counts).iter().enumerate() {
        feat!(names, v, format!("hist_class_{i}"), f);
    }
    for (i, &f) in SubscriptionFeatures::fraction4(&sub.lifetime_bucket_counts).iter().enumerate() {
        feat!(names, v, format!("hist_lifetime_bucket_{i}"), f);
    }
    let (m_ll, _) =
        SubscriptionFeatures::mean_std(sub.sum_log_lifetime, sub.sum_sq_log_lifetime, sub.n_vms);
    feat!(names, v, "mean_log_lifetime", m_ll);
    let (m_avg, s_avg) =
        SubscriptionFeatures::mean_std(sub.sum_avg_util, sub.sum_sq_avg_util, sub.n_vms);
    let (m_p95, _) =
        SubscriptionFeatures::mean_std(sub.sum_p95_util, sub.sum_sq_p95_util, sub.n_vms);
    feat!(names, v, "mean_avg_util", m_avg);
    feat!(names, v, "std_avg_util", s_avg);
    feat!(names, v, "mean_p95_util", m_p95);
    feat!(names, v, "log1p_n_vms", (sub.n_vms as f64).ln_1p());
    let now = inputs.deployment_time.as_secs();
    feat!(names, v, "age_days", (now.saturating_sub(sub.first_seen_secs)) as f64 / 86_400.0);
    feat!(names, v, "log1p_deploy_size_hint", (inputs.deployment_size_hint as f64).ln_1p());
    for (i, &f) in SubscriptionFeatures::fraction4(&sub.avg_bucket_counts).iter().enumerate() {
        feat!(names, v, format!("hist_avg_bucket_{i}"), f);
    }
    feat!(names, v, "windows_fraction", sub.n_windows as f64 / sub.n_vms.max(1) as f64);
    v
}

/// Placeholder inputs used only to enumerate feature names.
fn dummy_inputs() -> ClientInputs {
    ClientInputs {
        subscription: SubscriptionId(0),
        party: Party::First,
        role: rc_types::vm::VmRole::Iaas,
        prod: ProdTag::Production,
        os: OsType::Windows,
        sku_index: 0,
        deployment_time: rc_types::time::Timestamp::ZERO,
        deployment_size_hint: 1,
        service: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_types::time::Timestamp;
    use rc_types::vm::VmRole;

    fn inputs() -> ClientInputs {
        ClientInputs {
            subscription: SubscriptionId(3),
            party: Party::Third,
            role: VmRole::PaasWebServer,
            prod: ProdTag::Production,
            os: OsType::Linux,
            sku_index: 2,
            deployment_time: Timestamp::from_days(10),
            deployment_size_hint: 4,
            service: Some(3),
        }
    }

    fn observation(created_days: u64) -> VmObservation {
        VmObservation {
            created_secs: created_days * 86_400,
            avg_bucket: 1,
            p95_bucket: 3,
            lifetime_bucket: 2,
            class: Some(0),
            cores: 2,
            memory_gb: 3.5,
            os_windows: false,
            avg_util: 0.3,
            p95_util: 0.9,
            lifetime_secs: 7_200,
        }
    }

    #[test]
    fn feature_widths_match_table1() {
        let sub = SubscriptionFeatures::new(SubscriptionId(3));
        assert_eq!(utilization_features(&inputs(), &sub).len(), 127);
        assert_eq!(deployment_features(&inputs(), &sub).len(), 24);
        assert_eq!(class_features(&inputs(), &sub).len(), 34);
        assert_eq!(lifetime_features(&inputs(), &sub).len(), 26);
    }

    #[test]
    fn names_align_with_values() {
        assert_eq!(utilization_feature_names().len(), 127);
        assert_eq!(deployment_feature_names().len(), 24);
        assert_eq!(class_feature_names().len(), 34);
        assert_eq!(lifetime_feature_names().len(), 26);
        // Names must be unique within a model.
        for names in [
            utilization_feature_names(),
            deployment_feature_names(),
            class_feature_names(),
            lifetime_feature_names(),
        ] {
            let mut sorted = names.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), names.len(), "duplicate feature names");
        }
    }

    #[test]
    fn observation_updates_counts_and_moments() {
        let mut sub = SubscriptionFeatures::new(SubscriptionId(3));
        assert!(sub.is_empty());
        sub.observe_vm(&observation(1));
        sub.observe_vm(&observation(2));
        sub.observe_class(0);
        sub.observe_class(0);
        assert!(!sub.is_empty());
        assert_eq!(sub.n_vms, 2);
        assert_eq!(sub.avg_bucket_counts, [0, 2, 0, 0]);
        assert_eq!(sub.p95_bucket_counts, [0, 0, 0, 2]);
        assert_eq!(sub.class_counts, [2, 0]);
        let (mean, std) = SubscriptionFeatures::mean_std(sub.sum_avg_util, sub.sum_sq_avg_util, 2);
        assert!((mean - 0.3).abs() < 1e-12);
        assert!(std < 1e-9);
    }

    #[test]
    fn decay_shrinks_old_history() {
        let mut sub = SubscriptionFeatures::new(SubscriptionId(3));
        sub.observe_vm(&observation(0));
        let fresh = sub.decayed_avg_buckets[1];
        // Observe another VM 14 days (two half-lives) later.
        let mut later = observation(14);
        later.avg_bucket = 0;
        sub.observe_vm(&later);
        assert!((sub.decayed_avg_buckets[1] - fresh * 0.25).abs() < 1e-9);
        assert!((sub.decayed_avg_buckets[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn history_features_change_with_observations() {
        let empty = SubscriptionFeatures::new(SubscriptionId(3));
        let before = utilization_features(&inputs(), &empty);
        let mut sub = SubscriptionFeatures::new(SubscriptionId(3));
        for d in 0..5 {
            sub.observe_vm(&observation(d));
        }
        let after = utilization_features(&inputs(), &sub);
        assert_eq!(before.len(), after.len());
        assert_ne!(before, after);
    }

    #[test]
    fn all_features_are_finite() {
        let mut sub = SubscriptionFeatures::new(SubscriptionId(3));
        for d in 0..20 {
            sub.observe_vm(&observation(d));
            sub.observe_deployment(&DeploymentObservation {
                created_secs: d * 86_400,
                vms_bucket: 1,
                cores_bucket: 1,
                n_vms: 4,
            });
        }
        for f in [
            utilization_features(&inputs(), &sub),
            deployment_features(&inputs(), &sub),
            class_features(&inputs(), &sub),
            lifetime_features(&inputs(), &sub),
        ] {
            assert!(f.iter().all(|x| x.is_finite()), "non-finite feature in {f:?}");
        }
    }

    #[test]
    fn serialized_record_is_near_paper_size() {
        // §6.1: ~850 bytes of feature data per subscription.
        let mut sub = SubscriptionFeatures::new(SubscriptionId(3));
        for d in 0..50 {
            sub.observe_vm(&observation(d));
        }
        let bytes = serde_json::to_vec(&sub).unwrap();
        assert!((500..1_600).contains(&bytes.len()), "feature record is {} bytes", bytes.len());
    }

    #[test]
    fn cores_class_covers_catalog() {
        for sku in SKU_CATALOG.iter() {
            let c = cores_class(sku.cores);
            assert!(c < CORES_CLASSES.len());
            assert_eq!(CORES_CLASSES[c], sku.cores);
        }
    }
}
