//! The client library — the paper's "client DLL" (§4.2, Table 2).
//!
//! A single, general, thread-safe library through which every resource
//! manager consumes predictions. It caches prediction results, models, and
//! feature data in memory; mirrors models and feature data to a local disk
//! cache; and supports both caching modes:
//!
//! - **push** (the production default): `initialize` /
//!   `force_reload_cache` load *everything* from the store, and
//!   predictions never touch the store or the disk on the request path.
//! - **pull**: a result-cache miss returns the no-prediction flag
//!   immediately while a background worker fetches the model/feature data
//!   and executes the model, so a later identical request hits the cache.
//!
//! When the store misbehaves, the client walks a degradation ladder
//! instead of failing (§4.3: RC is non-mission-critical): store pulls are
//! retried with jittered exponential backoff under a per-call deadline,
//! guarded by per-key circuit breakers; failed pulls fall back to the
//! local disk cache, serving entries past their expiry inside a
//! configurable stale-grace window; corrupt or undecodable payloads are
//! counted and treated as fetch failures; and when nothing is loadable at
//! all, every lookup still answers the no-prediction default. The
//! [`RcClient::health`] probe summarizes the ladder for schedulers.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant, SystemTime};

use arc_swap::ArcSwap;
use parking_lot::Mutex;

use rc_obs::{Counter, Gauge, Histogram, WindowedCounter, WindowedHistogram};
use rc_store::{checksum, Manifest, ModelEntry, Store, StoreBackend, MANIFEST_KEY};
use rc_types::vm::SubscriptionId;

use crate::admission::{AdmissionQueue, SubmitOutcome};
use crate::cache::{DiskCache, DiskLoadResult, ShardedResultCache};
use crate::features::SubscriptionFeatures;
use crate::inputs::ClientInputs;
use crate::models::{feature_store_key, TrainedModel};
use crate::prediction::{Prediction, PredictionResponse, Served, ShadowPrediction};
use crate::resilience::{
    Admission, BreakerConfig, CircuitBreakers, ClientHealth, DegradedReason, RetryJitter,
    RetryPolicy,
};

/// Caching mode (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// RC pushes models and feature data; loads happen at initialize /
    /// reload time and the predict path never blocks on the store.
    Push,
    /// Models and feature data are fetched on demand in the background; a
    /// result-cache miss answers no-prediction.
    Pull,
    /// Models and feature data are fetched on demand *synchronously*: a
    /// result-cache miss blocks on the resilient fetch path (retry +
    /// breaker + disk fallback) and always resolves to a prediction or
    /// the default in one call. The mode the chaos suite exercises.
    PullSync,
}

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Push or pull caching.
    pub mode: CacheMode,
    /// Result-cache capacity in entries (split across the shards).
    pub result_cache_capacity: usize,
    /// Result-cache shard count (rounded up to a power of two); `0` picks
    /// a machine-appropriate default. `1` degenerates to the old
    /// single-mutex cache — useful as a contention baseline.
    pub result_cache_shards: usize,
    /// Directory for the local disk cache; `None` disables it.
    pub disk_cache_dir: Option<std::path::PathBuf>,
    /// Expiry of disk-cache contents.
    pub disk_cache_expiry: StdDuration,
    /// Push-mode background refresh interval: when set, a watcher thread
    /// polls the store's versions and reloads the caches whenever RC
    /// publishes new models or feature data ("RC periodically produces new
    /// models and feature data ... and pushes them in the background to
    /// the caches in the client DLL", §4.2). `None` disables the watcher;
    /// `force_reload_cache` still refreshes on demand.
    pub auto_refresh_interval: Option<StdDuration>,
    /// Retry/backoff/deadline policy for on-demand store pulls.
    pub retry: RetryPolicy,
    /// Per-key circuit-breaker thresholds for on-demand store pulls.
    pub breaker: BreakerConfig,
    /// Stale-while-revalidate window: a disk-cache entry past its expiry
    /// but within `expiry + stale_grace` may still be served (counted as
    /// a stale serve, flagged in [`RcClient::health`]). Zero keeps the
    /// strict §4.2 behaviour: expired means ignored.
    pub stale_grace: StdDuration,
    /// Mirror successful on-demand fetches to the disk cache. Disable to
    /// run against a read-only, pre-primed disk cache (chaos and
    /// reproducibility runs do this so a run never perturbs the next).
    pub disk_write_through: bool,
    /// Pull-mode admission-queue depth: result-cache misses waiting for
    /// the background worker. A full queue sheds further misses
    /// (backpressure — they keep answering the default) instead of
    /// growing unboundedly.
    pub pull_queue_capacity: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            mode: CacheMode::Push,
            result_cache_capacity: 1 << 20,
            result_cache_shards: 0,
            disk_cache_dir: None,
            disk_cache_expiry: StdDuration::from_secs(24 * 3600),
            auto_refresh_interval: None,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            stale_grace: StdDuration::ZERO,
            disk_write_through: true,
            pull_queue_capacity: 4096,
        }
    }
}

/// Registry handles for the predict path, resolved once at client
/// construction so every per-request update is a plain atomic op (no
/// registry lock on the hot path).
struct ClientMetrics {
    hit_latency: Histogram,
    miss_latency: Histogram,
    result_hits: Counter,
    result_misses: Counter,
    result_insertions: Counter,
    result_evictions: Counter,
    model_cache_hits: Counter,
    model_cache_misses: Counter,
    feature_cache_hits: Counter,
    feature_cache_misses: Counter,
    store_fallbacks: Counter,
    disk_recoveries: Counter,
    no_predictions: Counter,
    model_execs: Counter,
    background_refreshes: Counter,
    batch_predicts: Counter,
    batch_deduped_execs: Counter,
    workers_started: Counter,
    workers_stopped: Counter,
    lookups: Counter,
    fresh_fetches: Counter,
    stale_serves: Counter,
    defaults: Counter,
    retries: Counter,
    corrupt_payloads: Counter,
    model_rejected: Counter,
    predictions: Counter,
    inflight: Gauge,
    lookups_windowed: WindowedCounter,
    predict_latency_windowed: WindowedHistogram,
    serve_publishes: Counter,
    serve_generation: Gauge,
    serve_retired: Gauge,
    admission_enqueued: Counter,
    admission_coalesced: Counter,
    admission_rejected: Counter,
}

impl ClientMetrics {
    fn new() -> Self {
        let reg = rc_obs::global();
        ClientMetrics {
            hit_latency: reg.histogram(rc_obs::CLIENT_PREDICT_HIT_LATENCY_NS),
            miss_latency: reg.histogram(rc_obs::CLIENT_PREDICT_MISS_LATENCY_NS),
            result_hits: reg.counter(rc_obs::CLIENT_RESULT_CACHE_HITS),
            result_misses: reg.counter(rc_obs::CLIENT_RESULT_CACHE_MISSES),
            result_insertions: reg.counter(rc_obs::CLIENT_RESULT_CACHE_INSERTIONS),
            result_evictions: reg.counter(rc_obs::CLIENT_RESULT_CACHE_EVICTIONS),
            model_cache_hits: reg.counter(rc_obs::CLIENT_MODEL_CACHE_HITS),
            model_cache_misses: reg.counter(rc_obs::CLIENT_MODEL_CACHE_MISSES),
            feature_cache_hits: reg.counter(rc_obs::CLIENT_FEATURE_CACHE_HITS),
            feature_cache_misses: reg.counter(rc_obs::CLIENT_FEATURE_CACHE_MISSES),
            store_fallbacks: reg.counter(rc_obs::CLIENT_STORE_FALLBACKS),
            disk_recoveries: reg.counter(rc_obs::CLIENT_DISK_CACHE_RECOVERIES),
            no_predictions: reg.counter(rc_obs::CLIENT_NO_PREDICTIONS),
            model_execs: reg.counter(rc_obs::CLIENT_MODEL_EXECS),
            background_refreshes: reg.counter(rc_obs::CLIENT_BACKGROUND_REFRESHES),
            batch_predicts: reg.counter(rc_obs::CLIENT_BATCH_PREDICTS),
            batch_deduped_execs: reg.counter(rc_obs::CLIENT_BATCH_DEDUPED_EXECS),
            workers_started: reg.counter(rc_obs::CLIENT_WORKERS_STARTED),
            workers_stopped: reg.counter(rc_obs::CLIENT_WORKERS_STOPPED),
            lookups: reg.counter(rc_obs::CLIENT_LOOKUPS),
            fresh_fetches: reg.counter(rc_obs::CLIENT_FRESH_FETCHES),
            stale_serves: reg.counter(rc_obs::CLIENT_STALE_SERVES),
            defaults: reg.counter(rc_obs::CLIENT_DEFAULTS),
            retries: reg.counter(rc_obs::CLIENT_RETRIES),
            corrupt_payloads: reg.counter(rc_obs::CLIENT_CORRUPT_PAYLOADS),
            model_rejected: reg.counter(rc_obs::CLIENT_MODEL_REJECTED),
            predictions: reg.counter(rc_obs::CLIENT_PREDICTIONS),
            inflight: reg.gauge(rc_obs::CLIENT_INFLIGHT),
            lookups_windowed: reg.windowed_counter(rc_obs::CLIENT_LOOKUPS_WINDOWED),
            predict_latency_windowed: reg
                .windowed_histogram(rc_obs::CLIENT_PREDICT_LATENCY_WINDOWED_NS),
            serve_publishes: reg.counter(rc_obs::CLIENT_SERVE_SNAPSHOT_PUBLISHES),
            serve_generation: reg.gauge(rc_obs::CLIENT_SERVE_SNAPSHOT_GENERATION),
            serve_retired: reg.gauge(rc_obs::CLIENT_SERVE_SNAPSHOT_RETIRED),
            admission_enqueued: reg.counter(rc_obs::CLIENT_ADMISSION_ENQUEUED),
            admission_coalesced: reg.counter(rc_obs::CLIENT_ADMISSION_COALESCED),
            admission_rejected: reg.counter(rc_obs::CLIENT_ADMISSION_REJECTED),
        }
    }
}

/// RAII marker for `rc_client_inflight`: adds one on entry to a predict
/// call and subtracts it on every exit path, panics included.
struct InflightGuard<'a>(&'a Gauge);

impl<'a> InflightGuard<'a> {
    fn enter(gauge: &'a Gauge) -> Self {
        gauge.add(1.0);
        InflightGuard(gauge)
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.sub(1.0);
    }
}

/// The immutable serve-path state: everything a predict resolves against
/// — models, feature data, the manifest that loaded them, and staleness
/// membership — published together behind one [`ArcSwap`] pointer.
///
/// Readers take one epoch pin plus one atomic load per call and never
/// block; because model, feature record, staleness, and generation all
/// come from the *same* snapshot, a concurrent swap can never mix
/// versions within one prediction (no torn reads). Writers clone the
/// current snapshot under [`Shared::serve_write`], mutate the copy, and
/// publish it with a single pointer store.
#[derive(Clone)]
struct ServeSnapshot {
    models: HashMap<String, Arc<TrainedModel>>,
    /// Per-subscription feature records, individually `Arc`ed so cloning
    /// the snapshot (and refreshing one subscription) copies pointers,
    /// not feature payloads.
    features: HashMap<SubscriptionId, Arc<SubscriptionFeatures>>,
    features_version: u64,
    /// The publish manifest the resident caches were loaded through, when
    /// the store has one; directs on-demand fetches to the right version
    /// and carries the checksums payloads are verified against.
    manifest: Option<Manifest>,
    /// Model names currently resident from *stale* disk data.
    stale_models: HashSet<String>,
    /// Subscriptions whose resident feature record is stale disk data.
    stale_subs: HashSet<SubscriptionId>,
    /// Monotone publish count; responses attribute to the generation they
    /// resolved against (the swap-race regression test's oracle).
    generation: u64,
}

impl ServeSnapshot {
    fn empty() -> Self {
        ServeSnapshot {
            models: HashMap::new(),
            features: HashMap::new(),
            features_version: 0,
            manifest: None,
            stale_models: HashSet::new(),
            stale_subs: HashSet::new(),
            generation: 0,
        }
    }
}

/// Publishes the next serve snapshot: clone the current one, bump the
/// generation, apply `mutate`, store. Writers serialize on `serve_write`
/// so concurrent publishes never lose each other's updates; readers keep
/// resolving against the previous snapshot until the single store lands.
fn publish_serve(shared: &Shared, mutate: impl FnOnce(&mut ServeSnapshot)) {
    let _write = shared.serve_write.lock();
    let mut next = (*shared.serve.load_full()).clone();
    next.generation += 1;
    mutate(&mut next);
    let generation = next.generation;
    shared.serve.store(Arc::new(next));
    shared.metrics.serve_publishes.increment();
    shared.metrics.serve_generation.set(generation as f64);
    shared.metrics.serve_retired.set(shared.serve.retired_len() as f64);
}

/// A prediction resolved against one pinned serve snapshot, plus the
/// attribution the caller needs: which generation answered, and whether
/// that snapshot held the model or feature record as stale disk data.
struct Executed {
    prediction: Prediction,
    generation: u64,
    stale: bool,
}

/// State shared between the client facade and the background workers.
struct Shared {
    backend: Arc<dyn StoreBackend>,
    config: ClientConfig,
    /// The epoch-swapped serve snapshot; see [`ServeSnapshot`].
    serve: ArcSwap<ServeSnapshot>,
    /// Serializes snapshot publishes (loads, refreshes, on-demand
    /// fetches — all rare). The predict path never touches it.
    serve_write: Mutex<()>,
    results: ShardedResultCache,
    /// Pull-mode admission: bounded queue plus a lock-free in-flight
    /// table replacing the old global `Mutex<HashSet<u64>>`.
    admission: Option<AdmissionQueue>,
    initialized: AtomicBool,
    shutdown: AtomicBool,
    /// FNV fingerprint over (key, version) pairs at the last load; the
    /// push watcher reloads when the store's fingerprint changes.
    store_fingerprint: AtomicU64,
    model_rejected: AtomicU64,
    refreshes: AtomicU64,
    model_execs: AtomicU64,
    no_predictions: AtomicU64,
    store_fallbacks: AtomicU64,
    lookups: AtomicU64,
    fresh_fetches: AtomicU64,
    stale_serves: AtomicU64,
    retries: AtomicU64,
    corrupt_payloads: AtomicU64,
    /// First observed degradation since the last all-clear.
    degraded: Mutex<Option<(SystemTime, DegradedReason)>>,
    breakers: CircuitBreakers,
    jitter: RetryJitter,
    /// Live facade handles (the original plus clones). The last facade to
    /// drop signals shutdown and joins the background workers — an exact
    /// count, unlike the racy `Arc::strong_count` heuristic it replaces
    /// (two concurrent drops could both read a high count and leak the
    /// worker threads forever).
    facades: AtomicUsize,
    /// Live background worker threads; shared out through
    /// [`WorkerLifecycle`] so embedders (and tests) can observe shutdown.
    live_workers: Arc<AtomicUsize>,
    worker_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    disk: Option<DiskCache>,
    metrics: ClientMetrics,
}

/// The Resource Central client.
///
/// Cheap to clone; clones share caches and the background workers. The
/// last clone to drop shuts the workers down and joins them.
pub struct RcClient {
    shared: Arc<Shared>,
}

/// Observer for a client's background worker threads.
///
/// Obtained from [`RcClient::worker_lifecycle`]; stays valid after every
/// facade has dropped, which is exactly when it is useful: embedders can
/// assert the pull worker and push watcher actually exited instead of
/// leaking.
#[derive(Clone)]
pub struct WorkerLifecycle(Arc<AtomicUsize>);

impl WorkerLifecycle {
    /// Background worker threads currently running for the client.
    pub fn live(&self) -> usize {
        self.0.load(Ordering::SeqCst)
    }
}

impl RcClient {
    /// Creates a client bound to a plain store. Call
    /// [`RcClient::initialize`] before requesting predictions.
    pub fn new(store: Store, config: ClientConfig) -> Self {
        Self::with_backend(Arc::new(store), config)
    }

    /// Creates a client bound to any [`StoreBackend`] — a plain
    /// [`Store`], or a fault-injecting wrapper like
    /// `rc_store::FaultyStore` for chaos runs.
    pub fn with_backend(backend: Arc<dyn StoreBackend>, config: ClientConfig) -> Self {
        let disk =
            config.disk_cache_dir.clone().map(|dir| DiskCache::new(dir, config.disk_cache_expiry));
        let n_shards = if config.result_cache_shards == 0 {
            ShardedResultCache::default_shards()
        } else {
            config.result_cache_shards
        };
        let results = ShardedResultCache::new(config.result_cache_capacity, n_shards);
        let metrics = ClientMetrics::new();
        rc_obs::global().gauge(rc_obs::CLIENT_RESULT_CACHE_SHARDS).set(results.n_shards() as f64);
        let breakers = CircuitBreakers::new(config.breaker);
        let jitter = RetryJitter::new(&config.retry);
        let admission = (config.mode == CacheMode::Pull)
            .then(|| AdmissionQueue::new(config.pull_queue_capacity));
        let shared = Arc::new(Shared {
            backend,
            results,
            config,
            serve: ArcSwap::from_pointee(ServeSnapshot::empty()),
            serve_write: Mutex::new(()),
            admission,
            initialized: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            store_fingerprint: AtomicU64::new(0),
            model_rejected: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
            model_execs: AtomicU64::new(0),
            no_predictions: AtomicU64::new(0),
            store_fallbacks: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            fresh_fetches: AtomicU64::new(0),
            stale_serves: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            corrupt_payloads: AtomicU64::new(0),
            degraded: Mutex::new(None),
            breakers,
            jitter,
            facades: AtomicUsize::new(1),
            live_workers: Arc::new(AtomicUsize::new(0)),
            worker_handles: Mutex::new(Vec::new()),
            disk,
            metrics,
        });

        if shared.admission.is_some() {
            let worker_shared = shared.clone();
            worker_shared.live_workers.fetch_add(1, Ordering::SeqCst);
            worker_shared.metrics.workers_started.increment();
            let handle = std::thread::Builder::new()
                .name("rc-pull-worker".into())
                .spawn(move || {
                    let _guard = WorkerGuard(worker_shared.clone());
                    pull_worker(worker_shared);
                })
                .expect("spawn pull worker");
            shared.worker_handles.lock().push(handle);
        }

        if let Some(interval) = shared.config.auto_refresh_interval {
            let watcher_shared = shared.clone();
            watcher_shared.live_workers.fetch_add(1, Ordering::SeqCst);
            watcher_shared.metrics.workers_started.increment();
            let handle = std::thread::Builder::new()
                .name("rc-push-watcher".into())
                .spawn(move || {
                    let _guard = WorkerGuard(watcher_shared.clone());
                    push_watcher(watcher_shared, interval);
                })
                .expect("spawn push watcher");
            shared.worker_handles.lock().push(handle);
        }

        RcClient { shared }
    }

    /// Table 2: `initialize`. Loads models (and, in push mode, all feature
    /// data) from the store, falling back to a fresh disk cache when the
    /// store is unavailable. Returns `true` when at least one model is
    /// ready to serve.
    pub fn initialize(&self) -> bool {
        let loaded = self.load_from_store() || {
            let recovered = self.load_from_disk();
            if recovered {
                self.shared.metrics.disk_recoveries.increment();
                let mut span = rc_obs::global_tracer().span("client.disk_cache_recovery");
                span.record("models", self.shared.serve.with(|s| s.models.len()) as u64);
                span.finish();
            }
            recovered
        };
        self.shared.initialized.store(loaded, Ordering::SeqCst);
        loaded
    }

    fn load_from_store(&self) -> bool {
        load_from_store_shared(&self.shared)
    }
}

/// Loads models (and, in push mode, all feature data) from the store into
/// the shared caches. Free function so the push watcher can call it
/// without constructing a facade.
fn load_from_store_shared(shared: &Shared) -> bool {
    {
        let store = shared.backend.as_ref();
        if !store.is_available() {
            return false;
        }
        let write_through = shared.config.disk_write_through;
        // Prefer the publish manifest: it names exactly the payloads of
        // one complete version, with checksums. Stores without one (or
        // with an unreadable pointer) fall back to the flat-key scan.
        let manifest = match store.get_latest(MANIFEST_KEY) {
            Ok(rec) => Manifest::from_bytes(&rec.data),
            Err(_) => None,
        };
        let mut models = HashMap::new();
        if let Some(m) = &manifest {
            for entry in &m.models {
                let name = entry.key.trim_start_matches("model/").to_string();
                let fetched = store.get_latest(&m.versioned_key(&entry.key)).ok().and_then(|rec| {
                    match validate_model_payload(&rec.data, entry, &name) {
                        Some(model) => {
                            if write_through {
                                if let Some(disk) = &shared.disk {
                                    let _ = disk.save("model", &entry.key, &rec.data);
                                }
                            }
                            Some(Arc::new(model))
                        }
                        None => {
                            note_rejected(shared, &name);
                            None
                        }
                    }
                });
                // Containment: a rejected (or unfetchable) payload never
                // replaces a resident model — the old one keeps serving.
                if let Some(model) =
                    fetched.or_else(|| shared.serve.with(|s| s.models.get(&name).cloned()))
                {
                    models.insert(name, model);
                }
            }
        } else {
            for key in store.keys().iter().filter(|k| k.starts_with("model/")) {
                if let Ok(rec) = store.get_latest(key) {
                    match rc_ml::from_bytes::<TrainedModel>(&rec.data) {
                        Ok(model) => {
                            let name = key.trim_start_matches("model/").to_string();
                            if write_through {
                                if let Some(disk) = &shared.disk {
                                    let _ = disk.save("model", key, &rec.data);
                                }
                            }
                            models.insert(name, Arc::new(model));
                        }
                        Err(_) => note_corrupt(shared),
                    }
                }
            }
        }
        if models.is_empty() {
            return false;
        }
        let mut features = HashMap::new();
        let mut version = 0;
        if shared.config.mode == CacheMode::Push {
            if let Some(m) = &manifest {
                version = m.version;
                for entry in &m.features {
                    if let Ok(rec) = store.get_latest(&m.versioned_key(&entry.key)) {
                        if checksum(&rec.data) != entry.checksum {
                            note_corrupt(shared);
                            continue;
                        }
                        match serde_json::from_slice::<SubscriptionFeatures>(&rec.data) {
                            Ok(f) => {
                                features.insert(f.subscription, Arc::new(f));
                            }
                            Err(_) => note_corrupt(shared),
                        }
                    }
                }
            } else {
                for key in store.keys().iter().filter(|k| k.starts_with("features/")) {
                    if let Ok(rec) = store.get_latest(key) {
                        match serde_json::from_slice::<SubscriptionFeatures>(&rec.data) {
                            Ok(f) => {
                                version = version.max(rec.version);
                                features.insert(f.subscription, Arc::new(f));
                            }
                            Err(_) => note_corrupt(shared),
                        }
                    }
                }
            }
            if write_through {
                if let Some(disk) = &shared.disk {
                    let records: Vec<&SubscriptionFeatures> =
                        features.values().map(|f| f.as_ref()).collect();
                    if let Ok(blob) = serde_json::to_vec(&records) {
                        let _ = disk.save("features", "all", &blob);
                    }
                }
            }
        }
        let push = shared.config.mode == CacheMode::Push;
        // One publish swaps in the whole load: models, feature data,
        // staleness, and manifest become visible together. A full reload
        // from the store means the reloaded caches are fresh again
        // (feature records are only replaced in push mode).
        publish_serve(shared, |s| {
            s.models = models;
            s.stale_models.clear();
            if push {
                s.features = features;
                s.features_version = version;
                s.stale_subs.clear();
            }
            s.manifest = manifest.clone();
        });
        if push {
            *shared.degraded.lock() = None;
        } else {
            maybe_clear_degraded(shared);
        }
        // Seed the drift monitor's training-time baselines: the manifest
        // records every model's validated accuracy at publish time. A
        // served metric with no manifest entry is still covered — the
        // tracker falls back to `rc_obs::DEFAULT_BASELINE` at tick time
        // rather than never evaluating its drift signal.
        if let Some(m) = &manifest {
            for entry in &m.models {
                let name = entry.key.trim_start_matches("model/");
                rc_obs::global_accuracy().set_baseline(name, entry.accuracy);
            }
        }
        shared.store_fingerprint.store(rc_store::fingerprint(store), Ordering::SeqCst);
        true
    }
}

/// Sanity-checks a fetched model payload before it may be swapped in:
/// the bytes must match the manifest entry's checksum, decode to a model,
/// be the model the manifest slot names, and produce finite outputs on a
/// probe batch. `None` means the payload is poisoned and must not serve.
fn validate_model_payload(
    bytes: &[u8],
    entry: &ModelEntry,
    expected_name: &str,
) -> Option<TrainedModel> {
    if checksum(bytes) != entry.checksum {
        return None;
    }
    let model = rc_ml::from_bytes::<TrainedModel>(bytes).ok()?;
    if model.spec.metric.model_name() != expected_name {
        return None;
    }
    let n = model.spec.n_features();
    for probe in [vec![0.0; n], vec![0.5; n]] {
        let (_, score) = rc_ml::Classifier::predict(&model, &probe);
        if !score.is_finite() {
            return None;
        }
    }
    Some(model)
}

/// Records one rejected model payload (poisoned-model containment).
fn note_rejected(shared: &Shared, model_name: &str) {
    shared.model_rejected.fetch_add(1, Ordering::Relaxed);
    shared.metrics.model_rejected.increment();
    let mut span = rc_obs::global_tracer().span("client.model_rejected");
    span.record("model", model_name);
    span.finish();
}

/// Records one corrupt/undecodable payload (store pull or disk entry).
fn note_corrupt(shared: &Shared) {
    shared.corrupt_payloads.fetch_add(1, Ordering::Relaxed);
    shared.metrics.corrupt_payloads.increment();
}

/// Marks the client degraded (first cause wins until the next all-clear).
fn note_degraded(shared: &Shared, reason: DegradedReason) {
    let mut degraded = shared.degraded.lock();
    if degraded.is_none() {
        *degraded = Some((SystemTime::now(), reason));
    }
}

/// Clears the degraded mark once the store answers, no breaker is open,
/// and nothing stale is resident.
fn maybe_clear_degraded(shared: &Shared) {
    if shared.breakers.open_count() == 0
        && shared.serve.with(|s| s.stale_models.is_empty() && s.stale_subs.is_empty())
    {
        *shared.degraded.lock() = None;
    }
}

impl RcClient {
    fn load_from_disk(&self) -> bool {
        let shared = &self.shared;
        let Some(disk) = &shared.disk else {
            return false;
        };
        let grace = shared.config.stale_grace;
        let mut models = HashMap::new();
        let mut stale_names = HashSet::new();
        // `list` returns the original store keys (e.g. "model/VM_P95UTIL")
        // thanks to the disk cache's lossless name escaping.
        for name in disk.list("model") {
            let (bytes, stale) = match disk.load_graced("model", &name, grace) {
                DiskLoadResult::Fresh(bytes) => (bytes, false),
                DiskLoadResult::Stale(bytes) => (bytes, true),
                DiskLoadResult::Corrupt => {
                    note_corrupt(shared);
                    continue;
                }
                DiskLoadResult::Expired | DiskLoadResult::Missing => continue,
            };
            match rc_ml::from_bytes::<TrainedModel>(&bytes) {
                Ok(model) => {
                    let model_name = model.spec.metric.model_name().to_string();
                    if stale {
                        stale_names.insert(model_name.clone());
                    }
                    models.insert(model_name, Arc::new(model));
                }
                Err(_) => note_corrupt(shared),
            }
        }
        if models.is_empty() {
            return false;
        }
        let mut features = HashMap::new();
        let mut features_stale = false;
        let blob = match disk.load_graced("features", "all", grace) {
            DiskLoadResult::Fresh(blob) => Some(blob),
            DiskLoadResult::Stale(blob) => {
                features_stale = true;
                Some(blob)
            }
            DiskLoadResult::Corrupt => {
                note_corrupt(shared);
                None
            }
            DiskLoadResult::Expired | DiskLoadResult::Missing => None,
        };
        if let Some(blob) = blob {
            match serde_json::from_slice::<Vec<SubscriptionFeatures>>(&blob) {
                Ok(records) => {
                    for f in records {
                        features.insert(f.subscription, Arc::new(f));
                    }
                }
                Err(_) => note_corrupt(shared),
            }
        }
        if !stale_names.is_empty() || features_stale {
            note_degraded(shared, DegradedReason::StaleData);
        }
        let stale_keys: Vec<SubscriptionId> =
            if features_stale { features.keys().copied().collect() } else { Vec::new() };
        publish_serve(shared, |s| {
            s.stale_subs.extend(stale_keys);
            s.stale_models = stale_names;
            s.models = models;
            s.features = features;
            s.features_version = 0;
        });
        true
    }

    /// Table 2: `get_available_models`.
    pub fn get_available_models(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shared.serve.with(|s| s.models.keys().cloned().collect());
        names.sort();
        names
    }

    /// Table 2: `predict_single`.
    pub fn predict_single(&self, model_name: &str, inputs: &ClientInputs) -> PredictionResponse {
        self.predict_single_attributed(model_name, inputs).0
    }

    /// `predict_single` plus the degradation-ladder rung the lookup
    /// landed on. Every call resolves to exactly one [`Served`] class, so
    /// tallies of the second element reconcile exactly with the
    /// `rc_client_lookups` / `..._fresh_fetches` / `..._stale_serves` /
    /// `..._defaults` counters.
    pub fn predict_single_traced(
        &self,
        model_name: &str,
        inputs: &ClientInputs,
    ) -> (PredictionResponse, Served) {
        let (response, served, _) = self.predict_single_attributed(model_name, inputs);
        (response, served)
    }

    /// `predict_single_traced` plus the serve-snapshot generation the
    /// call resolved against — the swap-race regression test's torn-read
    /// oracle. A miss that executes a model attributes to the single
    /// pinned snapshot that supplied both the model and the feature
    /// record; a cache hit (or default) reports the generation current at
    /// answer time, which may postdate the publish that filled the cached
    /// entry.
    pub fn predict_single_attributed(
        &self,
        model_name: &str,
        inputs: &ClientInputs,
    ) -> (PredictionResponse, Served, u64) {
        let start = Instant::now();
        let metrics = &self.shared.metrics;
        let _inflight = InflightGuard::enter(&metrics.inflight);
        self.shared.lookups.fetch_add(1, Ordering::Relaxed);
        metrics.lookups.increment();
        metrics.lookups_windowed.increment();
        if !self.shared.initialized.load(Ordering::SeqCst) {
            let generation = self.shared.serve.with(|s| s.generation);
            return (self.no_prediction(), Served::Default, generation);
        }
        let key = inputs.cache_key(model_name);
        if let Some(hit) = self.shared.results.get(key) {
            metrics.result_hits.increment();
            metrics.predictions.increment();
            metrics.hit_latency.record_duration(start.elapsed());
            metrics.predict_latency_windowed.record_duration(start.elapsed());
            let generation = self.shared.serve.with(|s| s.generation);
            return (PredictionResponse::Predicted(hit), Served::Hit, generation);
        }
        metrics.result_misses.increment();
        let (response, served, generation) = match self.shared.config.mode {
            CacheMode::Push => match self.execute(model_name, inputs) {
                Some(executed) => {
                    let evicted = self.shared.results.insert(key, executed.prediction);
                    metrics.result_insertions.increment();
                    if evicted {
                        metrics.result_evictions.increment();
                    }
                    let served = self.count_serve_stale(executed.stale, 1);
                    metrics.predictions.increment();
                    (
                        PredictionResponse::Predicted(executed.prediction),
                        served,
                        executed.generation,
                    )
                }
                None => {
                    let generation = self.shared.serve.with(|s| s.generation);
                    (self.no_prediction(), Served::Default, generation)
                }
            },
            CacheMode::PullSync => match self.resolve_sync(model_name, inputs) {
                Some(executed) => {
                    let evicted = self.shared.results.insert(key, executed.prediction);
                    metrics.result_insertions.increment();
                    if evicted {
                        metrics.result_evictions.increment();
                    }
                    let served = self.count_serve_stale(executed.stale, 1);
                    metrics.predictions.increment();
                    (
                        PredictionResponse::Predicted(executed.prediction),
                        served,
                        executed.generation,
                    )
                }
                None => {
                    let generation = self.shared.serve.with(|s| s.generation);
                    (self.no_prediction(), Served::Default, generation)
                }
            },
            CacheMode::Pull => {
                // Answer no-prediction now; fill the cache in the
                // background so the next identical request hits. The
                // admission queue coalesces concurrent misses on the same
                // key and sheds load when full — no global lock.
                if let Some(q) = &self.shared.admission {
                    match q.submit(model_name, inputs, key) {
                        SubmitOutcome::Enqueued => metrics.admission_enqueued.increment(),
                        SubmitOutcome::Coalesced => metrics.admission_coalesced.increment(),
                        SubmitOutcome::Rejected => metrics.admission_rejected.increment(),
                    }
                }
                let generation = self.shared.serve.with(|s| s.generation);
                (self.no_prediction(), Served::Default, generation)
            }
        };
        metrics.miss_latency.record_duration(start.elapsed());
        metrics.predict_latency_windowed.record_duration(start.elapsed());
        (response, served, generation)
    }

    /// Classifies (and counts) `n` served lookups as fresh or stale. The
    /// staleness flag comes from the same pinned snapshot that resolved
    /// the prediction, so no extra lock (or pin) is taken here.
    fn count_serve_stale(&self, stale: bool, n: u64) -> Served {
        if stale {
            self.shared.stale_serves.fetch_add(n, Ordering::Relaxed);
            self.shared.metrics.stale_serves.add(n);
            note_degraded(&self.shared, DegradedReason::StaleData);
            Served::Stale
        } else {
            self.shared.fresh_fetches.fetch_add(n, Ordering::Relaxed);
            self.shared.metrics.fresh_fetches.add(n);
            Served::Fresh
        }
    }

    /// Synchronous pull: makes the model and the subscription's feature
    /// record resident (store → retry/backoff → disk fallback), then
    /// executes. `None` when every rung of the ladder failed.
    fn resolve_sync(&self, model_name: &str, inputs: &ClientInputs) -> Option<Executed> {
        let shared = &self.shared;
        if shared.serve.with(|s| !s.models.contains_key(model_name)) {
            resilient_fetch_model(shared, model_name)?;
        }
        if shared.serve.with(|s| !s.features.contains_key(&inputs.subscription))
            && !resilient_fetch_features(shared, inputs.subscription)
        {
            return None;
        }
        self.execute(model_name, inputs)
    }

    /// Table 2: `predict_many` — a real batch path.
    ///
    /// Keys are probed shard-by-shard (each touched shard locked once for
    /// the whole batch instead of once per request), and in push mode
    /// every *unique* missed key executes its model at most once, however
    /// many times it recurs in the batch. Responses are positional, and
    /// counter semantics match `predict_single` exactly: each input
    /// records one result-cache hit or miss, so `hits + misses` still
    /// equals total lookups. Per-item latencies are amortized over the
    /// batch phase they belong to.
    pub fn predict_many(
        &self,
        model_name: &str,
        inputs: &[ClientInputs],
    ) -> Vec<PredictionResponse> {
        let start = Instant::now();
        let metrics = &self.shared.metrics;
        if inputs.is_empty() {
            return Vec::new();
        }
        let _inflight = InflightGuard::enter(&metrics.inflight);
        self.shared.lookups.fetch_add(inputs.len() as u64, Ordering::Relaxed);
        metrics.lookups.add(inputs.len() as u64);
        metrics.lookups_windowed.add(inputs.len() as u64);
        if !self.shared.initialized.load(Ordering::SeqCst) {
            return inputs.iter().map(|_| self.no_prediction()).collect();
        }
        metrics.batch_predicts.increment();

        // Probe phase: one lock acquisition per touched shard.
        let keys: Vec<u64> = inputs.iter().map(|i| i.cache_key(model_name)).collect();
        let probed = self.shared.results.get_batch(&keys);
        let n_hits = probed.iter().filter(|p| p.is_some()).count() as u64;
        let n_misses = inputs.len() as u64 - n_hits;
        metrics.result_hits.add(n_hits);
        metrics.result_misses.add(n_misses);
        metrics.predictions.add(n_hits);
        let probe_elapsed = start.elapsed();
        if n_hits > 0 {
            let per_hit = probe_elapsed / inputs.len() as u32;
            for _ in 0..n_hits {
                metrics.hit_latency.record_duration(per_hit);
                metrics.predict_latency_windowed.record_duration(per_hit);
            }
        }

        let mut responses: Vec<Option<PredictionResponse>> =
            probed.into_iter().map(|p| p.map(PredictionResponse::Predicted)).collect();
        if n_misses == 0 {
            return responses.into_iter().map(|r| r.expect("all hits")).collect();
        }

        // Dedup phase: group missed occurrences by key, first occurrence
        // carries the inputs the model executes against.
        let miss_start = Instant::now();
        let mut unique_missed: Vec<(u64, usize)> = Vec::new();
        let mut occurrences: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, key) in keys.iter().enumerate() {
            if responses[i].is_none() {
                let occ = occurrences.entry(*key).or_default();
                if occ.is_empty() {
                    unique_missed.push((*key, i));
                }
                occ.push(i);
            }
        }
        metrics.batch_deduped_execs.add(n_misses - unique_missed.len() as u64);

        match self.shared.config.mode {
            CacheMode::Push | CacheMode::PullSync => {
                let sync_pull = self.shared.config.mode == CacheMode::PullSync;
                let mut filled: Vec<(u64, Prediction)> = Vec::with_capacity(unique_missed.len());
                for &(key, first_idx) in &unique_missed {
                    let resolved = if sync_pull {
                        self.resolve_sync(model_name, &inputs[first_idx])
                    } else {
                        self.execute(model_name, &inputs[first_idx])
                    };
                    match resolved {
                        Some(executed) => {
                            filled.push((key, executed.prediction));
                            // Every occurrence of the key is one lookup
                            // resolved at this rung.
                            self.count_serve_stale(executed.stale, occurrences[&key].len() as u64);
                            metrics.predictions.add(occurrences[&key].len() as u64);
                            for &i in &occurrences[&key] {
                                responses[i] =
                                    Some(PredictionResponse::Predicted(executed.prediction));
                            }
                        }
                        None => {
                            for &i in &occurrences[&key] {
                                responses[i] = Some(self.no_prediction());
                            }
                        }
                    }
                }
                if !filled.is_empty() {
                    let evicted = self.shared.results.insert_batch(&filled);
                    metrics.result_insertions.add(filled.len() as u64);
                    metrics.result_evictions.add(evicted);
                }
            }
            CacheMode::Pull => {
                // Enqueue each unique missed key once; answer no-prediction
                // now so the next identical batch hits the cache.
                if let Some(q) = &self.shared.admission {
                    for &(key, first_idx) in &unique_missed {
                        match q.submit(model_name, &inputs[first_idx], key) {
                            SubmitOutcome::Enqueued => metrics.admission_enqueued.increment(),
                            SubmitOutcome::Coalesced => metrics.admission_coalesced.increment(),
                            SubmitOutcome::Rejected => metrics.admission_rejected.increment(),
                        }
                    }
                }
                for response in responses.iter_mut().filter(|r| r.is_none()) {
                    *response = Some(self.no_prediction());
                }
            }
        }

        let per_miss = miss_start.elapsed() / n_misses.max(1) as u32;
        for _ in 0..n_misses {
            metrics.miss_latency.record_duration(per_miss);
            metrics.predict_latency_windowed.record_duration(per_miss);
        }
        responses.into_iter().map(|r| r.expect("every input answered")).collect()
    }

    /// Table 2: `force_reload_cache` — refreshes memory and disk caches
    /// from the store.
    pub fn force_reload_cache(&self) {
        if self.load_from_store() {
            self.shared.results.clear();
            self.shared.initialized.store(true, Ordering::SeqCst);
        }
    }

    /// Table 2: `flush_cache` — drops memory and disk caches. The client
    /// reports [`ClientHealth::Offline`] until re-initialized.
    pub fn flush_cache(&self) {
        // One publish flushes every serve-path structure at once (the
        // generation keeps counting up — flushes are publishes too).
        publish_serve(&self.shared, |s| {
            s.models.clear();
            s.features.clear();
            s.features_version = 0;
            s.manifest = None;
            s.stale_models.clear();
            s.stale_subs.clear();
        });
        self.shared.results.clear();
        if let Some(disk) = &self.shared.disk {
            disk.flush();
        }
        self.shared.breakers.reset();
        *self.shared.degraded.lock() = None;
        self.shared.initialized.store(false, Ordering::SeqCst);
    }

    /// The health probe (§4.3): `Offline` when uninitialized or flushed
    /// (every lookup answers the default — schedulers should take their
    /// conservative no-prediction path without asking), `Degraded` while
    /// serving from fallbacks (stale data, disk, open breakers), else
    /// `Healthy`.
    pub fn health(&self) -> ClientHealth {
        if !self.shared.initialized.load(Ordering::SeqCst) {
            return ClientHealth::Offline;
        }
        if let Some((since, reason)) = *self.shared.degraded.lock() {
            return ClientHealth::Degraded { since, reason };
        }
        if self.shared.breakers.open_count() > 0 {
            return ClientHealth::Degraded {
                since: SystemTime::now(),
                reason: DegradedReason::BreakerOpen,
            };
        }
        ClientHealth::Healthy
    }

    /// Executes a model synchronously against cached feature data.
    ///
    /// One epoch pin covers the whole resolution: model, feature record,
    /// staleness, and generation all come from the same snapshot, so a
    /// concurrent publish can never mix versions within one call. The
    /// model itself runs outside the pin — it holds its own `Arc`.
    fn execute(&self, model_name: &str, inputs: &ClientInputs) -> Option<Executed> {
        let metrics = &self.shared.metrics;
        let resolved = self.shared.serve.with(|snap| {
            let model = match snap.models.get(model_name) {
                Some(m) => {
                    metrics.model_cache_hits.increment();
                    m.clone()
                }
                None => {
                    metrics.model_cache_misses.increment();
                    return None;
                }
            };
            let features = match snap.features.get(&inputs.subscription) {
                Some(sub) => {
                    metrics.feature_cache_hits.increment();
                    model.spec.features(inputs, sub.as_ref())
                }
                None => {
                    metrics.feature_cache_misses.increment();
                    return None;
                }
            };
            let stale = snap.stale_models.contains(model_name)
                || snap.stale_subs.contains(&inputs.subscription);
            Some((model, features, snap.generation, stale))
        });
        let (model, features, generation, stale) = resolved?;
        self.shared.model_execs.fetch_add(1, Ordering::Relaxed);
        metrics.model_execs.increment();
        let (value, score) = rc_ml::Classifier::predict(model.as_ref(), &features);
        Some(Executed { prediction: Prediction { value, score }, generation, stale })
    }

    /// Shadow-evaluates a candidate model side-by-side with the serving
    /// one — the control loop's pre-promotion check. Both models see the
    /// feature vector assembled from the *same* pinned serve snapshot, so
    /// a concurrent publish can never make the comparison lopsided.
    ///
    /// This path is deliberately invisible to clients: no counter moves,
    /// no cache is read or written, no degradation is noted. The serving
    /// side is `None` when the model or the subscription's feature record
    /// is not resident; the candidate side is `None` only when the
    /// feature record is missing (it needs no resident model).
    pub fn shadow_predict(
        &self,
        model_name: &str,
        inputs: &ClientInputs,
        candidate: &TrainedModel,
    ) -> ShadowPrediction {
        let resolved = self.shared.serve.with(|snap| {
            let sub = snap.features.get(&inputs.subscription).cloned();
            let model = snap.models.get(model_name).cloned();
            (model, sub)
        });
        let (model, sub) = resolved;
        let Some(sub) = sub else {
            return ShadowPrediction { serving: None, candidate: None };
        };
        let serving = model.map(|m| {
            let features = m.spec.features(inputs, sub.as_ref());
            let (value, score) = rc_ml::Classifier::predict(m.as_ref(), &features);
            Prediction { value, score }
        });
        let features = candidate.spec.features(inputs, sub.as_ref());
        let (value, score) = rc_ml::Classifier::predict(candidate, &features);
        ShadowPrediction { serving, candidate: Some(Prediction { value, score }) }
    }

    fn no_prediction(&self) -> PredictionResponse {
        self.shared.no_predictions.fetch_add(1, Ordering::Relaxed);
        self.shared.metrics.no_predictions.increment();
        self.shared.metrics.defaults.increment();
        PredictionResponse::NoPrediction
    }

    /// Result-cache hit rate so far.
    pub fn result_cache_hit_rate(&self) -> f64 {
        self.shared.results.hit_rate()
    }

    /// Result-cache entry count across all shards.
    pub fn result_cache_len(&self) -> usize {
        self.shared.results.len()
    }

    /// Exact result-cache counters, aggregated across shards.
    pub fn result_cache_stats(&self) -> crate::cache::ResultCacheStats {
        self.shared.results.stats()
    }

    /// Number of result-cache shards this client was built with.
    pub fn result_cache_shards(&self) -> usize {
        self.shared.results.n_shards()
    }

    /// Model executions so far (each one is a result-cache fill).
    pub fn model_exec_count(&self) -> u64 {
        self.shared.model_execs.load(Ordering::Relaxed)
    }

    /// Result-cache hits per model execution — the §6.1 reuse statistic
    /// ("an entry is accessed between 18 and 68 times ... after the
    /// corresponding model execution").
    pub fn hits_per_execution(&self) -> f64 {
        let execs = self.model_exec_count();
        if execs == 0 {
            return 0.0;
        }
        self.shared.results.hits() as f64 / execs as f64
    }

    /// Drops only the result cache, keeping models and feature data.
    ///
    /// Useful when the client knows its inputs' behaviour changed (and for
    /// benchmarking the model-execution path).
    pub fn clear_result_cache(&self) {
        self.shared.results.clear();
    }

    /// No-prediction replies so far.
    pub fn no_prediction_count(&self) -> u64 {
        self.shared.no_predictions.load(Ordering::Relaxed)
    }

    /// Pull-mode model fetches that fell back to the disk cache because
    /// the store pull failed. Successful store pulls do not count.
    pub fn store_fallback_count(&self) -> u64 {
        self.shared.store_fallbacks.load(Ordering::Relaxed)
    }

    /// Lookups so far — every `predict_single` call and every element of
    /// a `predict_many` batch.
    pub fn lookup_count(&self) -> u64 {
        self.shared.lookups.load(Ordering::Relaxed)
    }

    /// Lookups resolved by executing a model against fresh data.
    pub fn fresh_fetch_count(&self) -> u64 {
        self.shared.fresh_fetches.load(Ordering::Relaxed)
    }

    /// Lookups resolved against stale (grace-window) disk data.
    pub fn stale_serve_count(&self) -> u64 {
        self.shared.stale_serves.load(Ordering::Relaxed)
    }

    /// Store-pull retries performed beyond first attempts.
    pub fn retry_count(&self) -> u64 {
        self.shared.retries.load(Ordering::Relaxed)
    }

    /// Corrupt or undecodable payloads skipped (store pulls and disk
    /// entries).
    pub fn corrupt_payload_count(&self) -> u64 {
        self.shared.corrupt_payloads.load(Ordering::Relaxed)
    }

    /// Fetched model payloads rejected by the pre-swap sanity check
    /// (checksum mismatch, wrong model in the slot, non-finite outputs).
    /// Each rejection left the previously resident model serving.
    pub fn model_rejected_count(&self) -> u64 {
        self.shared.model_rejected.load(Ordering::Relaxed)
    }

    /// The manifest version the resident caches were loaded through, when
    /// the store publishes one.
    pub fn manifest_version(&self) -> Option<u64> {
        self.shared.serve.with(|s| s.manifest.as_ref().map(|m| m.version))
    }

    /// Per-key circuit breakers currently open.
    pub fn open_breaker_count(&self) -> usize {
        self.shared.breakers.open_count()
    }

    /// Handle for observing this client's background worker threads; it
    /// outlives every facade, so callers can verify the workers exited
    /// after the last clone dropped.
    pub fn worker_lifecycle(&self) -> WorkerLifecycle {
        WorkerLifecycle(self.shared.live_workers.clone())
    }

    /// Background cache refreshes performed by the push watcher.
    pub fn background_refresh_count(&self) -> u64 {
        self.shared.refreshes.load(Ordering::Relaxed)
    }

    /// Blocks until the pull worker has drained its queue (test helper).
    pub fn drain_pull_queue(&self) {
        let Some(q) = &self.shared.admission else {
            return;
        };
        while !q.is_idle() {
            std::thread::sleep(StdDuration::from_millis(1));
        }
    }
}

/// Decrements the live-worker count when a background thread exits, even
/// if the worker body panics.
struct WorkerGuard(Arc<Shared>);

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        self.0.live_workers.fetch_sub(1, Ordering::SeqCst);
        self.0.metrics.workers_stopped.increment();
    }
}

impl Clone for RcClient {
    fn clone(&self) -> Self {
        self.shared.facades.fetch_add(1, Ordering::SeqCst);
        RcClient { shared: self.shared.clone() }
    }
}

impl Drop for RcClient {
    fn drop(&mut self) {
        // Exactly one facade observes the count reach zero, however many
        // clones drop concurrently; that facade owns shutdown.
        if self.shared.facades.fetch_sub(1, Ordering::SeqCst) != 1 {
            return;
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(q) = &self.shared.admission {
            q.close();
        }
        // Join the workers so "drop the last facade" deterministically
        // means "no client threads remain". Workers never own a facade,
        // so this cannot self-join.
        let handles = std::mem::take(&mut *self.shared.worker_handles.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// The push watcher: polls the store's version fingerprint and refreshes
/// the caches when RC publishes something new.
fn push_watcher(shared: Arc<Shared>, interval: StdDuration) {
    let step = StdDuration::from_millis(20).min(interval);
    let mut elapsed = StdDuration::ZERO;
    loop {
        std::thread::sleep(step);
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        elapsed += step;
        if elapsed < interval {
            continue;
        }
        elapsed = StdDuration::ZERO;
        if !shared.initialized.load(Ordering::SeqCst) || !shared.backend.is_available() {
            continue;
        }
        let current = rc_store::fingerprint(shared.backend.as_ref());
        if current != shared.store_fingerprint.load(Ordering::SeqCst)
            && load_from_store_shared(&shared)
        {
            shared.results.clear();
            shared.refreshes.fetch_add(1, Ordering::Relaxed);
            shared.metrics.background_refreshes.increment();
        }
    }
}

/// The pull-mode background worker: drains the admission queue, fetches
/// model/feature data, executes the model, and fills the result cache.
fn pull_worker(shared: Arc<Shared>) {
    let Some(q) = shared.admission.as_ref() else {
        return;
    };
    loop {
        let Some((model_name, inputs, key)) = q.pop() else {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            q.park(StdDuration::from_millis(5));
            continue;
        };
        // Ensure the model is resident.
        let model = match shared.serve.with(|s| s.models.get(&model_name).cloned()) {
            Some(m) => Some(m),
            None => resilient_fetch_model(&shared, &model_name),
        };
        // Ensure the subscription's feature data is resident.
        let have_features = shared.serve.with(|s| s.features.contains_key(&inputs.subscription))
            || resilient_fetch_features(&shared, inputs.subscription);
        if let (Some(model), true) = (model, have_features) {
            let features = shared.serve.with(|s| {
                s.features
                    .get(&inputs.subscription)
                    .map(|sub| model.spec.features(&inputs, sub.as_ref()))
            });
            if let Some(features) = features {
                shared.model_execs.fetch_add(1, Ordering::Relaxed);
                shared.metrics.model_execs.increment();
                let (value, score) = rc_ml::Classifier::predict(model.as_ref(), &features);
                let evicted = shared.results.insert(key, Prediction { value, score });
                shared.metrics.result_insertions.increment();
                if evicted {
                    shared.metrics.result_evictions.increment();
                }
            }
        }
        q.complete(key);
    }
}

/// How one resilient store pull resolved.
enum FetchOutcome<T> {
    /// The store answered with a payload that decoded.
    Data(T),
    /// The store answered authoritatively: the key does not exist. Not a
    /// failure — no retry, no disk fallback.
    NotFound,
    /// Every attempt failed (unavailability, transient errors, corrupt
    /// payloads, breaker rejection): time for the next ladder rung.
    Failed,
}

/// One resilient store pull: circuit-breaker admission, then up to
/// `retry.max_attempts` tries under `retry.call_deadline`, with jittered
/// exponential backoff between tries. A payload that fails `decode` is a
/// corrupt payload — counted and retried (the corruption may be
/// per-request; the next pull can return a clean copy).
fn resilient_get<T>(
    shared: &Shared,
    key: &str,
    decode: impl Fn(&[u8]) -> Option<T>,
) -> FetchOutcome<T> {
    if shared.breakers.admit(key) == Admission::Reject {
        return FetchOutcome::Failed;
    }
    let policy = &shared.config.retry;
    let start = Instant::now();
    let mut attempt = 0;
    loop {
        attempt += 1;
        match shared.backend.get_latest(key) {
            // A reply that arrives after the per-call deadline has already
            // blown (e.g. a latency spike sat on the wire longer than the
            // caller will wait) is a *failure*, not data: the attempt
            // counts against the circuit breaker like any other timeout.
            Ok(_) if start.elapsed() >= policy.call_deadline => {}
            Ok(rec) => match decode(&rec.data) {
                Some(value) => {
                    shared.breakers.record(key, true);
                    maybe_clear_degraded(shared);
                    return FetchOutcome::Data(value);
                }
                None => note_corrupt(shared),
            },
            Err(err) if !err.is_retryable() => {
                // The store answered; the key just isn't there.
                shared.breakers.record(key, true);
                return FetchOutcome::NotFound;
            }
            Err(_) => {}
        }
        if attempt >= policy.max_attempts {
            break;
        }
        let backoff = shared.jitter.backoff(policy, attempt);
        if start.elapsed() + backoff >= policy.call_deadline {
            break;
        }
        shared.retries.fetch_add(1, Ordering::Relaxed);
        shared.metrics.retries.increment();
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
    }
    shared.breakers.record(key, false);
    FetchOutcome::Failed
}

/// The manifest the on-demand paths resolve keys through: the cached one
/// when a load already read it, else one resilient pull of the pointer
/// record. `None` on legacy stores (no manifest) or when the store is
/// unreachable — callers then use the flat logical keys directly.
fn cached_manifest(shared: &Shared) -> Option<Manifest> {
    if let Some(m) = shared.serve.with(|s| s.manifest.clone()) {
        return Some(m);
    }
    match resilient_get(shared, MANIFEST_KEY, Manifest::from_bytes) {
        FetchOutcome::Data(m) => {
            publish_serve(shared, |s| s.manifest = Some(m.clone()));
            Some(m)
        }
        FetchOutcome::NotFound | FetchOutcome::Failed => None,
    }
}

/// Fetches and caches a model: store (with retry/backoff/breaker), then
/// the disk cache (fresh first, stale within the grace window). When the
/// store publishes a manifest, the pull goes to the manifest's versioned
/// key and the payload must pass [`validate_model_payload`] — a poisoned
/// payload is rejected without touching the resident model.
fn resilient_fetch_model(shared: &Shared, model_name: &str) -> Option<Arc<TrainedModel>> {
    let logical = format!("model/{model_name}");
    let manifest = cached_manifest(shared);
    let entry = manifest.as_ref().and_then(|m| m.model_entry(&logical).cloned());
    // A manifest entry directs the pull to its versioned key; names the
    // manifest does not list (out-of-band models, quarantined metrics)
    // fall back to the flat logical key, as do manifest-less stores.
    let key = match (&manifest, &entry) {
        (Some(m), Some(e)) => m.versioned_key(&e.key),
        _ => logical.clone(),
    };
    let decode = |bytes: &[u8]| match &entry {
        Some(e) => match validate_model_payload(bytes, e, model_name) {
            Some(model) => Some((model, bytes.to_vec())),
            None => {
                note_rejected(shared, model_name);
                None
            }
        },
        None => rc_ml::from_bytes::<TrainedModel>(bytes).ok().map(|m| (m, bytes.to_vec())),
    };
    match resilient_get(shared, &key, decode) {
        FetchOutcome::Data((model, bytes)) => {
            let model = Arc::new(model);
            publish_serve(shared, |s| {
                s.models.insert(model_name.to_string(), model.clone());
                s.stale_models.remove(model_name);
            });
            if shared.config.disk_write_through {
                if let Some(disk) = &shared.disk {
                    // Disk entries key by the *logical* name so a cached
                    // copy survives version flips and serves as the
                    // fallback whatever version published it.
                    let _ = disk.save("model", &logical, &bytes);
                }
            }
            Some(model)
        }
        FetchOutcome::NotFound => None,
        FetchOutcome::Failed => {
            // Only an actual fall-back to the local disk counts toward
            // `store_fallbacks`; a successful store pull is the normal
            // pull-mode path, not a fallback.
            shared.metrics.store_fallbacks.increment();
            shared.store_fallbacks.fetch_add(1, Ordering::Relaxed);
            let (bytes, stale) = disk_fallback(shared, "model", &logical)?;
            install_disk_model(shared, model_name, &bytes, stale)
        }
    }
}

/// Decodes a disk-cache model payload and makes it resident, tracking
/// whether it is stale-grace data.
fn install_disk_model(
    shared: &Shared,
    model_name: &str,
    bytes: &[u8],
    stale: bool,
) -> Option<Arc<TrainedModel>> {
    let model = match rc_ml::from_bytes::<TrainedModel>(bytes) {
        Ok(model) => Arc::new(model),
        Err(_) => {
            note_corrupt(shared);
            return None;
        }
    };
    publish_serve(shared, |s| {
        s.models.insert(model_name.to_string(), model.clone());
        if stale {
            s.stale_models.insert(model_name.to_string());
        } else {
            s.stale_models.remove(model_name);
        }
    });
    let mut span = rc_obs::global_tracer().span("client.disk_cache_recovery");
    span.record("model", model_name);
    span.finish();
    Some(model)
}

/// Fetches and caches one subscription's feature data, with the same
/// ladder as [`resilient_fetch_model`].
fn resilient_fetch_features(shared: &Shared, sub: SubscriptionId) -> bool {
    let logical = feature_store_key(sub);
    let manifest = cached_manifest(shared);
    let entry = manifest.as_ref().and_then(|m| m.feature_entry(&logical).cloned());
    let key = match (&manifest, &entry) {
        (Some(m), Some(e)) => m.versioned_key(&e.key),
        _ => logical.clone(),
    };
    let decode = |bytes: &[u8]| {
        if let Some(e) = &entry {
            if checksum(bytes) != e.checksum {
                return None;
            }
        }
        serde_json::from_slice::<SubscriptionFeatures>(bytes).ok()
    };
    match resilient_get(shared, &key, decode) {
        FetchOutcome::Data(features) => {
            if shared.config.disk_write_through {
                if let Some(disk) = &shared.disk {
                    if let Ok(blob) = serde_json::to_vec(&features) {
                        let _ = disk.save("features", &logical, &blob);
                    }
                }
            }
            let features = Arc::new(features);
            publish_serve(shared, |s| {
                s.features.insert(sub, features);
                s.stale_subs.remove(&sub);
            });
            true
        }
        FetchOutcome::NotFound => false,
        FetchOutcome::Failed => {
            shared.metrics.store_fallbacks.increment();
            shared.store_fallbacks.fetch_add(1, Ordering::Relaxed);
            let Some((bytes, stale)) = disk_fallback(shared, "features", &logical) else {
                return false;
            };
            let Some(features) = decode(&bytes) else {
                note_corrupt(shared);
                return false;
            };
            let features = Arc::new(features);
            publish_serve(shared, |s| {
                s.features.insert(sub, features);
                if stale {
                    s.stale_subs.insert(sub);
                } else {
                    s.stale_subs.remove(&sub);
                }
            });
            true
        }
    }
}

/// The disk rung of the ladder: a fresh entry if there is one, else a
/// stale entry within the grace window. Returns the payload and whether
/// it was stale; records recovery metrics and the degraded mark.
fn disk_fallback(shared: &Shared, kind: &str, key: &str) -> Option<(Vec<u8>, bool)> {
    let disk = shared.disk.as_ref()?;
    let (bytes, stale) = match disk.load_graced(kind, key, shared.config.stale_grace) {
        DiskLoadResult::Fresh(bytes) => (bytes, false),
        DiskLoadResult::Stale(bytes) => (bytes, true),
        DiskLoadResult::Corrupt => {
            note_corrupt(shared);
            return None;
        }
        DiskLoadResult::Expired | DiskLoadResult::Missing => return None,
    };
    shared.metrics.disk_recoveries.increment();
    note_degraded(
        shared,
        if stale { DegradedReason::StaleData } else { DegradedReason::DiskFallback },
    );
    Some((bytes, stale))
}
