//! The client library — the paper's "client DLL" (§4.2, Table 2).
//!
//! A single, general, thread-safe library through which every resource
//! manager consumes predictions. It caches prediction results, models, and
//! feature data in memory; mirrors models and feature data to a local disk
//! cache; and supports both caching modes:
//!
//! - **push** (the production default): `initialize` /
//!   `force_reload_cache` load *everything* from the store, and
//!   predictions never touch the store or the disk on the request path.
//! - **pull**: a result-cache miss returns the no-prediction flag
//!   immediately while a background worker fetches the model/feature data
//!   and executes the model, so a later identical request hits the cache.
//!
//! When the store is unavailable, loads fall back to the disk cache
//! unless it has expired — the two cases §4.2 enumerates.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use parking_lot::{Mutex, RwLock};

use rc_obs::{Counter, Histogram};
use rc_store::Store;
use rc_types::vm::SubscriptionId;

use crate::cache::{DiskCache, FeatureCache, ResultCache};
use crate::features::SubscriptionFeatures;
use crate::inputs::ClientInputs;
use crate::models::{feature_store_key, TrainedModel};
use crate::prediction::{Prediction, PredictionResponse};

/// Caching mode (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// RC pushes models and feature data; loads happen at initialize /
    /// reload time and the predict path never blocks on the store.
    Push,
    /// Models and feature data are fetched on demand in the background; a
    /// result-cache miss answers no-prediction.
    Pull,
}

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Push or pull caching.
    pub mode: CacheMode,
    /// Result-cache capacity in entries.
    pub result_cache_capacity: usize,
    /// Directory for the local disk cache; `None` disables it.
    pub disk_cache_dir: Option<std::path::PathBuf>,
    /// Expiry of disk-cache contents.
    pub disk_cache_expiry: StdDuration,
    /// Push-mode background refresh interval: when set, a watcher thread
    /// polls the store's versions and reloads the caches whenever RC
    /// publishes new models or feature data ("RC periodically produces new
    /// models and feature data ... and pushes them in the background to
    /// the caches in the client DLL", §4.2). `None` disables the watcher;
    /// `force_reload_cache` still refreshes on demand.
    pub auto_refresh_interval: Option<StdDuration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            mode: CacheMode::Push,
            result_cache_capacity: 1 << 20,
            disk_cache_dir: None,
            disk_cache_expiry: StdDuration::from_secs(24 * 3600),
            auto_refresh_interval: None,
        }
    }
}

/// Registry handles for the predict path, resolved once at client
/// construction so every per-request update is a plain atomic op (no
/// registry lock on the hot path).
struct ClientMetrics {
    hit_latency: Histogram,
    miss_latency: Histogram,
    result_hits: Counter,
    result_misses: Counter,
    result_insertions: Counter,
    result_evictions: Counter,
    model_cache_hits: Counter,
    model_cache_misses: Counter,
    feature_cache_hits: Counter,
    feature_cache_misses: Counter,
    store_fallbacks: Counter,
    disk_recoveries: Counter,
    no_predictions: Counter,
    model_execs: Counter,
    background_refreshes: Counter,
}

impl ClientMetrics {
    fn new() -> Self {
        let reg = rc_obs::global();
        ClientMetrics {
            hit_latency: reg.histogram(rc_obs::CLIENT_PREDICT_HIT_LATENCY_NS),
            miss_latency: reg.histogram(rc_obs::CLIENT_PREDICT_MISS_LATENCY_NS),
            result_hits: reg.counter(rc_obs::CLIENT_RESULT_CACHE_HITS),
            result_misses: reg.counter(rc_obs::CLIENT_RESULT_CACHE_MISSES),
            result_insertions: reg.counter(rc_obs::CLIENT_RESULT_CACHE_INSERTIONS),
            result_evictions: reg.counter(rc_obs::CLIENT_RESULT_CACHE_EVICTIONS),
            model_cache_hits: reg.counter(rc_obs::CLIENT_MODEL_CACHE_HITS),
            model_cache_misses: reg.counter(rc_obs::CLIENT_MODEL_CACHE_MISSES),
            feature_cache_hits: reg.counter(rc_obs::CLIENT_FEATURE_CACHE_HITS),
            feature_cache_misses: reg.counter(rc_obs::CLIENT_FEATURE_CACHE_MISSES),
            store_fallbacks: reg.counter(rc_obs::CLIENT_STORE_FALLBACKS),
            disk_recoveries: reg.counter(rc_obs::CLIENT_DISK_CACHE_RECOVERIES),
            no_predictions: reg.counter(rc_obs::CLIENT_NO_PREDICTIONS),
            model_execs: reg.counter(rc_obs::CLIENT_MODEL_EXECS),
            background_refreshes: reg.counter(rc_obs::CLIENT_BACKGROUND_REFRESHES),
        }
    }
}

/// State shared between the client facade and the pull worker.
struct Shared {
    store: Store,
    config: ClientConfig,
    models: RwLock<HashMap<String, Arc<TrainedModel>>>,
    features: RwLock<FeatureCache>,
    results: Mutex<ResultCache>,
    in_flight: Mutex<HashSet<u64>>,
    initialized: AtomicBool,
    shutdown: AtomicBool,
    /// FNV fingerprint over (key, version) pairs at the last load; the
    /// push watcher reloads when the store's fingerprint changes.
    store_fingerprint: AtomicU64,
    refreshes: AtomicU64,
    model_execs: AtomicU64,
    no_predictions: AtomicU64,
    disk: Option<DiskCache>,
    metrics: ClientMetrics,
}

/// The Resource Central client.
///
/// Cheap to clone; clones share caches and the background worker.
#[derive(Clone)]
pub struct RcClient {
    shared: Arc<Shared>,
    pull_tx: Option<crossbeam_channel_shim::Sender<(String, ClientInputs)>>,
}

/// Minimal mpsc shim so the pull worker needs no extra dependency: a
/// mutex-guarded queue drained by the worker thread.
mod crossbeam_channel_shim {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<(VecDeque<T>, bool)>,
        ready: Condvar,
    }

    /// Sending half.
    pub struct Sender<T>(Arc<Chan<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan =
            Arc::new(Chan { queue: Mutex::new((VecDeque::new(), false)), ready: Condvar::new() });
        (Sender(chan.clone()), Receiver(chan))
    }

    impl<T> Sender<T> {
        /// Enqueues one item.
        pub fn send(&self, item: T) {
            let mut q = self.0.queue.lock().expect("channel lock");
            q.0.push_back(item);
            self.0.ready.notify_one();
        }

        /// Closes the channel, waking the receiver.
        pub fn close(&self) {
            let mut q = self.0.queue.lock().expect("channel lock");
            q.1 = true;
            self.0.ready.notify_all();
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next item; `None` once closed and drained.
        pub fn recv(&self) -> Option<T> {
            let mut q = self.0.queue.lock().expect("channel lock");
            loop {
                if let Some(item) = q.0.pop_front() {
                    return Some(item);
                }
                if q.1 {
                    return None;
                }
                q = self.0.ready.wait(q).expect("channel wait");
            }
        }
    }
}

impl RcClient {
    /// Creates a client bound to a store. Call
    /// [`RcClient::initialize`] before requesting predictions.
    pub fn new(store: Store, config: ClientConfig) -> Self {
        let disk =
            config.disk_cache_dir.clone().map(|dir| DiskCache::new(dir, config.disk_cache_expiry));
        let shared = Arc::new(Shared {
            store,
            results: Mutex::new(ResultCache::new(config.result_cache_capacity)),
            config,
            models: RwLock::new(HashMap::new()),
            features: RwLock::new(FeatureCache::default()),
            in_flight: Mutex::new(HashSet::new()),
            initialized: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            store_fingerprint: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
            model_execs: AtomicU64::new(0),
            no_predictions: AtomicU64::new(0),
            disk,
            metrics: ClientMetrics::new(),
        });

        let pull_tx = if shared.config.mode == CacheMode::Pull {
            let (tx, rx) = crossbeam_channel_shim::unbounded();
            let worker_shared = shared.clone();
            std::thread::Builder::new()
                .name("rc-pull-worker".into())
                .spawn(move || pull_worker(worker_shared, rx))
                .expect("spawn pull worker");
            Some(tx)
        } else {
            None
        };

        if let Some(interval) = shared.config.auto_refresh_interval {
            let watcher_shared = shared.clone();
            std::thread::Builder::new()
                .name("rc-push-watcher".into())
                .spawn(move || push_watcher(watcher_shared, interval))
                .expect("spawn push watcher");
        }

        RcClient { shared, pull_tx }
    }

    /// Table 2: `initialize`. Loads models (and, in push mode, all feature
    /// data) from the store, falling back to a fresh disk cache when the
    /// store is unavailable. Returns `true` when at least one model is
    /// ready to serve.
    pub fn initialize(&self) -> bool {
        let loaded = self.load_from_store() || {
            let recovered = self.load_from_disk();
            if recovered {
                self.shared.metrics.disk_recoveries.increment();
                let mut span = rc_obs::global_tracer().span("client.disk_cache_recovery");
                span.record("models", self.shared.models.read().len() as u64);
                span.finish();
            }
            recovered
        };
        self.shared.initialized.store(loaded, Ordering::SeqCst);
        loaded
    }

    fn load_from_store(&self) -> bool {
        load_from_store_shared(&self.shared)
    }
}

/// Loads models (and, in push mode, all feature data) from the store into
/// the shared caches. Free function so the push watcher can call it
/// without constructing a facade.
fn load_from_store_shared(shared: &Shared) -> bool {
    {
        let store = &shared.store;
        if !store.is_available() {
            return false;
        }
        let keys = store.keys();
        let mut models = HashMap::new();
        for key in keys.iter().filter(|k| k.starts_with("model/")) {
            if let Ok(rec) = store.get_latest(key) {
                if let Ok(model) = rc_ml::from_bytes::<TrainedModel>(&rec.data) {
                    let name = key.trim_start_matches("model/").to_string();
                    if let Some(disk) = &shared.disk {
                        let _ = disk.save("model", key, &rec.data);
                    }
                    models.insert(name, Arc::new(model));
                }
            }
        }
        if models.is_empty() {
            return false;
        }
        let mut features = HashMap::new();
        let mut version = 0;
        if shared.config.mode == CacheMode::Push {
            for key in keys.iter().filter(|k| k.starts_with("features/")) {
                if let Ok(rec) = store.get_latest(key) {
                    if let Ok(f) = serde_json::from_slice::<SubscriptionFeatures>(&rec.data) {
                        version = version.max(rec.version);
                        features.insert(f.subscription, f);
                    }
                }
            }
            if let Some(disk) = &shared.disk {
                if let Ok(blob) = serde_json::to_vec(&features.values().collect::<Vec<_>>()) {
                    let _ = disk.save("features", "all", &blob);
                }
            }
        }
        *shared.models.write() = models;
        if shared.config.mode == CacheMode::Push {
            shared.features.write().replace(features, version);
        }
        shared.store_fingerprint.store(store_fingerprint(store), Ordering::SeqCst);
        true
    }
}

impl RcClient {
    fn load_from_disk(&self) -> bool {
        let Some(disk) = &self.shared.disk else {
            return false;
        };
        let mut models = HashMap::new();
        for stem in disk.list("model") {
            // Stems look like "model_VM_P95UTIL" (slashes flattened).
            if let Some(bytes) = disk.load_if_fresh("model", &stem.replace('_', "/")) {
                if let Ok(model) = rc_ml::from_bytes::<TrainedModel>(&bytes) {
                    models.insert(model.spec.metric.model_name().to_string(), Arc::new(model));
                }
            }
        }
        // The flattening above is lossy for names with underscores; retry
        // with the literal stem (covers "model_model_VM_P95UTIL.bin").
        if models.is_empty() {
            for stem in disk.list("model") {
                if let Some(bytes) = disk.load_if_fresh("model", &stem) {
                    if let Ok(model) = rc_ml::from_bytes::<TrainedModel>(&bytes) {
                        models.insert(model.spec.metric.model_name().to_string(), Arc::new(model));
                    }
                }
            }
        }
        if models.is_empty() {
            return false;
        }
        let mut features = HashMap::new();
        if let Some(blob) = disk.load_if_fresh("features", "all") {
            if let Ok(records) = serde_json::from_slice::<Vec<SubscriptionFeatures>>(&blob) {
                for f in records {
                    features.insert(f.subscription, f);
                }
            }
        }
        *self.shared.models.write() = models;
        self.shared.features.write().replace(features, 0);
        true
    }

    /// Table 2: `get_available_models`.
    pub fn get_available_models(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shared.models.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Table 2: `predict_single`.
    pub fn predict_single(&self, model_name: &str, inputs: &ClientInputs) -> PredictionResponse {
        let start = Instant::now();
        let metrics = &self.shared.metrics;
        if !self.shared.initialized.load(Ordering::SeqCst) {
            return self.no_prediction();
        }
        let key = inputs.cache_key(model_name);
        if let Some(hit) = self.shared.results.lock().get(key) {
            metrics.result_hits.increment();
            metrics.hit_latency.record_duration(start.elapsed());
            return PredictionResponse::Predicted(hit);
        }
        metrics.result_misses.increment();
        let response = match self.shared.config.mode {
            CacheMode::Push => match self.execute(model_name, inputs) {
                Some(prediction) => {
                    let evicted = self.shared.results.lock().insert(key, prediction);
                    metrics.result_insertions.increment();
                    if evicted {
                        metrics.result_evictions.increment();
                    }
                    PredictionResponse::Predicted(prediction)
                }
                None => self.no_prediction(),
            },
            CacheMode::Pull => {
                // Answer no-prediction now; fill the cache in the
                // background so the next identical request hits.
                let mut in_flight = self.shared.in_flight.lock();
                if in_flight.insert(key) {
                    if let Some(tx) = &self.pull_tx {
                        tx.send((model_name.to_string(), *inputs));
                    }
                }
                self.no_prediction()
            }
        };
        metrics.miss_latency.record_duration(start.elapsed());
        response
    }

    /// Table 2: `predict_many`.
    pub fn predict_many(
        &self,
        model_name: &str,
        inputs: &[ClientInputs],
    ) -> Vec<PredictionResponse> {
        inputs.iter().map(|i| self.predict_single(model_name, i)).collect()
    }

    /// Table 2: `force_reload_cache` — refreshes memory and disk caches
    /// from the store.
    pub fn force_reload_cache(&self) {
        if self.load_from_store() {
            self.shared.results.lock().clear();
            self.shared.initialized.store(true, Ordering::SeqCst);
        }
    }

    /// Table 2: `flush_cache` — drops memory and disk caches.
    pub fn flush_cache(&self) {
        self.shared.models.write().clear();
        self.shared.features.write().clear();
        self.shared.results.lock().clear();
        if let Some(disk) = &self.shared.disk {
            disk.flush();
        }
        self.shared.initialized.store(false, Ordering::SeqCst);
    }

    /// Executes a model synchronously against cached feature data.
    fn execute(&self, model_name: &str, inputs: &ClientInputs) -> Option<Prediction> {
        let metrics = &self.shared.metrics;
        let model = match self.shared.models.read().get(model_name).cloned() {
            Some(m) => {
                metrics.model_cache_hits.increment();
                m
            }
            None => {
                metrics.model_cache_misses.increment();
                return None;
            }
        };
        let features = {
            let cache = self.shared.features.read();
            match cache.get(inputs.subscription) {
                Some(sub) => {
                    metrics.feature_cache_hits.increment();
                    model.spec.features(inputs, sub)
                }
                None => {
                    metrics.feature_cache_misses.increment();
                    return None;
                }
            }
        };
        self.shared.model_execs.fetch_add(1, Ordering::Relaxed);
        metrics.model_execs.increment();
        let (value, score) = rc_ml::Classifier::predict(model.as_ref(), &features);
        Some(Prediction { value, score })
    }

    fn no_prediction(&self) -> PredictionResponse {
        self.shared.no_predictions.fetch_add(1, Ordering::Relaxed);
        self.shared.metrics.no_predictions.increment();
        PredictionResponse::NoPrediction
    }

    /// Result-cache hit rate so far.
    pub fn result_cache_hit_rate(&self) -> f64 {
        self.shared.results.lock().hit_rate()
    }

    /// Result-cache entry count.
    pub fn result_cache_len(&self) -> usize {
        self.shared.results.lock().len()
    }

    /// Model executions so far (each one is a result-cache fill).
    pub fn model_exec_count(&self) -> u64 {
        self.shared.model_execs.load(Ordering::Relaxed)
    }

    /// Result-cache hits per model execution — the §6.1 reuse statistic
    /// ("an entry is accessed between 18 and 68 times ... after the
    /// corresponding model execution").
    pub fn hits_per_execution(&self) -> f64 {
        let execs = self.model_exec_count();
        if execs == 0 {
            return 0.0;
        }
        self.shared.results.lock().hits() as f64 / execs as f64
    }

    /// Drops only the result cache, keeping models and feature data.
    ///
    /// Useful when the client knows its inputs' behaviour changed (and for
    /// benchmarking the model-execution path).
    pub fn clear_result_cache(&self) {
        self.shared.results.lock().clear();
    }

    /// No-prediction replies so far.
    pub fn no_prediction_count(&self) -> u64 {
        self.shared.no_predictions.load(Ordering::Relaxed)
    }

    /// Background cache refreshes performed by the push watcher.
    pub fn background_refresh_count(&self) -> u64 {
        self.shared.refreshes.load(Ordering::Relaxed)
    }

    /// Blocks until the pull worker has drained its queue (test helper).
    pub fn drain_pull_queue(&self) {
        loop {
            if self.shared.in_flight.lock().is_empty() {
                return;
            }
            std::thread::sleep(StdDuration::from_millis(1));
        }
    }
}

impl Drop for RcClient {
    fn drop(&mut self) {
        // Count facade-external references: the pull worker and the push
        // watcher each hold one Arc. When only background threads remain,
        // shut them down.
        let background = usize::from(self.pull_tx.is_some())
            + usize::from(self.shared.config.auto_refresh_interval.is_some());
        if Arc::strong_count(&self.shared) <= 1 + background {
            self.shared.shutdown.store(true, Ordering::SeqCst);
            if let Some(tx) = &self.pull_tx {
                tx.close();
            }
        }
    }
}

/// FNV fingerprint over every (key, latest version) pair in the store.
fn store_fingerprint(store: &Store) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for key in store.keys() {
        for b in key.as_bytes() {
            h = (h ^ *b as u64).wrapping_mul(PRIME);
        }
        let v = store.latest_version(&key).unwrap_or(0);
        for b in v.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    }
    h
}

/// The push watcher: polls the store's version fingerprint and refreshes
/// the caches when RC publishes something new.
fn push_watcher(shared: Arc<Shared>, interval: StdDuration) {
    let step = StdDuration::from_millis(20).min(interval);
    let mut elapsed = StdDuration::ZERO;
    loop {
        std::thread::sleep(step);
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        elapsed += step;
        if elapsed < interval {
            continue;
        }
        elapsed = StdDuration::ZERO;
        if !shared.initialized.load(Ordering::SeqCst) || !shared.store.is_available() {
            continue;
        }
        let current = store_fingerprint(&shared.store);
        if current != shared.store_fingerprint.load(Ordering::SeqCst)
            && load_from_store_shared(&shared)
        {
            shared.results.lock().clear();
            shared.refreshes.fetch_add(1, Ordering::Relaxed);
            shared.metrics.background_refreshes.increment();
        }
    }
}

/// The pull-mode background worker: fetches model/feature data, executes
/// the model, and fills the result cache.
fn pull_worker(shared: Arc<Shared>, rx: crossbeam_channel_shim::Receiver<(String, ClientInputs)>) {
    while let Some((model_name, inputs)) = rx.recv() {
        let key = inputs.cache_key(&model_name);
        // Ensure the model is cached.
        let model = {
            let cached = shared.models.read().get(&model_name).cloned();
            match cached {
                Some(m) => Some(m),
                None => fetch_model(&shared, &model_name),
            }
        };
        // Ensure the subscription's feature data is cached.
        let have_features = {
            if shared.features.read().get(inputs.subscription).is_some() {
                true
            } else {
                fetch_features(&shared, inputs.subscription)
            }
        };
        if let (Some(model), true) = (model, have_features) {
            let features = {
                let cache = shared.features.read();
                cache.get(inputs.subscription).map(|sub| model.spec.features(&inputs, sub))
            };
            if let Some(features) = features {
                shared.model_execs.fetch_add(1, Ordering::Relaxed);
                shared.metrics.model_execs.increment();
                let (value, score) = rc_ml::Classifier::predict(model.as_ref(), &features);
                let evicted = shared.results.lock().insert(key, Prediction { value, score });
                shared.metrics.result_insertions.increment();
                if evicted {
                    shared.metrics.result_evictions.increment();
                }
            }
        }
        shared.in_flight.lock().remove(&key);
    }
}

/// Fetches and caches a model from the store (or fresh disk cache).
fn fetch_model(shared: &Arc<Shared>, model_name: &str) -> Option<Arc<TrainedModel>> {
    let key = format!("model/{model_name}");
    shared.metrics.store_fallbacks.increment();
    let bytes = match shared.store.get_latest(&key) {
        Ok(rec) => Some(rec.data.to_vec()),
        Err(_) => {
            let recovered = shared.disk.as_ref().and_then(|d| d.load_if_fresh("model", &key));
            if recovered.is_some() {
                shared.metrics.disk_recoveries.increment();
                let mut span = rc_obs::global_tracer().span("client.disk_cache_recovery");
                span.record("model", model_name);
                span.finish();
            }
            recovered
        }
    }?;
    let model = Arc::new(rc_ml::from_bytes::<TrainedModel>(&bytes).ok()?);
    shared.models.write().insert(model_name.to_string(), model.clone());
    Some(model)
}

/// Fetches and caches one subscription's feature data.
fn fetch_features(shared: &Arc<Shared>, sub: SubscriptionId) -> bool {
    let key = feature_store_key(sub);
    let Ok(rec) = shared.store.get_latest(&key) else {
        return false;
    };
    let Ok(features) = serde_json::from_slice::<SubscriptionFeatures>(&rec.data) else {
        return false;
    };
    shared.features.write().insert(features);
    true
}
