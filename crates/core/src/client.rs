//! The client library — the paper's "client DLL" (§4.2, Table 2).
//!
//! A single, general, thread-safe library through which every resource
//! manager consumes predictions. It caches prediction results, models, and
//! feature data in memory; mirrors models and feature data to a local disk
//! cache; and supports both caching modes:
//!
//! - **push** (the production default): `initialize` /
//!   `force_reload_cache` load *everything* from the store, and
//!   predictions never touch the store or the disk on the request path.
//! - **pull**: a result-cache miss returns the no-prediction flag
//!   immediately while a background worker fetches the model/feature data
//!   and executes the model, so a later identical request hits the cache.
//!
//! When the store is unavailable, loads fall back to the disk cache
//! unless it has expired — the two cases §4.2 enumerates.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use parking_lot::{Mutex, RwLock};

use rc_obs::{Counter, Histogram};
use rc_store::Store;
use rc_types::vm::SubscriptionId;

use crate::cache::{DiskCache, FeatureCache, ShardedResultCache};
use crate::features::SubscriptionFeatures;
use crate::inputs::ClientInputs;
use crate::models::{feature_store_key, TrainedModel};
use crate::prediction::{Prediction, PredictionResponse};

/// Caching mode (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// RC pushes models and feature data; loads happen at initialize /
    /// reload time and the predict path never blocks on the store.
    Push,
    /// Models and feature data are fetched on demand in the background; a
    /// result-cache miss answers no-prediction.
    Pull,
}

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Push or pull caching.
    pub mode: CacheMode,
    /// Result-cache capacity in entries (split across the shards).
    pub result_cache_capacity: usize,
    /// Result-cache shard count (rounded up to a power of two); `0` picks
    /// a machine-appropriate default. `1` degenerates to the old
    /// single-mutex cache — useful as a contention baseline.
    pub result_cache_shards: usize,
    /// Directory for the local disk cache; `None` disables it.
    pub disk_cache_dir: Option<std::path::PathBuf>,
    /// Expiry of disk-cache contents.
    pub disk_cache_expiry: StdDuration,
    /// Push-mode background refresh interval: when set, a watcher thread
    /// polls the store's versions and reloads the caches whenever RC
    /// publishes new models or feature data ("RC periodically produces new
    /// models and feature data ... and pushes them in the background to
    /// the caches in the client DLL", §4.2). `None` disables the watcher;
    /// `force_reload_cache` still refreshes on demand.
    pub auto_refresh_interval: Option<StdDuration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            mode: CacheMode::Push,
            result_cache_capacity: 1 << 20,
            result_cache_shards: 0,
            disk_cache_dir: None,
            disk_cache_expiry: StdDuration::from_secs(24 * 3600),
            auto_refresh_interval: None,
        }
    }
}

/// Registry handles for the predict path, resolved once at client
/// construction so every per-request update is a plain atomic op (no
/// registry lock on the hot path).
struct ClientMetrics {
    hit_latency: Histogram,
    miss_latency: Histogram,
    result_hits: Counter,
    result_misses: Counter,
    result_insertions: Counter,
    result_evictions: Counter,
    model_cache_hits: Counter,
    model_cache_misses: Counter,
    feature_cache_hits: Counter,
    feature_cache_misses: Counter,
    store_fallbacks: Counter,
    disk_recoveries: Counter,
    no_predictions: Counter,
    model_execs: Counter,
    background_refreshes: Counter,
    batch_predicts: Counter,
    batch_deduped_execs: Counter,
    workers_started: Counter,
    workers_stopped: Counter,
}

impl ClientMetrics {
    fn new() -> Self {
        let reg = rc_obs::global();
        ClientMetrics {
            hit_latency: reg.histogram(rc_obs::CLIENT_PREDICT_HIT_LATENCY_NS),
            miss_latency: reg.histogram(rc_obs::CLIENT_PREDICT_MISS_LATENCY_NS),
            result_hits: reg.counter(rc_obs::CLIENT_RESULT_CACHE_HITS),
            result_misses: reg.counter(rc_obs::CLIENT_RESULT_CACHE_MISSES),
            result_insertions: reg.counter(rc_obs::CLIENT_RESULT_CACHE_INSERTIONS),
            result_evictions: reg.counter(rc_obs::CLIENT_RESULT_CACHE_EVICTIONS),
            model_cache_hits: reg.counter(rc_obs::CLIENT_MODEL_CACHE_HITS),
            model_cache_misses: reg.counter(rc_obs::CLIENT_MODEL_CACHE_MISSES),
            feature_cache_hits: reg.counter(rc_obs::CLIENT_FEATURE_CACHE_HITS),
            feature_cache_misses: reg.counter(rc_obs::CLIENT_FEATURE_CACHE_MISSES),
            store_fallbacks: reg.counter(rc_obs::CLIENT_STORE_FALLBACKS),
            disk_recoveries: reg.counter(rc_obs::CLIENT_DISK_CACHE_RECOVERIES),
            no_predictions: reg.counter(rc_obs::CLIENT_NO_PREDICTIONS),
            model_execs: reg.counter(rc_obs::CLIENT_MODEL_EXECS),
            background_refreshes: reg.counter(rc_obs::CLIENT_BACKGROUND_REFRESHES),
            batch_predicts: reg.counter(rc_obs::CLIENT_BATCH_PREDICTS),
            batch_deduped_execs: reg.counter(rc_obs::CLIENT_BATCH_DEDUPED_EXECS),
            workers_started: reg.counter(rc_obs::CLIENT_WORKERS_STARTED),
            workers_stopped: reg.counter(rc_obs::CLIENT_WORKERS_STOPPED),
        }
    }
}

/// State shared between the client facade and the background workers.
struct Shared {
    store: Store,
    config: ClientConfig,
    models: RwLock<HashMap<String, Arc<TrainedModel>>>,
    features: RwLock<FeatureCache>,
    results: ShardedResultCache,
    in_flight: Mutex<HashSet<u64>>,
    initialized: AtomicBool,
    shutdown: AtomicBool,
    /// FNV fingerprint over (key, version) pairs at the last load; the
    /// push watcher reloads when the store's fingerprint changes.
    store_fingerprint: AtomicU64,
    refreshes: AtomicU64,
    model_execs: AtomicU64,
    no_predictions: AtomicU64,
    store_fallbacks: AtomicU64,
    /// Live facade handles (the original plus clones). The last facade to
    /// drop signals shutdown and joins the background workers — an exact
    /// count, unlike the racy `Arc::strong_count` heuristic it replaces
    /// (two concurrent drops could both read a high count and leak the
    /// worker threads forever).
    facades: AtomicUsize,
    /// Live background worker threads; shared out through
    /// [`WorkerLifecycle`] so embedders (and tests) can observe shutdown.
    live_workers: Arc<AtomicUsize>,
    worker_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    disk: Option<DiskCache>,
    metrics: ClientMetrics,
}

/// The Resource Central client.
///
/// Cheap to clone; clones share caches and the background workers. The
/// last clone to drop shuts the workers down and joins them.
pub struct RcClient {
    shared: Arc<Shared>,
    pull_tx: Option<crossbeam_channel_shim::Sender<(String, ClientInputs)>>,
}

/// Observer for a client's background worker threads.
///
/// Obtained from [`RcClient::worker_lifecycle`]; stays valid after every
/// facade has dropped, which is exactly when it is useful: embedders can
/// assert the pull worker and push watcher actually exited instead of
/// leaking.
#[derive(Clone)]
pub struct WorkerLifecycle(Arc<AtomicUsize>);

impl WorkerLifecycle {
    /// Background worker threads currently running for the client.
    pub fn live(&self) -> usize {
        self.0.load(Ordering::SeqCst)
    }
}

/// Minimal mpsc shim so the pull worker needs no extra dependency: a
/// mutex-guarded queue drained by the worker thread.
mod crossbeam_channel_shim {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<(VecDeque<T>, bool)>,
        ready: Condvar,
    }

    /// Sending half.
    pub struct Sender<T>(Arc<Chan<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan =
            Arc::new(Chan { queue: Mutex::new((VecDeque::new(), false)), ready: Condvar::new() });
        (Sender(chan.clone()), Receiver(chan))
    }

    impl<T> Sender<T> {
        /// Enqueues one item.
        pub fn send(&self, item: T) {
            let mut q = self.0.queue.lock().expect("channel lock");
            q.0.push_back(item);
            self.0.ready.notify_one();
        }

        /// Closes the channel, waking the receiver.
        pub fn close(&self) {
            let mut q = self.0.queue.lock().expect("channel lock");
            q.1 = true;
            self.0.ready.notify_all();
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next item; `None` once closed and drained.
        pub fn recv(&self) -> Option<T> {
            let mut q = self.0.queue.lock().expect("channel lock");
            loop {
                if let Some(item) = q.0.pop_front() {
                    return Some(item);
                }
                if q.1 {
                    return None;
                }
                q = self.0.ready.wait(q).expect("channel wait");
            }
        }
    }
}

impl RcClient {
    /// Creates a client bound to a store. Call
    /// [`RcClient::initialize`] before requesting predictions.
    pub fn new(store: Store, config: ClientConfig) -> Self {
        let disk =
            config.disk_cache_dir.clone().map(|dir| DiskCache::new(dir, config.disk_cache_expiry));
        let n_shards = if config.result_cache_shards == 0 {
            ShardedResultCache::default_shards()
        } else {
            config.result_cache_shards
        };
        let results = ShardedResultCache::new(config.result_cache_capacity, n_shards);
        let metrics = ClientMetrics::new();
        rc_obs::global().gauge(rc_obs::CLIENT_RESULT_CACHE_SHARDS).set(results.n_shards() as f64);
        let shared = Arc::new(Shared {
            store,
            results,
            config,
            models: RwLock::new(HashMap::new()),
            features: RwLock::new(FeatureCache::default()),
            in_flight: Mutex::new(HashSet::new()),
            initialized: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            store_fingerprint: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
            model_execs: AtomicU64::new(0),
            no_predictions: AtomicU64::new(0),
            store_fallbacks: AtomicU64::new(0),
            facades: AtomicUsize::new(1),
            live_workers: Arc::new(AtomicUsize::new(0)),
            worker_handles: Mutex::new(Vec::new()),
            disk,
            metrics,
        });

        let pull_tx = if shared.config.mode == CacheMode::Pull {
            let (tx, rx) = crossbeam_channel_shim::unbounded();
            let worker_shared = shared.clone();
            worker_shared.live_workers.fetch_add(1, Ordering::SeqCst);
            worker_shared.metrics.workers_started.increment();
            let handle = std::thread::Builder::new()
                .name("rc-pull-worker".into())
                .spawn(move || {
                    let _guard = WorkerGuard(worker_shared.clone());
                    pull_worker(worker_shared, rx);
                })
                .expect("spawn pull worker");
            shared.worker_handles.lock().push(handle);
            Some(tx)
        } else {
            None
        };

        if let Some(interval) = shared.config.auto_refresh_interval {
            let watcher_shared = shared.clone();
            watcher_shared.live_workers.fetch_add(1, Ordering::SeqCst);
            watcher_shared.metrics.workers_started.increment();
            let handle = std::thread::Builder::new()
                .name("rc-push-watcher".into())
                .spawn(move || {
                    let _guard = WorkerGuard(watcher_shared.clone());
                    push_watcher(watcher_shared, interval);
                })
                .expect("spawn push watcher");
            shared.worker_handles.lock().push(handle);
        }

        RcClient { shared, pull_tx }
    }

    /// Table 2: `initialize`. Loads models (and, in push mode, all feature
    /// data) from the store, falling back to a fresh disk cache when the
    /// store is unavailable. Returns `true` when at least one model is
    /// ready to serve.
    pub fn initialize(&self) -> bool {
        let loaded = self.load_from_store() || {
            let recovered = self.load_from_disk();
            if recovered {
                self.shared.metrics.disk_recoveries.increment();
                let mut span = rc_obs::global_tracer().span("client.disk_cache_recovery");
                span.record("models", self.shared.models.read().len() as u64);
                span.finish();
            }
            recovered
        };
        self.shared.initialized.store(loaded, Ordering::SeqCst);
        loaded
    }

    fn load_from_store(&self) -> bool {
        load_from_store_shared(&self.shared)
    }
}

/// Loads models (and, in push mode, all feature data) from the store into
/// the shared caches. Free function so the push watcher can call it
/// without constructing a facade.
fn load_from_store_shared(shared: &Shared) -> bool {
    {
        let store = &shared.store;
        if !store.is_available() {
            return false;
        }
        let keys = store.keys();
        let mut models = HashMap::new();
        for key in keys.iter().filter(|k| k.starts_with("model/")) {
            if let Ok(rec) = store.get_latest(key) {
                if let Ok(model) = rc_ml::from_bytes::<TrainedModel>(&rec.data) {
                    let name = key.trim_start_matches("model/").to_string();
                    if let Some(disk) = &shared.disk {
                        let _ = disk.save("model", key, &rec.data);
                    }
                    models.insert(name, Arc::new(model));
                }
            }
        }
        if models.is_empty() {
            return false;
        }
        let mut features = HashMap::new();
        let mut version = 0;
        if shared.config.mode == CacheMode::Push {
            for key in keys.iter().filter(|k| k.starts_with("features/")) {
                if let Ok(rec) = store.get_latest(key) {
                    if let Ok(f) = serde_json::from_slice::<SubscriptionFeatures>(&rec.data) {
                        version = version.max(rec.version);
                        features.insert(f.subscription, f);
                    }
                }
            }
            if let Some(disk) = &shared.disk {
                if let Ok(blob) = serde_json::to_vec(&features.values().collect::<Vec<_>>()) {
                    let _ = disk.save("features", "all", &blob);
                }
            }
        }
        *shared.models.write() = models;
        if shared.config.mode == CacheMode::Push {
            shared.features.write().replace(features, version);
        }
        shared.store_fingerprint.store(store_fingerprint(store), Ordering::SeqCst);
        true
    }
}

impl RcClient {
    fn load_from_disk(&self) -> bool {
        let Some(disk) = &self.shared.disk else {
            return false;
        };
        let mut models = HashMap::new();
        // `list` returns the original store keys (e.g. "model/VM_P95UTIL")
        // thanks to the disk cache's lossless name escaping.
        for name in disk.list("model") {
            if let Some(bytes) = disk.load_if_fresh("model", &name) {
                if let Ok(model) = rc_ml::from_bytes::<TrainedModel>(&bytes) {
                    models.insert(model.spec.metric.model_name().to_string(), Arc::new(model));
                }
            }
        }
        if models.is_empty() {
            return false;
        }
        let mut features = HashMap::new();
        if let Some(blob) = disk.load_if_fresh("features", "all") {
            if let Ok(records) = serde_json::from_slice::<Vec<SubscriptionFeatures>>(&blob) {
                for f in records {
                    features.insert(f.subscription, f);
                }
            }
        }
        *self.shared.models.write() = models;
        self.shared.features.write().replace(features, 0);
        true
    }

    /// Table 2: `get_available_models`.
    pub fn get_available_models(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shared.models.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Table 2: `predict_single`.
    pub fn predict_single(&self, model_name: &str, inputs: &ClientInputs) -> PredictionResponse {
        let start = Instant::now();
        let metrics = &self.shared.metrics;
        if !self.shared.initialized.load(Ordering::SeqCst) {
            return self.no_prediction();
        }
        let key = inputs.cache_key(model_name);
        if let Some(hit) = self.shared.results.get(key) {
            metrics.result_hits.increment();
            metrics.hit_latency.record_duration(start.elapsed());
            return PredictionResponse::Predicted(hit);
        }
        metrics.result_misses.increment();
        let response = match self.shared.config.mode {
            CacheMode::Push => match self.execute(model_name, inputs) {
                Some(prediction) => {
                    let evicted = self.shared.results.insert(key, prediction);
                    metrics.result_insertions.increment();
                    if evicted {
                        metrics.result_evictions.increment();
                    }
                    PredictionResponse::Predicted(prediction)
                }
                None => self.no_prediction(),
            },
            CacheMode::Pull => {
                // Answer no-prediction now; fill the cache in the
                // background so the next identical request hits.
                let mut in_flight = self.shared.in_flight.lock();
                if in_flight.insert(key) {
                    if let Some(tx) = &self.pull_tx {
                        tx.send((model_name.to_string(), *inputs));
                    }
                }
                self.no_prediction()
            }
        };
        metrics.miss_latency.record_duration(start.elapsed());
        response
    }

    /// Table 2: `predict_many` — a real batch path.
    ///
    /// Keys are probed shard-by-shard (each touched shard locked once for
    /// the whole batch instead of once per request), and in push mode
    /// every *unique* missed key executes its model at most once, however
    /// many times it recurs in the batch. Responses are positional, and
    /// counter semantics match `predict_single` exactly: each input
    /// records one result-cache hit or miss, so `hits + misses` still
    /// equals total lookups. Per-item latencies are amortized over the
    /// batch phase they belong to.
    pub fn predict_many(
        &self,
        model_name: &str,
        inputs: &[ClientInputs],
    ) -> Vec<PredictionResponse> {
        let start = Instant::now();
        let metrics = &self.shared.metrics;
        if inputs.is_empty() {
            return Vec::new();
        }
        if !self.shared.initialized.load(Ordering::SeqCst) {
            return inputs.iter().map(|_| self.no_prediction()).collect();
        }
        metrics.batch_predicts.increment();

        // Probe phase: one lock acquisition per touched shard.
        let keys: Vec<u64> = inputs.iter().map(|i| i.cache_key(model_name)).collect();
        let probed = self.shared.results.get_batch(&keys);
        let n_hits = probed.iter().filter(|p| p.is_some()).count() as u64;
        let n_misses = inputs.len() as u64 - n_hits;
        metrics.result_hits.add(n_hits);
        metrics.result_misses.add(n_misses);
        let probe_elapsed = start.elapsed();
        if n_hits > 0 {
            let per_hit = probe_elapsed / inputs.len() as u32;
            for _ in 0..n_hits {
                metrics.hit_latency.record_duration(per_hit);
            }
        }

        let mut responses: Vec<Option<PredictionResponse>> =
            probed.into_iter().map(|p| p.map(PredictionResponse::Predicted)).collect();
        if n_misses == 0 {
            return responses.into_iter().map(|r| r.expect("all hits")).collect();
        }

        // Dedup phase: group missed occurrences by key, first occurrence
        // carries the inputs the model executes against.
        let miss_start = Instant::now();
        let mut unique_missed: Vec<(u64, usize)> = Vec::new();
        let mut occurrences: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, key) in keys.iter().enumerate() {
            if responses[i].is_none() {
                let occ = occurrences.entry(*key).or_default();
                if occ.is_empty() {
                    unique_missed.push((*key, i));
                }
                occ.push(i);
            }
        }
        metrics.batch_deduped_execs.add(n_misses - unique_missed.len() as u64);

        match self.shared.config.mode {
            CacheMode::Push => {
                let mut filled: Vec<(u64, Prediction)> = Vec::with_capacity(unique_missed.len());
                for &(key, first_idx) in &unique_missed {
                    match self.execute(model_name, &inputs[first_idx]) {
                        Some(prediction) => {
                            filled.push((key, prediction));
                            for &i in &occurrences[&key] {
                                responses[i] = Some(PredictionResponse::Predicted(prediction));
                            }
                        }
                        None => {
                            for &i in &occurrences[&key] {
                                responses[i] = Some(self.no_prediction());
                            }
                        }
                    }
                }
                if !filled.is_empty() {
                    let evicted = self.shared.results.insert_batch(&filled);
                    metrics.result_insertions.add(filled.len() as u64);
                    metrics.result_evictions.add(evicted);
                }
            }
            CacheMode::Pull => {
                // Enqueue each unique missed key once; answer no-prediction
                // now so the next identical batch hits the cache.
                let mut in_flight = self.shared.in_flight.lock();
                for &(key, first_idx) in &unique_missed {
                    if in_flight.insert(key) {
                        if let Some(tx) = &self.pull_tx {
                            tx.send((model_name.to_string(), inputs[first_idx]));
                        }
                    }
                }
                drop(in_flight);
                for response in responses.iter_mut().filter(|r| r.is_none()) {
                    *response = Some(self.no_prediction());
                }
            }
        }

        let per_miss = miss_start.elapsed() / n_misses.max(1) as u32;
        for _ in 0..n_misses {
            metrics.miss_latency.record_duration(per_miss);
        }
        responses.into_iter().map(|r| r.expect("every input answered")).collect()
    }

    /// Table 2: `force_reload_cache` — refreshes memory and disk caches
    /// from the store.
    pub fn force_reload_cache(&self) {
        if self.load_from_store() {
            self.shared.results.clear();
            self.shared.initialized.store(true, Ordering::SeqCst);
        }
    }

    /// Table 2: `flush_cache` — drops memory and disk caches.
    pub fn flush_cache(&self) {
        self.shared.models.write().clear();
        self.shared.features.write().clear();
        self.shared.results.clear();
        if let Some(disk) = &self.shared.disk {
            disk.flush();
        }
        self.shared.initialized.store(false, Ordering::SeqCst);
    }

    /// Executes a model synchronously against cached feature data.
    fn execute(&self, model_name: &str, inputs: &ClientInputs) -> Option<Prediction> {
        let metrics = &self.shared.metrics;
        let model = match self.shared.models.read().get(model_name).cloned() {
            Some(m) => {
                metrics.model_cache_hits.increment();
                m
            }
            None => {
                metrics.model_cache_misses.increment();
                return None;
            }
        };
        let features = {
            let cache = self.shared.features.read();
            match cache.get(inputs.subscription) {
                Some(sub) => {
                    metrics.feature_cache_hits.increment();
                    model.spec.features(inputs, sub)
                }
                None => {
                    metrics.feature_cache_misses.increment();
                    return None;
                }
            }
        };
        self.shared.model_execs.fetch_add(1, Ordering::Relaxed);
        metrics.model_execs.increment();
        let (value, score) = rc_ml::Classifier::predict(model.as_ref(), &features);
        Some(Prediction { value, score })
    }

    fn no_prediction(&self) -> PredictionResponse {
        self.shared.no_predictions.fetch_add(1, Ordering::Relaxed);
        self.shared.metrics.no_predictions.increment();
        PredictionResponse::NoPrediction
    }

    /// Result-cache hit rate so far.
    pub fn result_cache_hit_rate(&self) -> f64 {
        self.shared.results.hit_rate()
    }

    /// Result-cache entry count across all shards.
    pub fn result_cache_len(&self) -> usize {
        self.shared.results.len()
    }

    /// Exact result-cache counters, aggregated across shards.
    pub fn result_cache_stats(&self) -> crate::cache::ResultCacheStats {
        self.shared.results.stats()
    }

    /// Number of result-cache shards this client was built with.
    pub fn result_cache_shards(&self) -> usize {
        self.shared.results.n_shards()
    }

    /// Model executions so far (each one is a result-cache fill).
    pub fn model_exec_count(&self) -> u64 {
        self.shared.model_execs.load(Ordering::Relaxed)
    }

    /// Result-cache hits per model execution — the §6.1 reuse statistic
    /// ("an entry is accessed between 18 and 68 times ... after the
    /// corresponding model execution").
    pub fn hits_per_execution(&self) -> f64 {
        let execs = self.model_exec_count();
        if execs == 0 {
            return 0.0;
        }
        self.shared.results.hits() as f64 / execs as f64
    }

    /// Drops only the result cache, keeping models and feature data.
    ///
    /// Useful when the client knows its inputs' behaviour changed (and for
    /// benchmarking the model-execution path).
    pub fn clear_result_cache(&self) {
        self.shared.results.clear();
    }

    /// No-prediction replies so far.
    pub fn no_prediction_count(&self) -> u64 {
        self.shared.no_predictions.load(Ordering::Relaxed)
    }

    /// Pull-mode model fetches that fell back to the disk cache because
    /// the store pull failed. Successful store pulls do not count.
    pub fn store_fallback_count(&self) -> u64 {
        self.shared.store_fallbacks.load(Ordering::Relaxed)
    }

    /// Handle for observing this client's background worker threads; it
    /// outlives every facade, so callers can verify the workers exited
    /// after the last clone dropped.
    pub fn worker_lifecycle(&self) -> WorkerLifecycle {
        WorkerLifecycle(self.shared.live_workers.clone())
    }

    /// Background cache refreshes performed by the push watcher.
    pub fn background_refresh_count(&self) -> u64 {
        self.shared.refreshes.load(Ordering::Relaxed)
    }

    /// Blocks until the pull worker has drained its queue (test helper).
    pub fn drain_pull_queue(&self) {
        loop {
            if self.shared.in_flight.lock().is_empty() {
                return;
            }
            std::thread::sleep(StdDuration::from_millis(1));
        }
    }
}

/// Decrements the live-worker count when a background thread exits, even
/// if the worker body panics.
struct WorkerGuard(Arc<Shared>);

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        self.0.live_workers.fetch_sub(1, Ordering::SeqCst);
        self.0.metrics.workers_stopped.increment();
    }
}

impl Clone for RcClient {
    fn clone(&self) -> Self {
        self.shared.facades.fetch_add(1, Ordering::SeqCst);
        RcClient { shared: self.shared.clone(), pull_tx: self.pull_tx.clone() }
    }
}

impl Drop for RcClient {
    fn drop(&mut self) {
        // Exactly one facade observes the count reach zero, however many
        // clones drop concurrently; that facade owns shutdown.
        if self.shared.facades.fetch_sub(1, Ordering::SeqCst) != 1 {
            return;
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(tx) = &self.pull_tx {
            tx.close();
        }
        // Join the workers so "drop the last facade" deterministically
        // means "no client threads remain". Workers never own a facade,
        // so this cannot self-join.
        let handles = std::mem::take(&mut *self.shared.worker_handles.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// FNV fingerprint over every (key, latest version) pair in the store.
fn store_fingerprint(store: &Store) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for key in store.keys() {
        for b in key.as_bytes() {
            h = (h ^ *b as u64).wrapping_mul(PRIME);
        }
        let v = store.latest_version(&key).unwrap_or(0);
        for b in v.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    }
    h
}

/// The push watcher: polls the store's version fingerprint and refreshes
/// the caches when RC publishes something new.
fn push_watcher(shared: Arc<Shared>, interval: StdDuration) {
    let step = StdDuration::from_millis(20).min(interval);
    let mut elapsed = StdDuration::ZERO;
    loop {
        std::thread::sleep(step);
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        elapsed += step;
        if elapsed < interval {
            continue;
        }
        elapsed = StdDuration::ZERO;
        if !shared.initialized.load(Ordering::SeqCst) || !shared.store.is_available() {
            continue;
        }
        let current = store_fingerprint(&shared.store);
        if current != shared.store_fingerprint.load(Ordering::SeqCst)
            && load_from_store_shared(&shared)
        {
            shared.results.clear();
            shared.refreshes.fetch_add(1, Ordering::Relaxed);
            shared.metrics.background_refreshes.increment();
        }
    }
}

/// The pull-mode background worker: fetches model/feature data, executes
/// the model, and fills the result cache.
fn pull_worker(shared: Arc<Shared>, rx: crossbeam_channel_shim::Receiver<(String, ClientInputs)>) {
    while let Some((model_name, inputs)) = rx.recv() {
        let key = inputs.cache_key(&model_name);
        // Ensure the model is cached.
        let model = {
            let cached = shared.models.read().get(&model_name).cloned();
            match cached {
                Some(m) => Some(m),
                None => fetch_model(&shared, &model_name),
            }
        };
        // Ensure the subscription's feature data is cached.
        let have_features = {
            if shared.features.read().get(inputs.subscription).is_some() {
                true
            } else {
                fetch_features(&shared, inputs.subscription)
            }
        };
        if let (Some(model), true) = (model, have_features) {
            let features = {
                let cache = shared.features.read();
                cache.get(inputs.subscription).map(|sub| model.spec.features(&inputs, sub))
            };
            if let Some(features) = features {
                shared.model_execs.fetch_add(1, Ordering::Relaxed);
                shared.metrics.model_execs.increment();
                let (value, score) = rc_ml::Classifier::predict(model.as_ref(), &features);
                let evicted = shared.results.insert(key, Prediction { value, score });
                shared.metrics.result_insertions.increment();
                if evicted {
                    shared.metrics.result_evictions.increment();
                }
            }
        }
        shared.in_flight.lock().remove(&key);
    }
}

/// Fetches and caches a model from the store (or fresh disk cache).
fn fetch_model(shared: &Arc<Shared>, model_name: &str) -> Option<Arc<TrainedModel>> {
    let key = format!("model/{model_name}");
    let bytes = match shared.store.get_latest(&key) {
        Ok(rec) => Some(rec.data.to_vec()),
        Err(_) => {
            // Only an actual fall-back to the local disk counts toward
            // `store_fallbacks`; a successful store pull is the normal
            // pull-mode path, not a fallback.
            shared.metrics.store_fallbacks.increment();
            shared.store_fallbacks.fetch_add(1, Ordering::Relaxed);
            let recovered = shared.disk.as_ref().and_then(|d| d.load_if_fresh("model", &key));
            if recovered.is_some() {
                shared.metrics.disk_recoveries.increment();
                let mut span = rc_obs::global_tracer().span("client.disk_cache_recovery");
                span.record("model", model_name);
                span.finish();
            }
            recovered
        }
    }?;
    let model = Arc::new(rc_ml::from_bytes::<TrainedModel>(&bytes).ok()?);
    shared.models.write().insert(model_name.to_string(), model.clone());
    Some(model)
}

/// Fetches and caches one subscription's feature data.
fn fetch_features(shared: &Arc<Shared>, sub: SubscriptionId) -> bool {
    let key = feature_store_key(sub);
    let Ok(rec) = shared.store.get_latest(&key) else {
        return false;
    };
    let Ok(features) = serde_json::from_slice::<SubscriptionFeatures>(&rec.data) else {
        return false;
    };
    shared.features.write().insert(features);
    true
}
