//! The offline workflow: extract → cleanup → aggregate → featurize →
//! train → validate → publish (§4.2, Figure 9).
//!
//! The sweep is careful about *time*: a VM's observed behaviour enters the
//! per-subscription aggregates only once the VM has completed, so the
//! features attached to a training example contain strictly pre-creation
//! information — no label leakage, exactly the situation the online system
//! faces. At the train/test boundary the aggregates are snapshotted; that
//! snapshot is the "feature data" RC publishes to the store, and test
//! examples are featurized against it (the paper trains on two months and
//! tests on the third, §6.1).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use serde::{Deserialize, Serialize};

use rc_ml::{
    BinnedDataset, Classifier, ConfusionMatrix, Dataset, GradientBoosting, GradientBoostingConfig,
    RandomForest, RandomForestConfig, ThresholdedEval,
};
use rc_store::{checksum, FeatureEntry, Manifest, ModelEntry, StoreBackend, MANIFEST_KEY};
use rc_trace::Trace;
use rc_types::metrics::PredictionMetric;
use rc_types::vm::SubscriptionId;

use crate::cleanup::{cleanup, QuarantineReport};
use crate::features::SubscriptionFeatures;
use crate::labels::{label_deployments, label_vms, LabeledDeployment, LabeledVm};
use crate::models::{feature_store_key, Estimator, ModelApproach, ModelSpec, TrainedModel};

/// Pipeline hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Train/test boundary in days from the trace start (the paper trains
    /// on the first two of three months).
    pub train_days: f64,
    /// Confidence threshold for the `P^theta` / `R^theta` columns.
    pub theta: f64,
    /// Random-forest settings for the utilization models.
    pub forest: RandomForestConfig,
    /// Gradient-boosting settings for the remaining models.
    pub gbt: GradientBoostingConfig,
    /// Telemetry readings sampled per VM when labelling utilization.
    pub max_util_samples: usize,
    /// Interactive training examples are replicated this many times to
    /// bias the class model toward interactive recall (the paper accepts
    /// 7% interactive precision to reach 84% recall — mistaking
    /// delay-insensitive for interactive is the safe direction, §6.1).
    /// The paper's population is 99:1 DI:interactive among classified VMs;
    /// the synthetic trace is nearer 9:1, so a mild factor suffices.
    pub interactive_oversample: usize,
    /// Interval, in days, at which refreshed feature-data snapshots are
    /// captured during the test period — modelling the background pushes
    /// RC performs in production ("RC periodically produces new models
    /// and feature data for all subscriptions, and pushes them in the
    /// background", §4.2). Table 4 evaluation always uses the frozen
    /// train-boundary snapshot; the refreshed ones feed the scheduler
    /// experiments.
    pub refresh_every_days: f64,
    /// Ablation switch: when set, every example is featurized against an
    /// *empty* history record, leaving only client inputs. §6.1 claims the
    /// per-bucket history fractions are the most important attributes;
    /// comparing a run with this flag quantifies that claim.
    pub ablate_history: bool,
    /// Worker threads for the train/validate fan-out across the six
    /// per-metric models; `0` picks the available parallelism. `1`
    /// reproduces the old strictly-sequential training loop.
    pub train_workers: usize,
    /// Deterministic fault hook: metrics listed here have their training
    /// task panic, exercising per-metric fault isolation (the other
    /// metrics must train, validate, and publish). Empty in production.
    pub fail_train: Vec<PredictionMetric>,
}

impl PipelineConfig {
    /// Defaults matching the paper's two-month/one-month split for a trace
    /// of `days` days.
    pub fn for_days(days: u32) -> Self {
        PipelineConfig {
            train_days: days as f64 * 2.0 / 3.0,
            theta: 0.6,
            forest: RandomForestConfig::default(),
            gbt: GradientBoostingConfig::default(),
            max_util_samples: 300,
            interactive_oversample: 3,
            refresh_every_days: 7.0,
            ablate_history: false,
            train_workers: 0,
            fail_train: Vec::new(),
        }
    }

    /// A fast configuration for unit tests.
    pub fn fast(days: u32) -> Self {
        PipelineConfig {
            forest: RandomForestConfig { n_trees: 12, ..RandomForestConfig::default() },
            gbt: GradientBoostingConfig { n_rounds: 15, ..GradientBoostingConfig::default() },
            max_util_samples: 120,
            ..Self::for_days(days)
        }
    }
}

/// Per-bucket evaluation row (Table 4's %, P, R columns).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BucketStats {
    /// Fraction of test examples whose true bucket is this one.
    pub share: f64,
    /// Precision for the bucket.
    pub precision: f64,
    /// Recall for the bucket.
    pub recall: f64,
}

/// One metric's evaluation (one row of Table 4, plus Table 1 columns).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricReport {
    /// The metric.
    pub metric: PredictionMetric,
    /// Overall accuracy on the test set.
    pub accuracy: f64,
    /// Per-bucket stats.
    pub buckets: Vec<BucketStats>,
    /// Precision of predictions retained at the confidence threshold.
    pub p_theta: f64,
    /// Coverage at the confidence threshold.
    pub r_theta: f64,
    /// Training examples used.
    pub n_train: usize,
    /// Test examples evaluated.
    pub n_test: usize,
    /// Serialized model size in bytes (Table 1).
    pub model_size_bytes: usize,
    /// Input feature count (Table 1).
    pub n_features: usize,
    /// Feature names ranked by importance, most important first.
    pub top_features: Vec<String>,
}

/// Everything the offline pipeline produces.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// The trained models in [`PredictionMetric::index`] order, minus any
    /// quarantined metrics (see [`PipelineOutput::quarantined_metrics`]).
    pub models: Vec<TrainedModel>,
    /// The published per-subscription feature data.
    pub feature_data: HashMap<SubscriptionId, SubscriptionFeatures>,
    /// Validation results per metric.
    pub reports: Vec<MetricReport>,
    /// Total serialized size of the feature data in bytes (Table 1).
    pub feature_data_bytes: usize,
    /// Test-period feature-data refreshes: `(published_at_secs, records)`,
    /// starting with the frozen train-boundary snapshot. Consumers that
    /// model RC's periodic background pushes (e.g. the §6.2 scheduler
    /// harness) pick the latest snapshot published at or before each
    /// prediction request.
    pub feature_refreshes: Vec<(u64, HashMap<SubscriptionId, SubscriptionFeatures>)>,
    /// Version string stamped on this publication.
    pub version_tag: String,
    /// Exact accounting of what the cleanup stage quarantined
    /// (`extracted == cleaned + quarantined`, per category).
    pub quarantine: QuarantineReport,
    /// Metrics whose training failed, with the captured failure message.
    /// Their models are absent from [`PipelineOutput::models`] and from
    /// any publication; the surviving metrics are unaffected.
    pub quarantined_metrics: Vec<(PredictionMetric, String)>,
}

/// Errors the pipeline can raise.
#[derive(Debug)]
pub enum PipelineError {
    /// Not enough examples on one side of the train/test split.
    InsufficientData {
        /// Which stage starved.
        what: &'static str,
    },
    /// A model failed the sanity check gating publication.
    SanityCheckFailed {
        /// The failing metric.
        metric: PredictionMetric,
        /// Its measured accuracy.
        accuracy: f64,
    },
    /// A model regressed too far below the currently published version,
    /// so the publish was blocked and `last_good` keeps serving.
    PublishBlocked {
        /// The regressing metric.
        metric: PredictionMetric,
        /// The candidate model's accuracy.
        accuracy: f64,
        /// The currently published model's accuracy.
        previous: f64,
    },
    /// A payload could not be serialized for publication.
    SerializationFailed {
        /// Which payload failed.
        what: &'static str,
    },
    /// The backing store rejected a publish write.
    StoreFailed(rc_store::StoreError),
    /// A concurrent writer moved the manifest between this publication's
    /// gate read and its pointer flip: the flip was abandoned (phase-one
    /// payloads stay unreferenced) and the racing writer's manifest keeps
    /// serving. The caller must re-read before deciding to republish.
    PublishRaced(rc_store::PublishRace),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::InsufficientData { what } => {
                write!(f, "insufficient data for {what}")
            }
            PipelineError::SanityCheckFailed { metric, accuracy } => {
                write!(f, "sanity check failed for {metric}: accuracy {accuracy:.3}")
            }
            PipelineError::PublishBlocked { metric, accuracy, previous } => {
                write!(
                    f,
                    "publish blocked: {metric} regressed to {accuracy:.3} \
                     from published {previous:.3}"
                )
            }
            PipelineError::SerializationFailed { what } => {
                write!(f, "could not serialize {what}")
            }
            PipelineError::StoreFailed(e) => write!(f, "store failed: {e}"),
            PipelineError::PublishRaced(race) => race.fmt(f),
        }
    }
}

impl std::error::Error for PipelineError {}

/// A featurized example stream for one model family.
struct Split {
    train: Dataset,
    test: Dataset,
}

impl Split {
    fn new(n_features: usize, n_classes: usize) -> Self {
        Split {
            train: Dataset::new(n_features, n_classes),
            test: Dataset::new(n_features, n_classes),
        }
    }
}

/// Runs the full offline pipeline on a trace.
///
/// # Errors
///
/// Returns [`PipelineError::InsufficientData`] when either side of the
/// train/test split is starved for any metric.
pub fn run_pipeline(
    trace: &Trace,
    config: &PipelineConfig,
) -> Result<PipelineOutput, PipelineError> {
    let run_start = std::time::Instant::now();
    let tracer = rc_obs::global_tracer();
    let registry = rc_obs::global();
    let train_end_secs = (config.train_days * 86_400.0) as u64;

    // --- Cleanup (quarantine dirty telemetry before anything indexes,
    // sorts, or clamps it — a NaN utilization parameter or a dangling
    // deployment id would panic the stages below) ---
    let mut span = tracer.span("pipeline.cleanup");
    let (trace_cow, quarantine) = cleanup(trace);
    let trace: &Trace = trace_cow.as_ref();
    span.record("extracted", quarantine.extracted)
        .record("cleaned", quarantine.cleaned)
        .record("quarantined", quarantine.quarantined());
    span.finish();

    // --- Extraction (telemetry → labelled VMs/deployments) ---
    let mut span = tracer.span("pipeline.extract");
    let vms = label_vms(trace, config.max_util_samples);
    let deployments = label_deployments(trace);
    span.record("vms", vms.len() as u64).record("deployments", deployments.len() as u64);
    span.finish();

    // --- Aggregation prologue: order the creation stream in time ---
    enum Created<'a> {
        Vm(&'a LabeledVm),
        Dep(&'a LabeledDeployment),
    }
    let mut span = tracer.span("pipeline.order");
    let mut events: Vec<(u64, Created<'_>)> = Vec::with_capacity(vms.len() + deployments.len());
    events.extend(vms.iter().map(|v| (v.obs.created_secs, Created::Vm(v))));
    events.extend(deployments.iter().map(|d| (d.obs.created_secs, Created::Dep(d))));
    events.sort_by_key(|(t, _)| *t);
    span.record("events", events.len() as u64);
    span.finish();

    enum Completion<'a> {
        Vm(&'a LabeledVm),
        Dep(&'a LabeledDeployment),
        /// The FFT label becomes known after three days of telemetry —
        /// well before a long-running VM completes.
        Class(usize, SubscriptionId),
    }
    let mut pending: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut completions: Vec<Completion<'_>> = Vec::new();

    let mut running: HashMap<SubscriptionId, SubscriptionFeatures> = HashMap::new();
    let mut snapshot: Option<HashMap<SubscriptionId, SubscriptionFeatures>> = None;

    let spec_util = ModelSpec::for_metric(PredictionMetric::AvgCpuUtil);
    let spec_dep = ModelSpec::for_metric(PredictionMetric::DeploymentSizeVms);
    let spec_life = ModelSpec::for_metric(PredictionMetric::Lifetime);
    let spec_class = ModelSpec::for_metric(PredictionMetric::WorkloadClass);

    let mut avg = Split::new(spec_util.n_features(), 4);
    let mut p95 = Split::new(spec_util.n_features(), 4);
    let mut life = Split::new(spec_life.n_features(), 4);
    let mut class = Split::new(spec_class.n_features(), 2);
    let mut dep_vms = Split::new(spec_dep.n_features(), 4);
    let mut dep_cores = Split::new(spec_dep.n_features(), 4);

    let drain = |heap: &mut BinaryHeap<Reverse<(u64, usize)>>,
                 completions: &Vec<Completion<'_>>,
                 running: &mut HashMap<SubscriptionId, SubscriptionFeatures>,
                 now: u64| {
        while let Some(Reverse((t, idx))) = heap.peek().copied() {
            if t > now {
                break;
            }
            heap.pop();
            match &completions[idx] {
                Completion::Vm(v) => {
                    running
                        .entry(v.inputs.subscription)
                        .or_insert_with(|| SubscriptionFeatures::new(v.inputs.subscription))
                        .observe_vm(&v.obs);
                }
                Completion::Dep(d) => {
                    running
                        .entry(d.inputs.subscription)
                        .or_insert_with(|| SubscriptionFeatures::new(d.inputs.subscription))
                        .observe_deployment(&d.obs);
                }
                Completion::Class(c, sub) => {
                    running
                        .entry(*sub)
                        .or_insert_with(|| SubscriptionFeatures::new(*sub))
                        .observe_class(*c);
                }
            }
        }
    };

    let empty = SubscriptionFeatures::default();
    let refresh_step = (config.refresh_every_days.max(0.5) * 86_400.0) as u64;
    let mut next_refresh = train_end_secs + refresh_step;
    let mut refreshes: Vec<(u64, HashMap<SubscriptionId, SubscriptionFeatures>)> = Vec::new();
    // Aggregation and featurization are one fused sweep: each creation
    // event is featurized against the aggregates as they stood at that
    // instant. The span covers both stages.
    let mut sweep_span = tracer.span("pipeline.aggregate");
    for (t, event) in &events {
        let is_test = *t >= train_end_secs;
        if is_test && snapshot.is_none() {
            // Crossing the boundary: fold in everything that completed
            // before it, then freeze the published feature data.
            drain(&mut pending, &completions, &mut running, train_end_secs);
            snapshot = Some(running.clone());
        }
        // The running aggregates keep folding completions through the test
        // period; weekly snapshots model RC's background pushes.
        drain(&mut pending, &completions, &mut running, *t);
        while is_test && *t >= next_refresh {
            refreshes.push((next_refresh, running.clone()));
            next_refresh += refresh_step;
        }
        // Test examples featurize against the frozen snapshot (set the
        // instant the sweep first crossed the boundary, just above);
        // train examples see the live aggregates.
        let features_map: &HashMap<_, _> = match &snapshot {
            Some(s) if is_test => s,
            _ => &running,
        };
        match event {
            Created::Vm(v) => {
                let sub = if config.ablate_history {
                    &empty
                } else {
                    features_map.get(&v.inputs.subscription).unwrap_or(&empty)
                };
                let urow = spec_util.features(&v.inputs, sub);
                let lrow = spec_life.features(&v.inputs, sub);
                let (avg_ds, p95_ds, life_ds) = if is_test {
                    (&mut avg.test, &mut p95.test, &mut life.test)
                } else {
                    (&mut avg.train, &mut p95.train, &mut life.train)
                };
                avg_ds.push(&urow, v.obs.avg_bucket);
                p95_ds.push(&urow, v.obs.p95_bucket);
                life_ds.push(&lrow, v.obs.lifetime_bucket);
                if let Some(c) = v.obs.class {
                    let crow = spec_class.features(&v.inputs, sub);
                    if is_test {
                        class.test.push(&crow, c);
                    } else {
                        // Oversample the rare interactive class to push its
                        // recall up, accepting low precision (§6.1).
                        let reps = if c == 1 { config.interactive_oversample.max(1) } else { 1 };
                        for _ in 0..reps {
                            class.train.push(&crow, c);
                        }
                    }
                }
                completions.push(Completion::Vm(v));
                pending.push(Reverse((v.completed_secs, completions.len() - 1)));
                if let Some(c) = v.obs.class {
                    let known_at =
                        v.obs.created_secs + (crate::labels::CLASSIFY_MIN_DAYS * 86_400.0) as u64;
                    completions.push(Completion::Class(c, v.inputs.subscription));
                    pending.push(Reverse((known_at, completions.len() - 1)));
                }
            }
            Created::Dep(d) => {
                let sub = if config.ablate_history {
                    &empty
                } else {
                    features_map.get(&d.inputs.subscription).unwrap_or(&empty)
                };
                let row = spec_dep.features(&d.inputs, sub);
                let (vms_ds, cores_ds) = if is_test {
                    (&mut dep_vms.test, &mut dep_cores.test)
                } else {
                    (&mut dep_vms.train, &mut dep_cores.train)
                };
                vms_ds.push(&row, d.obs.vms_bucket);
                cores_ds.push(&row, d.obs.cores_bucket);
                completions.push(Completion::Dep(d));
                pending.push(Reverse((d.completed_secs, completions.len() - 1)));
            }
        }
    }

    sweep_span.record("subscriptions", running.len() as u64);
    sweep_span.finish();
    tracer.event(
        "pipeline.featurize",
        vec![
            ("train_examples".to_string(), serde::Value::U64(avg.train.len() as u64)),
            ("test_examples".to_string(), serde::Value::U64(avg.test.len() as u64)),
        ],
    );

    let feature_data = match snapshot {
        Some(s) => s,
        None => return Err(PipelineError::InsufficientData { what: "test period" }),
    };
    let mut feature_refreshes = vec![(train_end_secs, feature_data.clone())];
    feature_refreshes.extend(refreshes);
    registry.counter(rc_obs::PIPELINE_FEATURE_REFRESHES).add(feature_refreshes.len() as u64);

    // --- Training & validation ---
    // The six per-metric models are independent, so they train and
    // validate concurrently on the scoped worker pool; output order stays
    // [`PredictionMetric::index`] order because the pool returns results
    // by task index. Spans and the shared train-latency histogram are
    // lock-free, so per-metric observability is unchanged.
    let splits: [(&Split, PredictionMetric); 6] = [
        (&avg, PredictionMetric::AvgCpuUtil),
        (&p95, PredictionMetric::P95MaxCpuUtil),
        (&dep_vms, PredictionMetric::DeploymentSizeVms),
        (&dep_cores, PredictionMetric::DeploymentSizeCores),
        (&life, PredictionMetric::Lifetime),
        (&class, PredictionMetric::WorkloadClass),
    ];
    for (split, metric) in &splits {
        if split.train.len() < 50 || split.test.is_empty() {
            return Err(PipelineError::InsufficientData { what: metric.label() });
        }
    }
    let train_latency = registry.histogram(rc_obs::PIPELINE_TRAIN_LATENCY_NS);
    let models_trained = registry.counter(rc_obs::PIPELINE_MODELS_TRAINED);
    let n_workers = if config.train_workers == 0 {
        rc_ml::pool::default_workers().min(splits.len())
    } else {
        config.train_workers.min(splits.len())
    };
    registry.gauge(rc_obs::PIPELINE_TRAIN_WORKERS).set(n_workers as f64);
    let trained: Vec<rc_ml::pool::TaskResult<(TrainedModel, MetricReport)>> =
        rc_ml::pool::try_map(n_workers, &splits, |_, &(split, metric)| {
            if config.fail_train.contains(&metric) {
                panic!("injected training fault for {metric}");
            }
            let mut span = tracer.span("pipeline.train");
            span.record("metric", metric.label()).record("n_train", split.train.len() as u64);
            let train_start = std::time::Instant::now();
            let spec = ModelSpec::for_metric(metric);
            let binned = BinnedDataset::build(&split.train);
            let estimator = match spec.approach {
                ModelApproach::RandomForest => {
                    Estimator::Forest(RandomForest::fit(&binned, &config.forest))
                }
                ModelApproach::GradientBoosting | ModelApproach::FftGradientBoosting => {
                    Estimator::Boosted(GradientBoosting::fit(&binned, &config.gbt))
                }
            };
            let model = TrainedModel { spec, estimator };
            train_latency.record_duration(train_start.elapsed());
            models_trained.increment();
            span.finish();

            let mut span = tracer.span("pipeline.validate");
            span.record("metric", metric.label()).record("n_test", split.test.len() as u64);
            let report = evaluate(&model, &split.test, config.theta, split.train.len());
            span.finish();
            (model, report)
        });
    // Per-metric fault isolation: a metric whose training panicked or
    // failed is quarantined — counted, reported with its failure message,
    // absent from the output — while the surviving metrics proceed to
    // validation and publication untouched.
    let mut models = Vec::with_capacity(splits.len());
    let mut reports = Vec::with_capacity(splits.len());
    let mut quarantined_metrics = Vec::new();
    let metric_quarantined = registry.counter(rc_obs::PIPELINE_METRIC_QUARANTINED);
    for (result, &(_, metric)) in trained.into_iter().zip(&splits) {
        match result {
            Ok((model, report)) => {
                models.push(model);
                reports.push(report);
            }
            Err(message) => {
                metric_quarantined.increment();
                tracer.event(
                    "pipeline.metric_quarantined",
                    vec![("metric".to_string(), serde::Value::Str(metric.label().to_string()))],
                );
                quarantined_metrics.push((metric, message));
            }
        }
    }
    if models.is_empty() {
        return Err(PipelineError::InsufficientData { what: "every metric quarantined" });
    }

    let mut feature_data_bytes = 0usize;
    for f in feature_data.values() {
        feature_data_bytes += serde_json::to_vec(f)
            .map_err(|_| PipelineError::SerializationFailed { what: "feature data" })?
            .len();
    }

    registry.counter(rc_obs::PIPELINE_RUNS).increment();
    registry.histogram(rc_obs::PIPELINE_RUN_LATENCY_NS).record_duration(run_start.elapsed());

    Ok(PipelineOutput {
        models,
        feature_data,
        reports,
        feature_data_bytes,
        feature_refreshes,
        version_tag: format!("trace-{}-train-{}d", trace.config.seed, config.train_days as u64),
        quarantine,
        quarantined_metrics,
    })
}

/// Evaluates a trained model on a test set (one Table 4 row).
fn evaluate(model: &TrainedModel, test: &Dataset, theta: f64, n_train: usize) -> MetricReport {
    let k = model.n_classes();
    let mut cm = ConfusionMatrix::new(k);
    let mut th = ThresholdedEval::new(theta);
    for i in 0..test.len() {
        let (pred, score) = model.predict(test.row(i));
        cm.record(test.label(i), pred);
        th.record(test.label(i), pred, score);
    }
    let buckets = (0..k)
        .map(|c| BucketStats {
            share: cm.true_share(c),
            precision: cm.precision(c),
            recall: cm.recall(c),
        })
        .collect();

    let names = model.spec.feature_names();
    let importance = model.feature_importance();
    let mut ranked: Vec<(f64, &String)> = importance.iter().copied().zip(names.iter()).collect();
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
    let top_features = ranked.iter().take(8).map(|(_, n)| (*n).clone()).collect();

    MetricReport {
        metric: model.spec.metric,
        accuracy: cm.accuracy(),
        buckets,
        p_theta: th.precision(),
        r_theta: th.recall(),
        n_train,
        n_test: test.len(),
        model_size_bytes: model.serialized_size(),
        n_features: model.spec.n_features(),
        top_features,
    }
}

/// The accuracy gates a publication must pass before anything is written.
#[derive(Debug, Clone, Copy)]
pub struct PublishGate {
    /// Absolute accuracy floor every model must clear.
    pub min_accuracy: f64,
    /// Maximum tolerated accuracy drop versus the same model in the
    /// currently published version (ε): a candidate more than this much
    /// worse blocks the whole publication, leaving `last_good` serving.
    pub max_regression: f64,
}

impl Default for PublishGate {
    fn default() -> Self {
        PublishGate { min_accuracy: 0.5, max_regression: 0.05 }
    }
}

impl PipelineOutput {
    /// The trained model for a metric.
    ///
    /// # Panics
    ///
    /// Panics if the metric was quarantined (its training failed); check
    /// [`PipelineOutput::quarantined_metrics`] first when that is possible.
    pub fn model(&self, metric: PredictionMetric) -> &TrainedModel {
        self.models
            .iter()
            .find(|m| m.spec.metric == metric)
            .unwrap_or_else(|| panic!("model for quarantined metric {metric}"))
    }

    /// The evaluation report for a metric.
    ///
    /// # Panics
    ///
    /// Panics if the metric was quarantined, as [`PipelineOutput::model`].
    pub fn report(&self, metric: PredictionMetric) -> &MetricReport {
        self.reports
            .iter()
            .find(|r| r.metric == metric)
            .unwrap_or_else(|| panic!("report for quarantined metric {metric}"))
    }

    /// Sanity-checks the models and publishes them with the default
    /// regression tolerance; see [`PipelineOutput::publish_gated`].
    ///
    /// # Errors
    ///
    /// As [`PipelineOutput::publish_gated`].
    pub fn publish<B: StoreBackend + ?Sized>(
        &self,
        store: &B,
        min_accuracy: f64,
    ) -> Result<u64, PipelineError> {
        self.publish_gated(store, PublishGate { min_accuracy, ..PublishGate::default() })
    }

    /// Two-phase atomic versioned publish (§4.2: "sanity-checks the
    /// models and feature data, and publishes them (with version numbers)
    /// to an existing highly available store").
    ///
    /// Every gate is evaluated *before* the first write: a blocked
    /// publication leaves the store byte-for-byte untouched and the
    /// currently published version serving. Then phase one writes every
    /// model and feature payload under the new `v{N}/` prefix — invisible
    /// to readers, so a crash mid-phase leaves only unreachable garbage —
    /// and phase two flips the single checksummed [`Manifest`] pointer,
    /// which also records the previous version as `last_good` for
    /// [`rc_store::rollback`]. Returns the new manifest version.
    ///
    /// # Errors
    ///
    /// [`PipelineError::SanityCheckFailed`] when a model's accuracy falls
    /// below the floor; [`PipelineError::PublishBlocked`] when a model
    /// regresses more than ε below its currently published accuracy;
    /// [`PipelineError::StoreFailed`] on store errors (phase-one failures
    /// never move the manifest).
    pub fn publish_gated<B: StoreBackend + ?Sized>(
        &self,
        store: &B,
        gate: PublishGate,
    ) -> Result<u64, PipelineError> {
        let registry = rc_obs::global();
        // The publish decomposes into nested spans — gate, payload
        // writes, pointer flip — all children of one `pipeline.publish`
        // parent, so a trace dump shows where a slow publish spent its
        // time. A blocked publish still records the parent and gate spans
        // (both finish on drop at the early return).
        let mut span = rc_obs::global_tracer().span("pipeline.publish");
        let previous = Manifest::read_current(store).map_err(PipelineError::StoreFailed)?;
        // The store version of the manifest pointer at read time: the
        // phase-two flip is conditional on it so a concurrent publisher
        // surfaces as a typed race instead of silent last-writer-wins.
        let expected_pointer = store.latest_version(MANIFEST_KEY).unwrap_or(0);

        // --- Validation gates, all before any write ---
        let mut gate_span = span.child("publish.gate");
        gate_span.record("min_accuracy", gate.min_accuracy);
        for report in &self.reports {
            if report.accuracy < gate.min_accuracy {
                registry.counter(rc_obs::PIPELINE_PUBLISH_BLOCKED).increment();
                return Err(PipelineError::SanityCheckFailed {
                    metric: report.metric,
                    accuracy: report.accuracy,
                });
            }
            let logical = ModelSpec::for_metric(report.metric).store_key();
            if let Some(entry) = previous.as_ref().and_then(|m| m.model_entry(&logical)) {
                if report.accuracy < entry.accuracy - gate.max_regression {
                    registry.counter(rc_obs::PIPELINE_PUBLISH_BLOCKED).increment();
                    return Err(PipelineError::PublishBlocked {
                        metric: report.metric,
                        accuracy: report.accuracy,
                        previous: entry.accuracy,
                    });
                }
            }
        }
        gate_span.finish();

        let published = registry.counter(rc_obs::PIPELINE_MODELS_PUBLISHED);
        let (new_version, last_good) = match &previous {
            Some(m) => (m.version + 1, m.version),
            None => (1, 0),
        };

        // --- Phase one: payloads under the unreferenced v{N}/ prefix ---
        let mut payload_span = span.child("publish.payloads");
        let mut model_entries = Vec::with_capacity(self.models.len());
        for (model, report) in self.models.iter().zip(&self.reports) {
            let logical = model.spec.store_key();
            let bytes = rc_ml::to_bytes(model);
            store
                .put(
                    &format!("{}{logical}", Manifest::version_prefix(new_version)),
                    bytes.clone().into(),
                )
                .map_err(PipelineError::StoreFailed)?;
            model_entries.push(ModelEntry {
                key: logical,
                checksum: checksum(&bytes),
                accuracy: report.accuracy,
            });
            published.increment();
        }
        // Feature records publish in subscription order so a same-seed
        // rerun produces a bit-identical store and manifest.
        let mut subs: Vec<SubscriptionId> = self.feature_data.keys().copied().collect();
        subs.sort_by_key(|s| s.0);
        let mut feature_entries = Vec::with_capacity(subs.len());
        for sub in subs {
            let features = &self.feature_data[&sub];
            let bytes = serde_json::to_vec(features)
                .map_err(|_| PipelineError::SerializationFailed { what: "feature data" })?;
            let logical = feature_store_key(sub);
            store
                .put(
                    &format!("{}{logical}", Manifest::version_prefix(new_version)),
                    bytes.clone().into(),
                )
                .map_err(PipelineError::StoreFailed)?;
            feature_entries.push(FeatureEntry { key: logical, checksum: checksum(&bytes) });
        }
        payload_span
            .record("models", model_entries.len() as u64)
            .record("feature_records", feature_entries.len() as u64);
        payload_span.finish();

        // --- Phase two: the atomic flip ---
        let mut flip_span = span.child("publish.flip");
        let manifest = Manifest::new(
            new_version,
            last_good,
            self.version_tag.clone(),
            model_entries,
            feature_entries,
        );
        store.put_if_version(MANIFEST_KEY, manifest.to_bytes(), expected_pointer).map_err(|e| {
            match e {
                rc_store::StoreError::Race(race) => {
                    registry.counter(rc_obs::PIPELINE_PUBLISH_RACES).increment();
                    PipelineError::PublishRaced(race)
                }
                other => PipelineError::StoreFailed(other),
            }
        })?;
        flip_span.record("version", new_version);
        flip_span.finish();

        span.record("models", self.models.len() as u64)
            .record("feature_records", self.feature_data.len() as u64)
            .record("version", new_version);
        span.finish();
        Ok(new_version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_store::Store;
    use rc_trace::TraceConfig;

    fn pipeline_output() -> PipelineOutput {
        let trace = Trace::generate(&TraceConfig {
            target_vms: 8_000,
            n_subscriptions: 300,
            days: 30,
            ..TraceConfig::small()
        });
        run_pipeline(&trace, &PipelineConfig::fast(30)).expect("pipeline")
    }

    #[test]
    fn pipeline_trains_six_models_with_decent_accuracy() {
        let out = pipeline_output();
        assert_eq!(out.models.len(), 6);
        assert!(out.quarantined_metrics.is_empty());
        // The generator emits only sanitized telemetry, so cleanup is the
        // identity on it — and accounts for that exactly.
        assert_eq!(out.quarantine.quarantined(), 0);
        assert!(out.quarantine.balanced());
        assert_eq!(out.quarantine.extracted, out.quarantine.cleaned);
        for report in &out.reports {
            assert!(report.n_train > 100, "{}: n_train {}", report.metric, report.n_train);
            assert!(report.n_test > 20, "{}: n_test {}", report.metric, report.n_test);
            assert!(report.accuracy > 0.55, "{}: accuracy {:.3}", report.metric, report.accuracy);
            assert!(report.p_theta >= report.accuracy - 0.05);
        }
    }

    #[test]
    fn history_features_dominate_importance() {
        // §6.1: "the most important attributes are the percentage of VMs
        // classified into each bucket to date in the subscription".
        let out = pipeline_output();
        let report = out.report(PredictionMetric::AvgCpuUtil);
        let history_in_top = report
            .top_features
            .iter()
            .take(5)
            .filter(|n| n.contains("hist_") || n.contains("mean_") || n.contains("recent_"))
            .count();
        assert!(
            history_in_top >= 2,
            "top features should be history-based: {:?}",
            report.top_features
        );
    }

    #[test]
    fn publish_writes_models_and_features() {
        let out = pipeline_output();
        let store = Store::in_memory();
        let version = out.publish(&store, 0.5).expect("publish");
        assert_eq!(version, 1);
        let manifest = Manifest::read_current(&store).expect("store up").expect("manifest");
        assert_eq!(manifest.version, 1);
        assert_eq!(manifest.last_good, 0, "first publication has nothing to roll back to");
        assert_eq!(manifest.models.len(), 6);
        assert_eq!(manifest.features.len(), out.feature_data.len());
        for metric in PredictionMetric::ALL {
            let logical = ModelSpec::for_metric(metric).store_key();
            let entry = manifest.model_entry(&logical).unwrap_or_else(|| panic!("entry {logical}"));
            let rec = store.get_latest(&manifest.versioned_key(&logical)).expect("payload");
            assert_eq!(checksum(&rec.data), entry.checksum, "checksum mismatch for {logical}");
        }
        // manifest + 6 models + one feature record per subscription.
        assert_eq!(store.keys().len(), 7 + out.feature_data.len());

        // A second publication bumps the version and records the first as
        // the rollback target.
        let v2 = out.publish(&store, 0.5).expect("second publish");
        assert_eq!(v2, 2);
        let m2 = Manifest::read_current(&store).expect("store up").expect("manifest");
        assert_eq!((m2.version, m2.last_good), (2, 1));
    }

    #[test]
    fn publish_refuses_bad_models() {
        let out = pipeline_output();
        let store = Store::in_memory();
        let err = out.publish(&store, 1.01).unwrap_err();
        assert!(matches!(err, PipelineError::SanityCheckFailed { .. }));
        // Nothing was written.
        assert!(store.keys().is_empty());
    }

    #[test]
    fn feature_refreshes_cover_the_test_period() {
        let out = pipeline_output();
        // First refresh is the frozen train-boundary snapshot (day 20 of
        // 30); weekly pushes follow.
        assert!(out.feature_refreshes.len() >= 2, "want weekly refreshes");
        let times: Vec<u64> = out.feature_refreshes.iter().map(|(t, _)| *t).collect();
        assert_eq!(times[0], 20 * 86_400);
        for w in times.windows(2) {
            assert!(w[0] < w[1], "refresh times must ascend");
        }
        // Later snapshots only grow: they fold in completions the frozen
        // snapshot has not seen.
        let first_vms: u64 = out.feature_refreshes[0].1.values().map(|f| f.n_vms).sum();
        let last_vms: u64 = out.feature_refreshes.last().unwrap().1.values().map(|f| f.n_vms).sum();
        assert!(last_vms > first_vms, "{last_vms} vs {first_vms}");
        // The frozen snapshot in `feature_data` matches refresh zero.
        let frozen: u64 = out.feature_data.values().map(|f| f.n_vms).sum();
        assert_eq!(frozen, first_vms);
    }

    #[test]
    fn feature_data_size_is_proportional_to_subscriptions() {
        let out = pipeline_output();
        let per_sub = out.feature_data_bytes as f64 / out.feature_data.len() as f64;
        // §6.1 cites ~850 bytes per subscription record.
        assert!((400.0..1_600.0).contains(&per_sub), "bytes/subscription = {per_sub}");
    }
}
