//! Deterministic fault injection for the store.
//!
//! §4.3 of the paper insists RC must be non-mission-critical: consumers
//! keep working (degraded) when the store misbehaves. To *demonstrate*
//! that, this module wraps a [`Store`] in a [`FaultyStore`] driven by a
//! seeded [`FaultPlan`]: per-operation unavailability, transient error
//! bursts, latency spikes (composing with any [`crate::LatencyModel`]
//! already attached to the wrapped store), and payload corruption on
//! reads. Every decision comes from one seeded RNG drawing a fixed number
//! of uniforms per operation, so a schedule is bit-reproducible across
//! runs given the same sequence of store calls.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rc_obs::Counter;

use crate::kv::{Store, StoreBackend, StoreError, VersionedRecord};

/// A seeded schedule of store misbehaviour.
///
/// All probabilities are per-operation and independent; the plan is inert
/// when every probability is zero.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Seed for the injector's RNG; two injectors with the same plan
    /// produce identical decision streams.
    pub seed: u64,
    /// Probability an operation is rejected with
    /// [`StoreError::Unavailable`].
    pub p_unavailable: f64,
    /// Probability an operation *starts* a transient error burst: it and
    /// the next `transient_burst` operations fail with
    /// [`StoreError::Transient`].
    pub p_transient: f64,
    /// Extra operations that fail after a burst starts.
    pub transient_burst: u32,
    /// Probability an operation pays `latency_spike` extra wall time.
    pub p_latency_spike: f64,
    /// The extra latency of a spike.
    pub latency_spike: Duration,
    /// Probability a GET's payload is corrupted (truncated and
    /// bit-mangled) before the caller sees it.
    pub p_corrupt: f64,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a baseline sweep point).
    pub fn reliable(seed: u64) -> Self {
        FaultPlan {
            seed,
            p_unavailable: 0.0,
            p_transient: 0.0,
            transient_burst: 0,
            p_latency_spike: 0.0,
            latency_spike: Duration::ZERO,
            p_corrupt: 0.0,
        }
    }

    /// Convenience: only per-op unavailability, probability `p`.
    pub fn unavailability(seed: u64, p: f64) -> Self {
        FaultPlan { p_unavailable: p, ..FaultPlan::reliable(seed) }
    }
}

/// What the injector decided for one operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultDecision {
    /// Injected failure, if any; the wrapped store is not consulted.
    pub error: Option<StoreError>,
    /// Extra latency to pay before the operation (spike).
    pub extra_latency: Option<Duration>,
    /// `Some(salt)` corrupts a GET payload deterministically from `salt`.
    pub corrupt_salt: Option<u64>,
}

/// Exact counts of injected faults, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    /// Operations rejected as unavailable.
    pub unavailable: u64,
    /// Operations failed transiently (burst starts + continuations).
    pub transient: u64,
    /// Operations that paid a latency spike.
    pub latency_spikes: u64,
    /// GET payloads corrupted.
    pub corruptions: u64,
}

impl InjectedFaults {
    /// All injected faults (spikes included: they perturb an operation
    /// even though it succeeds).
    pub fn total(&self) -> u64 {
        self.unavailable + self.transient + self.latency_spikes + self.corruptions
    }
}

/// The deterministic decision engine behind a [`FaultyStore`].
pub struct FaultInjector {
    plan: FaultPlan,
    state: Mutex<InjectorState>,
    unavailable: AtomicU64,
    transient: AtomicU64,
    latency_spikes: AtomicU64,
    corruptions: AtomicU64,
    metrics: InjectorMetrics,
}

struct InjectorState {
    rng: StdRng,
    burst_remaining: u32,
}

struct InjectorMetrics {
    total: Counter,
    unavailable: Counter,
    transients: Counter,
    latency_spikes: Counter,
    corruptions: Counter,
}

impl InjectorMetrics {
    fn new() -> Self {
        let reg = rc_obs::global();
        InjectorMetrics {
            total: reg.counter(rc_obs::STORE_INJECTED_FAULTS),
            unavailable: reg.counter(rc_obs::STORE_INJECTED_UNAVAILABILITY),
            transients: reg.counter(rc_obs::STORE_INJECTED_TRANSIENTS),
            latency_spikes: reg.counter(rc_obs::STORE_INJECTED_LATENCY_SPIKES),
            corruptions: reg.counter(rc_obs::STORE_INJECTED_CORRUPTIONS),
        }
    }
}

impl FaultInjector {
    /// Builds an injector for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            state: Mutex::new(InjectorState {
                rng: StdRng::seed_from_u64(plan.seed),
                burst_remaining: 0,
            }),
            plan,
            unavailable: AtomicU64::new(0),
            transient: AtomicU64::new(0),
            latency_spikes: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
            metrics: InjectorMetrics::new(),
        }
    }

    /// Decides one operation's fate. Always consumes exactly five RNG
    /// draws, whatever the outcome, so two injectors with the same plan
    /// stay in lock-step across any sequence of outcomes.
    pub fn decide(&self, is_get: bool) -> FaultDecision {
        let plan = &self.plan;
        let (u_unavail, u_transient, u_latency, u_corrupt, salt, in_burst) = {
            let mut state = self.state.lock();
            let u1: f64 = state.rng.gen();
            let u2: f64 = state.rng.gen();
            let u3: f64 = state.rng.gen();
            let u4: f64 = state.rng.gen();
            let salt: u64 = state.rng.gen();
            let in_burst = state.burst_remaining > 0;
            if in_burst {
                state.burst_remaining -= 1;
            } else if u2 < plan.p_transient {
                state.burst_remaining = plan.transient_burst;
            }
            (u1, u2, u3, u4, salt, in_burst)
        };

        let error = if in_burst || u_transient < plan.p_transient {
            self.transient.fetch_add(1, Ordering::Relaxed);
            self.metrics.transients.increment();
            self.metrics.total.increment();
            Some(StoreError::Transient)
        } else if u_unavail < plan.p_unavailable {
            self.unavailable.fetch_add(1, Ordering::Relaxed);
            self.metrics.unavailable.increment();
            self.metrics.total.increment();
            Some(StoreError::Unavailable)
        } else {
            None
        };

        let extra_latency = if error.is_none() && u_latency < plan.p_latency_spike {
            self.latency_spikes.fetch_add(1, Ordering::Relaxed);
            self.metrics.latency_spikes.increment();
            self.metrics.total.increment();
            Some(plan.latency_spike)
        } else {
            None
        };

        let corrupt_salt = if error.is_none() && is_get && u_corrupt < plan.p_corrupt {
            self.corruptions.fetch_add(1, Ordering::Relaxed);
            self.metrics.corruptions.increment();
            self.metrics.total.increment();
            Some(salt)
        } else {
            None
        };

        FaultDecision { error, extra_latency, corrupt_salt }
    }

    /// The plan this injector runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Exact injected-fault counts so far.
    pub fn injected(&self) -> InjectedFaults {
        InjectedFaults {
            unavailable: self.unavailable.load(Ordering::Relaxed),
            transient: self.transient.load(Ordering::Relaxed),
            latency_spikes: self.latency_spikes.load(Ordering::Relaxed),
            corruptions: self.corruptions.load(Ordering::Relaxed),
        }
    }
}

/// Deterministically mangles a payload so it can never decode: truncate
/// to half (at least one byte) and XOR a salt-derived pattern over what
/// remains. JSON and any framed format fail validation immediately.
pub fn corrupt_payload(data: &Bytes, salt: u64) -> Bytes {
    let keep = (data.len() / 2).max(1).min(data.len());
    let mut out = Vec::with_capacity(keep);
    let mut x = salt | 1;
    for (i, b) in data.iter().take(keep).enumerate() {
        // xorshift over the salt so every byte gets a different mask.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        out.push(b ^ (x as u8) ^ ((i as u8).wrapping_mul(31)) ^ 0xA5);
    }
    Bytes::from(out)
}

/// A [`Store`] wrapper that injects faults per a seeded [`FaultPlan`].
///
/// Cheap to clone; clones share the wrapped store *and* the injector, so
/// the fault schedule is global across handles. Data-plane operations
/// (`get_latest`, `get_version`, `put`) pass through the injector;
/// metadata scans (`keys`, `latest_version`) do not — they model the
/// cheap, cached version check the client's push watcher performs.
#[derive(Clone)]
pub struct FaultyStore {
    store: Store,
    injector: Arc<FaultInjector>,
}

impl FaultyStore {
    /// Wraps `store` with a fault plan.
    pub fn new(store: Store, plan: FaultPlan) -> Self {
        FaultyStore { store, injector: Arc::new(FaultInjector::new(plan)) }
    }

    /// The underlying (un-faulted) store.
    pub fn inner(&self) -> &Store {
        &self.store
    }

    /// The shared injector (for fault counts).
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    fn pay(&self, decision: &FaultDecision) {
        if let Some(extra) = decision.extra_latency {
            std::thread::sleep(extra);
        }
    }

    /// `put` with injection (corruption does not apply to writes).
    pub fn put(&self, key: &str, data: Bytes) -> Result<u64, StoreError> {
        let decision = self.injector.decide(false);
        self.pay(&decision);
        if let Some(err) = decision.error {
            return Err(err);
        }
        self.store.put(key, data)
    }

    /// Conditional `put` with injection: the fault decision fires first,
    /// then the compare-and-swap is delegated to the wrapped store so it
    /// stays atomic across handles.
    pub fn put_if_version(
        &self,
        key: &str,
        data: Bytes,
        expected_current: u64,
    ) -> Result<u64, StoreError> {
        let decision = self.injector.decide(false);
        self.pay(&decision);
        if let Some(err) = decision.error {
            return Err(err);
        }
        self.store.put_if_version(key, data, expected_current)
    }

    /// `get_latest` with injection.
    pub fn get_latest(&self, key: &str) -> Result<VersionedRecord, StoreError> {
        let decision = self.injector.decide(true);
        self.pay(&decision);
        if let Some(err) = decision.error {
            return Err(err);
        }
        let mut rec = self.store.get_latest(key)?;
        if let Some(salt) = decision.corrupt_salt {
            rec.data = corrupt_payload(&rec.data, salt);
        }
        Ok(rec)
    }

    /// `get_version` with injection.
    pub fn get_version(&self, key: &str, version: u64) -> Result<VersionedRecord, StoreError> {
        let decision = self.injector.decide(true);
        self.pay(&decision);
        if let Some(err) = decision.error {
            return Err(err);
        }
        let mut rec = self.store.get_version(key, version)?;
        if let Some(salt) = decision.corrupt_salt {
            rec.data = corrupt_payload(&rec.data, salt);
        }
        Ok(rec)
    }

    /// Whether the wrapped store accepts requests (the binary switch; the
    /// injector's per-op unavailability is separate).
    pub fn is_available(&self) -> bool {
        self.store.is_available()
    }

    /// Flips the wrapped store's binary availability switch.
    pub fn set_available(&self, available: bool) {
        self.store.set_available(available);
    }

    /// Keys of the wrapped store (not injected).
    pub fn keys(&self) -> Vec<String> {
        self.store.keys()
    }

    /// Latest version in the wrapped store (not injected).
    pub fn latest_version(&self, key: &str) -> Option<u64> {
        self.store.latest_version(key)
    }
}

impl StoreBackend for FaultyStore {
    fn is_available(&self) -> bool {
        FaultyStore::is_available(self)
    }

    fn keys(&self) -> Vec<String> {
        FaultyStore::keys(self)
    }

    fn get_latest(&self, key: &str) -> Result<VersionedRecord, StoreError> {
        FaultyStore::get_latest(self, key)
    }

    fn get_version(&self, key: &str, version: u64) -> Result<VersionedRecord, StoreError> {
        FaultyStore::get_version(self, key, version)
    }

    fn latest_version(&self, key: &str) -> Option<u64> {
        FaultyStore::latest_version(self, key)
    }

    fn put(&self, key: &str, data: Bytes) -> Result<u64, StoreError> {
        FaultyStore::put(self, key, data)
    }

    fn put_if_version(
        &self,
        key: &str,
        data: Bytes,
        expected_current: u64,
    ) -> Result<u64, StoreError> {
        FaultyStore::put_if_version(self, key, data, expected_current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan {
            seed: 42,
            p_unavailable: 0.3,
            p_transient: 0.05,
            transient_burst: 2,
            p_latency_spike: 0.1,
            latency_spike: Duration::from_micros(50),
            p_corrupt: 0.1,
        }
    }

    #[test]
    fn schedules_are_bit_reproducible() {
        let a = FaultInjector::new(plan());
        let b = FaultInjector::new(plan());
        let sa: Vec<FaultDecision> = (0..2_000).map(|i| a.decide(i % 3 != 0)).collect();
        let sb: Vec<FaultDecision> = (0..2_000).map(|i| b.decide(i % 3 != 0)).collect();
        assert_eq!(sa, sb, "same plan must give the same schedule");
        assert_eq!(a.injected(), b.injected());
        assert!(a.injected().total() > 0);
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultInjector::new(plan());
        let b = FaultInjector::new(FaultPlan { seed: 43, ..plan() });
        let sa: Vec<FaultDecision> = (0..500).map(|_| a.decide(true)).collect();
        let sb: Vec<FaultDecision> = (0..500).map(|_| b.decide(true)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn probabilities_land_near_expectation() {
        let injector =
            FaultInjector::new(FaultPlan { p_transient: 0.0, transient_burst: 0, ..plan() });
        let n = 20_000;
        let failures =
            (0..n).filter(|_| injector.decide(true).error.is_some()).count() as f64 / n as f64;
        assert!((failures - 0.3).abs() < 0.02, "unavailability rate {failures}");
    }

    #[test]
    fn transient_bursts_extend_failures() {
        let injector = FaultInjector::new(FaultPlan {
            seed: 7,
            p_unavailable: 0.0,
            p_transient: 0.05,
            transient_burst: 3,
            p_latency_spike: 0.0,
            latency_spike: Duration::ZERO,
            p_corrupt: 0.0,
        });
        let decisions: Vec<FaultDecision> = (0..5_000).map(|_| injector.decide(true)).collect();
        // Every transient failure is part of a run of >= 1 + burst
        // whenever it starts a burst; check that runs of exactly length
        // burst+1 dominate isolated failures.
        let mut run = 0usize;
        let mut runs = Vec::new();
        for d in &decisions {
            if d.error == Some(StoreError::Transient) {
                run += 1;
            } else if run > 0 {
                runs.push(run);
                run = 0;
            }
        }
        assert!(!runs.is_empty());
        assert!(runs.iter().all(|&r| r >= 4 || r % 4 == 0), "runs: {runs:?}");
    }

    #[test]
    fn reliable_plan_injects_nothing() {
        let store = Store::in_memory();
        store.put("k", Bytes::from_static(b"v")).unwrap();
        let faulty = FaultyStore::new(store, FaultPlan::reliable(1));
        for _ in 0..200 {
            assert_eq!(faulty.get_latest("k").unwrap().data.as_ref(), b"v");
        }
        assert_eq!(faulty.injector().injected().total(), 0);
    }

    #[test]
    fn corruption_changes_payload_without_touching_store() {
        let store = Store::in_memory();
        let payload = br#"[1.0,2.0,3.0,4.0,5.0,6.0,7.0,8.0]"#;
        store.put("k", Bytes::from_static(payload)).unwrap();
        let faulty = FaultyStore::new(
            store.clone(),
            FaultPlan { p_unavailable: 0.0, p_transient: 0.0, p_corrupt: 1.0, ..plan() },
        );
        let rec = faulty.get_latest("k").unwrap();
        assert_ne!(rec.data.as_ref(), payload, "payload must be mangled");
        assert!(serde_json::from_slice::<Vec<f64>>(&rec.data).is_err());
        // The store itself still holds the pristine record.
        assert_eq!(store.get_latest("k").unwrap().data.as_ref(), payload);
    }

    #[test]
    fn corrupt_payload_never_decodes_as_json() {
        for salt in 0..64u64 {
            let data = Bytes::from_static(br#"[1.5,2.5,3.5,4.5,5.5,6.5]"#);
            let mangled = corrupt_payload(&data, salt);
            assert!(
                serde_json::from_slice::<Vec<f64>>(&mangled).is_err(),
                "salt {salt} produced decodable corruption"
            );
        }
    }

    #[test]
    fn faulty_store_surfaces_underlying_errors() {
        let store = Store::in_memory();
        let faulty = FaultyStore::new(store.clone(), FaultPlan::reliable(1));
        assert_eq!(faulty.get_latest("missing").unwrap_err(), StoreError::NotFound);
        store.set_available(false);
        assert!(!StoreBackend::is_available(&faulty));
        assert_eq!(faulty.get_latest("missing").unwrap_err(), StoreError::Unavailable);
    }

    #[test]
    fn clones_share_the_schedule() {
        let store = Store::in_memory();
        store.put("k", Bytes::from_static(b"v")).unwrap();
        let a = FaultyStore::new(store, FaultPlan::unavailability(9, 1.0));
        let b = a.clone();
        let _ = a.get_latest("k");
        let _ = b.get_latest("k");
        assert_eq!(a.injector().injected().unavailable, 2);
    }
}
