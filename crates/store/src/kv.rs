//! The versioned key-value store.
//!
//! RC publishes models and feature data "with version numbers, to an
//! existing highly available store" present in each datacenter (§4.2).
//! This module provides that store's semantics in-process: versioned puts,
//! latest-or-pinned gets, and an availability switch so tests and
//! examples can exercise the client's degraded paths (disk cache,
//! no-prediction).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rc_obs::{Counter, Histogram};

use crate::latency::LatencyModel;

/// A compare-and-swap write lost: the key moved past the version the
/// writer read before composing its update. Carried by
/// [`StoreError::Race`] so publishers can distinguish "another writer
/// got there first" (re-read and re-decide) from infrastructure
/// failures (retry blindly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishRace {
    /// The latest version the writer expected to still be current
    /// (0 = the key was expected to not exist yet).
    pub expected: u64,
    /// The latest version actually found at write time.
    pub actual: u64,
}

impl std::fmt::Display for PublishRace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "publish race: expected current version {}, found {}", self.expected, self.actual)
    }
}

/// Errors returned by store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The store (or connectivity to it) is unavailable.
    Unavailable,
    /// No record exists for the key (or key/version pair).
    NotFound,
    /// A transient error (timeout, throttle, connection reset): the store
    /// is up, but this particular access failed. Retryable.
    Transient,
    /// A conditional write lost a race with a concurrent writer. Not
    /// blindly retryable: the caller must re-read the current state and
    /// decide whether its update still makes sense.
    Race(PublishRace),
}

impl StoreError {
    /// True for errors a client may reasonably retry; `NotFound` and
    /// `Race` are authoritative answers, not failures.
    pub fn is_retryable(&self) -> bool {
        matches!(self, StoreError::Unavailable | StoreError::Transient)
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Unavailable => write!(f, "store unavailable"),
            StoreError::NotFound => write!(f, "record not found"),
            StoreError::Transient => write!(f, "transient store error"),
            StoreError::Race(race) => race.fmt(f),
        }
    }
}

impl std::error::Error for StoreError {}

/// The store surface the client library and the pipeline's publish path
/// depend on.
///
/// Abstracting it lets a [`crate::FaultyStore`] (or any future remote
/// backend) slot in where a plain [`Store`] is expected, without the
/// caller knowing whether faults are being injected underneath it. The
/// client only reads; the pipeline's two-phase publish also writes
/// through [`StoreBackend::put`], so torn-publish tests can inject a
/// failure at any write index.
pub trait StoreBackend: Send + Sync {
    /// Whether the store currently accepts requests.
    fn is_available(&self) -> bool;
    /// All keys with at least one version, sorted.
    fn keys(&self) -> Vec<String>;
    /// Reads the latest version of `key`.
    fn get_latest(&self, key: &str) -> Result<VersionedRecord, StoreError>;
    /// Reads a specific version of `key`.
    fn get_version(&self, key: &str, version: u64) -> Result<VersionedRecord, StoreError>;
    /// Latest version number of `key`, if any.
    fn latest_version(&self, key: &str) -> Option<u64>;
    /// Writes a new version of `key`, returning the version number.
    fn put(&self, key: &str, data: Bytes) -> Result<u64, StoreError>;
    /// Conditional write: appends a new version of `key` only if the
    /// key's latest version still equals `expected_current` (0 = the key
    /// must not exist yet). A losing writer gets [`StoreError::Race`]
    /// instead of silently becoming the last writer.
    ///
    /// The default implementation is check-then-put and therefore only
    /// as atomic as the backend's individual operations; [`Store`]
    /// overrides it to decide under its write lock, and fault-injecting
    /// wrappers should delegate to the wrapped store's implementation
    /// after their own fault decision.
    fn put_if_version(
        &self,
        key: &str,
        data: Bytes,
        expected_current: u64,
    ) -> Result<u64, StoreError> {
        let actual = self.latest_version(key).unwrap_or(0);
        if actual != expected_current {
            return Err(StoreError::Race(PublishRace { expected: expected_current, actual }));
        }
        self.put(key, data)
    }
}

impl StoreBackend for Store {
    fn is_available(&self) -> bool {
        Store::is_available(self)
    }

    fn keys(&self) -> Vec<String> {
        Store::keys(self)
    }

    fn get_latest(&self, key: &str) -> Result<VersionedRecord, StoreError> {
        Store::get_latest(self, key)
    }

    fn get_version(&self, key: &str, version: u64) -> Result<VersionedRecord, StoreError> {
        Store::get_version(self, key, version)
    }

    fn latest_version(&self, key: &str) -> Option<u64> {
        Store::latest_version(self, key)
    }

    fn put(&self, key: &str, data: Bytes) -> Result<u64, StoreError> {
        Store::put(self, key, data)
    }

    fn put_if_version(
        &self,
        key: &str,
        data: Bytes,
        expected_current: u64,
    ) -> Result<u64, StoreError> {
        Store::put_if_version(self, key, data, expected_current)
    }
}

/// A versioned record.
#[derive(Debug, Clone)]
pub struct VersionedRecord {
    /// Monotonically increasing version, starting at 1 per key.
    pub version: u64,
    /// Record payload.
    pub data: Bytes,
}

/// Statistics counters for store accesses.
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Successful GETs.
    pub gets: AtomicU64,
    /// Successful PUTs.
    pub puts: AtomicU64,
    /// GETs rejected because the store was unavailable.
    pub unavailable_errors: AtomicU64,
    /// Accumulated simulated latency in nanoseconds.
    pub simulated_latency_ns: AtomicU64,
}

/// The simulated highly available store.
///
/// Cheap to clone (all state behind `Arc`), thread-safe, and optionally
/// attaches a [`LatencyModel`]: when one is set, every access *spins* for a
/// sampled latency so that client-side measurements (Figure 10, §6.1's
/// pull-path numbers) see realistic store costs.
#[derive(Clone)]
pub struct Store {
    inner: Arc<StoreInner>,
}

struct StoreInner {
    records: RwLock<HashMap<String, Vec<VersionedRecord>>>,
    available: AtomicBool,
    latency: Option<LatencyModel>,
    latency_rng: parking_lot::Mutex<StdRng>,
    stats: StoreStats,
    metrics: StoreMetrics,
}

/// Pre-resolved global-registry handles so the access paths stay
/// lock-free (the registry lock is paid once here, at construction).
struct StoreMetrics {
    get_latency: Histogram,
    put_latency: Histogram,
    gets: Counter,
    puts: Counter,
    unavailable: Counter,
    version_bumps: Counter,
}

impl StoreMetrics {
    fn new() -> Self {
        let reg = rc_obs::global();
        StoreMetrics {
            get_latency: reg.histogram(rc_obs::STORE_GET_LATENCY_NS),
            put_latency: reg.histogram(rc_obs::STORE_PUT_LATENCY_NS),
            gets: reg.counter(rc_obs::STORE_GETS),
            puts: reg.counter(rc_obs::STORE_PUTS),
            unavailable: reg.counter(rc_obs::STORE_UNAVAILABLE),
            version_bumps: reg.counter(rc_obs::STORE_VERSION_BUMPS),
        }
    }
}

impl Store {
    /// An always-fast in-process store (no simulated latency).
    pub fn in_memory() -> Self {
        Self::with_latency(None)
    }

    /// A store whose accesses cost a sampled latency.
    pub fn with_latency(latency: Option<LatencyModel>) -> Self {
        Store {
            inner: Arc::new(StoreInner {
                records: RwLock::new(HashMap::new()),
                available: AtomicBool::new(true),
                latency,
                latency_rng: parking_lot::Mutex::new(StdRng::seed_from_u64(0x5709)),
                stats: StoreStats::default(),
                metrics: StoreMetrics::new(),
            }),
        }
    }

    /// Flips availability; an unavailable store fails every access.
    pub fn set_available(&self, available: bool) {
        self.inner.available.store(available, Ordering::SeqCst);
    }

    /// Whether the store currently accepts requests.
    pub fn is_available(&self) -> bool {
        self.inner.available.load(Ordering::SeqCst)
    }

    /// Spin for one sampled latency, if a model is attached.
    fn pay_latency(&self) {
        if let Some(model) = &self.inner.latency {
            let d = {
                let mut rng = self.inner.latency_rng.lock();
                model.sample(&mut *rng)
            };
            self.inner.stats.simulated_latency_ns.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
            let start = std::time::Instant::now();
            while start.elapsed() < d {
                std::hint::spin_loop();
            }
        }
    }

    /// Writes a new version of `key`, returning the assigned version.
    pub fn put(&self, key: &str, data: Bytes) -> Result<u64, StoreError> {
        if !self.is_available() {
            self.inner.stats.unavailable_errors.fetch_add(1, Ordering::Relaxed);
            self.inner.metrics.unavailable.increment();
            return Err(StoreError::Unavailable);
        }
        let start = std::time::Instant::now();
        self.pay_latency();
        let mut records = self.inner.records.write();
        let versions = records.entry(key.to_owned()).or_default();
        let version = versions.last().map_or(1, |r| r.version + 1);
        if version > 1 {
            self.inner.metrics.version_bumps.increment();
        }
        versions.push(VersionedRecord { version, data });
        self.inner.stats.puts.fetch_add(1, Ordering::Relaxed);
        self.inner.metrics.puts.increment();
        self.inner.metrics.put_latency.record_duration(start.elapsed());
        Ok(version)
    }

    /// Conditional write, decided atomically under the write lock: the
    /// new version is appended only if the key's latest version still
    /// equals `expected_current` (0 = key absent). Exactly one of two
    /// racing writers that read the same current version wins; the other
    /// gets [`StoreError::Race`] with the version that beat it.
    pub fn put_if_version(
        &self,
        key: &str,
        data: Bytes,
        expected_current: u64,
    ) -> Result<u64, StoreError> {
        if !self.is_available() {
            self.inner.stats.unavailable_errors.fetch_add(1, Ordering::Relaxed);
            self.inner.metrics.unavailable.increment();
            return Err(StoreError::Unavailable);
        }
        let start = std::time::Instant::now();
        self.pay_latency();
        let mut records = self.inner.records.write();
        let actual = records.get(key).and_then(|v| v.last()).map_or(0, |r| r.version);
        if actual != expected_current {
            return Err(StoreError::Race(PublishRace { expected: expected_current, actual }));
        }
        let versions = records.entry(key.to_owned()).or_default();
        let version = actual + 1;
        if version > 1 {
            self.inner.metrics.version_bumps.increment();
        }
        versions.push(VersionedRecord { version, data });
        self.inner.stats.puts.fetch_add(1, Ordering::Relaxed);
        self.inner.metrics.puts.increment();
        self.inner.metrics.put_latency.record_duration(start.elapsed());
        Ok(version)
    }

    /// Reads the latest version of `key`.
    pub fn get_latest(&self, key: &str) -> Result<VersionedRecord, StoreError> {
        if !self.is_available() {
            self.inner.stats.unavailable_errors.fetch_add(1, Ordering::Relaxed);
            self.inner.metrics.unavailable.increment();
            return Err(StoreError::Unavailable);
        }
        let start = std::time::Instant::now();
        self.pay_latency();
        let records = self.inner.records.read();
        let rec = records.get(key).and_then(|v| v.last()).cloned().ok_or(StoreError::NotFound)?;
        self.inner.stats.gets.fetch_add(1, Ordering::Relaxed);
        self.inner.metrics.gets.increment();
        self.inner.metrics.get_latency.record_duration(start.elapsed());
        Ok(rec)
    }

    /// Reads a specific version of `key`.
    pub fn get_version(&self, key: &str, version: u64) -> Result<VersionedRecord, StoreError> {
        if !self.is_available() {
            self.inner.stats.unavailable_errors.fetch_add(1, Ordering::Relaxed);
            self.inner.metrics.unavailable.increment();
            return Err(StoreError::Unavailable);
        }
        let start = std::time::Instant::now();
        self.pay_latency();
        let records = self.inner.records.read();
        let rec = records
            .get(key)
            .and_then(|v| v.iter().find(|r| r.version == version))
            .cloned()
            .ok_or(StoreError::NotFound)?;
        self.inner.stats.gets.fetch_add(1, Ordering::Relaxed);
        self.inner.metrics.gets.increment();
        self.inner.metrics.get_latency.record_duration(start.elapsed());
        Ok(rec)
    }

    /// Latest version number of `key`, if any.
    pub fn latest_version(&self, key: &str) -> Option<u64> {
        self.inner.records.read().get(key).and_then(|v| v.last()).map(|r| r.version)
    }

    /// All keys with at least one version, sorted.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.inner.records.read().keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Successful GET count.
    pub fn get_count(&self) -> u64 {
        self.inner.stats.gets.load(Ordering::Relaxed)
    }

    /// Successful PUT count.
    pub fn put_count(&self) -> u64 {
        self.inner.stats.puts.load(Ordering::Relaxed)
    }

    /// Count of accesses rejected while unavailable.
    pub fn unavailable_count(&self) -> u64 {
        self.inner.stats.unavailable_errors.load(Ordering::Relaxed)
    }
}

/// FNV-1a fingerprint over every `(key, latest version)` pair in the
/// store. [`Store::keys`] returns keys sorted, so the fingerprint is
/// stable for a given store state; any publish, rollback, or new key
/// changes it. Clients poll this to notice publications; tests use it to
/// prove a blocked operation left the store untouched.
pub fn fingerprint<B: StoreBackend + ?Sized>(store: &B) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for key in store.keys() {
        for b in key.as_bytes() {
            h = (h ^ *b as u64).wrapping_mul(PRIME);
        }
        let v = store.latest_version(&key).unwrap_or(0);
        for b in v.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_monotonic_per_key() {
        let store = Store::in_memory();
        assert_eq!(store.put("a", Bytes::from_static(b"1")).unwrap(), 1);
        assert_eq!(store.put("a", Bytes::from_static(b"2")).unwrap(), 2);
        assert_eq!(store.put("b", Bytes::from_static(b"x")).unwrap(), 1);
        assert_eq!(store.latest_version("a"), Some(2));
        assert_eq!(store.latest_version("missing"), None);
    }

    #[test]
    fn get_latest_and_pinned() {
        let store = Store::in_memory();
        store.put("k", Bytes::from_static(b"v1")).unwrap();
        store.put("k", Bytes::from_static(b"v2")).unwrap();
        assert_eq!(store.get_latest("k").unwrap().data.as_ref(), b"v2");
        assert_eq!(store.get_version("k", 1).unwrap().data.as_ref(), b"v1");
        assert!(matches!(store.get_version("k", 9), Err(StoreError::NotFound)));
        assert!(matches!(store.get_latest("nope"), Err(StoreError::NotFound)));
    }

    #[test]
    fn unavailability_fails_everything() {
        let store = Store::in_memory();
        store.put("k", Bytes::from_static(b"v")).unwrap();
        store.set_available(false);
        assert!(matches!(store.get_latest("k"), Err(StoreError::Unavailable)));
        assert!(matches!(store.put("k", Bytes::from_static(b"w")), Err(StoreError::Unavailable)));
        assert!(store.unavailable_count() >= 2);
        store.set_available(true);
        assert!(store.get_latest("k").is_ok());
    }

    #[test]
    fn clones_share_state() {
        let a = Store::in_memory();
        let b = a.clone();
        a.put("k", Bytes::from_static(b"v")).unwrap();
        assert_eq!(b.get_latest("k").unwrap().data.as_ref(), b"v");
    }

    #[test]
    fn concurrent_puts_get_distinct_versions() {
        let store = Store::in_memory();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = store.clone();
            handles.push(std::thread::spawn(move || {
                (0..100).map(|_| s.put("k", Bytes::from_static(b"v")).unwrap()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 800, "versions must be unique");
        assert_eq!(store.latest_version("k"), Some(800));
    }

    #[test]
    fn cas_put_enforces_expected_version() {
        let store = Store::in_memory();
        // 0 means "key absent": the first conditional write creates v1.
        assert_eq!(store.put_if_version("k", Bytes::from_static(b"v1"), 0).unwrap(), 1);
        // Stale expectation loses with the version that beat it.
        assert_eq!(
            store.put_if_version("k", Bytes::from_static(b"v2"), 0),
            Err(StoreError::Race(PublishRace { expected: 0, actual: 1 }))
        );
        assert_eq!(store.put_if_version("k", Bytes::from_static(b"v2"), 1).unwrap(), 2);
        assert_eq!(store.get_latest("k").unwrap().data.as_ref(), b"v2");
        // A losing CAS on a missing key must not invent the key.
        assert_eq!(
            store.put_if_version("ghost", Bytes::from_static(b"x"), 7),
            Err(StoreError::Race(PublishRace { expected: 7, actual: 0 }))
        );
        assert_eq!(store.latest_version("ghost"), None);
        assert!(!store.keys().contains(&"ghost".to_string()));
    }

    #[test]
    fn two_racing_writers_exactly_one_wins() {
        // Both writers read the same current version, then race the
        // conditional flip; for every round exactly one must win and the
        // loser must see the winner's version in its Race error.
        let store = Store::in_memory();
        for round in 0..50u64 {
            let expected = store.latest_version("manifest").unwrap_or(0);
            assert_eq!(expected, round);
            let barrier = Arc::new(std::sync::Barrier::new(2));
            let handles: Vec<_> = (0..2)
                .map(|writer| {
                    let s = store.clone();
                    let b = Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        b.wait();
                        s.put_if_version(
                            "manifest",
                            Bytes::from(format!("round {round} writer {writer}").into_bytes()),
                            expected,
                        )
                    })
                })
                .collect();
            let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            let wins = results.iter().filter(|r| r.is_ok()).count();
            assert_eq!(wins, 1, "round {round}: exactly one writer must win: {results:?}");
            let loser = results.iter().find(|r| r.is_err()).unwrap();
            assert_eq!(
                *loser,
                Err(StoreError::Race(PublishRace { expected, actual: expected + 1 })),
                "the loser must see the winner's version"
            );
        }
        assert_eq!(store.latest_version("manifest"), Some(50));
    }

    #[test]
    fn latency_model_slows_accesses() {
        let store = Store::with_latency(Some(LatencyModel::from_quantiles(300.0, 600.0)));
        store.put("k", Bytes::from_static(b"v")).unwrap();
        let start = std::time::Instant::now();
        for _ in 0..20 {
            store.get_latest("k").unwrap();
        }
        let elapsed = start.elapsed();
        // 21 accesses at >=~0.3 ms median should take >= ~3 ms total.
        assert!(elapsed.as_micros() > 3_000, "elapsed = {elapsed:?}");
    }

    #[test]
    fn keys_are_sorted() {
        let store = Store::in_memory();
        store.put("b", Bytes::new()).unwrap();
        store.put("a", Bytes::new()).unwrap();
        assert_eq!(store.keys(), vec!["a".to_string(), "b".to_string()]);
    }
}
