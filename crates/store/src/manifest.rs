//! Versioned publish manifests: the atomic-flip pointer behind the
//! pipeline's two-phase publish.
//!
//! §4.2's store publishes "with version numbers", and a production
//! prediction-serving system must never let a reader observe half a
//! publication. The protocol here: write every model and feature payload
//! under a fresh `v{N}/` key prefix (phase one — invisible to readers),
//! then flip a single checksummed [`Manifest`] record at
//! [`MANIFEST_KEY`] (phase two — one `put`, atomic by the store's
//! per-key versioning). The manifest lists every payload key with its
//! FNV-1a checksum and each model's validation accuracy, and records
//! `last_good` — the version that was serving before the flip — so a bad
//! publication can be [`rollback`]-ed without retraining.
//!
//! A failure during phase one leaves unreachable `v{N}/` garbage and an
//! untouched manifest: readers keep seeing the old complete version. A
//! reader that decodes the manifest and then fetches its keys sees either
//! the old complete set or the new complete set, never a mix.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::kv::{StoreBackend, StoreError};

/// The single store key the manifest pointer lives at.
pub const MANIFEST_KEY: &str = "manifest/current";

/// FNV-1a over a payload — the checksum recorded per manifest entry.
pub fn checksum(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in bytes {
        h = (h ^ *b as u64).wrapping_mul(PRIME);
    }
    h
}

/// One published model payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelEntry {
    /// Logical key, e.g. `model/VM_AVGUTIL` (version prefix excluded).
    pub key: String,
    /// FNV-1a checksum of the payload bytes.
    pub checksum: u64,
    /// Test-set accuracy the model validated at — the baseline the next
    /// publish's regression gate compares against.
    pub accuracy: f64,
}

/// One published feature-data payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureEntry {
    /// Logical key, e.g. `features/42` (version prefix excluded).
    pub key: String,
    /// FNV-1a checksum of the payload bytes.
    pub checksum: u64,
}

/// The checksummed pointer record a publish flips.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// The publication version this manifest points at; payloads live
    /// under [`Manifest::version_prefix`]`(version)`.
    pub version: u64,
    /// The previous fully-validated version (`0` = none): the target of
    /// [`rollback`].
    pub last_good: u64,
    /// Human-readable provenance (trace seed, train split).
    pub version_tag: String,
    /// Every model payload of this version.
    pub models: Vec<ModelEntry>,
    /// Every feature-data payload of this version.
    pub features: Vec<FeatureEntry>,
    /// Self-checksum over every field above; a manifest whose stored
    /// checksum disagrees is corrupt and must not be followed.
    pub checksum: u64,
}

impl Manifest {
    /// Builds a sealed manifest (checksum filled in).
    pub fn new(
        version: u64,
        last_good: u64,
        version_tag: String,
        models: Vec<ModelEntry>,
        features: Vec<FeatureEntry>,
    ) -> Self {
        let mut manifest =
            Manifest { version, last_good, version_tag, models, features, checksum: 0 };
        manifest.checksum = manifest.digest();
        manifest
    }

    /// The key prefix payloads of `version` live under.
    pub fn version_prefix(version: u64) -> String {
        format!("v{version}/")
    }

    /// Resolves a logical key (`model/...`, `features/...`) to the store
    /// key of this manifest's version.
    pub fn versioned_key(&self, logical: &str) -> String {
        format!("v{}/{logical}", self.version)
    }

    /// The recorded model entry for a logical key.
    pub fn model_entry(&self, logical: &str) -> Option<&ModelEntry> {
        self.models.iter().find(|e| e.key == logical)
    }

    /// The recorded feature entry for a logical key.
    pub fn feature_entry(&self, logical: &str) -> Option<&FeatureEntry> {
        self.features.iter().find(|e| e.key == logical)
    }

    fn digest(&self) -> u64 {
        // Canonical byte stream over every field except the checksum
        // itself; floats hash by bit pattern so the digest is exact.
        let mut bytes = Vec::with_capacity(64 + 32 * (self.models.len() + self.features.len()));
        bytes.extend_from_slice(&self.version.to_le_bytes());
        bytes.extend_from_slice(&self.last_good.to_le_bytes());
        bytes.extend_from_slice(self.version_tag.as_bytes());
        for e in &self.models {
            bytes.push(0x1f);
            bytes.extend_from_slice(e.key.as_bytes());
            bytes.extend_from_slice(&e.checksum.to_le_bytes());
            bytes.extend_from_slice(&e.accuracy.to_bits().to_le_bytes());
        }
        for e in &self.features {
            bytes.push(0x1e);
            bytes.extend_from_slice(e.key.as_bytes());
            bytes.extend_from_slice(&e.checksum.to_le_bytes());
        }
        checksum(&bytes)
    }

    /// Whether the stored checksum matches the fields.
    pub fn verify(&self) -> bool {
        self.checksum == self.digest()
    }

    /// Whether this manifest records a version to roll back to. The
    /// first publication stores `last_good == 0` (there was nothing
    /// serving before it), so [`rollback`] on it fails with
    /// [`RollbackError::NoLastGood`] instead of chasing the sentinel;
    /// callers that want to avoid the error path entirely check here
    /// first.
    pub fn can_rollback(&self) -> bool {
        self.last_good != 0
    }

    /// Serializes for a store `put`.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails, which requires non-finite floats;
    /// validated accuracies are always finite.
    pub fn to_bytes(&self) -> Bytes {
        Bytes::from(serde_json::to_vec(self).expect("manifest serialization"))
    }

    /// Decodes and checksum-verifies manifest bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<Manifest> {
        let manifest: Manifest = serde_json::from_slice(bytes).ok()?;
        manifest.verify().then_some(manifest)
    }

    /// Reads the currently published manifest.
    ///
    /// `Ok(None)` when no manifest has ever been published *or* the
    /// stored record is corrupt (a reader must not follow it either way).
    ///
    /// # Errors
    ///
    /// Propagates retryable store errors so callers can distinguish "no
    /// manifest" from "store down".
    pub fn read_current<B: StoreBackend + ?Sized>(
        store: &B,
    ) -> Result<Option<Manifest>, StoreError> {
        match store.get_latest(MANIFEST_KEY) {
            Ok(rec) => Ok(Manifest::from_bytes(&rec.data)),
            Err(StoreError::NotFound) => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Why a [`rollback`] could not happen.
#[derive(Debug, PartialEq, Eq)]
pub enum RollbackError {
    /// No manifest has ever been published.
    NoManifest,
    /// The current manifest records no `last_good` to roll back to.
    NoLastGood,
    /// No retained manifest version points at `last_good` (history
    /// truncated or corrupt).
    HistoryMissing,
    /// The store failed mid-rollback.
    Store(StoreError),
}

impl std::fmt::Display for RollbackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RollbackError::NoManifest => write!(f, "no manifest published"),
            RollbackError::NoLastGood => write!(f, "current manifest has no last_good"),
            RollbackError::HistoryMissing => write!(f, "no retained manifest for last_good"),
            RollbackError::Store(e) => write!(f, "store failed during rollback: {e}"),
        }
    }
}

impl std::error::Error for RollbackError {}

/// Restores `last_good` as the serving version: finds the retained
/// manifest that published it (every flip is one more store version of
/// [`MANIFEST_KEY`], so history is right there) and re-puts it as the
/// newest manifest. Payloads are never touched — `v{last_good}/` keys
/// are still in the store.
///
/// Returns the version now serving. Clients notice the flip through
/// their store fingerprint and reload.
///
/// # Errors
///
/// See [`RollbackError`].
pub fn rollback<B: StoreBackend + ?Sized>(store: &B) -> Result<u64, RollbackError> {
    let current = match Manifest::read_current(store) {
        Ok(Some(m)) => m,
        Ok(None) => return Err(RollbackError::NoManifest),
        Err(e) => return Err(RollbackError::Store(e)),
    };
    if current.last_good == 0 {
        return Err(RollbackError::NoLastGood);
    }
    let newest = store.latest_version(MANIFEST_KEY).unwrap_or(0);
    // Walk the manifest key's own version history, newest first, for the
    // manifest that published `last_good`.
    for store_version in (1..=newest).rev() {
        let rec = match store.get_version(MANIFEST_KEY, store_version) {
            Ok(rec) => rec,
            Err(StoreError::NotFound) => continue,
            Err(e) => return Err(RollbackError::Store(e)),
        };
        if let Some(m) = Manifest::from_bytes(&rec.data) {
            if m.version == current.last_good {
                // Conditional on the pointer version read above: a writer
                // that flips the manifest mid-walk wins, and the rollback
                // surfaces the race instead of clobbering the new publish.
                store
                    .put_if_version(MANIFEST_KEY, rec.data, newest)
                    .map_err(RollbackError::Store)?;
                rc_obs::global().counter(rc_obs::PIPELINE_ROLLBACKS).increment();
                let mut span = rc_obs::global_tracer().span("store.rollback");
                span.record("from", current.version).record("to", m.version);
                span.finish();
                return Ok(m.version);
            }
        }
    }
    Err(RollbackError::HistoryMissing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::Store;

    fn manifest(version: u64, last_good: u64) -> Manifest {
        Manifest::new(
            version,
            last_good,
            format!("test-v{version}"),
            vec![ModelEntry { key: "model/A".into(), checksum: 11, accuracy: 0.9 }],
            vec![FeatureEntry { key: "features/1".into(), checksum: 22 }],
        )
    }

    #[test]
    fn seal_verify_round_trip() {
        let m = manifest(3, 2);
        assert!(m.verify());
        let decoded = Manifest::from_bytes(&m.to_bytes()).expect("round trip");
        assert_eq!(decoded, m);
    }

    #[test]
    fn tampered_manifest_fails_verification() {
        let mut m = manifest(3, 2);
        m.models[0].accuracy = 0.5;
        assert!(!m.verify());
        assert!(Manifest::from_bytes(&m.to_bytes()).is_none());
        let garbage = b"not a manifest";
        assert!(Manifest::from_bytes(garbage).is_none());
    }

    #[test]
    fn versioned_keys_carry_the_prefix() {
        let m = manifest(7, 0);
        assert_eq!(m.versioned_key("model/A"), "v7/model/A");
        assert_eq!(Manifest::version_prefix(7), "v7/");
        assert!(m.model_entry("model/A").is_some());
        assert!(m.model_entry("model/B").is_none());
        assert!(m.feature_entry("features/1").is_some());
    }

    #[test]
    fn read_current_distinguishes_missing_corrupt_and_down() {
        let store = Store::in_memory();
        assert_eq!(Manifest::read_current(&store).unwrap(), None);
        store.put(MANIFEST_KEY, Bytes::from_static(b"garbage")).unwrap();
        assert_eq!(Manifest::read_current(&store).unwrap(), None, "corrupt manifest is unusable");
        store.put(MANIFEST_KEY, manifest(1, 0).to_bytes()).unwrap();
        assert_eq!(Manifest::read_current(&store).unwrap().unwrap().version, 1);
        store.set_available(false);
        assert_eq!(Manifest::read_current(&store), Err(StoreError::Unavailable));
    }

    #[test]
    fn rollback_restores_last_good() {
        let store = Store::in_memory();
        store.put(MANIFEST_KEY, manifest(1, 0).to_bytes()).unwrap();
        store.put(MANIFEST_KEY, manifest(2, 1).to_bytes()).unwrap();
        let restored = rollback(&store).expect("rollback");
        assert_eq!(restored, 1);
        let current = Manifest::read_current(&store).unwrap().unwrap();
        assert_eq!(current.version, 1);
        // Rolling back again: version 1 has no last_good.
        assert_eq!(rollback(&store), Err(RollbackError::NoLastGood));
    }

    #[test]
    fn rollback_without_history_fails_cleanly() {
        let store = Store::in_memory();
        assert_eq!(rollback(&store), Err(RollbackError::NoManifest));
        // A manifest claiming a last_good that was never stored.
        store.put(MANIFEST_KEY, manifest(5, 4).to_bytes()).unwrap();
        assert_eq!(rollback(&store), Err(RollbackError::HistoryMissing));
    }
}
