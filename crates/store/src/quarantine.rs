//! Version quarantine: the control loop's memory of bad publications.
//!
//! When live accuracy regresses after a manifest flip, the lifecycle
//! controller rolls back to `last_good` and must never promote the bad
//! publication again — not by version number (versions only count up)
//! and not by *content*: a deterministic retrain over the same window
//! reproduces the same model bytes, and without a content check the loop
//! would re-promote the exact model it just rolled back from, forever.
//!
//! [`QuarantineSet`] records both: the quarantined manifest versions and
//! a content digest over each version's model payload checksums. It
//! persists in the store itself (key [`QUARANTINE_KEY`], versioned like
//! everything else) so a restarted controller inherits the quarantine,
//! and it is checksummed like the manifest so a corrupt record is
//! ignored rather than followed.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::kv::{StoreBackend, StoreError};
use crate::manifest::{checksum, Manifest};

/// The store key the quarantine record lives at.
pub const QUARANTINE_KEY: &str = "quarantine/current";

/// Content digest of a publication: FNV-1a over the model entries'
/// `(key, checksum)` pairs, sorted by key. Two publications with
/// byte-identical model payloads share a digest even though their
/// manifest versions differ — which is exactly what re-promotion
/// detection needs. Sorting makes the digest a function of the *set*:
/// a candidate assembled from trainer output and a manifest read back
/// from the store list the same models in different orders, and an
/// order-sensitive digest would let quarantined bytes re-promote.
/// Feature data is excluded: the models are what regressed, and
/// feature records legitimately change every window.
pub fn models_digest(entries: impl IntoIterator<Item = (String, u64)>) -> u64 {
    let mut sorted: Vec<(String, u64)> = entries.into_iter().collect();
    sorted.sort();
    let mut bytes = Vec::with_capacity(64);
    for (key, sum) in sorted {
        bytes.push(0x1d);
        bytes.extend_from_slice(key.as_bytes());
        bytes.extend_from_slice(&sum.to_le_bytes());
    }
    checksum(&bytes)
}

/// The digest of a published manifest's model set.
pub fn manifest_models_digest(manifest: &Manifest) -> u64 {
    models_digest(manifest.models.iter().map(|e| (e.key.clone(), e.checksum)))
}

/// The persisted set of quarantined publications.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineSet {
    /// Quarantined manifest versions, in insertion order. A version
    /// number can appear more than once: manifests renumber from
    /// `last_good + 1` after a rollback, so one number can name
    /// different content over time.
    versions: Vec<u64>,
    /// Content digests of the quarantined model sets, parallel to
    /// `versions`.
    digests: Vec<u64>,
    /// Self-checksum over the two vectors.
    checksum: u64,
}

impl QuarantineSet {
    fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(16 * self.versions.len());
        for (v, d) in self.versions.iter().zip(&self.digests) {
            bytes.extend_from_slice(&v.to_le_bytes());
            bytes.extend_from_slice(&d.to_le_bytes());
        }
        checksum(&bytes)
    }

    /// Reads the current quarantine from the store. A missing or corrupt
    /// record is an empty quarantine; store outages propagate so callers
    /// can distinguish "nothing quarantined" from "store down".
    pub fn load<B: StoreBackend + ?Sized>(store: &B) -> Result<QuarantineSet, StoreError> {
        match store.get_latest(QUARANTINE_KEY) {
            Ok(rec) => Ok(serde_json::from_slice::<QuarantineSet>(&rec.data)
                .ok()
                .filter(|q| q.checksum == q.digest() && q.versions.len() == q.digests.len())
                .unwrap_or_default()),
            Err(StoreError::NotFound) => Ok(QuarantineSet::default()),
            Err(e) => Err(e),
        }
    }

    /// Persists the quarantine as the newest version of
    /// [`QUARANTINE_KEY`].
    ///
    /// # Errors
    ///
    /// Propagates store failures; the in-memory set is unchanged either
    /// way, so the caller can retry the save on a later tick.
    pub fn save<B: StoreBackend + ?Sized>(&self, store: &B) -> Result<u64, StoreError> {
        let bytes = serde_json::to_vec(self).expect("quarantine serialization");
        store.put(QUARANTINE_KEY, Bytes::from(bytes))
    }

    /// Quarantines a publication by version and model-set digest.
    /// Idempotent on the *pair*: re-quarantining an already-listed
    /// publication is a no-op, but a recurring version number with new
    /// content gets its own entry — manifest versions restart from
    /// `last_good + 1` after a rollback, so the same number can name
    /// different bytes across the loop's lifetime, and deduplicating by
    /// version alone would silently drop the newer digest.
    pub fn insert(&mut self, version: u64, models_digest: u64) {
        let listed = self
            .versions
            .iter()
            .zip(&self.digests)
            .any(|(&v, &d)| v == version && d == models_digest);
        if listed {
            return;
        }
        self.versions.push(version);
        self.digests.push(models_digest);
        self.checksum = self.digest();
    }

    /// Whether a manifest version is quarantined.
    pub fn contains_version(&self, version: u64) -> bool {
        self.versions.contains(&version)
    }

    /// Whether a candidate model set's content digest matches any
    /// quarantined publication — the re-promotion check.
    pub fn contains_digest(&self, digest: u64) -> bool {
        self.digests.contains(&digest)
    }

    /// Number of quarantined publications.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// True when nothing is quarantined.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// The quarantined versions, in insertion order.
    pub fn versions(&self) -> &[u64] {
        &self.versions
    }

    /// The quarantined content digests, parallel to
    /// [`QuarantineSet::versions`].
    pub fn digests(&self) -> &[u64] {
        &self.digests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::Store;
    use crate::manifest::{FeatureEntry, ModelEntry};

    #[test]
    fn round_trips_through_the_store() {
        let store = Store::in_memory();
        assert!(QuarantineSet::load(&store).unwrap().is_empty(), "missing record = empty");
        let mut q = QuarantineSet::default();
        q.insert(3, 0xabcd);
        q.insert(5, 0x1234);
        q.insert(3, 0xabcd); // idempotent: exact pair already listed
        q.insert(3, 0xffff); // reused version number, new content: listed
        q.save(&store).unwrap();
        let loaded = QuarantineSet::load(&store).unwrap();
        assert_eq!(loaded, q);
        assert_eq!(loaded.len(), 3);
        assert!(loaded.contains_version(3) && loaded.contains_version(5));
        assert!(loaded.contains_digest(0xabcd) && loaded.contains_digest(0x1234));
        assert!(
            loaded.contains_digest(0xffff),
            "a recycled version number must not shadow new bad content"
        );
        assert_eq!(loaded.versions(), &[3, 5, 3]);
    }

    #[test]
    fn corrupt_record_reads_as_empty_but_outage_propagates() {
        let store = Store::in_memory();
        store.put(QUARANTINE_KEY, Bytes::from_static(b"garbage")).unwrap();
        assert!(QuarantineSet::load(&store).unwrap().is_empty());
        // A tampered checksum is also unusable.
        let mut q = QuarantineSet::default();
        q.insert(9, 42);
        q.checksum ^= 1;
        store.put(QUARANTINE_KEY, Bytes::from(serde_json::to_vec(&q).unwrap())).unwrap();
        assert!(QuarantineSet::load(&store).unwrap().is_empty());
        store.set_available(false);
        assert_eq!(QuarantineSet::load(&store), Err(StoreError::Unavailable));
    }

    #[test]
    fn digest_tracks_model_content_not_version() {
        let entries = vec![
            ModelEntry { key: "model/A".into(), checksum: 11, accuracy: 0.9 },
            ModelEntry { key: "model/B".into(), checksum: 22, accuracy: 0.8 },
        ];
        let m1 = Manifest::new(1, 0, "t1".into(), entries.clone(), vec![]);
        let m2 = Manifest::new(
            7,
            3,
            "t7".into(),
            entries.clone(),
            vec![FeatureEntry { key: "features/1".into(), checksum: 5 }],
        );
        assert_eq!(
            manifest_models_digest(&m1),
            manifest_models_digest(&m2),
            "same model bytes, same digest, regardless of version/features"
        );
        let mut changed = entries;
        changed[1].checksum = 23;
        let m3 = Manifest::new(1, 0, "t1".into(), changed, vec![]);
        assert_ne!(manifest_models_digest(&m1), manifest_models_digest(&m3));
    }
}
