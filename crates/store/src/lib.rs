//! A simulated highly-available versioned store.
//!
//! §4.2 of the paper: "RC orchestrates these phases, sanity-checks the
//! models and feature data, and publishes them (with version numbers) to
//! an existing highly available store." This crate substitutes that store
//! with an in-process, thread-safe, versioned key-value map — plus two
//! knobs the evaluation needs:
//!
//! - a [`LatencyModel`] calibrated to the paper's reported store latencies
//!   (median 2.9 ms, p99 5.6 ms for ~850-byte feature records), and
//! - an availability switch for exercising the client library's degraded
//!   paths (local disk cache, no-prediction replies).

//!
//! For robustness experiments, [`FaultyStore`] wraps a [`Store`] with a
//! seeded, deterministic [`FaultPlan`] (per-op unavailability, transient
//! error bursts, latency spikes, payload corruption).

pub mod fault;
pub mod kv;
pub mod latency;
pub mod manifest;
pub mod quarantine;

pub use fault::{corrupt_payload, FaultDecision, FaultInjector, FaultPlan, FaultyStore};
pub use kv::{fingerprint, PublishRace, Store, StoreBackend, StoreError, VersionedRecord};
pub use latency::LatencyModel;
pub use manifest::{
    checksum, rollback, FeatureEntry, Manifest, ModelEntry, RollbackError, MANIFEST_KEY,
};
pub use quarantine::{manifest_models_digest, models_digest, QuarantineSet, QUARANTINE_KEY};
