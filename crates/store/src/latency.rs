//! Latency model for the remote store.
//!
//! §6.1 reports that the store RC uses has median / 99th-percentile GET
//! latencies of 2.9 ms / 5.6 ms for an ~850-byte record (the per-
//! subscription feature-data size). We model access latency as log-normal
//! — the usual fit for storage-service latencies — with the two reported
//! quantiles pinning its parameters.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// z-score of the 99th percentile of a standard normal.
const Z99: f64 = 2.326_347_874_040_841;

/// A log-normal latency model parameterized by two quantiles.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LatencyModel {
    /// ln of the median latency in microseconds.
    mu: f64,
    /// Log-space standard deviation.
    sigma: f64,
}

impl LatencyModel {
    /// Builds a model with the given median and p99, in microseconds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < median_us <= p99_us`.
    pub fn from_quantiles(median_us: f64, p99_us: f64) -> Self {
        assert!(median_us > 0.0 && p99_us >= median_us, "quantiles must be ordered");
        LatencyModel { mu: median_us.ln(), sigma: (p99_us / median_us).ln() / Z99 }
    }

    /// The paper's store: median 2.9 ms, p99 5.6 ms.
    pub fn paper_store() -> Self {
        Self::from_quantiles(2_900.0, 5_600.0)
    }

    /// Median latency in microseconds.
    pub fn median_us(&self) -> f64 {
        self.mu.exp()
    }

    /// 99th-percentile latency in microseconds.
    pub fn p99_us(&self) -> f64 {
        (self.mu + Z99 * self.sigma).exp()
    }

    /// Samples one latency in microseconds.
    pub fn sample_us<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let z: f64 = {
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        (self.mu + self.sigma * z).exp()
    }

    /// Samples one latency as a [`std::time::Duration`].
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> std::time::Duration {
        std::time::Duration::from_nanos((self.sample_us(rng) * 1_000.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quantiles_round_trip() {
        let m = LatencyModel::from_quantiles(2_900.0, 5_600.0);
        assert!((m.median_us() - 2_900.0).abs() < 1e-6);
        assert!((m.p99_us() - 5_600.0).abs() < 1e-6);
    }

    #[test]
    fn empirical_quantiles_match() {
        let m = LatencyModel::paper_store();
        let mut rng = StdRng::seed_from_u64(3);
        let mut samples: Vec<f64> = (0..100_000).map(|_| m.sample_us(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let p99 = samples[(samples.len() as f64 * 0.99) as usize];
        assert!((median - 2_900.0).abs() / 2_900.0 < 0.02, "median = {median}");
        assert!((p99 - 5_600.0).abs() / 5_600.0 < 0.05, "p99 = {p99}");
    }

    #[test]
    fn samples_are_positive() {
        let m = LatencyModel::from_quantiles(10.0, 100.0);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(m.sample_us(&mut rng) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "quantiles must be ordered")]
    fn rejects_inverted_quantiles() {
        LatencyModel::from_quantiles(100.0, 10.0);
    }
}
