//! Deterministic chaos injection for the control loop.
//!
//! Two pieces: a [`ChaosPlan`] describing *when* each fault fires on the
//! simulated clock, and a [`ChaosStore`] — a [`StoreBackend`] wrapper
//! whose write path can be armed to fail partway through a multi-put
//! publication, which is exactly the window the two-phase protocol must
//! survive (phase-one payloads may land; the manifest pointer must not
//! move).

use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use rc_store::{Store, StoreBackend, StoreError, VersionedRecord};
use rc_types::metrics::PredictionMetric;

/// When each chaos fault fires, keyed by loop tick. Empty plan = no
/// chaos. All schedules are data, so a soak is reproducible: the same
/// plan against the same seed produces the same journal.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    /// `(tick, rate)`: the window ingested at `tick` streams through the
    /// dirty-telemetry injector at `rate` (see
    /// [`rc_trace::DirtyPlan::uniform`]). A rate near 1.0 starves the
    /// trainer and must cost exactly one degraded tick.
    pub dirty_at: Vec<(u32, f64)>,
    /// `(tick, metrics)`: training panics injected into the pipeline for
    /// those metrics at `tick`; the pipeline's per-metric isolation
    /// quarantines them while the others train on.
    pub fail_train_at: Vec<(u32, Vec<PredictionMetric>)>,
    /// `(tick, n)`: at `tick`, the store starts refusing writes after `n`
    /// more successful puts — armed before the publish attempt, healed at
    /// tick end, so an outage strikes mid-flip.
    pub outage_after_puts: Vec<(u32, u64)>,
    /// Ticks whose retrain sees a garbled copy of the window (utilization
    /// inverted): the candidate trains "successfully" but is wrong about
    /// the real workload, and only the shadow comparison can catch it.
    pub degrade_candidate_at: Vec<u32>,
}

impl ChaosPlan {
    /// Dirty rate scheduled for `tick`, if any.
    pub fn dirty_rate(&self, tick: u32) -> Option<f64> {
        self.dirty_at.iter().find(|(t, _)| *t == tick).map(|(_, r)| *r)
    }

    /// Training faults scheduled for `tick`.
    pub fn train_faults(&self, tick: u32) -> Vec<PredictionMetric> {
        self.fail_train_at
            .iter()
            .find(|(t, _)| *t == tick)
            .map(|(_, m)| m.clone())
            .unwrap_or_default()
    }

    /// Put budget before the store outage scheduled for `tick`, if any.
    pub fn outage_budget(&self, tick: u32) -> Option<u64> {
        self.outage_after_puts.iter().find(|(t, _)| *t == tick).map(|(_, n)| *n)
    }

    /// Whether the candidate trained at `tick` is sabotaged.
    pub fn degrades_candidate(&self, tick: u32) -> bool {
        self.degrade_candidate_at.contains(&tick)
    }
}

const NO_FAULT: u64 = u64::MAX;

/// A [`StoreBackend`] wrapper with an armable write-path fault: after the
/// configured number of further successful puts, every put fails with
/// [`StoreError::Unavailable`] until [`ChaosStore::heal`]. Reads always
/// pass through — the outage models losing write quorum, the failure
/// mode a mid-publish crash exposes.
pub struct ChaosStore {
    inner: Store,
    /// Remaining successful puts before writes fail; [`NO_FAULT`] means
    /// the fault is disarmed.
    puts_until_fail: AtomicU64,
}

impl ChaosStore {
    /// Wraps a store with the fault disarmed.
    pub fn new(inner: Store) -> Self {
        ChaosStore { inner, puts_until_fail: AtomicU64::new(NO_FAULT) }
    }

    /// Arms the write fault: the next `budget` puts succeed, everything
    /// after fails until [`ChaosStore::heal`].
    pub fn arm_put_outage(&self, budget: u64) {
        self.puts_until_fail.store(budget, Ordering::SeqCst);
    }

    /// Disarms the write fault.
    pub fn heal(&self) {
        self.puts_until_fail.store(NO_FAULT, Ordering::SeqCst);
    }

    /// The wrapped store, for direct inspection in tests.
    pub fn inner(&self) -> &Store {
        &self.inner
    }
}

impl StoreBackend for ChaosStore {
    fn is_available(&self) -> bool {
        self.inner.is_available()
    }

    fn keys(&self) -> Vec<String> {
        self.inner.keys()
    }

    fn get_latest(&self, key: &str) -> Result<VersionedRecord, StoreError> {
        self.inner.get_latest(key)
    }

    fn get_version(&self, key: &str, version: u64) -> Result<VersionedRecord, StoreError> {
        self.inner.get_version(key, version)
    }

    fn latest_version(&self, key: &str) -> Option<u64> {
        self.inner.latest_version(key)
    }

    fn put(&self, key: &str, data: Bytes) -> Result<u64, StoreError> {
        let mut remaining = self.puts_until_fail.load(Ordering::SeqCst);
        loop {
            if remaining == NO_FAULT {
                return self.inner.put(key, data);
            }
            if remaining == 0 {
                return Err(StoreError::Unavailable);
            }
            match self.puts_until_fail.compare_exchange(
                remaining,
                remaining - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return self.inner.put(key, data),
                Err(actual) => remaining = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outage_fires_after_budget_and_heals() {
        let store = ChaosStore::new(Store::in_memory());
        store.arm_put_outage(2);
        assert!(store.put("a", Bytes::from(vec![1])).is_ok());
        assert!(store.put("b", Bytes::from(vec![2])).is_ok());
        assert_eq!(store.put("c", Bytes::from(vec![3])).unwrap_err(), StoreError::Unavailable);
        assert_eq!(store.put("d", Bytes::from(vec![4])).unwrap_err(), StoreError::Unavailable);
        // Reads keep working through the outage.
        assert!(store.get_latest("a").is_ok());
        store.heal();
        assert!(store.put("c", Bytes::from(vec![3])).is_ok());
        assert_eq!(store.keys(), vec!["a".to_string(), "b".to_string(), "c".to_string()]);
    }
}
