//! Deterministic chaos injection for the control loop.
//!
//! Two pieces: a [`ChaosPlan`] describing *when* each fault fires on the
//! simulated clock, and a [`ChaosStore`] — a [`StoreBackend`] wrapper
//! with armable faults on its read and write paths:
//!
//! - a **put outage** failing every write after a budget of successes —
//!   exactly the window the two-phase publish protocol must survive
//!   (phase-one payloads may land; the manifest pointer must not move);
//! - a **correlated brownout** taking out one key *shard* — every key
//!   hashing to the browned-out shard fails reads and writes together,
//!   the way a lost partition fails, rather than as independent
//!   per-operation coin flips;
//! - a **manual-publish race**: the next manifest flip is preceded by
//!   an interposed re-publish of the current manifest bytes, modelling
//!   an operator's `publish --force` landing between the controller's
//!   read of the pointer and its compare-and-swap.
//!
//! Every fault is armed/disarmed explicitly, so a soak is reproducible:
//! the same plan against the same seed produces the same journal.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use bytes::Bytes;
use rc_store::{Store, StoreBackend, StoreError, VersionedRecord, MANIFEST_KEY};
use rc_trace::TelemetryDegrade;
use rc_types::metrics::PredictionMetric;

/// When each chaos fault fires, keyed by loop tick. Empty plan = no
/// chaos. All schedules are data, so a soak is reproducible: the same
/// plan against the same seed produces the same journal.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    /// `(tick, rate)`: the window ingested at `tick` streams through the
    /// dirty-telemetry injector at `rate` (see
    /// [`rc_trace::DirtyPlan::uniform`]). A rate near 1.0 starves the
    /// trainer and must cost exactly one degraded tick.
    pub dirty_at: Vec<(u32, f64)>,
    /// `(tick, metrics)`: training panics injected into the pipeline for
    /// those metrics at `tick`; the pipeline's per-metric isolation
    /// quarantines them while the others train on.
    pub fail_train_at: Vec<(u32, Vec<PredictionMetric>)>,
    /// `(tick, n)`: at `tick`, the store starts refusing writes after `n`
    /// more successful puts — armed before the publish attempt, healed at
    /// tick end, so an outage strikes mid-flip.
    pub outage_after_puts: Vec<(u32, u64)>,
    /// Ticks whose retrain sees a garbled copy of the window (utilization
    /// inverted): the candidate trains "successfully" but is wrong about
    /// the real workload, and only the shadow comparison can catch it.
    pub degrade_candidate_at: Vec<u32>,
    /// `(tick, shard)`: a correlated store brownout at `tick` — every
    /// key hashing into `shard` (of [`BROWNOUT_SHARDS`]) fails reads
    /// *and* writes together until tick-end heal, the way a lost
    /// partition fails rather than as independent per-op faults.
    pub brownout_at: Vec<(u32, u32)>,
    /// `(from_tick, until_tick)` slow-degradation episodes: telemetry
    /// ingested in `[from_tick, until_tick)` is corrupted by
    /// [`ChaosPlan::telemetry_degrade`] at a severity ramping linearly
    /// up to 1.0 at `until_tick - 1`, then restored (the collector gets
    /// fixed) — every reading stays individually valid while the
    /// distribution walks away from the training baseline and back.
    pub degrade_telemetry: Vec<(u32, u32)>,
    /// Ticks whose ingest window arrives clock-skewed: VM timestamps
    /// shifted forward (ordering preserved) as if the collector's clock
    /// ran ahead between windows.
    pub clock_skew_at: Vec<u32>,
    /// Ticks at which a manual operator publish races the controller's
    /// manifest flip: the flip's compare-and-swap loses to an
    /// interposed re-publish and must surface a typed race, not
    /// last-writer-wins.
    pub manual_publish_at: Vec<u32>,
    /// The degradation model the `degrade_telemetry` and
    /// `clock_skew_at` schedules apply.
    pub telemetry_degrade: TelemetryDegrade,
}

/// Number of key shards a brownout partitions the store into.
pub const BROWNOUT_SHARDS: u32 = 8;

/// The brownout shard a key hashes into (FNV-1a, mod
/// [`BROWNOUT_SHARDS`]) — exposed so plans and tests can pick the shard
/// that covers a given key.
pub fn brownout_shard_of(key: &str) -> u32 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in key.bytes() {
        h = (h ^ b as u64).wrapping_mul(PRIME);
    }
    (h % BROWNOUT_SHARDS as u64) as u32
}

impl ChaosPlan {
    /// Dirty rate scheduled for `tick`, if any.
    pub fn dirty_rate(&self, tick: u32) -> Option<f64> {
        self.dirty_at.iter().find(|(t, _)| *t == tick).map(|(_, r)| *r)
    }

    /// Training faults scheduled for `tick`.
    pub fn train_faults(&self, tick: u32) -> Vec<PredictionMetric> {
        self.fail_train_at
            .iter()
            .find(|(t, _)| *t == tick)
            .map(|(_, m)| m.clone())
            .unwrap_or_default()
    }

    /// Put budget before the store outage scheduled for `tick`, if any.
    pub fn outage_budget(&self, tick: u32) -> Option<u64> {
        self.outage_after_puts.iter().find(|(t, _)| *t == tick).map(|(_, n)| *n)
    }

    /// Whether the candidate trained at `tick` is sabotaged.
    pub fn degrades_candidate(&self, tick: u32) -> bool {
        self.degrade_candidate_at.contains(&tick)
    }

    /// Brownout shard scheduled for `tick`, if any.
    pub fn brownout_shard(&self, tick: u32) -> Option<u32> {
        self.brownout_at.iter().find(|(t, _)| *t == tick).map(|(_, s)| *s)
    }

    /// Telemetry-degradation severity at `tick`: the maximum linear
    /// ramp across episodes covering `tick`, 0.0 outside every episode.
    /// An episode `(from, until)` ramps `1/(until-from), ..., 1.0` over
    /// its ticks and ends at `until` — active-window semantics, like
    /// every other schedule in the plan.
    pub fn degrade_severity(&self, tick: u32) -> f64 {
        self.degrade_telemetry
            .iter()
            .filter(|&&(from, until)| tick >= from && tick < until)
            .map(|&(from, until)| {
                rc_trace::ramp_severity((tick + 1) as u64, from as u64, until as u64)
            })
            .fold(0.0, f64::max)
    }

    /// Whether the window ingested at `tick` arrives clock-skewed.
    pub fn skews_clock(&self, tick: u32) -> bool {
        self.clock_skew_at.contains(&tick)
    }

    /// Whether a manual publish races the flip attempted at `tick`.
    pub fn manual_publish(&self, tick: u32) -> bool {
        self.manual_publish_at.contains(&tick)
    }
}

const NO_FAULT: u64 = u64::MAX;

/// A [`StoreBackend`] wrapper with an armable write-path fault: after the
/// configured number of further successful puts, every put fails with
/// [`StoreError::Unavailable`] until [`ChaosStore::heal`]. Reads always
/// pass through — the outage models losing write quorum, the failure
/// mode a mid-publish crash exposes.
pub struct ChaosStore {
    inner: Store,
    /// Remaining successful puts before writes fail; [`NO_FAULT`] means
    /// the fault is disarmed.
    puts_until_fail: AtomicU64,
    /// Browned-out key shard; [`NO_FAULT`] means no brownout.
    brownout_shard: AtomicU64,
    /// When set, the next manifest CAS is raced by an interposed
    /// re-publish of the current manifest bytes.
    manifest_race_armed: AtomicBool,
}

impl ChaosStore {
    /// Wraps a store with every fault disarmed.
    pub fn new(inner: Store) -> Self {
        ChaosStore {
            inner,
            puts_until_fail: AtomicU64::new(NO_FAULT),
            brownout_shard: AtomicU64::new(NO_FAULT),
            manifest_race_armed: AtomicBool::new(false),
        }
    }

    /// Arms the write fault: the next `budget` puts succeed, everything
    /// after fails until [`ChaosStore::heal`].
    pub fn arm_put_outage(&self, budget: u64) {
        self.puts_until_fail.store(budget, Ordering::SeqCst);
    }

    /// Arms a correlated brownout of one key shard: every key with
    /// `brownout_shard_of(key) == shard` fails reads and writes with
    /// [`StoreError::Unavailable`] until [`ChaosStore::heal`].
    pub fn arm_brownout(&self, shard: u32) {
        self.brownout_shard.store((shard % BROWNOUT_SHARDS) as u64, Ordering::SeqCst);
    }

    /// Arms the manual-publish race: the next `put_if_version` against
    /// the manifest pointer is preceded by an interposed plain `put` of
    /// the *current* manifest bytes (an operator re-publish), so the
    /// caller's compare-and-swap observes a moved pointer and fails
    /// with a typed race. One-shot: the arm clears once it fires.
    pub fn arm_manifest_race(&self) {
        self.manifest_race_armed.store(true, Ordering::SeqCst);
    }

    /// Disarms every fault.
    pub fn heal(&self) {
        self.puts_until_fail.store(NO_FAULT, Ordering::SeqCst);
        self.brownout_shard.store(NO_FAULT, Ordering::SeqCst);
        self.manifest_race_armed.store(false, Ordering::SeqCst);
    }

    /// Whether the active brownout (if any) covers `key`.
    pub fn browned_out(&self, key: &str) -> bool {
        let shard = self.brownout_shard.load(Ordering::SeqCst);
        shard != NO_FAULT && brownout_shard_of(key) as u64 == shard
    }

    /// The wrapped store, for direct inspection in tests.
    pub fn inner(&self) -> &Store {
        &self.inner
    }
}

impl ChaosStore {
    /// Consumes one unit of the put-outage budget, failing once it is
    /// exhausted. A disarmed fault always admits.
    fn admit_put(&self) -> Result<(), StoreError> {
        let mut remaining = self.puts_until_fail.load(Ordering::SeqCst);
        loop {
            if remaining == NO_FAULT {
                return Ok(());
            }
            if remaining == 0 {
                return Err(StoreError::Unavailable);
            }
            match self.puts_until_fail.compare_exchange(
                remaining,
                remaining - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Ok(()),
                Err(actual) => remaining = actual,
            }
        }
    }
}

impl StoreBackend for ChaosStore {
    fn is_available(&self) -> bool {
        self.inner.is_available()
    }

    fn keys(&self) -> Vec<String> {
        self.inner.keys()
    }

    fn get_latest(&self, key: &str) -> Result<VersionedRecord, StoreError> {
        if self.browned_out(key) {
            return Err(StoreError::Unavailable);
        }
        self.inner.get_latest(key)
    }

    fn get_version(&self, key: &str, version: u64) -> Result<VersionedRecord, StoreError> {
        if self.browned_out(key) {
            return Err(StoreError::Unavailable);
        }
        self.inner.get_version(key, version)
    }

    fn latest_version(&self, key: &str) -> Option<u64> {
        // `Option` has no error channel; a browned-out shard reads as
        // absent, exactly what a lost partition looks like.
        if self.browned_out(key) {
            return None;
        }
        self.inner.latest_version(key)
    }

    fn put(&self, key: &str, data: Bytes) -> Result<u64, StoreError> {
        if self.browned_out(key) {
            return Err(StoreError::Unavailable);
        }
        self.admit_put()?;
        self.inner.put(key, data)
    }

    fn put_if_version(
        &self,
        key: &str,
        data: Bytes,
        expected_current: u64,
    ) -> Result<u64, StoreError> {
        if self.browned_out(key) {
            return Err(StoreError::Unavailable);
        }
        self.admit_put()?;
        if key == MANIFEST_KEY
            && self
                .manifest_race_armed
                .compare_exchange(true, false, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            // The manual operator's re-publish lands first: same bytes,
            // new version — invisible to a last-writer-wins flip, fatal
            // to a compare-and-swap.
            if let Ok(current) = self.inner.get_latest(MANIFEST_KEY) {
                self.inner.put(MANIFEST_KEY, current.data)?;
            }
        }
        self.inner.put_if_version(key, data, expected_current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outage_fires_after_budget_and_heals() {
        let store = ChaosStore::new(Store::in_memory());
        store.arm_put_outage(2);
        assert!(store.put("a", Bytes::from(vec![1])).is_ok());
        assert!(store.put("b", Bytes::from(vec![2])).is_ok());
        assert_eq!(store.put("c", Bytes::from(vec![3])).unwrap_err(), StoreError::Unavailable);
        assert_eq!(store.put("d", Bytes::from(vec![4])).unwrap_err(), StoreError::Unavailable);
        // Reads keep working through the outage.
        assert!(store.get_latest("a").is_ok());
        store.heal();
        assert!(store.put("c", Bytes::from(vec![3])).is_ok());
        assert_eq!(store.keys(), vec!["a".to_string(), "b".to_string(), "c".to_string()]);
    }

    #[test]
    fn brownout_fails_reads_and_writes_for_one_shard_only() {
        let store = ChaosStore::new(Store::in_memory());
        // Find two keys in different shards.
        let covered = "models/lifetime";
        let shard = brownout_shard_of(covered);
        let other = (0..64)
            .map(|i| format!("models/other-{i}"))
            .find(|k| brownout_shard_of(k) != shard)
            .expect("some key lands in another shard");
        store.put(covered, Bytes::from(vec![1])).unwrap();
        store.put(&other, Bytes::from(vec![2])).unwrap();

        store.arm_brownout(shard);
        assert!(store.browned_out(covered));
        assert!(!store.browned_out(&other));
        // Covered shard: reads AND writes fail together.
        assert_eq!(store.get_latest(covered).unwrap_err(), StoreError::Unavailable);
        assert_eq!(store.put(covered, Bytes::from(vec![9])).unwrap_err(), StoreError::Unavailable);
        assert_eq!(store.latest_version(covered), None);
        assert_eq!(
            store.put_if_version(covered, Bytes::from(vec![9]), 1).unwrap_err(),
            StoreError::Unavailable
        );
        // Other shards are untouched.
        assert!(store.get_latest(&other).is_ok());
        assert!(store.put(&other, Bytes::from(vec![3])).is_ok());

        store.heal();
        assert_eq!(store.get_latest(covered).unwrap().data.as_ref(), &[1]);
        assert_eq!(store.latest_version(covered), Some(1));
    }

    #[test]
    fn manifest_race_defeats_cas_exactly_once() {
        let store = ChaosStore::new(Store::in_memory());
        store.put(MANIFEST_KEY, Bytes::from(vec![1])).unwrap();

        store.arm_manifest_race();
        // The armed race interposes a re-publish (same bytes, version 2),
        // so a CAS expecting version 1 loses with a typed race.
        let err = store.put_if_version(MANIFEST_KEY, Bytes::from(vec![2]), 1).unwrap_err();
        match err {
            StoreError::Race(race) => {
                assert_eq!(race.expected, 1);
                assert_eq!(race.actual, 2);
            }
            other => panic!("expected a race, got {other:?}"),
        }
        // One-shot: re-reading the pointer and retrying succeeds.
        let current = store.latest_version(MANIFEST_KEY).unwrap();
        assert_eq!(current, 2);
        assert!(store.put_if_version(MANIFEST_KEY, Bytes::from(vec![2]), current).is_ok());
        // The interposed copy kept the original bytes.
        assert_eq!(store.get_version(MANIFEST_KEY, 2).unwrap().data.as_ref(), &[1]);
    }

    #[test]
    fn put_if_version_respects_the_outage_budget() {
        let store = ChaosStore::new(Store::in_memory());
        store.put("k", Bytes::from(vec![1])).unwrap();
        store.arm_put_outage(1);
        assert!(store.put_if_version("k", Bytes::from(vec![2]), 1).is_ok());
        assert_eq!(
            store.put_if_version("k", Bytes::from(vec![3]), 2).unwrap_err(),
            StoreError::Unavailable
        );
    }

    #[test]
    fn degrade_severity_ramps_across_the_episode() {
        let plan = ChaosPlan { degrade_telemetry: vec![(10, 20)], ..ChaosPlan::default() };
        assert_eq!(plan.degrade_severity(9), 0.0);
        assert!((plan.degrade_severity(10) - 0.1).abs() < 1e-12);
        assert!((plan.degrade_severity(15) - 0.6).abs() < 1e-12);
        assert_eq!(plan.degrade_severity(19), 1.0);
        assert_eq!(plan.degrade_severity(20), 0.0, "the episode ends at until_tick");
        assert_eq!(plan.degrade_severity(25), 0.0);
        assert_eq!(ChaosPlan::default().degrade_severity(15), 0.0);
    }
}
