//! The lifecycle controller: one struct owning the whole
//! retrain/shadow/promote/watch/rollback state machine on a simulated
//! clock.
//!
//! Determinism is the design constraint everything else bends around:
//! the controller owns a private [`rc_obs::Registry`] and
//! [`AccuracyTracker`] (no process-global state in any decision), every
//! window trace is a pure function of `(seed, tick)`, metrics iterate in
//! [`PredictionMetric::ALL`] order, and training runs single-threaded.
//! Two soaks with the same [`LoopConfig`] produce bit-identical event
//! journals and summaries.

use std::collections::HashMap;

use bytes::Bytes;
use rc_core::{
    cleanup, label_deployments, label_vms, run_pipeline, ClientInputs, LabeledDeployment,
    LabeledVm, PipelineConfig, PublishGate, SubscriptionFeatures, TrainedModel,
};
use rc_ml::Classifier;
use rc_obs::{
    acc_gauge_name, counts_psi, AccuracyTracker, Counter, DriftConfig, DriftSignal,
    LeadingDriftConfig, LeadingDriftMonitor, Registry, WindowSketch,
};
use rc_store::{
    checksum, manifest_models_digest, models_digest, rollback, Manifest, QuarantineSet, Store,
    StoreBackend,
};
use rc_trace::{DirtyPlan, DirtyVmStream, Trace, TraceConfig, VmStream};
use rc_types::metrics::PredictionMetric;
use rc_types::vm::SubscriptionId;
use serde::Serialize;

use crate::chaos::{ChaosPlan, ChaosStore};

/// A deterministic workload-distribution shift: every window ingested in
/// `[from_tick, until_tick)` has its per-VM utilization parameters
/// rescaled, which moves both the live ground truth and what a retrain
/// on that window learns. A model trained before the shift mispredicts
/// after it — the drift episode the loop must detect and retrain out of.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadShift {
    /// First tick (inclusive) whose window sees the shift.
    pub from_tick: u32,
    /// First tick past the shift (`u32::MAX` = permanent).
    pub until_tick: u32,
    /// Multiplier on the mean-utilization parameter.
    pub base_mul: f64,
    /// Additive offset on the mean-utilization parameter.
    pub base_add: f64,
    /// Multiplier on the P95-of-max spike level.
    pub p95_mul: f64,
    /// Additive offset on the P95-of-max spike level.
    pub p95_add: f64,
    /// Ticks over which the shift ramps in linearly (0 = a step). A
    /// ramped shift moves the input distribution for several windows
    /// before predictions are wrong enough to trip the label-based
    /// monitor — the gap the leading indicator exists to exploit.
    pub ramp_ticks: u32,
}

impl WorkloadShift {
    /// A strong permanent upward shift starting at `from_tick` — enough
    /// to drag a pre-shift model's accuracy through the drift threshold.
    pub fn surge(from_tick: u32) -> Self {
        WorkloadShift {
            from_tick,
            until_tick: u32::MAX,
            base_mul: 0.4,
            base_add: 0.55,
            p95_mul: 0.3,
            p95_add: 0.65,
            ramp_ticks: 0,
        }
    }

    /// The surge, ramped in over `ramp_ticks` windows instead of
    /// arriving as a step.
    pub fn ramped_surge(from_tick: u32, ramp_ticks: u32) -> Self {
        WorkloadShift { ramp_ticks, ..WorkloadShift::surge(from_tick) }
    }

    fn active(&self, tick: u32) -> bool {
        tick >= self.from_tick && tick < self.until_tick
    }

    /// Shift intensity in `[0, 1]` at `tick`: 0 outside the episode,
    /// ramping linearly over `ramp_ticks` windows, then full strength.
    fn intensity(&self, tick: u32) -> f64 {
        if !self.active(tick) {
            return 0.0;
        }
        if self.ramp_ticks == 0 {
            return 1.0;
        }
        (((tick - self.from_tick) as f64 + 1.0) / self.ramp_ticks as f64).min(1.0)
    }
}

/// Everything a soak needs: clock length, window shape, cadences,
/// promotion thresholds, drift hysteresis, scripted workload shifts, and
/// the chaos schedule. The soak is a pure function of this struct.
#[derive(Debug, Clone)]
pub struct LoopConfig {
    /// Master seed; every window trace derives from `(seed, tick)`.
    pub seed: u64,
    /// Simulated ticks to run (one tick ≈ one retrain-cadence epoch).
    pub ticks: u32,
    /// Days of telemetry per rolling window.
    pub window_days: u32,
    /// Subscriptions per window (a stable id space across windows, so
    /// published feature records stay addressable).
    pub n_subscriptions: usize,
    /// Approximate VMs per window.
    pub window_vms: usize,
    /// Telemetry-archive length in ticks: the soak replays a finite
    /// archive, so window content repeats every `window_period` ticks.
    /// `1` (the default) replays one window — the same tenant fleet every
    /// tick, which is what keeps published per-subscription feature data
    /// addressable across the whole soak. `0` generates a fresh fleet
    /// every tick (every window statistically alike but disjoint tenants;
    /// useful for generalization experiments, hostile to drift
    /// monitoring).
    pub window_period: u32,
    /// Retrain cadence in ticks even without drift (`0` = drift-only).
    pub retrain_every: u32,
    /// Post-promotion watch period: ticks during which a drift trip
    /// triggers rollback instead of retrain.
    pub watch_ticks: u32,
    /// Labelled VM examples replayed through the serving models per tick.
    pub eval_per_tick: usize,
    /// Replay-slice size for shadow evaluation.
    pub shadow_slice: usize,
    /// Shadow pass requires candidate mean accuracy within this of the
    /// serving mean (and better when the margin is negative).
    pub promote_margin: f64,
    /// Shadow pass requires no single metric to regress by more.
    pub shadow_margin: f64,
    /// Drift hysteresis for the live accuracy monitor.
    pub drift: DriftConfig,
    /// Hysteresis for the leading (input-distribution) drift monitor.
    pub leading: LeadingDriftConfig,
    /// When true, leading drift is journaled and metered but never
    /// schedules a retrain — the label-based monitor stays in charge.
    pub leading_observe_only: bool,
    /// Shadow-evaluation guard on prediction-distribution shift: reject
    /// the candidate when any metric's serving-vs-candidate prediction
    /// PSI exceeds this. Infinite by default (observe-only — the PSI is
    /// always gauged), because a candidate retrained *for* drift is
    /// supposed to predict differently.
    pub shadow_psi_limit: f64,
    /// The publish gate candidates must still clear (the loop's shadow
    /// comparison is the sharper filter, so the regression tolerance
    /// here is looser than the gate's own default).
    pub gate: PublishGate,
    /// Scripted workload shifts.
    pub shifts: Vec<WorkloadShift>,
    /// Scripted faults.
    pub chaos: ChaosPlan,
}

impl Default for LoopConfig {
    fn default() -> Self {
        LoopConfig {
            seed: 0xC0_FFEE,
            ticks: 24,
            window_days: 18,
            n_subscriptions: 100,
            window_vms: 2_600,
            window_period: 1,
            retrain_every: 8,
            watch_ticks: 4,
            eval_per_tick: 400,
            shadow_slice: 300,
            promote_margin: 0.03,
            shadow_margin: 0.15,
            drift: DriftConfig {
                window: 2,
                tolerance: 0.12,
                clear_margin: 0.05,
                trip_ticks: 2,
                clear_ticks: 2,
                min_samples: 30,
            },
            leading: LeadingDriftConfig::default(),
            leading_observe_only: false,
            shadow_psi_limit: f64::INFINITY,
            gate: PublishGate { min_accuracy: 0.40, max_regression: 0.30 },
            shifts: Vec::new(),
            chaos: ChaosPlan::default(),
        }
    }
}

/// Why a retrain was scheduled.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum RetrainReason {
    /// No model has ever been published.
    Bootstrap,
    /// The drift monitor tripped on the named metrics.
    Drift { metrics: Vec<String> },
    /// The leading (input-distribution) monitor tripped on the named
    /// features before label-based accuracy fell.
    LeadingDrift { features: Vec<String> },
    /// The refresh cadence expired.
    Cadence,
}

/// One journal entry. The journal is the soak's full audit trail and its
/// reproducibility witness: the summary digests it, and the acceptance
/// tests compare it bit-for-bit across same-seed runs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum LoopEvent {
    /// A telemetry window was ingested (post-cleanup sizes).
    WindowIngested { vms: u64, quarantined: u64 },
    /// The drift monitor tripped for a metric.
    DriftDetected { metric: String },
    /// A retrain was scheduled.
    RetrainScheduled { reason: RetrainReason },
    /// The training pipeline failed outright; the tick degrades and the
    /// previously published version keeps serving.
    RetrainFailed { error: String },
    /// One metric's trainer faulted; the pipeline isolated it and the
    /// remaining models continued.
    MetricQuarantined { metric: String },
    /// Shadow comparison of candidate vs serving on the replay slice.
    ShadowEvaluated { serving_mean: f64, candidate_mean: f64 },
    /// The candidate lost the shadow comparison; nothing was written.
    ShadowRejected { reason: String },
    /// The candidate's content digest is quarantined from an earlier
    /// rollback; promotion refused before any write.
    QuarantineBlocked { digest: u64 },
    /// Two-phase publish completed; the new version is serving.
    Promoted { version: u64 },
    /// Publish failed (gate or store); the manifest did not move.
    PublishFailed { error: String },
    /// Post-flip regression: rolled back to `to_version` and quarantined
    /// the regressing content digest.
    RolledBack { to_version: u64, quarantined_digest: u64 },
    /// A rollback was needed but no earlier good version exists; the
    /// loop degrades the tick and keeps serving.
    RollbackUnavailable,
    /// The leading monitor flipped `Stable -> Drifting` for a feature:
    /// the ingested window's distribution has walked away from the
    /// serving model's training baseline.
    LeadingDriftDetected { feature: String, psi: f64 },
    /// A scheduled chaos fault was injected this tick (the new fault
    /// kinds journal here; the original four are visible through the
    /// events they cause).
    ChaosInjected { kind: String },
    /// The manifest flip's compare-and-swap lost to a concurrent
    /// publish; the controller backed off without overwriting it.
    PublishRaceDetected { expected: u64, actual: u64 },
}

/// A journal entry pinned to its tick.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TickEvent {
    /// Simulated tick the event occurred on.
    pub tick: u32,
    /// What happened.
    pub event: LoopEvent,
}

/// Cumulative live-vs-frozen accuracy for one metric.
#[derive(Debug, Clone, Serialize)]
pub struct MetricAccuracy {
    /// Model name (`VM_AVGUTIL`, ...).
    pub metric: String,
    /// Accuracy of whatever the loop kept serving, over the whole soak.
    pub live: f64,
    /// Accuracy of the never-retrained first model over the same
    /// examples.
    pub frozen: f64,
}

/// End-of-soak accounting, serializable into `BENCH_loop.json`.
#[derive(Debug, Clone, Serialize)]
pub struct LoopSummary {
    /// Seed the soak ran under.
    pub seed: u64,
    /// Ticks simulated.
    pub ticks: u32,
    /// Windows ingested (== ticks: ingestion never skips).
    pub windows_ingested: u64,
    /// Retrains attempted.
    pub retrains: u64,
    /// Retrains that failed outright.
    pub retrain_failures: u64,
    /// Shadow comparisons run.
    pub shadow_evals: u64,
    /// Candidates rejected in shadow.
    pub shadow_rejections: u64,
    /// Successful promotions (including bootstrap).
    pub promotions: u64,
    /// Automatic rollbacks.
    pub rollbacks: u64,
    /// Candidate promotions refused because their content digest was
    /// quarantined by an earlier rollback.
    pub quarantine_blocked: u64,
    /// Ticks on which a scheduled action failed and the loop degraded.
    pub degraded_ticks: u64,
    /// Leading-monitor `Stable -> Drifting` transitions over the soak.
    pub leading_trips: u64,
    /// Manifest flips lost to a concurrent publish.
    pub publish_races: u64,
    /// Chaos faults injected (new fault kinds only; see
    /// [`LoopEvent::ChaosInjected`]).
    pub chaos_injected: u64,
    /// Manifest version serving when the soak ended.
    pub final_version: u64,
    /// End-to-end prediction accuracy of the managed (retraining) loop.
    pub live_accuracy: f64,
    /// Accuracy the first model alone would have scored (no-retrain
    /// baseline) over the identical examples.
    pub frozen_accuracy: f64,
    /// Per-metric live vs frozen accuracy.
    pub per_metric: Vec<MetricAccuracy>,
    /// FNV digest of the serialized event journal — the cheap
    /// reproducibility witness two same-seed runs must agree on.
    pub journal_digest: u64,
    /// Fingerprint of the store's final (key, version) state.
    pub store_fingerprint: u64,
}

/// One resident model/feature set, decoded out of a published version.
#[derive(Clone)]
struct ModelSet {
    /// `(model_name, model)` in manifest order.
    models: Vec<(String, TrainedModel)>,
    features: HashMap<SubscriptionId, SubscriptionFeatures>,
    version: u64,
    digest: u64,
}

impl ModelSet {
    fn model(&self, name: &str) -> Option<&TrainedModel> {
        self.models.iter().find(|(n, _)| n == name).map(|(_, m)| m)
    }

    fn predict(&self, name: &str, inputs: &ClientInputs) -> Option<usize> {
        let model = self.model(name)?;
        let sub = self.features.get(&inputs.subscription)?;
        let features = model.spec.features(inputs, sub);
        Some(model.predict(&features).0)
    }
}

/// Where the loop is in its promote/watch cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Normal operation: drift or cadence schedules a retrain.
    Steady,
    /// Recently flipped: a drift trip rolls back instead.
    Watching { remaining: u32 },
}

struct LoopCounters {
    ticks: Counter,
    windows: Counter,
    retrains: Counter,
    retrain_failures: Counter,
    shadow_evals: Counter,
    shadow_rejections: Counter,
    promotions: Counter,
    rollbacks: Counter,
    quarantine_blocked: Counter,
    degraded_ticks: Counter,
    /// Same underlying counter the leading monitor increments.
    leading_trips: Counter,
    publish_races: Counter,
    chaos_injected: Counter,
}

impl LoopCounters {
    fn new(registry: &Registry) -> Self {
        LoopCounters {
            ticks: registry.counter(rc_obs::LOOP_TICKS),
            windows: registry.counter(rc_obs::LOOP_WINDOWS_INGESTED),
            retrains: registry.counter(rc_obs::LOOP_RETRAINS),
            retrain_failures: registry.counter(rc_obs::LOOP_RETRAIN_FAILURES),
            shadow_evals: registry.counter(rc_obs::LOOP_SHADOW_EVALS),
            shadow_rejections: registry.counter(rc_obs::LOOP_SHADOW_REJECTIONS),
            promotions: registry.counter(rc_obs::LOOP_PROMOTIONS),
            rollbacks: registry.counter(rc_obs::LOOP_ROLLBACKS),
            quarantine_blocked: registry.counter(rc_obs::LOOP_QUARANTINE_BLOCKED),
            degraded_ticks: registry.counter(rc_obs::LOOP_DEGRADED_TICKS),
            leading_trips: registry.counter(rc_obs::LOOP_LEADING_TRIPS),
            publish_races: registry.counter(rc_obs::LOOP_PUBLISH_RACES),
            chaos_injected: registry.counter(rc_obs::LOOP_CHAOS_INJECTED),
        }
    }
}

/// Per-metric correct/total tallies over the whole soak, indexed by
/// [`PredictionMetric::index`].
#[derive(Default, Clone)]
struct Tally {
    correct: [u64; 6],
    total: [u64; 6],
}

impl Tally {
    fn record(&mut self, metric: PredictionMetric, correct: bool) {
        let i = metric.index();
        self.total[i] += 1;
        if correct {
            self.correct[i] += 1;
        }
    }

    fn accuracy(&self) -> f64 {
        let total: u64 = self.total.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.correct.iter().sum::<u64>() as f64 / total as f64
    }

    fn metric_accuracy(&self, metric: PredictionMetric) -> f64 {
        let i = metric.index();
        if self.total[i] == 0 {
            return 0.0;
        }
        self.correct[i] as f64 / self.total[i] as f64
    }
}

/// The controller. Construct with [`LoopController::new`], then either
/// [`run`](LoopController::run) the whole soak or step it one
/// [`run_tick`](LoopController::run_tick) at a time (the acceptance
/// tests do, to inspect mid-soak state).
pub struct LoopController {
    config: LoopConfig,
    store: ChaosStore,
    registry: Registry,
    tracker: AccuracyTracker,
    /// Input-distribution monitor; baseline installed at promotion.
    leading: LeadingDriftMonitor,
    counters: LoopCounters,
    serving: Option<ModelSet>,
    /// The first promoted set, frozen, for the no-retrain baseline.
    frozen: Option<ModelSet>,
    quarantine: QuarantineSet,
    phase: Phase,
    tick: u32,
    last_retrain_tick: Option<u32>,
    /// Shadow-measured per-metric accuracy recorded at each promotion,
    /// keyed by version — restored as drift baselines after a rollback.
    promoted_baselines: HashMap<u64, Vec<(String, f64)>>,
    journal: Vec<TickEvent>,
    live: Tally,
    frozen_tally: Tally,
}

impl LoopController {
    /// A controller over a fresh in-memory store.
    pub fn new(config: LoopConfig) -> Self {
        Self::with_store(config, Store::in_memory())
    }

    /// A controller over a caller-supplied store (tests pre-seed or
    /// inspect it).
    pub fn with_store(config: LoopConfig, store: Store) -> Self {
        let registry = Registry::new();
        let tracker = AccuracyTracker::with_registry(registry.clone(), config.drift.clone());
        let leading = LeadingDriftMonitor::with_registry(registry.clone(), config.leading.clone());
        let counters = LoopCounters::new(&registry);
        LoopController {
            config,
            store: ChaosStore::new(store),
            registry,
            tracker,
            leading,
            counters,
            serving: None,
            frozen: None,
            quarantine: QuarantineSet::default(),
            phase: Phase::Steady,
            tick: 0,
            last_retrain_tick: None,
            promoted_baselines: HashMap::new(),
            journal: Vec::new(),
            live: Tally::default(),
            frozen_tally: Tally::default(),
        }
    }

    /// The controller's private metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The live-accuracy tracker.
    pub fn tracker(&self) -> &AccuracyTracker {
        &self.tracker
    }

    /// The leading (input-distribution) drift monitor.
    pub fn leading(&self) -> &LeadingDriftMonitor {
        &self.leading
    }

    /// The chaos-wrapped store the loop publishes through.
    pub fn store(&self) -> &ChaosStore {
        &self.store
    }

    /// The event journal so far.
    pub fn journal(&self) -> &[TickEvent] {
        &self.journal
    }

    /// Manifest version currently serving (`0` before bootstrap).
    pub fn serving_version(&self) -> u64 {
        self.serving.as_ref().map_or(0, |s| s.version)
    }

    /// Content digests quarantined from re-promotion.
    pub fn quarantined_digests(&self) -> &[u64] {
        self.quarantine.digests()
    }

    /// Runs the remaining ticks and returns the summary.
    pub fn run(mut self) -> LoopSummary {
        while self.tick < self.config.ticks {
            self.run_tick();
        }
        self.summary()
    }

    /// Advances the simulated clock by one tick. Every failure mode
    /// lands back here: nothing a tick does can prevent the next one.
    pub fn run_tick(&mut self) {
        let tick = self.tick;
        self.counters.ticks.increment();
        let mut degraded = false;

        // 0. Arm scheduled store-level chaos for the tick (healed at
        // tick end — nothing here can outlive the tick).
        if let Some(shard) = self.config.chaos.brownout_shard(tick) {
            self.store.arm_brownout(shard);
            self.journal_chaos(tick, format!("brownout:shard{shard}"));
        }
        if self.config.chaos.manual_publish(tick) {
            self.store.arm_manifest_race();
            self.journal_chaos(tick, "manual_publish".to_string());
        }

        // 1. Ingest the next rolling window and sketch its feature
        // distributions.
        let window = self.ingest_window(tick);
        let sketch = sketch_window(&window);
        let vms = label_vms(&window, 120);
        let deployments = label_deployments(&window);
        let eval_vms = &vms[..vms.len().min(self.config.eval_per_tick)];
        let eval_deps = &deployments[..deployments.len().min(self.config.eval_per_tick)];

        // 2. Serve the window through the published models and score it.
        self.evaluate_live(tick, eval_vms, eval_deps);
        self.tracker.tick();
        self.registry.tick();

        // 3a. Consult the leading (input-distribution) monitor — this
        // sees the shifted window immediately, before mispredictions
        // have accumulated into the label-based signal.
        for obs in self.leading.observe(&sketch) {
            if obs.tripped {
                self.journal.push(TickEvent {
                    tick,
                    event: LoopEvent::LeadingDriftDetected { feature: obs.feature, psi: obs.psi },
                });
            }
        }

        // 3b. Consult the label-based drift monitor.
        let drifting = self.drifting_metrics();
        for metric in &drifting {
            self.journal.push(TickEvent {
                tick,
                event: LoopEvent::DriftDetected { metric: metric.clone() },
            });
        }

        // 4. React: rollback while watching, retrain otherwise. Only
        // the label-based signal can trigger a rollback — leading drift
        // during the watch window says the *inputs* moved, not that the
        // freshly promoted model regressed.
        if let Phase::Watching { remaining } = self.phase {
            if !drifting.is_empty() {
                self.do_rollback(tick, &mut degraded);
            } else if remaining <= 1 {
                self.phase = Phase::Steady;
            } else {
                self.phase = Phase::Watching { remaining: remaining - 1 };
            }
        }
        if self.phase == Phase::Steady {
            if let Some(reason) = self.retrain_reason(tick, &drifting) {
                let ingested =
                    IngestedWindow { window: &window, sketch: &sketch, eval_vms, eval_deps };
                self.do_retrain(tick, reason, &ingested, &mut degraded);
            }
        }

        // 5. Close the tick: heal chaos, refresh gauges.
        self.store.heal();
        if degraded {
            self.counters.degraded_ticks.increment();
        }
        self.registry.gauge(rc_obs::LOOP_SERVING_VERSION).set(self.serving_version() as f64);
        self.tick += 1;
    }

    /// Final accounting. Callable at any point; [`run`](Self::run) calls
    /// it after the last tick.
    pub fn summary(&self) -> LoopSummary {
        let per_metric = PredictionMetric::ALL
            .iter()
            .map(|&m| MetricAccuracy {
                metric: m.model_name().to_string(),
                live: self.live.metric_accuracy(m),
                frozen: self.frozen_tally.metric_accuracy(m),
            })
            .collect();
        LoopSummary {
            seed: self.config.seed,
            ticks: self.tick,
            windows_ingested: self.counters.windows.get(),
            retrains: self.counters.retrains.get(),
            retrain_failures: self.counters.retrain_failures.get(),
            shadow_evals: self.counters.shadow_evals.get(),
            shadow_rejections: self.counters.shadow_rejections.get(),
            promotions: self.counters.promotions.get(),
            rollbacks: self.counters.rollbacks.get(),
            quarantine_blocked: self.counters.quarantine_blocked.get(),
            degraded_ticks: self.counters.degraded_ticks.get(),
            leading_trips: self.counters.leading_trips.get(),
            publish_races: self.counters.publish_races.get(),
            chaos_injected: self.counters.chaos_injected.get(),
            final_version: self.serving_version(),
            live_accuracy: self.live.accuracy(),
            frozen_accuracy: self.frozen_tally.accuracy(),
            per_metric,
            journal_digest: journal_digest(&self.journal),
            store_fingerprint: rc_store::fingerprint(&self.store),
        }
    }

    // --- Tick stages ---

    /// Generates (and, on dirty ticks, corrupts), shifts, and cleans the
    /// tick's telemetry window.
    fn ingest_window(&mut self, tick: u32) -> Trace {
        // With a finite archive, window content cycles; chaos and shifts
        // still key off the absolute tick.
        let window_index = match self.config.window_period {
            0 => tick,
            period => tick % period,
        };
        let trace_config = TraceConfig {
            seed: self
                .config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(window_index as u64 + 1),
            days: self.config.window_days,
            n_subscriptions: self.config.n_subscriptions,
            target_vms: self.config.window_vms,
            n_regions: 2,
        };
        let (mut trace, quarantined_stream) = match self.config.chaos.dirty_rate(tick) {
            Some(rate) => {
                let plan = DirtyPlan::uniform(trace_config.seed ^ (0xD1127 + tick as u64), rate);
                let (trace, report) = DirtyVmStream::new(&trace_config, plan).collect_trace();
                (trace, report.total())
            }
            None => (VmStream::new(&trace_config).collect_trace(), 0),
        };
        for shift in &self.config.shifts {
            if shift.active(tick) {
                apply_shift(&mut trace, shift, shift.intensity(tick));
            }
        }
        // Slow-degrading telemetry: every reading stays individually
        // valid (cleanup keeps it), but the distribution creeps away
        // from the training baseline as the episode's severity ramps.
        let severity = self.config.chaos.degrade_severity(tick);
        if severity > 0.0 {
            let model = self.config.chaos.telemetry_degrade;
            for (i, util) in trace.util.iter_mut().enumerate() {
                model.degrade_util(i as u64, severity, util);
            }
            self.journal_chaos(tick, format!("degrade_telemetry:{severity:.2}"));
        }
        if self.config.chaos.skews_clock(tick) {
            let model = self.config.chaos.telemetry_degrade;
            for (i, vm) in trace.vms.iter_mut().enumerate() {
                model.skew_clock(i as u64, 1.0, vm);
            }
            self.journal_chaos(tick, "clock_skew".to_string());
        }
        let (cleaned, report) = cleanup(&trace);
        let cleaned = cleaned.into_owned();
        self.counters.windows.increment();
        self.journal.push(TickEvent {
            tick,
            event: LoopEvent::WindowIngested {
                vms: cleaned.vms.len() as u64,
                quarantined: report.quarantined() + quarantined_stream,
            },
        });
        cleaned
    }

    /// Replays the evaluation slice through the serving and frozen sets,
    /// feeding the drift monitor with the serving side's outcomes.
    fn evaluate_live(&mut self, tick: u32, vms: &[LabeledVm], deployments: &[LabeledDeployment]) {
        let Some(serving) = self.serving.clone() else { return };
        let frozen = self.frozen.clone();
        let mut next_id = (tick as u64) << 32;
        let mut score = |set_live: &ModelSet,
                         metric: PredictionMetric,
                         inputs: &ClientInputs,
                         truth: usize,
                         live: &mut Tally,
                         tracker: &AccuracyTracker| {
            if let Some(predicted) = set_live.predict(metric.model_name(), inputs) {
                let id = next_id;
                next_id += 1;
                tracker.record_prediction(metric.model_name(), id, predicted);
                tracker.record_outcome(metric.model_name(), id, truth);
                live.record(metric, predicted == truth);
            }
        };
        for vm in vms {
            for metric in vm_metrics() {
                let Some(truth) = vm_truth(metric, vm) else { continue };
                score(&serving, metric, &vm.inputs, truth, &mut self.live, &self.tracker);
                if let Some(frozen) = &frozen {
                    if let Some(predicted) = frozen.predict(metric.model_name(), &vm.inputs) {
                        self.frozen_tally.record(metric, predicted == truth);
                    }
                }
            }
        }
        for dep in deployments {
            for metric in deployment_metrics() {
                let Some(truth) = deployment_truth(metric, dep) else { continue };
                score(&serving, metric, &dep.inputs, truth, &mut self.live, &self.tracker);
                if let Some(frozen) = &frozen {
                    if let Some(predicted) = frozen.predict(metric.model_name(), &dep.inputs) {
                        self.frozen_tally.record(metric, predicted == truth);
                    }
                }
            }
        }
    }

    /// Serving metrics whose drift signal currently reads `Drifting`.
    fn drifting_metrics(&self) -> Vec<String> {
        let Some(serving) = &self.serving else { return Vec::new() };
        PredictionMetric::ALL
            .iter()
            .map(|m| m.model_name())
            .filter(|name| serving.model(name).is_some())
            .filter(|name| self.tracker.drift(name) == DriftSignal::Drifting)
            .map(str::to_string)
            .collect()
    }

    fn retrain_reason(&self, tick: u32, drifting: &[String]) -> Option<RetrainReason> {
        if self.serving.is_none() {
            return Some(RetrainReason::Bootstrap);
        }
        if !drifting.is_empty() {
            return Some(RetrainReason::Drift { metrics: drifting.to_vec() });
        }
        // The leading signal fires on input distributions alone — the
        // whole point is to retrain before accuracy falls, so it ranks
        // above cadence but below hard label-based evidence.
        if !self.config.leading_observe_only {
            let features = self.leading.drifting_features();
            if !features.is_empty() {
                return Some(RetrainReason::LeadingDrift { features });
            }
        }
        if self.config.retrain_every > 0 {
            let since = tick - self.last_retrain_tick.unwrap_or(0);
            if since >= self.config.retrain_every {
                return Some(RetrainReason::Cadence);
            }
        }
        None
    }

    /// Journals a chaos injection and bumps its counter.
    fn journal_chaos(&mut self, tick: u32, kind: String) {
        self.counters.chaos_injected.increment();
        self.journal.push(TickEvent { tick, event: LoopEvent::ChaosInjected { kind } });
    }
}

/// One tick's ingested telemetry, bundled for the retrain path: the
/// (possibly chaos-shifted) window, its distribution sketch, and the
/// resolved-label slices used for shadow evaluation.
struct IngestedWindow<'a> {
    window: &'a Trace,
    sketch: &'a WindowSketch,
    eval_vms: &'a [LabeledVm],
    eval_deps: &'a [LabeledDeployment],
}

impl LoopController {
    /// Train → shadow-evaluate → (maybe) promote. Every early return is
    /// a contained failure: the store's manifest has not moved.
    fn do_retrain(
        &mut self,
        tick: u32,
        reason: RetrainReason,
        ingested: &IngestedWindow<'_>,
        degraded: &mut bool,
    ) {
        let IngestedWindow { window, sketch, eval_vms, eval_deps } = *ingested;
        self.counters.retrains.increment();
        self.last_retrain_tick = Some(tick);
        self.journal.push(TickEvent { tick, event: LoopEvent::RetrainScheduled { reason } });

        // Train — on a sabotaged copy of the window when chaos says so.
        let train_trace;
        let train_on: &Trace = if self.config.chaos.degrades_candidate(tick) {
            train_trace = garble(window);
            &train_trace
        } else {
            window
        };
        let mut pipeline_config = PipelineConfig::fast(self.config.window_days);
        pipeline_config.fail_train = self.config.chaos.train_faults(tick);
        let output = match run_pipeline(train_on, &pipeline_config) {
            Ok(output) => output,
            Err(e) => {
                self.counters.retrain_failures.increment();
                self.journal.push(TickEvent {
                    tick,
                    event: LoopEvent::RetrainFailed { error: format!("{e:?}") },
                });
                *degraded = true;
                return;
            }
        };
        for (metric, _) in &output.quarantined_metrics {
            self.journal.push(TickEvent {
                tick,
                event: LoopEvent::MetricQuarantined { metric: metric.model_name().to_string() },
            });
        }

        // Shadow-evaluate the candidate against the serving set on the
        // replay slice. No store write, no tracker write: invisible.
        let candidate = ModelSet {
            models: output
                .models
                .iter()
                .map(|m| (m.spec.metric.model_name().to_string(), m.clone()))
                .collect(),
            features: output.feature_data.clone(),
            version: 0,
            digest: 0,
        };
        self.counters.shadow_evals.increment();
        let comparison = shadow_compare(
            self.serving.as_ref(),
            &candidate,
            &eval_vms[..eval_vms.len().min(self.config.shadow_slice)],
            &eval_deps[..eval_deps.len().min(self.config.shadow_slice)],
        );
        for row in &comparison.rows {
            self.registry
                .gauge(&acc_gauge_name(rc_obs::LOOP_SHADOW_ACCURACY, &row.metric))
                .set(row.candidate);
            self.registry
                .gauge(&acc_gauge_name(rc_obs::LOOP_SHADOW_PREDICTION_PSI, &row.metric))
                .set(row.prediction_psi);
        }
        self.journal.push(TickEvent {
            tick,
            event: LoopEvent::ShadowEvaluated {
                serving_mean: comparison.serving_mean,
                candidate_mean: comparison.candidate_mean,
            },
        });
        if self.serving.is_some() {
            if let Some(reason) = comparison.rejection(&self.config) {
                self.counters.shadow_rejections.increment();
                self.journal.push(TickEvent { tick, event: LoopEvent::ShadowRejected { reason } });
                return;
            }
        }

        // Quarantine check on the candidate's *content*: version numbers
        // recycle after a rollback and the same bad bytes can be
        // retrained — the digest is what must never serve again.
        let digest = models_digest(
            output.models.iter().map(|m| (m.spec.store_key(), checksum(&rc_ml::to_bytes(m)))),
        );
        if self.quarantine.contains_digest(digest) {
            self.counters.quarantine_blocked.increment();
            self.journal.push(TickEvent { tick, event: LoopEvent::QuarantineBlocked { digest } });
            return;
        }

        // Promote: gate + two-phase atomic publish. A scheduled store
        // outage arms here so it strikes mid-flip.
        if let Some(budget) = self.config.chaos.outage_budget(tick) {
            self.store.arm_put_outage(budget);
        }
        match output.publish_gated(&self.store, self.config.gate) {
            Ok(version) => {
                self.counters.promotions.increment();
                self.journal.push(TickEvent { tick, event: LoopEvent::Promoted { version } });
                self.reload_serving();
                // The promoted models trained on this window, so its
                // sketch becomes the leading monitor's new reference
                // frame — persisted next to the version so a rollback
                // can restore the matching baseline. Best-effort: a
                // store fault here costs only leading coverage, never
                // the promotion.
                let _ = self.store.put(&sketch_key(version), Bytes::from(sketch.to_bytes()));
                self.leading.set_baseline(Some(sketch.clone()));
                // A flip invalidates the rolling comparison window: old
                // outcomes judge a model that is no longer serving. Start
                // the drift monitor fresh, with the held-out validation
                // accuracies as this version's expectation.
                let baselines: Vec<(String, f64)> = output
                    .reports
                    .iter()
                    .map(|r| (r.metric.model_name().to_string(), r.accuracy))
                    .collect();
                self.reset_tracker(&baselines);
                self.promoted_baselines.insert(version, baselines);
                if self.frozen.is_none() {
                    self.frozen = self.serving.clone();
                }
                self.phase = Phase::Watching { remaining: self.config.watch_ticks };
            }
            Err(rc_core::PipelineError::PublishRaced(race)) => {
                // A concurrent publish moved the pointer between our
                // read and our flip. Backing off (instead of blindly
                // overwriting) is the whole contract: the racer's
                // version keeps serving, and the next tick's drift
                // evidence decides whether to retrain again.
                self.counters.publish_races.increment();
                self.journal.push(TickEvent {
                    tick,
                    event: LoopEvent::PublishRaceDetected {
                        expected: race.expected,
                        actual: race.actual,
                    },
                });
                *degraded = true;
            }
            Err(e) => {
                self.journal.push(TickEvent {
                    tick,
                    event: LoopEvent::PublishFailed { error: format!("{e:?}") },
                });
                *degraded = true;
            }
        }
    }

    /// Post-flip regression: quarantine the serving content digest, then
    /// roll the manifest pointer back to `last_good`.
    fn do_rollback(&mut self, tick: u32, degraded: &mut bool) {
        self.phase = Phase::Steady;
        let Some(serving) = self.serving.clone() else { return };
        let manifest = match Manifest::read_current(&self.store) {
            Ok(Some(m)) => m,
            _ => {
                *degraded = true;
                return;
            }
        };
        if !manifest.can_rollback() {
            // Satellite: nothing to roll back *to*. Degrade the tick,
            // keep serving, never wedge.
            self.journal.push(TickEvent { tick, event: LoopEvent::RollbackUnavailable });
            *degraded = true;
            return;
        }
        self.quarantine.insert(serving.version, serving.digest);
        if self.quarantine.save(&self.store).is_err() {
            *degraded = true;
        }
        match rollback(&self.store) {
            Ok(to_version) => {
                self.counters.rollbacks.increment();
                self.journal.push(TickEvent {
                    tick,
                    event: LoopEvent::RolledBack { to_version, quarantined_digest: serving.digest },
                });
                self.reload_serving();
                // Same reasoning as promotion: the bad model's outcomes
                // must not be held against the restored one. Fresh
                // monitor, restored version's own expectations.
                let baselines =
                    self.promoted_baselines.get(&to_version).cloned().unwrap_or_default();
                self.reset_tracker(&baselines);
                // The restored version trained on a different window;
                // re-seat the leading baseline to match (inert until
                // the next promotion if the sketch is unreadable).
                let restored = self
                    .store
                    .get_latest(&sketch_key(to_version))
                    .ok()
                    .and_then(|rec| WindowSketch::from_bytes(&rec.data));
                self.leading.set_baseline(restored);
            }
            Err(e) => {
                self.journal.push(TickEvent {
                    tick,
                    event: LoopEvent::PublishFailed { error: format!("rollback: {e:?}") },
                });
                *degraded = true;
            }
        }
    }

    /// Re-decodes the serving set from the store's current manifest.
    fn reload_serving(&mut self) {
        self.serving = load_model_set(&self.store);
        self.registry.gauge(rc_obs::LOOP_SERVING_VERSION).set(self.serving_version() as f64);
    }

    /// Replaces the drift monitor with a fresh one carrying the given
    /// baselines — called on every model flip (promotion or rollback) so
    /// the rolling window never mixes outcomes across serving versions.
    fn reset_tracker(&mut self, baselines: &[(String, f64)]) {
        self.tracker =
            AccuracyTracker::with_registry(self.registry.clone(), self.config.drift.clone());
        for (metric, accuracy) in baselines {
            self.tracker.set_baseline(metric, *accuracy);
        }
    }
}

// --- Shadow comparison ---

struct ShadowRow {
    metric: String,
    serving: f64,
    candidate: f64,
    /// PSI between the serving and candidate predicted-bucket
    /// distributions on the replay slice (0 with no serving set) — the
    /// shadow-side leading indicator: a candidate that predicts a
    /// wildly different bucket mix than the incumbent is suspect even
    /// when its accuracy happens to look fine on the slice.
    prediction_psi: f64,
}

struct ShadowComparison {
    rows: Vec<ShadowRow>,
    serving_mean: f64,
    candidate_mean: f64,
}

impl ShadowComparison {
    /// `Some(reason)` when the candidate must not be promoted.
    fn rejection(&self, config: &LoopConfig) -> Option<String> {
        if self.candidate_mean + config.promote_margin < self.serving_mean {
            return Some(format!(
                "candidate mean {:.3} below serving mean {:.3}",
                self.candidate_mean, self.serving_mean
            ));
        }
        for row in &self.rows {
            if row.candidate < row.serving - config.shadow_margin {
                return Some(format!(
                    "{} regressed {:.3} -> {:.3}",
                    row.metric, row.serving, row.candidate
                ));
            }
            if row.prediction_psi > config.shadow_psi_limit {
                return Some(format!(
                    "{} prediction distribution shifted (psi {:.3} > {:.3})",
                    row.metric, row.prediction_psi, config.shadow_psi_limit
                ));
            }
        }
        None
    }
}

/// Scores both sets on the replay slice. Metrics are compared only where
/// the candidate has a model and at least one example scored.
fn shadow_compare(
    serving: Option<&ModelSet>,
    candidate: &ModelSet,
    vms: &[LabeledVm],
    deployments: &[LabeledDeployment],
) -> ShadowComparison {
    let mut rows = Vec::new();
    for metric in PredictionMetric::ALL {
        let name = metric.model_name();
        if candidate.model(name).is_none() {
            continue;
        }
        let (mut s_correct, mut c_correct, mut n) = (0u64, 0u64, 0u64);
        let (mut s_counts, mut c_counts) = (Vec::<u64>::new(), Vec::<u64>::new());
        let bump = |counts: &mut Vec<u64>, bucket: usize| {
            if bucket >= counts.len() {
                counts.resize(bucket + 1, 0);
            }
            counts[bucket] += 1;
        };
        let mut score = |inputs: &ClientInputs, truth: usize| {
            let Some(c) = candidate.predict(name, inputs) else { return };
            n += 1;
            if c == truth {
                c_correct += 1;
            }
            bump(&mut c_counts, c);
            if let Some(s) = serving.and_then(|s| s.predict(name, inputs)) {
                if s == truth {
                    s_correct += 1;
                }
                bump(&mut s_counts, s);
            }
        };
        match metric {
            PredictionMetric::DeploymentSizeVms | PredictionMetric::DeploymentSizeCores => {
                for dep in deployments {
                    if let Some(truth) = deployment_truth(metric, dep) {
                        score(&dep.inputs, truth);
                    }
                }
            }
            _ => {
                for vm in vms {
                    if let Some(truth) = vm_truth(metric, vm) {
                        score(&vm.inputs, truth);
                    }
                }
            }
        }
        if n > 0 {
            let prediction_psi =
                if s_counts.is_empty() { 0.0 } else { counts_psi(&s_counts, &c_counts) };
            rows.push(ShadowRow {
                metric: name.to_string(),
                serving: s_correct as f64 / n as f64,
                candidate: c_correct as f64 / n as f64,
                prediction_psi,
            });
        }
    }
    let mean = |f: fn(&ShadowRow) -> f64, rows: &[ShadowRow]| {
        if rows.is_empty() {
            0.0
        } else {
            rows.iter().map(f).sum::<f64>() / rows.len() as f64
        }
    };
    ShadowComparison {
        serving_mean: mean(|r| r.serving, &rows),
        candidate_mean: mean(|r| r.candidate, &rows),
        rows,
    }
}

// --- Helpers ---

fn vm_metrics() -> [PredictionMetric; 4] {
    [
        PredictionMetric::AvgCpuUtil,
        PredictionMetric::P95MaxCpuUtil,
        PredictionMetric::Lifetime,
        PredictionMetric::WorkloadClass,
    ]
}

fn deployment_metrics() -> [PredictionMetric; 2] {
    [PredictionMetric::DeploymentSizeVms, PredictionMetric::DeploymentSizeCores]
}

fn vm_truth(metric: PredictionMetric, vm: &LabeledVm) -> Option<usize> {
    match metric {
        PredictionMetric::AvgCpuUtil => Some(vm.obs.avg_bucket),
        PredictionMetric::P95MaxCpuUtil => Some(vm.obs.p95_bucket),
        PredictionMetric::Lifetime => Some(vm.obs.lifetime_bucket),
        PredictionMetric::WorkloadClass => vm.obs.class,
        _ => None,
    }
}

fn deployment_truth(metric: PredictionMetric, dep: &LabeledDeployment) -> Option<usize> {
    match metric {
        PredictionMetric::DeploymentSizeVms => Some(dep.obs.vms_bucket),
        PredictionMetric::DeploymentSizeCores => Some(dep.obs.cores_bucket),
        _ => None,
    }
}

/// Applies a workload shift in place at `intensity` ∈ [0, 1]: the
/// multiplier and offset interpolate linearly from the identity (0) to
/// their configured values (1), which is what lets a ramped shift move
/// the distribution a little per window.
fn apply_shift(trace: &mut Trace, shift: &WorkloadShift, intensity: f64) {
    let base_mul = 1.0 + (shift.base_mul - 1.0) * intensity;
    let base_add = shift.base_add * intensity;
    let p95_mul = 1.0 + (shift.p95_mul - 1.0) * intensity;
    let p95_add = shift.p95_add * intensity;
    for util in &mut trace.util {
        util.base = (util.base * base_mul + base_add).clamp(0.01, 0.98);
        util.p95_level = (util.p95_level * p95_mul + p95_add).clamp(util.base, 0.99);
    }
}

/// Store key the training-window sketch for `version` persists under.
fn sketch_key(version: u64) -> String {
    format!("sketch/v{version}")
}

/// Sketches the feature distributions the leading monitor watches: the
/// cleaned window's utilization parameters, VM lifetimes, and SKU
/// sizes, each over a fixed range so sketches from different windows
/// share bin edges.
fn sketch_window(trace: &Trace) -> WindowSketch {
    let mut sketch = WindowSketch::new();
    for (vm, util) in trace.vms.iter().zip(&trace.util) {
        sketch.record("util_base", 0.0, 1.0, util.base);
        sketch.record("util_p95", 0.0, 1.0, util.p95_level);
        sketch.record("lifetime_hours", 0.0, 720.0, vm.lifetime().as_hours_f64());
        sketch.record("cores", 0.0, 32.0, vm.sku.cores as f64);
    }
    sketch
}

/// A sabotaged copy of the window: utilization inverted, so a model
/// trained on it fits the garbled labels (its own test split looks fine)
/// while being systematically wrong about the real workload.
fn garble(trace: &Trace) -> Trace {
    let mut garbled = trace.clone();
    for util in &mut garbled.util {
        util.base = (0.95 - util.base).clamp(0.01, 0.95);
        util.p95_level = (0.99 - util.p95_level).clamp(util.base, 0.99);
    }
    garbled
}

/// Decodes the store's current manifest into a resident [`ModelSet`].
/// Any missing or checksum-mismatched payload voids the load — a
/// half-published version must never partially serve.
fn load_model_set<B: StoreBackend + ?Sized>(store: &B) -> Option<ModelSet> {
    let manifest = Manifest::read_current(store).ok()??;
    let prefix = Manifest::version_prefix(manifest.version);
    let mut models = Vec::with_capacity(manifest.models.len());
    for entry in &manifest.models {
        let record = store.get_latest(&format!("{prefix}{}", entry.key)).ok()?;
        if checksum(&record.data) != entry.checksum {
            return None;
        }
        let model: TrainedModel = rc_ml::from_bytes(&record.data).ok()?;
        let name = entry.key.trim_start_matches("model/").to_string();
        models.push((name, model));
    }
    let mut features = HashMap::with_capacity(manifest.features.len());
    for entry in &manifest.features {
        let record = store.get_latest(&format!("{prefix}{}", entry.key)).ok()?;
        if checksum(&record.data) != entry.checksum {
            return None;
        }
        let sub: u32 = entry.key.strip_prefix("features/")?.parse().ok()?;
        let decoded: SubscriptionFeatures = serde_json::from_slice(&record.data).ok()?;
        features.insert(SubscriptionId(sub), decoded);
    }
    let digest = manifest_models_digest(&manifest);
    Some(ModelSet { models, features, version: manifest.version, digest })
}

/// FNV-1a over the serialized journal: the reproducibility witness.
pub(crate) fn journal_digest(journal: &[TickEvent]) -> u64 {
    let bytes = serde_json::to_vec(&journal.to_vec()).unwrap_or_default();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(seed: u64, ticks: u32) -> LoopConfig {
        LoopConfig {
            seed,
            ticks,
            window_days: 16,
            n_subscriptions: 80,
            window_vms: 2_200,
            retrain_every: 6,
            eval_per_tick: 250,
            shadow_slice: 200,
            ..LoopConfig::default()
        }
    }

    #[test]
    fn bootstrap_promotes_and_loop_settles() {
        let mut controller = LoopController::new(tiny_config(11, 3));
        controller.run_tick();
        assert_eq!(controller.serving_version(), 1, "bootstrap publishes v1 on the first tick");
        controller.run_tick();
        controller.run_tick();
        let summary = controller.summary();
        assert_eq!(summary.promotions, 1);
        assert_eq!(summary.rollbacks, 0);
        assert_eq!(summary.windows_ingested, 3);
        assert!(summary.live_accuracy > 0.5, "live accuracy {}", summary.live_accuracy);
    }

    #[test]
    fn same_seed_same_journal_digest() {
        let a = LoopController::new(tiny_config(7, 4)).run();
        let b = LoopController::new(tiny_config(7, 4)).run();
        assert_eq!(a.journal_digest, b.journal_digest);
        assert_eq!(a.store_fingerprint, b.store_fingerprint);
        assert_eq!(serde_json::to_vec(&a).unwrap(), serde_json::to_vec(&b).unwrap());
        let c = LoopController::new(tiny_config(8, 4)).run();
        assert_ne!(a.journal_digest, c.journal_digest, "different seed, different soak");
    }

    #[test]
    fn garbled_window_trains_a_plausible_but_wrong_candidate() {
        let config = tiny_config(13, 1);
        let mut controller = LoopController::new(config);
        let window = controller.ingest_window(0);
        let garbled = garble(&window);
        // The garbled trace still trains fine — the sabotage is only
        // visible against the *real* window's labels.
        let output = run_pipeline(&garbled, &PipelineConfig::fast(16)).expect("trains");
        assert!(!output.models.is_empty());
    }
}
