//! The continuous control loop: RC as a *lifecycle*, not a one-shot run.
//!
//! §4.2 of the paper describes Resource Central as an always-on service:
//! "RC periodically produces new models and feature data ... and pushes
//! them in the background", with sanity checks before publication and a
//! highly available store between the offline and online halves. The
//! other crates provide every individual mechanism — streaming ingest
//! ([`rc_trace`]), training and gated two-phase publication
//! ([`rc_core::pipeline`]), drift detection ([`rc_obs::AccuracyTracker`]),
//! rollback and quarantine ([`rc_store`]) — but nothing closed the loop.
//!
//! [`LoopController`] does, on a deterministic simulated clock. Each tick:
//!
//! 1. **Ingest** the next rolling telemetry window (optionally dirty),
//!    quarantining malformed records up front;
//! 2. **Serve** the window through the currently published models and
//!    score every prediction against ground truth (feeding the drift
//!    monitor's rolling windows);
//! 3. **Retrain** when drift trips or the refresh cadence expires, with
//!    per-metric fault isolation;
//! 4. **Shadow-evaluate** the candidate against the serving models on a
//!    replay slice — no client-visible effect;
//! 5. **Promote** through the publish gate's two-phase atomic flip only
//!    if the shadow comparison passes;
//! 6. **Watch** live accuracy after the flip and auto-**rollback** (and
//!    quarantine the bad content digest from ever re-promoting) if it
//!    regresses past the hysteresis thresholds.
//!
//! Chaos — store outages mid-flip, corrupted telemetry mid-window,
//! training panics — degrades exactly one tick and never wedges the
//! loop: every failure path lands back in the steady state with the
//! previously published version still serving. The whole soak is a pure
//! function of [`LoopConfig`] (same seed ⇒ bit-identical event journal).

pub mod chaos;
pub mod controller;

pub use chaos::{brownout_shard_of, ChaosPlan, ChaosStore, BROWNOUT_SHARDS};
pub use controller::{
    LoopConfig, LoopController, LoopEvent, LoopSummary, MetricAccuracy, RetrainReason, TickEvent,
    WorkloadShift,
};
