//! Workload characterization toolkit (§3 of the paper).
//!
//! Everything needed to regenerate Figures 1–8 from a trace: empirical
//! CDFs and coefficient-of-variation statistics ([`stats`]), Spearman
//! rank correlations ([`mod@spearman`]), and the figure-by-figure extraction
//! functions ([`characterize`]), including the FFT-based workload
//! classification and core-hour accounting behind Figure 6.

pub mod characterize;
pub mod spearman;
pub mod stats;

pub use characterize::{
    arrivals_per_hour, class_core_hours, cores_breakdown, deployment_size_cdfs, lifetime_cdfs,
    memory_breakdown, metric_correlations, subscription_consistency, utilization_cdfs,
    vm_type_stats, ArrivalSeries, ClassCoreHours, ClassShares, ConsistencyReport, PartyCdfs,
    SizeBreakdown, UtilizationCdfs, VmTypeStats,
};
pub use spearman::{spearman, CorrelationMatrix};
pub use stats::{coefficient_of_variation, fraction_of_groups_with_low_cov, mean, std_dev, Cdf};
