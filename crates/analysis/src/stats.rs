//! Basic statistics: CDFs, percentiles, coefficient of variation.

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution function over f64 samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are dropped).
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|v| v.is_finite());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // First index with value > x.
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`q` in `[0, 1]`).
    ///
    /// Returns `NaN` for an empty CDF.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let idx = ((self.sorted.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        self.sorted[idx]
    }

    /// Evaluates the CDF at each of `xs`, yielding printable curve points.
    pub fn curve(&self, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter().map(|&x| (x, self.fraction_below(x))).collect()
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }
}

/// Mean of a slice; 0 when empty.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0 when empty.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Coefficient of variation: std / mean.
///
/// Returns 0 when the mean is ~0 and the samples are all ~0 (a perfectly
/// consistent subscription), and infinity when the mean is ~0 but samples
/// vary.
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    let m = mean(xs);
    let s = std_dev(xs);
    if m.abs() < 1e-12 {
        if s < 1e-12 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        s / m.abs()
    }
}

/// Fraction of groups whose CoV over `value` is below `threshold`;
/// groups with fewer than `min_group` members are skipped. This is the
/// per-subscription consistency statistic §3 reports for every metric.
pub fn fraction_of_groups_with_low_cov<K: std::hash::Hash + Eq, I>(
    items: I,
    threshold: f64,
    min_group: usize,
) -> f64
where
    I: IntoIterator<Item = (K, f64)>,
{
    let mut groups: std::collections::HashMap<K, Vec<f64>> = std::collections::HashMap::new();
    for (k, v) in items {
        groups.entry(k).or_default().push(v);
    }
    let mut total = 0usize;
    let mut low = 0usize;
    for values in groups.values() {
        if values.len() < min_group {
            continue;
        }
        total += 1;
        if coefficient_of_variation(values) < threshold {
            low += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        low as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_fractions_and_quantiles() {
        let cdf = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.fraction_below(0.5), 0.0);
        assert_eq!(cdf.fraction_below(2.0), 0.5);
        assert_eq!(cdf.fraction_below(10.0), 1.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(1.0), 4.0);
        assert_eq!(cdf.min(), Some(1.0));
        assert_eq!(cdf.max(), Some(4.0));
    }

    #[test]
    fn cdf_drops_nans_and_is_monotone() {
        let cdf = Cdf::new(vec![3.0, f64::NAN, 1.0, 2.0]);
        assert_eq!(cdf.len(), 3);
        let curve = cdf.curve(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        for w in curve.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn empty_cdf_is_safe() {
        let cdf = Cdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_below(1.0), 0.0);
        assert!(cdf.quantile(0.5).is_nan());
    }

    #[test]
    fn cov_behaviour() {
        assert_eq!(coefficient_of_variation(&[2.0, 2.0, 2.0]), 0.0);
        assert!(coefficient_of_variation(&[1.0, 3.0]) > 0.0);
        assert_eq!(coefficient_of_variation(&[0.0, 0.0]), 0.0);
        assert!(coefficient_of_variation(&[0.0, 1e-3]).is_finite());
    }

    #[test]
    fn group_cov_fraction() {
        let items = vec![
            // Group A: consistent. Group B: wild. Group C: too small.
            ("a", 1.0),
            ("a", 1.1),
            ("a", 0.9),
            ("b", 0.1),
            ("b", 10.0),
            ("b", 0.2),
            ("c", 5.0),
        ];
        let frac = fraction_of_groups_with_low_cov(items, 1.0, 2);
        assert!((frac - 0.5).abs() < 1e-12);
    }
}
