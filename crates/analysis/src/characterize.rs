//! Figure-by-figure characterization of a trace (§3 of the paper).
//!
//! Every public function regenerates the data behind one figure; the
//! `rc-bench` binaries print them in the paper's format.

use serde::{Deserialize, Serialize};

use rc_core::labels::classify_vm;
use rc_ml::fft::PeriodicityConfig;
use rc_trace::Trace;
use rc_types::time::Timestamp;
use rc_types::vm::{Party, RegionId, VmType};

use crate::spearman::CorrelationMatrix;
use crate::stats::{fraction_of_groups_with_low_cov, Cdf};

/// Telemetry readings sampled per VM for utilization summaries.
const UTIL_SAMPLES: usize = 240;

/// A CDF split by party, as every §3 figure plots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartyCdfs {
    /// First-party VMs only.
    pub first: Cdf,
    /// Third-party VMs only.
    pub third: Cdf,
    /// The whole platform.
    pub all: Cdf,
}

impl PartyCdfs {
    fn build(samples: Vec<(Party, f64)>) -> Self {
        let first = samples.iter().filter(|(p, _)| *p == Party::First).map(|(_, v)| *v).collect();
        let third = samples.iter().filter(|(p, _)| *p == Party::Third).map(|(_, v)| *v).collect();
        let all = samples.into_iter().map(|(_, v)| v).collect();
        PartyCdfs { first: Cdf::new(first), third: Cdf::new(third), all: Cdf::new(all) }
    }
}

/// Figure 1: CDFs of average and P95-of-max CPU utilization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UtilizationCdfs {
    /// Average utilization per VM.
    pub avg: PartyCdfs,
    /// 95th percentile of the per-interval maximum per VM.
    pub p95_max: PartyCdfs,
}

/// Computes Figure 1's data.
pub fn utilization_cdfs(trace: &Trace) -> UtilizationCdfs {
    let mut avg_samples = Vec::with_capacity(trace.n_vms());
    let mut p95_samples = Vec::with_capacity(trace.n_vms());
    for id in trace.vm_ids() {
        let party = trace.vm(id).party;
        let (avg, p95) = trace.vm_util_summary(id, UTIL_SAMPLES);
        avg_samples.push((party, avg));
        p95_samples.push((party, p95));
    }
    UtilizationCdfs { avg: PartyCdfs::build(avg_samples), p95_max: PartyCdfs::build(p95_samples) }
}

/// Figures 2–3: share of VMs per size category, stacked by party.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SizeBreakdown {
    /// Category labels (e.g. "1", "2", "4", ... cores).
    pub labels: Vec<String>,
    /// Share per category among first-party VMs.
    pub first: Vec<f64>,
    /// Share per category among third-party VMs.
    pub third: Vec<f64>,
    /// Share per category among all VMs.
    pub all: Vec<f64>,
}

fn breakdown<F: Fn(&rc_types::telemetry::VmRecord) -> usize>(
    trace: &Trace,
    labels: Vec<String>,
    category: F,
) -> SizeBreakdown {
    let k = labels.len();
    let mut first = vec![0u64; k];
    let mut third = vec![0u64; k];
    for vm in &trace.vms {
        let c = category(vm).min(k - 1);
        match vm.party {
            Party::First => first[c] += 1,
            Party::Third => third[c] += 1,
        }
    }
    let nf: u64 = first.iter().sum();
    let nt: u64 = third.iter().sum();
    let shares = |counts: &[u64], total: u64| -> Vec<f64> {
        counts.iter().map(|&c| c as f64 / total.max(1) as f64).collect()
    };
    let all_counts: Vec<u64> = first.iter().zip(&third).map(|(a, b)| a + b).collect();
    SizeBreakdown {
        labels,
        first: shares(&first, nf),
        third: shares(&third, nt),
        all: shares(&all_counts, nf + nt),
    }
}

/// Computes Figure 2 (virtual cores per VM).
pub fn cores_breakdown(trace: &Trace) -> SizeBreakdown {
    let labels = vec!["1".into(), "2".into(), "4".into(), "8".into(), ">8".into()];
    breakdown(trace, labels, |vm| match vm.sku.cores {
        1 => 0,
        2 => 1,
        4 => 2,
        8 => 3,
        _ => 4,
    })
}

/// Computes Figure 3 (memory per VM, GB).
pub fn memory_breakdown(trace: &Trace) -> SizeBreakdown {
    let labels =
        vec!["0.75".into(), "1.75".into(), "3.5".into(), "7".into(), "14".into(), ">14".into()];
    breakdown(trace, labels, |vm| {
        let m = vm.sku.memory_gb;
        if m <= 0.76 {
            0
        } else if m <= 1.76 {
            1
        } else if m <= 3.6 {
            2
        } else if m <= 7.1 {
            3
        } else if m <= 14.1 {
            4
        } else {
            5
        }
    })
}

/// Computes Figure 4: CDF of maximum deployment size, under the paper's
/// day-grouped redefinition ("the set of VMs from each subscription that
/// are deployed to a region during a day").
pub fn deployment_size_cdfs(trace: &Trace) -> PartyCdfs {
    use std::collections::HashMap;
    let mut groups: HashMap<(u32, u16, u64), u64> = HashMap::new();
    for vm in &trace.vms {
        *groups.entry((vm.subscription.0, vm.region.0, vm.created.day_index())).or_default() += 1;
    }
    let samples = groups
        .into_iter()
        .map(|((sub, _, _), count)| (trace.subscriptions[sub as usize].party, count as f64))
        .collect();
    PartyCdfs::build(samples)
}

/// Computes Figure 5: CDF of VM lifetime in hours, over VMs that started
/// and completed inside the observation window (94% in the paper).
pub fn lifetime_cdfs(trace: &Trace) -> PartyCdfs {
    let samples = trace
        .vm_ids()
        .filter(|&id| trace.fully_observed(id))
        .map(|id| {
            let vm = trace.vm(id);
            (vm.party, vm.lifetime().as_hours_f64())
        })
        .collect();
    PartyCdfs::build(samples)
}

/// Figure 6: share of core-hours per workload class.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, Default)]
pub struct ClassShares {
    /// Delay-insensitive share of core-hours.
    pub delay_insensitive: f64,
    /// Interactive share of core-hours.
    pub interactive: f64,
    /// VMs not observed for 3 consecutive days ("Unknown").
    pub unknown: f64,
}

/// Figure 6's three panels: total, first-party, third-party.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClassCoreHours {
    /// All VMs.
    pub total: ClassShares,
    /// First-party VMs.
    pub first: ClassShares,
    /// Third-party VMs.
    pub third: ClassShares,
}

/// Computes Figure 6 by running the FFT classifier over the trace.
pub fn class_core_hours(trace: &Trace) -> ClassCoreHours {
    let cfg = PeriodicityConfig::default();
    // Accumulators: [DI, interactive, unknown] core-hours per party.
    let mut acc: [[f64; 3]; 2] = [[0.0; 3]; 2];
    for id in trace.vm_ids() {
        let vm = trace.vm(id);
        let end = vm.deleted.min(trace.window_end());
        let ch = vm.sku.cores as f64 * end.since(vm.created).as_hours_f64();
        let class = classify_vm(trace, id, vm.lifetime(), &cfg);
        let slot = match class {
            Some(0) => 0,
            Some(_) => 1,
            None => 2,
        };
        let p = usize::from(vm.party == Party::Third);
        acc[p][slot] += ch;
    }
    let shares = |a: [f64; 3]| {
        let total: f64 = a.iter().sum();
        let t = total.max(1e-9);
        ClassShares { delay_insensitive: a[0] / t, interactive: a[1] / t, unknown: a[2] / t }
    };
    let total = [acc[0][0] + acc[1][0], acc[0][1] + acc[1][1], acc[0][2] + acc[1][2]];
    ClassCoreHours { total: shares(total), first: shares(acc[0]), third: shares(acc[1]) }
}

/// Figure 7: VM arrivals per hour at one region over one week.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArrivalSeries {
    /// First day of the window (days since trace epoch).
    pub start_day: u64,
    /// Arrivals per hour, 168 entries.
    pub per_hour: Vec<u64>,
}

/// Computes Figure 7 for `region` over the week starting at `start_day`.
pub fn arrivals_per_hour(trace: &Trace, region: RegionId, start_day: u64) -> ArrivalSeries {
    let start = Timestamp::from_days(start_day);
    let end = Timestamp::from_days(start_day + 7);
    let mut per_hour = vec![0u64; 168];
    for vm in &trace.vms {
        if vm.region == region && vm.created >= start && vm.created < end {
            let hour = (vm.created.as_secs() - start.as_secs()) / 3600;
            per_hour[hour as usize] += 1;
        }
    }
    ArrivalSeries { start_day, per_hour }
}

/// Computes Figure 8: Spearman correlations between the seven §3 metrics.
///
/// The workload class only exists for VMs observed at least 3 days, so
/// the matrix is computed over classified VMs (numbering the classes 1 =
/// delay-insensitive and 2 = interactive, as the paper does). `party`
/// restricts the population (`None` = whole platform).
pub fn metric_correlations(trace: &Trace, party: Option<Party>) -> CorrelationMatrix {
    use std::collections::HashMap;
    // Max day-grouped deployment size per (subscription, region, day).
    let mut groups: HashMap<(u32, u16, u64), u64> = HashMap::new();
    for vm in &trace.vms {
        *groups.entry((vm.subscription.0, vm.region.0, vm.created.day_index())).or_default() += 1;
    }
    let cfg = PeriodicityConfig::default();
    let mut avg_col = Vec::new();
    let mut p95_col = Vec::new();
    let mut cores_col = Vec::new();
    let mut mem_col = Vec::new();
    let mut life_col = Vec::new();
    let mut dep_col = Vec::new();
    let mut class_col = Vec::new();
    for id in trace.vm_ids() {
        let vm = trace.vm(id);
        if party.is_some_and(|p| vm.party != p) {
            continue;
        }
        let Some(class) = classify_vm(trace, id, vm.lifetime(), &cfg) else {
            continue;
        };
        let (avg, p95) = trace.vm_util_summary(id, UTIL_SAMPLES);
        avg_col.push(avg);
        p95_col.push(p95);
        cores_col.push(vm.sku.cores as f64);
        mem_col.push(vm.sku.memory_gb);
        life_col.push(vm.lifetime().as_hours_f64());
        dep_col.push(groups[&(vm.subscription.0, vm.region.0, vm.created.day_index())] as f64);
        class_col.push(1.0 + class as f64);
    }
    CorrelationMatrix::compute(&[
        ("avg util".to_string(), avg_col),
        ("p95 util".to_string(), p95_col),
        ("cores".to_string(), cores_col),
        ("memory".to_string(), mem_col),
        ("lifetime".to_string(), life_col),
        ("deployment".to_string(), dep_col),
        ("class".to_string(), class_col),
    ])
}

/// §3.1's VM-type statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VmTypeStats {
    /// IaaS share of all VMs.
    pub iaas_vm_share: f64,
    /// IaaS share of first-party VMs.
    pub first_iaas_share: f64,
    /// IaaS share of third-party VMs.
    pub third_iaas_share: f64,
    /// PaaS share of total core-hours.
    pub paas_core_hour_share: f64,
    /// IaaS share of third-party core-hours.
    pub third_iaas_core_hour_share: f64,
    /// IaaS share of first-party core-hours.
    pub first_iaas_core_hour_share: f64,
    /// Fraction of subscriptions whose VMs are all one type.
    pub single_type_subscription_fraction: f64,
}

/// Computes §3.1's statistics.
pub fn vm_type_stats(trace: &Trace) -> VmTypeStats {
    use std::collections::HashMap;
    let mut counts = [[0u64; 2]; 2]; // [party][type]
    let mut core_hours = [[0f64; 2]; 2];
    let mut sub_types: HashMap<u32, [bool; 2]> = HashMap::new();
    for vm in &trace.vms {
        let p = usize::from(vm.party == Party::Third);
        let t = usize::from(vm.vm_type() == VmType::Paas);
        counts[p][t] += 1;
        let end = vm.deleted.min(trace.window_end());
        core_hours[p][t] += vm.sku.cores as f64 * end.since(vm.created).as_hours_f64();
        sub_types.entry(vm.subscription.0).or_default()[t] = true;
    }
    let total: u64 = counts.iter().flatten().sum();
    let iaas: u64 = counts[0][0] + counts[1][0];
    let total_ch: f64 = core_hours.iter().flatten().sum();
    let single = sub_types.values().filter(|t| !(t[0] && t[1])).count();
    VmTypeStats {
        iaas_vm_share: iaas as f64 / total.max(1) as f64,
        first_iaas_share: counts[0][0] as f64 / (counts[0][0] + counts[0][1]).max(1) as f64,
        third_iaas_share: counts[1][0] as f64 / (counts[1][0] + counts[1][1]).max(1) as f64,
        paas_core_hour_share: (core_hours[0][1] + core_hours[1][1]) / total_ch.max(1e-9),
        third_iaas_core_hour_share: core_hours[1][0]
            / (core_hours[1][0] + core_hours[1][1]).max(1e-9),
        first_iaas_core_hour_share: core_hours[0][0]
            / (core_hours[0][0] + core_hours[0][1]).max(1e-9),
        single_type_subscription_fraction: single as f64 / sub_types.len().max(1) as f64,
    }
}

/// Per-subscription consistency: the fraction of subscriptions (with at
/// least 3 VMs) whose CoV of each metric is below 1 — the §3 statistic
/// that justifies subscription-keyed prediction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConsistencyReport {
    /// Average CPU utilization (§3.2: ~80% of subscriptions below 1).
    pub avg_util: f64,
    /// Cores per VM (§3.3: nearly all below 1).
    pub cores: f64,
    /// Memory per VM.
    pub memory: f64,
    /// Lifetime (§3.5: ~75% below 1).
    pub lifetime: f64,
    /// Day-grouped deployment size (§3.4: nearly all below 1).
    pub deployment_size: f64,
}

/// Computes the consistency report.
pub fn subscription_consistency(trace: &Trace) -> ConsistencyReport {
    use std::collections::HashMap;
    let mut groups: HashMap<(u32, u16, u64), u64> = HashMap::new();
    for vm in &trace.vms {
        *groups.entry((vm.subscription.0, vm.region.0, vm.created.day_index())).or_default() += 1;
    }
    let per_vm = |f: &dyn Fn(rc_types::vm::VmId) -> f64| -> Vec<(u32, f64)> {
        trace.vm_ids().map(|id| (trace.vm(id).subscription.0, f(id))).collect()
    };
    let avg_util = per_vm(&|id| trace.vm_util_summary(id, 60).0);
    let cores = per_vm(&|id| trace.vm(id).sku.cores as f64);
    let memory = per_vm(&|id| trace.vm(id).sku.memory_gb);
    let lifetime = per_vm(&|id| trace.vm(id).lifetime().as_hours_f64());
    let deployment: Vec<(u32, f64)> =
        groups.iter().map(|((sub, _, _), &count)| (*sub, count as f64)).collect();
    ConsistencyReport {
        avg_util: fraction_of_groups_with_low_cov(avg_util, 1.0, 3),
        cores: fraction_of_groups_with_low_cov(cores, 1.0, 3),
        memory: fraction_of_groups_with_low_cov(memory, 1.0, 3),
        lifetime: fraction_of_groups_with_low_cov(lifetime, 1.0, 3),
        deployment_size: fraction_of_groups_with_low_cov(deployment, 1.0, 3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_trace::{Trace, TraceConfig};

    fn trace() -> Trace {
        Trace::generate(&TraceConfig {
            target_vms: 3_000,
            n_subscriptions: 150,
            days: 16,
            ..TraceConfig::small()
        })
    }

    #[test]
    fn party_cdfs_partition_the_population() {
        let t = trace();
        let cdfs = utilization_cdfs(&t);
        assert_eq!(cdfs.avg.first.len() + cdfs.avg.third.len(), cdfs.avg.all.len());
        assert_eq!(cdfs.avg.all.len(), t.n_vms());
        assert_eq!(cdfs.p95_max.all.len(), t.n_vms());
    }

    #[test]
    fn breakdowns_sum_to_one() {
        let t = trace();
        for b in [cores_breakdown(&t), memory_breakdown(&t)] {
            for shares in [&b.first, &b.third, &b.all] {
                let s: f64 = shares.iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "{shares:?}");
            }
            assert_eq!(b.labels.len(), b.all.len());
        }
    }

    #[test]
    fn deployment_cdf_counts_day_groups() {
        let t = trace();
        let cdfs = deployment_size_cdfs(&t);
        // Each group holds at least one VM, and the group count is bounded
        // by the VM count.
        assert!(cdfs.all.min().unwrap() >= 1.0);
        assert!(cdfs.all.len() <= t.n_vms());
        assert!(!cdfs.all.is_empty());
    }

    #[test]
    fn lifetime_cdf_uses_fully_observed_vms_only() {
        let t = trace();
        let cdfs = lifetime_cdfs(&t);
        let fully = t.vm_ids().filter(|&id| t.fully_observed(id)).count();
        assert_eq!(cdfs.all.len(), fully);
        assert!(fully < t.n_vms(), "some VMs must be censored");
    }

    #[test]
    fn class_shares_are_distributions() {
        let t = trace();
        let c = class_core_hours(&t);
        for s in [c.total, c.first, c.third] {
            let sum = s.delay_insensitive + s.interactive + s.unknown;
            assert!((sum - 1.0).abs() < 1e-6, "{s:?}");
            assert!(s.delay_insensitive >= 0.0 && s.interactive >= 0.0 && s.unknown >= 0.0);
        }
    }

    #[test]
    fn arrival_series_totals_match_region_counts() {
        let t = trace();
        let series = arrivals_per_hour(&t, rc_types::vm::RegionId(0), 2);
        let expected = t
            .vms
            .iter()
            .filter(|vm| {
                vm.region == rc_types::vm::RegionId(0)
                    && vm.created.day_index() >= 2
                    && vm.created.day_index() < 9
            })
            .count() as u64;
        assert_eq!(series.per_hour.iter().sum::<u64>(), expected);
    }

    #[test]
    fn correlations_have_unit_diagonal_and_symmetry() {
        let t = trace();
        let m = metric_correlations(&t, None);
        assert_eq!(m.labels.len(), 7);
        for i in 0..7 {
            assert!((m.values[i][i] - 1.0).abs() < 1e-12);
            for j in 0..7 {
                assert_eq!(m.values[i][j], m.values[j][i]);
                assert!(m.values[i][j].abs() <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn vm_type_stats_are_fractions() {
        let t = trace();
        let s = vm_type_stats(&t);
        for v in [
            s.iaas_vm_share,
            s.first_iaas_share,
            s.third_iaas_share,
            s.paas_core_hour_share,
            s.third_iaas_core_hour_share,
            s.first_iaas_core_hour_share,
            s.single_type_subscription_fraction,
        ] {
            assert!((0.0..=1.0).contains(&v), "{s:?}");
        }
    }

    #[test]
    fn consistency_report_is_fractional() {
        let t = trace();
        let r = subscription_consistency(&t);
        for v in [r.avg_util, r.cores, r.memory, r.lifetime, r.deployment_size] {
            assert!((0.0..=1.0).contains(&v), "{r:?}");
        }
    }
}
