//! Spearman rank correlation (Figure 8).

/// Average ranks (ties share the mean rank), 1-based.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("finite values"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        // Mean of ranks i+1 ..= j+1.
        let rank = (i + j + 2) as f64 / 2.0;
        for &idx in &order[i..=j] {
            out[idx] = rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman's rank correlation coefficient of two equal-length samples.
///
/// Returns 0 when either input is constant (no rank variation) or the
/// inputs are shorter than 2.
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "paired samples required");
    if xs.len() < 2 {
        return 0.0;
    }
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

/// Pearson correlation of two equal-length slices; 0 when degenerate.
fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx < 1e-12 || vy < 1e-12 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// A labelled symmetric correlation matrix.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CorrelationMatrix {
    /// Metric labels, in row/column order.
    pub labels: Vec<String>,
    /// Row-major coefficients.
    pub values: Vec<Vec<f64>>,
}

impl CorrelationMatrix {
    /// Computes the pairwise Spearman matrix over named columns.
    ///
    /// # Panics
    ///
    /// Panics when columns have unequal lengths.
    pub fn compute(columns: &[(String, Vec<f64>)]) -> Self {
        let labels: Vec<String> = columns.iter().map(|(l, _)| l.clone()).collect();
        let k = columns.len();
        let mut values = vec![vec![0.0; k]; k];
        for i in 0..k {
            values[i][i] = 1.0;
            for j in i + 1..k {
                let r = spearman(&columns[i].1, &columns[j].1);
                values[i][j] = r;
                values[j][i] = r;
            }
        }
        CorrelationMatrix { labels, values }
    }

    /// Coefficient by label pair.
    pub fn get(&self, a: &str, b: &str) -> Option<f64> {
        let i = self.labels.iter().position(|l| l == a)?;
        let j = self.labels.iter().position(|l| l == b)?;
        Some(self.values[i][j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_monotone_relationships() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| v * v).collect(); // monotone, nonlinear
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((spearman(&x, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_data_is_near_zero() {
        let x: Vec<f64> = (0..1000).map(|i| ((i * 7919) % 1000) as f64).collect();
        let y: Vec<f64> = (0..1000).map(|i| ((i * 104729) % 1000) as f64).collect();
        assert!(spearman(&x, &y).abs() < 0.1);
    }

    #[test]
    fn ties_get_average_ranks() {
        let r = ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn constant_input_yields_zero() {
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let cols = vec![
            ("a".to_string(), vec![1.0, 2.0, 3.0, 4.0]),
            ("b".to_string(), vec![2.0, 4.0, 6.0, 8.0]),
            ("c".to_string(), vec![4.0, 3.0, 2.0, 1.0]),
        ];
        let m = CorrelationMatrix::compute(&cols);
        for i in 0..3 {
            assert_eq!(m.values[i][i], 1.0);
            for j in 0..3 {
                assert_eq!(m.values[i][j], m.values[j][i]);
            }
        }
        assert!((m.get("a", "b").unwrap() - 1.0).abs() < 1e-12);
        assert!((m.get("a", "c").unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(m.get("a", "zzz"), None);
    }
}
