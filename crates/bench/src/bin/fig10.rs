//! Figure 10: latency of model execution per metric (median and p99),
//! measured by replaying the test month against the client library with
//! the result cache disabled-by-uniqueness (every request unique).

use std::time::Instant;

use rc_bench::{experiment_pipeline, experiment_trace, percentile_sorted};
use rc_core::{labels::vm_inputs, ClientConfig, RcClient};
use rc_store::Store;
use rc_types::{PredictionMetric, VmId};

fn main() {
    let trace = experiment_trace();
    let output = experiment_pipeline(&trace);
    let store = Store::in_memory();
    output.publish(&store, 0.5).expect("publish");
    let client = RcClient::new(store, ClientConfig::default());
    assert!(client.initialize());

    // Replay distinct VMs so every request misses the result cache and
    // executes the model (the figure measures model execution).
    let ids: Vec<VmId> = (0..trace.n_vms() as u64)
        .step_by((trace.n_vms() / 30_000).max(1))
        .map(VmId)
        .collect();

    println!("Figure 10: latency of model execution (result-cache misses)");
    println!("{:<24} {:>10} {:>10} {:>10}", "Metric", "median", "p99", "samples");
    rc_bench::rule(58);
    for metric in PredictionMetric::ALL {
        let mut lat_us: Vec<f64> = Vec::with_capacity(ids.len());
        for &id in &ids {
            let inputs = vm_inputs(&trace, id);
            // The figure measures *model execution*: empty the result
            // cache so every request takes the miss path.
            client.clear_result_cache();
            let started = Instant::now();
            let _ = client.predict_single(metric.model_name(), &inputs);
            lat_us.push(started.elapsed().as_nanos() as f64 / 1_000.0);
        }
        lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "{:<24} {:>8.1}us {:>8.1}us {:>10}",
            metric.label(),
            percentile_sorted(&lat_us, 0.5),
            percentile_sorted(&lat_us, 0.99),
            lat_us.len()
        );
    }
    rc_bench::rule(58);
    println!("paper: medians 95-147 us, p99s 139-258 us (2-core VM client)");

    // Result-cache hit latency (§6.1: p99 ~ 1.3 us).
    let inputs = vm_inputs(&trace, VmId(0));
    let _ = client.predict_single("VM_P95UTIL", &inputs);
    let mut hits_us = Vec::with_capacity(100_000);
    for _ in 0..100_000 {
        let started = Instant::now();
        let _ = client.predict_single("VM_P95UTIL", &inputs);
        hits_us.push(started.elapsed().as_nanos() as f64 / 1_000.0);
    }
    hits_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "result-cache hit latency: median {:.2}us p99 {:.2}us (paper p99: ~1.3us)",
        percentile_sorted(&hits_us, 0.5),
        percentile_sorted(&hits_us, 0.99)
    );
}
