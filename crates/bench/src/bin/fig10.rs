//! Figure 10: latency of model execution per metric (median and p99),
//! measured by replaying the test month against the client library with
//! the result cache disabled-by-uniqueness (every request unique).
//!
//! Latencies come from the client's own predict-path histograms in the
//! rc-obs registry — the bin no longer times calls itself.

use rc_bench::{experiment_pipeline, experiment_trace, histogram_delta};
use rc_core::{labels::vm_inputs, ClientConfig, RcClient};
use rc_store::Store;
use rc_types::{PredictionMetric, VmId};

fn main() {
    let trace = experiment_trace();
    let output = experiment_pipeline(&trace);
    let store = Store::in_memory();
    output.publish(&store, 0.5).expect("publish");
    let client = RcClient::new(store, ClientConfig::default());
    assert!(client.initialize());
    let registry = rc_obs::global();

    // Replay distinct VMs so every request misses the result cache and
    // executes the model (the figure measures model execution).
    let ids: Vec<VmId> =
        (0..trace.n_vms() as u64).step_by((trace.n_vms() / 30_000).max(1)).map(VmId).collect();

    println!(
        "Figure 10: latency of model execution (result-cache misses, from the rc-obs registry)"
    );
    println!("{:<24} {:>10} {:>10} {:>10}", "Metric", "median", "p99", "samples");
    rc_bench::rule(58);
    for metric in PredictionMetric::ALL {
        let before = registry.snapshot();
        for &id in &ids {
            let inputs = vm_inputs(&trace, id);
            // The figure measures *model execution*: empty the result
            // cache so every request takes the miss path.
            client.clear_result_cache();
            let _ = client.predict_single(metric.model_name(), &inputs);
        }
        let after = registry.snapshot();
        let miss = histogram_delta(&after, &before, rc_obs::CLIENT_PREDICT_MISS_LATENCY_NS);
        println!(
            "{:<24} {:>8.1}us {:>8.1}us {:>10}",
            metric.label(),
            miss.quantile(0.5) / 1_000.0,
            miss.quantile(0.99) / 1_000.0,
            miss.count
        );
    }
    rc_bench::rule(58);
    println!("paper: medians 95-147 us, p99s 139-258 us (2-core VM client)");

    // Result-cache hit latency (§6.1: p99 ~ 1.3 us), from the hit-path
    // histogram.
    let inputs = vm_inputs(&trace, VmId(0));
    let _ = client.predict_single("VM_P95UTIL", &inputs);
    let before = registry.snapshot();
    for _ in 0..100_000 {
        let _ = client.predict_single("VM_P95UTIL", &inputs);
    }
    let after = registry.snapshot();
    let hit = histogram_delta(&after, &before, rc_obs::CLIENT_PREDICT_HIT_LATENCY_NS);
    println!(
        "result-cache hit latency: median {:.2}us p99 {:.2}us over {} hits (paper p99: ~1.3us)",
        hit.quantile(0.5) / 1_000.0,
        hit.quantile(0.99) / 1_000.0,
        hit.count
    );
}
