//! §6.2 sensitivity to MAX_OVERSUB: 125% / 120% / 115% for
//! RC-informed-soft, against Baseline.

use rc_bench::scheduler_harness::{print_row, Harness, Variant};

fn main() {
    let harness = Harness::build(rc_bench::experiment_trace());
    println!(
        "Section 6.2: sensitivity to MAX_OVERSUB ({} arrivals, {} servers)",
        harness.requests.len(),
        harness.n_servers
    );
    rc_bench::rule(120);
    let baseline = harness.run(Variant::Baseline, 1.25, 1.0);
    print_row(&baseline);
    for max_oversub in [1.25, 1.20, 1.15] {
        let mut report = harness.run(Variant::RcInformedSoft, max_oversub, 1.0);
        report.policy = format!("RC-soft @ {:.0}%", max_oversub * 100.0);
        print_row(&report);
    }
    rc_bench::rule(120);
    println!(
        "paper shape: lowering MAX_OVERSUB raises failures (still far below Baseline at 115%)"
    );
    println!("  and lowers >100% readings (125% -> 77 readings, 115% -> 22 readings).");
}
