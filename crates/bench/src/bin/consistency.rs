//! §3's per-subscription consistency statistics and §3.1's VM-type split —
//! the evidence that history predicts the future.

use rc_analysis::{subscription_consistency, vm_type_stats};
use rc_bench::{experiment_trace, pct};

fn main() {
    let trace = experiment_trace();
    let stats = vm_type_stats(&trace);
    println!("Section 3.1: VM type");
    println!("  IaaS share of VMs:                 {} (paper: 52%)", pct(stats.iaas_vm_share));
    println!("  first-party IaaS share:            {} (paper: 53%)", pct(stats.first_iaas_share));
    println!("  third-party IaaS share:            {} (paper: 47%)", pct(stats.third_iaas_share));
    println!(
        "  PaaS share of core-hours:          {} (paper: 61%)",
        pct(stats.paas_core_hour_share)
    );
    println!(
        "  third-party IaaS core-hour share:  {} (paper: 85%)",
        pct(stats.third_iaas_core_hour_share)
    );
    println!(
        "  first-party IaaS core-hour share:  {} (paper: 23%)",
        pct(stats.first_iaas_core_hour_share)
    );
    println!(
        "  single-type subscriptions:         {} (paper: 96%)",
        pct(stats.single_type_subscription_fraction)
    );
    println!();
    let report = subscription_consistency(&trace);
    println!("Per-subscription consistency: fraction of subscriptions with CoV < 1");
    println!("  avg CPU utilization: {} (paper: ~80%)", pct(report.avg_util));
    println!("  cores per VM:        {} (paper: nearly all)", pct(report.cores));
    println!("  memory per VM:       {} (paper: nearly all)", pct(report.memory));
    println!("  lifetime:            {} (paper: ~75%)", pct(report.lifetime));
    println!("  deployment size:     {} (paper: nearly all)", pct(report.deployment_size));
}
