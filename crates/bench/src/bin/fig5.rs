//! Figure 5: CDF of VM lifetime (fully-observed VMs).

use rc_analysis::lifetime_cdfs;
use rc_bench::experiment_trace;

fn main() {
    let trace = experiment_trace();
    let cdfs = lifetime_cdfs(&trace);
    let xs_hours =
        [0.083, 0.25, 0.5, 1.0, 2.0, 6.0, 12.0, 24.0, 48.0, 96.0, 168.0, 336.0, 720.0, 2160.0];
    println!("Figure 5: CDF of VM lifetime");
    println!("{:>10} | {:>9} {:>9} {:>9}", "lifetime", "first", "third", "all");
    rc_bench::rule(46);
    for &h in &xs_hours {
        let label = if h < 1.0 {
            format!("{:.0} min", h * 60.0)
        } else if h < 48.0 {
            format!("{h:.0} h")
        } else {
            format!("{:.0} d", h / 24.0)
        };
        println!(
            "{:>10} | {:>9.3} {:>9.3} {:>9.3}",
            label,
            cdfs.first.fraction_below(h),
            cdfs.third.fraction_below(h),
            cdfs.all.fraction_below(h)
        );
    }
    rc_bench::rule(46);
    println!(
        "paper anchor: >90% of lifetimes end below 1 day (ours: {})",
        rc_bench::pct(cdfs.all.fraction_below(24.0))
    );
}
