//! Figure 8: Spearman correlations between the §3 metrics.

use rc_analysis::metric_correlations;
use rc_bench::experiment_trace;
use rc_types::vm::Party;

fn print_matrix(m: &rc_analysis::CorrelationMatrix) {
    print!("{:>12}", "");
    for l in &m.labels {
        print!(" {l:>10}");
    }
    println!();
    for (i, l) in m.labels.iter().enumerate() {
        print!("{l:>12}");
        for j in 0..m.labels.len() {
            print!(" {:>10.2}", m.values[i][j]);
        }
        println!();
    }
}

fn main() {
    let trace = experiment_trace();
    eprintln!("[rc-bench] computing correlations (FFT classification per long-lived VM)...");
    println!("Figure 8: Spearman correlations, entire platform (classified VMs)");
    let all = metric_correlations(&trace, None);
    print_matrix(&all);
    println!();
    println!("First-party only:");
    print_matrix(&metric_correlations(&trace, Some(Party::First)));
    println!();
    println!("Third-party only:");
    print_matrix(&metric_correlations(&trace, Some(Party::Third)));
    println!();
    println!(
        "paper anchors: avg-p95 strongly positive (ours {:.2}); cores-memory strongly positive (ours {:.2}); lifetime-cores ~0 (ours {:.2})",
        all.get("avg util", "p95 util").unwrap(),
        all.get("cores", "memory").unwrap(),
        all.get("lifetime", "cores").unwrap()
    );
}
