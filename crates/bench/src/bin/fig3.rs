//! Figure 3: memory per VM in GBytes (stacked shares).

use rc_analysis::memory_breakdown;
use rc_bench::{experiment_trace, pct};

fn main() {
    let trace = experiment_trace();
    let b = memory_breakdown(&trace);
    println!("Figure 3: memory per VM in GB (share of VMs)");
    println!("{:>8} | {:>10} {:>10} {:>10}", "GB", "first", "third", "all");
    rc_bench::rule(46);
    for (i, label) in b.labels.iter().enumerate() {
        println!(
            "{:>8} | {:>10} {:>10} {:>10}",
            label,
            pct(b.first[i]),
            pct(b.third[i]),
            pct(b.all[i])
        );
    }
    rc_bench::rule(46);
    println!(
        "paper anchor: ~70% of VMs need <4 GB (ours: {})",
        pct(b.all[0] + b.all[1] + b.all[2])
    );
}
