//! Table 4: prediction quality — accuracy, per-bucket share / precision /
//! recall, and the confidence-thresholded P^theta / R^theta.

use rc_bench::{experiment_pipeline, experiment_trace};

fn main() {
    let trace = experiment_trace();
    let output = experiment_pipeline(&trace);
    println!("Table 4: RC's prediction quality (theta = 0.6)");
    println!(
        "{:<22} {:>5} | {}| {:>5} {:>5}",
        "Metric",
        "Acc.",
        (1..=4).map(|i| format!("{:>5}B{i} {:>5} {:>5} ", "%", "P", "R")).collect::<String>(),
        "P^th",
        "R^th"
    );
    rc_bench::rule(110);
    for report in &output.reports {
        let mut row = format!("{:<22} {:>5.2} |", report.metric.label(), report.accuracy);
        for i in 0..4 {
            if let Some(b) = report.buckets.get(i) {
                row +=
                    &format!(" {:>4.0}% {:>5.2} {:>5.2} ", b.share * 100.0, b.precision, b.recall);
            } else {
                row += &format!(" {:>4} {:>5} {:>5} ", "NA", "NA", "NA");
            }
        }
        row += &format!("| {:>5.2} {:>5.2}", report.p_theta, report.r_theta);
        println!("{row}");
    }
    rc_bench::rule(110);
    println!("paper accuracies: avg .81, p95 .83, deploy-vms .83, deploy-cores .86, lifetime .79, class .90");
    println!();
    println!("Most important attributes per model (paper: per-bucket history dominates):");
    for report in &output.reports {
        println!(
            "  {:<22} {}",
            report.metric.label(),
            report.top_features.iter().take(5).cloned().collect::<Vec<_>>().join(", ")
        );
    }
    println!();
    println!(
        "train/test sizes: {}",
        output
            .reports
            .iter()
            .map(|r| format!(
                "{}={}k/{}k",
                r.metric.model_name(),
                r.n_train / 1000,
                r.n_test.max(1000) / 1000
            ))
            .collect::<Vec<_>>()
            .join(" ")
    );
}
