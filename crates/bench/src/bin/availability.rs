//! Answered-rate sweep: store availability 1.0 → 0.0 under a seeded
//! fault plan, with the client's degradation ladder (retry/backoff,
//! circuit breakers, stale disk serves) keeping the answered rate pinned
//! at 100% at every point.
//!
//! All output on stdout is derived from seeded state only — no wall
//! times — so two runs with the same `RC_SCALE` / `RC_CHAOS_SEED` must be
//! byte-identical (CI diffs them). Progress goes to stderr.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rc_core::labels::vm_inputs;
use rc_core::{CacheMode, ClientConfig, ClientInputs, RcClient, RetryPolicy, Served};
use rc_obs::BenchReport;
use rc_store::{FaultPlan, FaultyStore, Store};
use rc_trace::{Trace, TraceConfig};
use rc_types::{PredictionMetric, VmId};
use serde::Value;

fn chaos_seed() -> u64 {
    std::env::var("RC_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xC4A0_5017)
}

fn main() {
    let started = Instant::now();
    let s = rc_bench::scale();
    let seed = chaos_seed();
    let trace_config = TraceConfig {
        seed: 0x5059_2017,
        days: 24,
        n_subscriptions: ((2_000.0 * s) as usize).max(100),
        target_vms: ((40_000.0 * s) as usize).max(2_000),
        n_regions: 4,
    };
    eprintln!(
        "[availability] trace: {} subscriptions, ~{} VMs (RC_SCALE={s}, seed {seed:#x})",
        trace_config.n_subscriptions, trace_config.target_vms
    );
    let trace = Trace::generate(&trace_config);
    let output = rc_core::run_pipeline(&trace, &rc_core::PipelineConfig::fast(trace_config.days))
        .expect("pipeline");
    let store = Store::in_memory();
    output.publish(&store, 0.5).expect("publish");

    let n_requests = ((8_000.0 * s) as usize).max(400);
    let n_vms = trace.n_vms() as u64;
    let requests: Vec<(&'static str, ClientInputs)> = (0..n_requests)
        .map(|i| {
            let vm = VmId((i as u64 * 7919) % n_vms);
            let metric = PredictionMetric::ALL[i % PredictionMetric::ALL.len()];
            (metric.model_name(), vm_inputs(&trace, vm))
        })
        .collect();

    // Prime a disk cache through the healthy store so the sweep's clients
    // always have a (stale) local copy to fall back on.
    let dir = std::env::temp_dir().join(format!("rc_availability_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let primer = RcClient::new(
            store.clone(),
            ClientConfig {
                mode: CacheMode::PullSync,
                disk_cache_dir: Some(dir.clone()),
                ..ClientConfig::default()
            },
        );
        assert!(primer.initialize(), "priming requires a healthy store");
        for (model, inputs) in &requests {
            let _ = primer.predict_single(model, inputs);
        }
    }
    eprintln!("[availability] disk cache primed; sweeping {} requests per point", requests.len());

    let registry = rc_obs::global();
    let sweep_before = registry.snapshot();
    let mut bench = BenchReport::new("avail");
    bench
        .set_config("scale", s)
        .set_config("chaos_seed", seed)
        .set_config("requests_per_point", requests.len() as u64)
        .set_config("points", 11u64);

    println!("Answered-rate sweep: store availability 1.0 -> 0.0 (seed {seed:#x})");
    println!(
        "{:>6} {:>9} {:>7} {:>7} {:>7} {:>9} {:>10} {:>9} {:>9}",
        "avail",
        "lookups",
        "hits",
        "fresh",
        "stale",
        "defaults",
        "predicted",
        "injected",
        "answered"
    );
    for step in 0..=10u32 {
        let p_unavailable = f64::from(step) / 10.0;
        let plan = FaultPlan {
            seed: seed.wrapping_add(u64::from(step)),
            p_unavailable,
            p_transient: 0.0,
            transient_burst: 0,
            p_latency_spike: 0.0,
            latency_spike: Duration::ZERO,
            p_corrupt: 0.05,
        };
        let faulty = FaultyStore::new(store.clone(), plan);
        // Zero disk expiry + a wide grace window: every disk entry is
        // served as stale, so the ladder's last data-bearing rung is
        // visible in the "stale" column as availability drops.
        let client = RcClient::with_backend(
            Arc::new(faulty.clone()),
            ClientConfig {
                mode: CacheMode::PullSync,
                disk_cache_dir: Some(dir.clone()),
                disk_cache_expiry: Duration::ZERO,
                stale_grace: Duration::from_secs(3600),
                disk_write_through: false,
                retry: RetryPolicy {
                    max_attempts: 3,
                    base_backoff: Duration::ZERO,
                    max_backoff: Duration::ZERO,
                    call_deadline: Duration::from_secs(30),
                    ..RetryPolicy::default()
                },
                ..ClientConfig::default()
            },
        );
        assert!(client.initialize(), "store or disk must bring the client up at every point");

        let (mut hits, mut fresh, mut stale, mut defaults, mut predicted) = (0u64, 0, 0, 0, 0u64);
        let mut answered = 0u64;
        for (model, inputs) in &requests {
            let (response, served) = client.predict_single_traced(model, inputs);
            answered += 1;
            if response.is_predicted() {
                predicted += 1;
            }
            match served {
                Served::Hit => hits += 1,
                Served::Fresh => fresh += 1,
                Served::Stale => stale += 1,
                Served::Default => defaults += 1,
            }
        }

        let lookups = client.lookup_count();
        // The contract under sweep: 100% of calls answered, and the
        // ladder rungs reconcile exactly with the lookup count.
        assert_eq!(answered, requests.len() as u64, "every call must return");
        assert_eq!(lookups, answered);
        assert_eq!(
            hits + fresh + stale + defaults,
            lookups,
            "reconciliation broke at availability {:.1}",
            1.0 - p_unavailable
        );
        println!(
            "{:>6.1} {:>9} {:>7} {:>7} {:>7} {:>9} {:>10} {:>9} {:>8}%",
            1.0 - p_unavailable,
            lookups,
            hits,
            fresh,
            stale,
            defaults,
            predicted,
            faulty.injector().injected().total(),
            100 * answered / lookups,
        );
        bench.set_result(
            &format!("avail_{:.1}", 1.0 - p_unavailable),
            Value::Object(vec![
                ("lookups".to_string(), Value::U64(lookups)),
                ("hits".to_string(), Value::U64(hits)),
                ("fresh".to_string(), Value::U64(fresh)),
                ("stale".to_string(), Value::U64(stale)),
                ("defaults".to_string(), Value::U64(defaults)),
                ("predicted".to_string(), Value::U64(predicted)),
                ("injected".to_string(), Value::U64(faulty.injector().injected().total())),
                ("answered".to_string(), Value::U64(answered)),
            ]),
        );
    }
    println!("answered-rate pinned at 100% across the whole sweep");
    let sweep_after = registry.snapshot();
    bench.set_counter_deltas(&sweep_after, &sweep_before);
    if let Some(h) = sweep_after.histogram(rc_obs::CLIENT_PREDICT_HIT_LATENCY_NS) {
        bench.set_quantiles("client_predict_hit_ns", h);
    }
    if let Some(h) = sweep_after.histogram(rc_obs::CLIENT_PREDICT_MISS_LATENCY_NS) {
        bench.set_quantiles("client_predict_miss_ns", h);
    }
    bench.set_span("bench.total", started.elapsed().as_nanos() as u64);
    match bench.write_default("BENCH_avail.json") {
        Ok(path) => eprintln!("[availability] wrote {}", path.display()),
        Err(e) => eprintln!("[availability] report write failed: {e}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
