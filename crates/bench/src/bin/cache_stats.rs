//! §6.1 cache statistics: result-cache hit rates, hits per model
//! execution, cache footprint, and simulated store latencies.

use rc_bench::{experiment_pipeline, experiment_trace, percentile_sorted};
use rc_core::{labels::vm_inputs, ClientConfig, RcClient};
use rc_store::{LatencyModel, Store};
use rc_types::PredictionMetric;

fn main() {
    let trace = experiment_trace();
    let output = experiment_pipeline(&trace);
    let store = Store::in_memory();
    output.publish(&store, 0.5).expect("publish");

    println!("Section 6.1 cache statistics");
    rc_bench::rule(72);
    // Replay the *test month's* prediction workload per metric: the
    // scheduler asks once per VM, and identical (subscription, size, day)
    // requests hit the result cache.
    let test_start = trace.config.days as u64 * 2 / 3;
    for metric in PredictionMetric::ALL {
        let client = RcClient::new(store.clone(), ClientConfig::default());
        assert!(client.initialize());
        let mut requests = 0u64;
        for id in trace.vm_ids() {
            let vm = trace.vm(id);
            if vm.created.day_index() < test_start {
                continue;
            }
            let _ = client.predict_single(metric.model_name(), &vm_inputs(&trace, id));
            requests += 1;
        }
        println!(
            "{:<24} requests {:>8}  hit-rate {:>6.1}%  hits/execution {:>6.1}  cache entries {:>7}",
            metric.label(),
            requests,
            client.result_cache_hit_rate() * 100.0,
            client.hits_per_execution(),
            client.result_cache_len()
        );
    }
    rc_bench::rule(72);
    println!("paper: an entry is accessed 18-68 times after its model execution, cache <= ~25 MB");
    println!();

    // Store latency with the paper's quantiles (pull-path cost).
    let lat_store = Store::with_latency(Some(LatencyModel::paper_store()));
    lat_store.put("features/0", vec![0u8; 850].into()).unwrap();
    let mut samples = Vec::with_capacity(2_000);
    for _ in 0..2_000 {
        let started = std::time::Instant::now();
        let _ = lat_store.get_latest("features/0").unwrap();
        samples.push(started.elapsed().as_nanos() as f64 / 1_000.0);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "simulated store GET (850 B record): median {:.2} ms, p99 {:.2} ms (paper: 2.9 / 5.6 ms)",
        percentile_sorted(&samples, 0.5) / 1_000.0,
        percentile_sorted(&samples, 0.99) / 1_000.0
    );
}
