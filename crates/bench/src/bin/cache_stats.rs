//! §6.1 cache statistics: result-cache hit rates, hits per model
//! execution, and simulated store latencies — every number read back from
//! the rc-obs metrics registry the instrumented layers write into, not
//! from hand-rolled accounting. Ends with a full registry snapshot dumped
//! as JSON and Prometheus text covering all four instrumented layers.

use std::time::Instant;

use rc_bench::{counter_delta, experiment_pipeline, experiment_trace, histogram_delta};
use rc_core::{labels::vm_inputs, ClientConfig, RcClient};
use rc_obs::BenchReport;
use rc_scheduler::{
    simulate, suggest_server_count, OracleSource, PolicyKind, SchedulerConfig, SimConfig, VmRequest,
};
use rc_store::{LatencyModel, Store};
use rc_types::time::Timestamp;
use rc_types::PredictionMetric;
use serde::Value;

fn main() {
    let started = Instant::now();
    let run_before = rc_obs::global().snapshot();
    let mut bench = BenchReport::new("cache");
    bench.set_config("scale", rc_bench::scale());
    let trace = experiment_trace();
    let output = experiment_pipeline(&trace);
    let store = Store::in_memory();
    output.publish(&store, 0.5).expect("publish");
    let registry = rc_obs::global();

    println!("Section 6.1 cache statistics (all numbers from the rc-obs registry)");
    {
        let probe = RcClient::new(store.clone(), ClientConfig::default());
        println!(
            "result cache: {} shards (exact per-shard counters, aggregated)",
            probe.result_cache_shards()
        );
    }
    rc_bench::rule(110);
    // Replay the *test month's* prediction workload per metric: the
    // scheduler asks once per VM, and identical (subscription, size, day)
    // requests hit the result cache. Snapshot deltas isolate each
    // metric's replay from everything else in the process-wide registry.
    let test_start = trace.config.days as u64 * 2 / 3;
    for metric in PredictionMetric::ALL {
        let client = RcClient::new(store.clone(), ClientConfig::default());
        assert!(client.initialize());
        let before = registry.snapshot();
        for id in trace.vm_ids() {
            let vm = trace.vm(id);
            if vm.created.day_index() < test_start {
                continue;
            }
            let _ = client.predict_single(metric.model_name(), &vm_inputs(&trace, id));
        }
        let after = registry.snapshot();

        let hits = counter_delta(&after, &before, rc_obs::CLIENT_RESULT_CACHE_HITS);
        let misses = counter_delta(&after, &before, rc_obs::CLIENT_RESULT_CACHE_MISSES);
        let execs = counter_delta(&after, &before, rc_obs::CLIENT_MODEL_EXECS);
        // The sharded cache's own counters must reconcile exactly with
        // what the instrumentation layer observed for this replay.
        let stats = client.result_cache_stats();
        assert_eq!(stats.hits, hits, "shard-aggregated hits match the registry delta");
        assert_eq!(stats.misses, misses, "shard-aggregated misses match the registry delta");
        let hit_latency = histogram_delta(&after, &before, rc_obs::CLIENT_PREDICT_HIT_LATENCY_NS);
        let requests = hits + misses;
        let hit_rate = if requests == 0 { 0.0 } else { hits as f64 / requests as f64 };
        let hits_per_exec = if execs == 0 { 0.0 } else { hits as f64 / execs as f64 };
        println!(
            "{:<24} requests {:>8}  hit-rate {:>6.1}%  hits/execution {:>6.1}  hit p99 {:>6.2}us  cache entries {:>7}",
            metric.label(),
            requests,
            hit_rate * 100.0,
            hits_per_exec,
            hit_latency.quantile(0.99) / 1_000.0,
            client.result_cache_len()
        );
        bench.set_result(
            metric.model_name(),
            Value::Object(vec![
                ("requests".to_string(), Value::U64(requests)),
                ("hits".to_string(), Value::U64(hits)),
                ("misses".to_string(), Value::U64(misses)),
                ("model_execs".to_string(), Value::U64(execs)),
                ("hit_rate".to_string(), Value::F64(hit_rate)),
                ("hits_per_exec".to_string(), Value::F64(hits_per_exec)),
                ("cache_entries".to_string(), Value::U64(client.result_cache_len() as u64)),
            ]),
        );
        bench.set_quantiles(&format!("{}_hit_ns", metric.model_name()), &hit_latency);
    }
    rc_bench::rule(110);
    println!("paper: an entry is accessed 18-68 times after its model execution, cache <= ~25 MB");
    println!();

    // Store pull cost with the paper's latency quantiles, read from the
    // store's own get-latency histogram (which includes the simulated
    // network spin).
    let lat_store = Store::with_latency(Some(LatencyModel::paper_store()));
    lat_store.put("features/0", vec![0u8; 850].into()).unwrap();
    let before = registry.snapshot();
    for _ in 0..2_000 {
        let _ = lat_store.get_latest("features/0").unwrap();
    }
    let after = registry.snapshot();
    let get_latency = histogram_delta(&after, &before, rc_obs::STORE_GET_LATENCY_NS);
    println!(
        "simulated store GET (850 B record): p50 {:.2} ms, p99 {:.2} ms over {} pulls (paper: 2.9 / 5.6 ms)",
        get_latency.quantile(0.5) / 1e6,
        get_latency.quantile(0.99) / 1e6,
        get_latency.count
    );
    bench.set_quantiles("store_get_ns", &get_latency);
    println!();

    // A short scheduler run so the fourth layer has registry activity in
    // the final dump (one week of arrivals, RC-informed soft rule).
    let sched_window = (Timestamp::ZERO, Timestamp::from_days(7));
    let requests = VmRequest::stream(&trace, sched_window.0, sched_window.1, 16);
    let config = SimConfig {
        n_servers: suggest_server_count(&requests, 16.0, 0.95),
        cores_per_server: 16.0,
        memory_per_server_gb: 112.0,
        scheduler: SchedulerConfig::new(PolicyKind::RcInformedSoft),
        util_shift: 0.0,
        tick_stride: 12,
        obs_tick_secs: rc_scheduler::OBS_TICK_DAILY,
        accuracy: None,
    };
    let before = registry.snapshot();
    simulate(&requests, &config, Box::new(OracleSource), sched_window);
    let after = registry.snapshot();
    println!(
        "scheduler warm-up week: placements {} failures {} relaxations {} readings {} (>100%: {})",
        counter_delta(&after, &before, rc_obs::SCHED_PLACEMENTS),
        counter_delta(&after, &before, rc_obs::SCHED_FAILURES),
        counter_delta(&after, &before, rc_obs::SCHED_RULE_RELAXATIONS),
        counter_delta(&after, &before, rc_obs::SCHED_READINGS),
        counter_delta(&after, &before, rc_obs::SCHED_OVERLOADED_READINGS),
    );
    bench.set_result(
        "scheduler_week",
        Value::Object(vec![
            (
                "placements".to_string(),
                Value::U64(counter_delta(&after, &before, rc_obs::SCHED_PLACEMENTS)),
            ),
            (
                "failures".to_string(),
                Value::U64(counter_delta(&after, &before, rc_obs::SCHED_FAILURES)),
            ),
            (
                "readings".to_string(),
                Value::U64(counter_delta(&after, &before, rc_obs::SCHED_READINGS)),
            ),
            (
                "overloaded".to_string(),
                Value::U64(counter_delta(&after, &before, rc_obs::SCHED_OVERLOADED_READINGS)),
            ),
        ]),
    );
    println!();

    // Full registry exposition: JSON round-trip plus Prometheus text,
    // with all four instrumented layers represented.
    let snapshot = registry.snapshot();
    let json = snapshot.to_json();
    let back: rc_obs::MetricsSnapshot =
        serde_json::from_slice(&json).expect("snapshot round-trips through JSON");
    assert_eq!(back, snapshot, "JSON round-trip must be lossless");
    let prometheus = snapshot.to_prometheus_text();
    println!(
        "registry snapshot: {} bytes JSON, {} lines Prometheus text",
        json.len(),
        prometheus.lines().count()
    );
    for prefix in ["rc_client_", "rc_pipeline_", "rc_store_", "rc_sched_"] {
        let counters = snapshot.counters.iter().filter(|c| c.name.starts_with(prefix)).count();
        let histograms = snapshot.histograms.iter().filter(|h| h.name.starts_with(prefix)).count();
        assert!(counters + histograms > 0, "layer {prefix} missing from the registry");
        println!("  {prefix:<13} {counters:>2} counters, {histograms} histograms");
    }
    let out_dir = std::path::Path::new("target");
    if std::fs::create_dir_all(out_dir).is_ok() {
        let json_path = out_dir.join("obs-snapshot.json");
        let prom_path = out_dir.join("obs-metrics.prom");
        if std::fs::write(&json_path, &json).is_ok()
            && std::fs::write(&prom_path, &prometheus).is_ok()
        {
            println!("  wrote {} and {}", json_path.display(), prom_path.display());
        }
    }

    bench.set_counter_deltas(&snapshot, &run_before);
    bench.set_span_timings(rc_obs::global_tracer(), "pipeline.");
    bench.set_span("bench.total", started.elapsed().as_nanos() as u64);
    match bench.write_default("BENCH_cache.json") {
        Ok(path) => eprintln!("[cache_stats] wrote {}", path.display()),
        Err(e) => eprintln!("[cache_stats] report write failed: {e}"),
    }
}
