//! Figure 2: number of virtual CPU cores per VM (stacked shares).

use rc_analysis::cores_breakdown;
use rc_bench::{experiment_trace, pct};

fn main() {
    let trace = experiment_trace();
    let b = cores_breakdown(&trace);
    println!("Figure 2: virtual CPU cores per VM (share of VMs)");
    println!("{:>8} | {:>10} {:>10} {:>10}", "cores", "first", "third", "all");
    rc_bench::rule(46);
    for (i, label) in b.labels.iter().enumerate() {
        println!(
            "{:>8} | {:>10} {:>10} {:>10}",
            label,
            pct(b.first[i]),
            pct(b.third[i]),
            pct(b.all[i])
        );
    }
    rc_bench::rule(46);
    println!("paper anchor: ~80% of VMs need 1-2 cores (ours: {})", pct(b.all[0] + b.all[1]));
}
