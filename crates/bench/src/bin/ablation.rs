//! Ablation: how much of the prediction accuracy comes from the
//! per-subscription history features?
//!
//! §6.1: "For all metrics, the most important attributes in determining
//! prediction accuracy are the percentage of VMs classified into each
//! bucket to date in the subscription." This experiment retrains every
//! model with the history record zeroed out — leaving only client inputs
//! (type, size, OS, service name, deployment time) — and compares.

use rc_bench::{experiment_pipeline_config, experiment_trace};
use rc_core::run_pipeline;

fn main() {
    let trace = experiment_trace();
    let config = experiment_pipeline_config(trace.config.days);
    eprintln!("[rc-bench] training with full features...");
    let full = run_pipeline(&trace, &config).expect("full pipeline");
    eprintln!("[rc-bench] training with history ablated...");
    let ablated = run_pipeline(&trace, &rc_core::PipelineConfig { ablate_history: true, ..config })
        .expect("ablated pipeline");

    println!("Ablation: accuracy with vs without per-subscription history features");
    println!("{:<24} {:>10} {:>12} {:>8}", "Metric", "full", "no history", "delta");
    rc_bench::rule(58);
    for (f, a) in full.reports.iter().zip(&ablated.reports) {
        println!(
            "{:<24} {:>10.3} {:>12.3} {:>+8.3}",
            f.metric.label(),
            f.accuracy,
            a.accuracy,
            f.accuracy - a.accuracy
        );
    }
    rc_bench::rule(58);
    println!(
        "paper (§6.1): per-bucket history 'to date in the subscription' dominates importance;"
    );
    println!("client inputs alone (service name, time, OS, size) retain part of the signal.");
}
