//! CI gate for `BENCH_*.json` reports.
//!
//! ```bash
//! report_check BENCH_sched.json                  # schema validation
//! report_check BENCH_sched.json second.json      # + deterministic diff
//! ```
//!
//! With two files, both must validate and their deterministic views
//! (every section except the wall-clock `quantiles`/`spans`) must be
//! byte-identical — the double-run reproducibility contract. Exits
//! non-zero on any failure, so CI needs no jq.

use std::path::Path;

use rc_obs::report::{deterministic_view, read_report, validate};
use serde::Value;

fn fail(msg: &str) -> ! {
    eprintln!("report_check: {msg}");
    std::process::exit(1)
}

fn load(path: &str) -> Value {
    let value = read_report(Path::new(path)).unwrap_or_else(|e| fail(&e));
    if let Err(e) = validate(&value) {
        fail(&format!("{path}: {e}"));
    }
    println!("{path}: schema-valid");
    value
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.len() > 2 {
        eprintln!("usage: report_check <report.json> [second.json]");
        std::process::exit(2);
    }
    let first = load(&args[0]);
    if let Some(second_path) = args.get(1) {
        let second = load(second_path);
        let a = serde_json::to_vec(&deterministic_view(&first)).expect("finite");
        let b = serde_json::to_vec(&deterministic_view(&second)).expect("finite");
        if a != b {
            fail(&format!(
                "deterministic views differ: {} vs {} ({} vs {} bytes)",
                args[0],
                second_path,
                a.len(),
                b.len()
            ));
        }
        println!("deterministic views identical ({} bytes)", a.len());
    }
}
