//! Fault-kind × detector matrix: time-to-detection for leading vs
//! lagging drift signals (`BENCH_chaos.json`).
//!
//! Every scenario drives a fresh [`LoopController`] over the same fleet
//! with one fault kind injected at a fixed tick, with the leading
//! monitor in observe-only mode so both detectors race on the same
//! serving model:
//!
//! - **leading** — the input-distribution sketch (per-feature PSI vs the
//!   training baseline) trips *before* any label resolves;
//! - **lagging** — the label-based accuracy tracker needs predictions to
//!   come due and regress before it can fire.
//!
//! The matrix reports the first detection tick of each signal per fault
//! kind (−1 = never fired) and the leading margin in ticks. Workload
//! faults (step surge, ramped surge, anomaly, telemetry degradation)
//! should be caught by the leading monitor first; infrastructure faults
//! (store brownout, collector clock skew) perturb no feature the models
//! consume, so *neither* detector should fire — a tripped detector on
//! those rows would be a false positive.
//!
//! The run is a pure function of `RC_LOOP_SEED` (default `0xC0FFEE`):
//! stdout and the deterministic sections of the report are
//! byte-identical across same-seed runs (CI double-runs this binary and
//! diffs the report). `RC_SCALE` scales the per-window VM count;
//! `RC_REPORT_DIR` redirects the report.

use serde::Serialize;

use rc_loop::{ChaosPlan, LoopConfig, LoopController, LoopEvent, WorkloadShift};
use rc_obs::BenchReport;

/// Default matrix seed; override with `RC_LOOP_SEED`.
const DEFAULT_SEED: u64 = 0xC0_FFEE;

/// Tick every scenario injects its fault at.
const FAULT_TICK: u32 = 12;

/// Ticks per scenario: enough steady state before the fault and enough
/// room after it for the slower (label) detector to fire.
const TICKS: u32 = 26;

/// One cell pair of the matrix: a fault kind and both detectors' first
/// detection ticks.
#[derive(Serialize)]
struct MatrixRow {
    /// Fault kind injected at [`FAULT_TICK`].
    fault: String,
    /// Whether the detectors are *expected* to fire (workload faults)
    /// or stay quiet (infrastructure faults).
    expect_detection: bool,
    /// First tick (≥ fault tick) a `LeadingDriftDetected` event fired;
    /// −1 when the leading monitor never tripped.
    leading_tick: i64,
    /// First tick (≥ fault tick) a label `DriftDetected` event fired;
    /// −1 when label drift never tripped.
    label_tick: i64,
    /// Ticks of warning the leading signal bought over the lagging one
    /// (label tick − leading tick); −1 when either never fired.
    leading_margin: i64,
    /// Chaos injections journaled — the blast-radius witness that the
    /// fault actually ran.
    chaos_injected: u64,
    /// Degraded ticks over the whole scenario (bounded degradation).
    degraded_ticks: u64,
    /// Journal digest: the per-scenario reproducibility witness.
    journal_digest: String,
}

/// A scenario: one fault kind layered onto an otherwise steady fleet.
struct Scenario {
    name: &'static str,
    expect_detection: bool,
    shifts: Vec<WorkloadShift>,
    chaos: ChaosPlan,
}

fn scenarios() -> Vec<Scenario> {
    // The transient-anomaly transform from the soak, made permanent so
    // the lagging detector has time to catch up.
    let anomaly = WorkloadShift {
        from_tick: FAULT_TICK,
        until_tick: u32::MAX,
        base_mul: 0.35,
        base_add: 0.05,
        p95_mul: 0.4,
        p95_add: 0.08,
        ramp_ticks: 0,
    };
    vec![
        Scenario {
            name: "surge_step",
            expect_detection: true,
            shifts: vec![WorkloadShift::surge(FAULT_TICK)],
            chaos: ChaosPlan::default(),
        },
        Scenario {
            name: "surge_ramp",
            expect_detection: true,
            shifts: vec![WorkloadShift::ramped_surge(FAULT_TICK, 6)],
            chaos: ChaosPlan::default(),
        },
        Scenario {
            name: "anomaly",
            expect_detection: true,
            shifts: vec![anomaly],
            chaos: ChaosPlan::default(),
        },
        Scenario {
            name: "telemetry_degrade",
            expect_detection: true,
            shifts: vec![],
            chaos: ChaosPlan {
                degrade_telemetry: vec![(FAULT_TICK, TICKS)],
                ..ChaosPlan::default()
            },
        },
        Scenario {
            name: "brownout",
            expect_detection: false,
            shifts: vec![],
            chaos: ChaosPlan {
                brownout_at: (FAULT_TICK..FAULT_TICK + 6).map(|t| (t, t % 8)).collect(),
                ..ChaosPlan::default()
            },
        },
        Scenario {
            name: "clock_skew",
            expect_detection: false,
            shifts: vec![],
            chaos: ChaosPlan {
                clock_skew_at: (FAULT_TICK..FAULT_TICK + 6).collect(),
                ..ChaosPlan::default()
            },
        },
    ]
}

fn run_scenario(seed: u64, window_vms: usize, scenario: Scenario) -> MatrixRow {
    let config = LoopConfig {
        seed,
        ticks: TICKS,
        window_vms,
        // No cadence retrains: the only lifecycle activity is the
        // bootstrap promotion and whatever the detectors cause.
        retrain_every: u32::MAX,
        // Observe-only: leading trips are journaled but never schedule a
        // retrain, so the lagging detector sees the same unrepaired
        // fault and the race is fair.
        leading_observe_only: true,
        shifts: scenario.shifts,
        chaos: scenario.chaos,
        ..LoopConfig::default()
    };
    let mut controller = LoopController::new(config);
    for _ in 0..TICKS {
        controller.run_tick();
    }
    let first = |matches: &dyn Fn(&LoopEvent) -> bool| -> i64 {
        controller
            .journal()
            .iter()
            .find(|e| e.tick >= FAULT_TICK && matches(&e.event))
            .map_or(-1, |e| e.tick as i64)
    };
    let leading_tick = first(&|e| matches!(e, LoopEvent::LeadingDriftDetected { .. }));
    let label_tick = first(&|e| matches!(e, LoopEvent::DriftDetected { .. }));
    let summary = controller.summary();
    MatrixRow {
        fault: scenario.name.to_string(),
        expect_detection: scenario.expect_detection,
        leading_tick,
        label_tick,
        leading_margin: if leading_tick >= 0 && label_tick >= 0 {
            label_tick - leading_tick
        } else {
            -1
        },
        chaos_injected: summary.chaos_injected,
        degraded_ticks: summary.degraded_ticks,
        journal_digest: format!("{:#018x}", summary.journal_digest),
    }
}

fn main() {
    let seed = std::env::var("RC_LOOP_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim();
            s.strip_prefix("0x")
                .map(|hex| u64::from_str_radix(hex, 16).ok())
                .unwrap_or_else(|| s.parse().ok())
        })
        .unwrap_or(DEFAULT_SEED);
    let window_vms = ((2_600.0 * rc_bench::scale()) as usize).max(2_200);

    eprintln!("chaos_matrix: seed {seed:#x}, {TICKS} ticks/scenario, {window_vms} VMs/window");
    let mut rows = Vec::new();
    for scenario in scenarios() {
        eprintln!("  running {}", scenario.name);
        rows.push(run_scenario(seed, window_vms, scenario));
    }

    println!("chaos matrix: seed {seed:#x}, fault at tick {FAULT_TICK}, {TICKS} ticks");
    rc_bench::rule(72);
    println!(
        "{:<18} {:>8} {:>8} {:>8}  {:>6} {:>8}",
        "fault", "leading", "label", "margin", "chaos", "degraded"
    );
    for row in &rows {
        let fmt = |t: i64| if t < 0 { "-".to_string() } else { format!("t{t}") };
        println!(
            "{:<18} {:>8} {:>8} {:>8}  {:>6} {:>8}",
            row.fault,
            fmt(row.leading_tick),
            fmt(row.label_tick),
            fmt(row.leading_margin),
            row.chaos_injected,
            row.degraded_ticks,
        );
    }
    rc_bench::rule(72);

    // The matrix's contract, checked on every run: workload faults are
    // caught, and caught by the leading signal no later than the lagging
    // one; infrastructure faults trip neither detector.
    let mut violations = Vec::new();
    for row in &rows {
        if row.expect_detection {
            if row.leading_tick < 0 {
                violations.push(format!("{}: leading detector never fired", row.fault));
            }
            if row.label_tick >= 0 && row.leading_tick >= 0 && row.leading_tick > row.label_tick {
                violations.push(format!("{}: label drift fired before leading", row.fault));
            }
        } else {
            if row.leading_tick >= 0 {
                violations.push(format!("{}: leading false positive", row.fault));
            }
            if row.label_tick >= 0 {
                violations.push(format!("{}: label false positive", row.fault));
            }
        }
    }
    if violations.is_empty() {
        println!("contract: every workload fault detected (leading first), no false positives");
    } else {
        for v in &violations {
            println!("contract VIOLATION: {v}");
        }
    }

    let mut report = BenchReport::new("chaos");
    report
        .set_config("seed", seed)
        .set_config("ticks", TICKS)
        .set_config("fault_tick", FAULT_TICK)
        .set_config("window_vms", window_vms as u64)
        .set_result("matrix", &rows)
        .set_result("violations", &violations);
    match report.write_default("BENCH_chaos.json") {
        Ok(path) => eprintln!("report: {}", path.display()),
        Err(e) => eprintln!("report write failed: {e}"),
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
}
