//! Thread-per-core saturation bench for the lock-free serve path.
//!
//! Pins N client threads against *one* [`RcClient`] over a pre-warmed
//! result cache (the §6.1 steady state, where nearly every request is a
//! hit) and sweeps the thread count. Every rung runs a *fixed* number of
//! operations per thread, so the deterministic sections of the report
//! (lookups, hits, registry counter deltas) are byte-identical across
//! runs; wall-clock throughput and the p50/p99 hit latencies from the
//! rc-obs registry live in the excluded `spans`/`quantiles` sections.
//!
//! The binary also installs [`rc_obs::CountingAllocator`] as the global
//! allocator and proves the headline claim directly: after warm-up, a
//! cache-hit `predict_single` performs **zero heap allocations** (the
//! probe aborts the bench if it ever sees one).
//!
//! Thread rungs come from `RC_SAT_THREADS` (comma-separated, default
//! `1,2,4,8`); per-thread operation count from `RC_SAT_OPS` (default
//! `100000`). Writes `BENCH_serve.json` (`rc-bench-report/1`).

use std::sync::{Arc, Barrier};
use std::time::Instant;

use rc_bench::histogram_delta;
use rc_core::labels::vm_inputs;
use rc_core::{ClientConfig, ClientInputs, RcClient};
use rc_obs::BenchReport;
use rc_store::Store;
use rc_trace::{Trace, TraceConfig};
use rc_types::vm::VmId;
use serde::Value;

#[global_allocator]
static ALLOC: rc_obs::CountingAllocator = rc_obs::CountingAllocator;

const MODEL: &str = "VM_P95UTIL";
const WORKING_SET: u64 = 2_048;
const ALLOC_PROBE_OPS: u64 = 10_000;

fn thread_rungs() -> Vec<usize> {
    let spec = std::env::var("RC_SAT_THREADS").unwrap_or_else(|_| "1,2,4,8".into());
    let rungs: Vec<usize> = spec
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| s.trim().parse().expect("RC_SAT_THREADS entries are integers"))
        .collect();
    assert!(!rungs.is_empty(), "RC_SAT_THREADS named no rungs");
    rungs
}

fn ops_per_thread() -> u64 {
    std::env::var("RC_SAT_OPS").ok().and_then(|s| s.parse().ok()).unwrap_or(100_000)
}

/// One rung: `n_threads` each issuing `ops` hit-path predictions against
/// the shared client. Returns aggregate predictions/sec.
fn run_rung(client: &RcClient, inputs: &Arc<Vec<ClientInputs>>, n_threads: usize, ops: u64) -> f64 {
    let barrier = Arc::new(Barrier::new(n_threads + 1));
    let handles: Vec<_> = (0..n_threads)
        .map(|t| {
            let c = client.clone();
            let barrier = barrier.clone();
            let inputs = inputs.clone();
            std::thread::spawn(move || {
                // Offset start positions so threads fan out across the
                // cache shards instead of marching in lockstep.
                let mut i = (t as u64 * WORKING_SET) / 4;
                barrier.wait();
                for _ in 0..ops {
                    i = (i + 1) % WORKING_SET;
                    std::hint::black_box(c.predict_single(MODEL, &inputs[i as usize]));
                }
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    for handle in handles {
        handle.join().expect("saturation thread");
    }
    (n_threads as u64 * ops) as f64 / started.elapsed().as_secs_f64()
}

/// Counts heap allocations across `ALLOC_PROBE_OPS` warmed cache hits on
/// the calling thread. The serve path promises zero.
fn hit_path_allocations(client: &RcClient, inputs: &[ClientInputs]) -> u64 {
    // Warm-up: first use registers this thread's epoch slot and touches
    // every lazy TLS/static the path consults — allowed to allocate.
    for inp in inputs.iter().take(64) {
        let _ = client.predict_single(MODEL, inp);
    }
    let before = rc_obs::thread_allocations();
    for k in 0..ALLOC_PROBE_OPS {
        let inp = &inputs[(k % WORKING_SET) as usize];
        std::hint::black_box(client.predict_single(MODEL, inp));
    }
    rc_obs::thread_allocations() - before
}

fn main() {
    let rungs = thread_rungs();
    let ops = ops_per_thread();
    let registry = rc_obs::global();
    let mut bench = BenchReport::new("serve");
    bench
        .set_config("threads", Value::Array(rungs.iter().map(|&t| Value::U64(t as u64)).collect()));
    bench.set_config("ops_per_thread", ops);
    bench.set_config("working_set", WORKING_SET);
    bench.set_config("model", MODEL);

    // A small world is enough: the rung workload never misses, so model
    // quality is irrelevant — only the serve path is under test.
    let trace = Trace::generate(&TraceConfig {
        target_vms: 5_000,
        n_subscriptions: 200,
        days: 24,
        ..TraceConfig::small()
    });
    let output = rc_core::run_pipeline(&trace, &rc_core::PipelineConfig::fast(24))
        .expect("pipeline on saturation trace");
    let store = Store::in_memory();
    output.publish(&store, 0.5).expect("publish");
    let client = RcClient::new(store, ClientConfig::default());
    assert!(client.initialize(), "client must initialize from the in-memory store");

    // Warm the cache so every rung measures pure hit-path throughput.
    let inputs: Arc<Vec<ClientInputs>> = Arc::new(
        (0..WORKING_SET).map(|i| vm_inputs(&trace, VmId(i % trace.n_vms() as u64))).collect(),
    );
    for inp in inputs.iter() {
        let _ = client.predict_single(MODEL, inp);
    }

    // Zero-allocation proof before the sweep touches the counters.
    let allocs = hit_path_allocations(&client, &inputs);
    assert_eq!(allocs, 0, "cache-hit predict_single must not allocate (saw {allocs})");
    bench.set_result("hit_path_allocations", allocs);
    bench.set_result("alloc_probe_ops", ALLOC_PROBE_OPS);

    let run_before = registry.snapshot();
    println!("serve-path saturation: {WORKING_SET} warmed keys, {ops} ops/thread");
    println!("hit-path allocations over {ALLOC_PROBE_OPS} calls: {allocs}");
    rc_bench::rule(72);
    println!(
        "{:>8}  {:>14}  {:>12}  {:>10}  {:>10}",
        "threads", "pred/s", "total ops", "p50 ns", "p99 ns"
    );

    for &n_threads in &rungs {
        let before = registry.snapshot();
        let per_sec = run_rung(&client, &inputs, n_threads, ops);
        let after = registry.snapshot();
        let hit_latency = histogram_delta(&after, &before, rc_obs::CLIENT_PREDICT_HIT_LATENCY_NS);
        let lookups = rc_bench::counter_delta(&after, &before, rc_obs::CLIENT_LOOKUPS);
        let hits = rc_bench::counter_delta(&after, &before, rc_obs::CLIENT_RESULT_CACHE_HITS);
        assert_eq!(lookups, n_threads as u64 * ops, "every op is one lookup");
        assert_eq!(hits, lookups, "the warmed working set never misses");
        println!(
            "{:>8}  {:>14.0}  {:>12}  {:>10.0}  {:>10.0}",
            n_threads,
            per_sec,
            lookups,
            hit_latency.quantile(0.50),
            hit_latency.quantile(0.99),
        );
        let label = format!("rung_{n_threads}");
        bench.set_result(
            &label,
            Value::Object(vec![
                ("threads".to_string(), Value::U64(n_threads as u64)),
                ("lookups".to_string(), Value::U64(lookups)),
                ("hits".to_string(), Value::U64(hits)),
            ]),
        );
        bench.set_quantiles(&format!("{label}_hit_ns"), &hit_latency);
        bench.set_span(&format!("saturate.{label}.predictions_per_sec"), per_sec as u64);
    }

    rc_bench::rule(72);
    let run_after = registry.snapshot();
    bench.set_counter_deltas(&run_after, &run_before);
    let path = bench.write_default("BENCH_serve.json").expect("write report");
    println!("report: {}", path.display());
}
