//! Figure 7: VM arrivals per hour at one region over one week.

use rc_analysis::arrivals_per_hour;
use rc_bench::experiment_trace;
use rc_types::vm::RegionId;

fn main() {
    let trace = experiment_trace();
    // The trace epoch is a Wednesday; day 12 is a Monday.
    let series = arrivals_per_hour(&trace, RegionId(0), 12);
    println!("Figure 7: arrivals per hour, region 0, week from day {}", series.start_day);
    let days = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];
    let max = *series.per_hour.iter().max().unwrap_or(&1) as f64;
    for (d, name) in days.iter().enumerate() {
        for block in 0..4 {
            let lo = d * 24 + block * 6;
            let total: u64 = series.per_hour[lo..lo + 6].iter().sum();
            let bar_len = ((total as f64 / (6.0 * max)) * 50.0).round() as usize;
            println!(
                "{name} {:02}:00-{:02}:59 | {:>5} {}",
                block * 6,
                block * 6 + 5,
                total,
                "#".repeat(bar_len)
            );
        }
    }
    let weekday: u64 = series.per_hour[..120].iter().sum();
    let weekend: u64 = series.per_hour[120..].iter().sum();
    println!(
        "weekday rate {:.0}/day vs weekend rate {:.0}/day (paper: lower weekend load)",
        weekday as f64 / 5.0,
        weekend as f64 / 2.0
    );
}
