//! Figure 4: CDF of the maximum number of VMs per deployment (using the
//! paper's day-grouped redefinition of "deployment").

use rc_analysis::deployment_size_cdfs;
use rc_bench::experiment_trace;

fn main() {
    let trace = experiment_trace();
    let cdfs = deployment_size_cdfs(&trace);
    let xs = [1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0];
    println!("Figure 4: CDF of max VMs per deployment");
    println!("{:>8} | {:>9} {:>9} {:>9}", "size", "first", "third", "all");
    rc_bench::rule(44);
    for &x in &xs {
        println!(
            "{:>8} | {:>9.3} {:>9.3} {:>9.3}",
            x,
            cdfs.first.fraction_below(x),
            cdfs.third.fraction_below(x),
            cdfs.all.fraction_below(x)
        );
    }
    rc_bench::rule(44);
    println!(
        "paper anchors: ~40% single-VM (ours: {}), ~80% at most 5 VMs (ours: {})",
        rc_bench::pct(cdfs.all.fraction_below(1.0)),
        rc_bench::pct(cdfs.all.fraction_below(5.0)),
    );
}
