//! §6.2 sensitivity to MAX_UTIL: 100% / 90% / 80% for RC-informed-soft,
//! plus the 80% target under 20% less load.

use rc_bench::scheduler_harness::{print_row, Harness, Variant};

fn main() {
    let harness = Harness::build(rc_bench::experiment_trace());
    println!(
        "Section 6.2: sensitivity to MAX_UTIL ({} arrivals, {} servers, MAX_OVERSUB = 125%)",
        harness.requests.len(),
        harness.n_servers
    );
    rc_bench::rule(120);
    for max_util in [1.0, 0.9, 0.8] {
        let mut report = harness.run(Variant::RcInformedSoft, 1.25, max_util);
        report.policy = format!("RC-soft util<={:.0}%", max_util * 100.0);
        print_row(&report);
    }
    // "with 20% less load, an 80% target maximum utilization leads to no
    // failures": drop every 5th arrival.
    let reduced: Vec<_> =
        harness.requests.iter().enumerate().filter(|(i, _)| i % 5 != 0).map(|(_, r)| *r).collect();
    let mut config = rc_scheduler::SimConfig {
        n_servers: harness.n_servers,
        cores_per_server: 16.0,
        memory_per_server_gb: 112.0,
        scheduler: rc_scheduler::SchedulerConfig::new(rc_scheduler::PolicyKind::RcInformedSoft),
        util_shift: 0.0,
        tick_stride: 1,
        obs_tick_secs: rc_scheduler::OBS_TICK_DAILY,
        accuracy: None,
    };
    config.scheduler.max_util = 0.8;
    let mut report = rc_scheduler::simulate(
        &reduced,
        &config,
        Box::new(rc_scheduler::RcSource::new(harness.client.clone())),
        harness.window,
    );
    report.policy = "RC-soft util<=80% -20% load".into();
    print_row(&report);
    rc_bench::rule(120);
    println!("paper shape: lowering MAX_UTIL sharply raises failures (80% -> 0.27%, beyond the");
    println!("  0.1% acceptability bar), but an 80% target with 20% less load has no failures.");
}
