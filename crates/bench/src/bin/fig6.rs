//! Figure 6: workload classes and their share of core-hours.

use rc_analysis::class_core_hours;
use rc_bench::{experiment_trace, pct};

fn main() {
    let trace = experiment_trace();
    eprintln!("[rc-bench] running FFT classification over long-lived VMs...");
    let shares = class_core_hours(&trace);
    println!("Figure 6: share of core-hours per workload class");
    println!("{:>18} | {:>10} {:>10} {:>10}", "class", "total", "first", "third");
    rc_bench::rule(56);
    type Getter = fn(&rc_analysis::ClassShares) -> f64;
    let rows: [(&str, Getter); 3] = [
        ("delay-insensitive", |s| s.delay_insensitive),
        ("interactive", |s| s.interactive),
        ("unknown", |s| s.unknown),
    ];
    for (label, f) in rows {
        println!(
            "{:>18} | {:>10} {:>10} {:>10}",
            label,
            pct(f(&shares.total)),
            pct(f(&shares.first)),
            pct(f(&shares.third))
        );
    }
    rc_bench::rule(56);
    println!("paper anchors: delay-insensitive ~68%, interactive ~28%, unknown ~4-6%");
}
