//! Table 1: metrics, ML modeling approaches, feature counts, model and
//! feature-dataset sizes.

use rc_bench::{experiment_pipeline, experiment_trace};

fn main() {
    let trace = experiment_trace();
    let output = experiment_pipeline(&trace);
    println!("Table 1: metrics, approaches, model and feature data sizes");
    println!(
        "{:<26} {:<38} {:>9} {:>11} {:>14}",
        "Metric", "Approach", "#features", "Model size", "Feature data"
    );
    rc_bench::rule(102);
    for model in &output.models {
        let report = output.report(model.spec.metric);
        println!(
            "{:<26} {:<38} {:>9} {:>10}B {:>13}B",
            model.spec.metric.label(),
            model.spec.approach.label(),
            report.n_features,
            report.model_size_bytes,
            output.feature_data_bytes
        );
    }
    rc_bench::rule(102);
    println!(
        "feature data: {} subscriptions x ~{} bytes (paper: ~850 B/subscription, 311-376 MB total at Azure scale)",
        output.feature_data.len(),
        output.feature_data_bytes / output.feature_data.len().max(1)
    );
    println!("paper model sizes: 152-329 KB with production-sized ensembles; sizes scale with tree count");
}
