//! §6.2 sensitivity to VM resource utilization: +25% on all real
//! utilization values and +1 on every predicted bucket; hard vs soft rule.

use rc_bench::scheduler_harness::{print_row, Harness, Variant};

fn main() {
    let harness = Harness::build(rc_bench::experiment_trace());
    println!(
        "Section 6.2: sensitivity to +25% utilization ({} arrivals, {} servers)",
        harness.requests.len(),
        harness.n_servers
    );
    rc_bench::rule(120);
    for (variant, label) in [
        (Variant::RcInformedSoft, "RC-soft +25% util"),
        (Variant::RcInformedHard, "RC-hard +25% util"),
    ] {
        let mut report = harness.run_shifted(variant, 1.25, 1.0, 0.25, 1);
        report.policy = label.into();
        print_row(&report);
    }
    rc_bench::rule(120);
    println!("paper shape: higher utilization makes the hard rule fail slightly more than the");
    println!("  soft rule (just 4 extra failures in the paper's run).");
}
