//! Streaming-simulator scale sweep: 10k → 1M VM arrivals.
//!
//! Each rung generates a trace *as a stream* (never materialized), sizes
//! the fleet with a streaming peak-demand pass, and runs the RC-informed
//! soft rule end-to-end through [`rc_scheduler::simulate_stream`]. The
//! first rung additionally materializes the same trace and double-checks
//! that the streaming path's `SimReport` is byte-identical; a mid rung
//! exercises [`rc_scheduler::simulate_partitioned`]'s deterministic
//! parallel merge.
//!
//! Trace windows grow as `sqrt(arrivals)` (clamped to [7, 92] days), so
//! the peak number of *concurrently live* VMs — which bounds the
//! simulator's memory — grows sublinearly in the arrival count. The
//! per-rung `VmRSS`/`VmHWM` readings recorded in the report's wall-clock
//! section make that visible.
//!
//! Rungs come from `RC_SCALE_RUNGS` (comma-separated arrival targets,
//! default `10000,100000,1000000`). Writes `BENCH_scale.json`
//! (`rc-bench-report/1`): rung results and counters are deterministic;
//! wall-clock and RSS readings live in the excluded `spans` section.

use std::time::Instant;

use rc_obs::BenchReport;
use rc_scheduler::{
    simulate, simulate_partitioned, simulate_stream, suggest_server_count_stream, OracleSource,
    P95Source, PolicyKind, SchedulerConfig, SimConfig, SimReport, StreamRequestSource, VmRequest,
};
use rc_trace::{Trace, TraceConfig, VmStream};
use rc_types::time::Timestamp;
use serde::Value;

/// Arrival targets for the sweep, smallest first.
fn rungs() -> Vec<u64> {
    let spec = std::env::var("RC_SCALE_RUNGS").unwrap_or_else(|_| "10000,100000,1000000".into());
    let mut rungs: Vec<u64> = spec
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| s.trim().parse().expect("RC_SCALE_RUNGS entries are integers"))
        .collect();
    rungs.sort_unstable();
    assert!(!rungs.is_empty(), "RC_SCALE_RUNGS named no rungs");
    rungs
}

/// Trace config for one rung: the observation window grows as
/// `sqrt(arrivals)` so live-VM concurrency (and with it simulator
/// memory) stays sublinear in the arrival count.
fn rung_config(target_vms: u64) -> TraceConfig {
    let days = ((target_vms as f64).sqrt() / 14.0).clamp(7.0, 92.0) as u32;
    TraceConfig {
        target_vms: target_vms as usize,
        n_subscriptions: (target_vms / 40).max(50) as usize,
        days,
        ..TraceConfig::small()
    }
}

fn sim_config(n_servers: usize) -> SimConfig {
    SimConfig {
        n_servers,
        cores_per_server: 16.0,
        memory_per_server_gb: 112.0,
        scheduler: SchedulerConfig::new(PolicyKind::RcInformedSoft),
        util_shift: 0.0,
        tick_stride: 6, // 30-minute readings keep the 1M rung in seconds
        obs_tick_secs: 0,
        accuracy: None,
    }
}

/// `(VmRSS, VmHWM)` of this process in KiB, from `/proc/self/status`.
fn memory_kb() -> (u64, u64) {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    let field = |name: &str| {
        status
            .lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    (field("VmRSS:"), field("VmHWM:"))
}

fn requests(config: &TraceConfig) -> StreamRequestSource<VmStream> {
    StreamRequestSource::new(
        VmStream::new(config),
        Timestamp::ZERO,
        Timestamp::from_days(config.days as u64),
        16,
        None,
    )
}

fn report_row(report: &SimReport, n_servers: usize) -> Value {
    Value::Object(vec![
        ("n_servers".to_string(), Value::U64(n_servers as u64)),
        ("n_arrivals".to_string(), Value::U64(report.n_arrivals)),
        ("n_failures".to_string(), Value::U64(report.n_failures)),
        ("failure_rate".to_string(), Value::F64(report.failure_rate())),
        ("peak_live_vms".to_string(), Value::U64(report.peak_live_vms)),
        ("total_readings".to_string(), Value::U64(report.total_readings)),
        ("readings_above_100".to_string(), Value::U64(report.readings_above_100)),
        ("mean_util_fraction".to_string(), Value::F64(report.mean_util_fraction)),
    ])
}

fn main() {
    let rungs = rungs();
    let mut bench = BenchReport::new("scale");
    bench.set_config("rungs", Value::Array(rungs.iter().map(|&r| Value::U64(r)).collect()));
    bench.set_config("policy", PolicyKind::RcInformedSoft.label());
    bench.set_config("tick_stride", 6u64);
    let registry = rc_obs::global();
    let run_before = registry.snapshot();

    println!("Streaming simulator scale sweep (RC-informed soft rule)");
    rc_bench::rule(110);
    println!(
        "{:>10}  {:>5}  {:>8}  {:>10}  {:>9}  {:>9}  {:>8}  {:>9}  {:>9}",
        "arrivals",
        "days",
        "servers",
        "placed",
        "failures",
        "peak-live",
        "wall-s",
        "rss-mb",
        "hwm-mb"
    );

    for (i, &target) in rungs.iter().enumerate() {
        let config = rung_config(target);
        let started = Instant::now();

        // Pass 1 (streaming): size the fleet from peak concurrent demand.
        let n_servers = suggest_server_count_stream(requests(&config), 16.0, 0.95);
        // Pass 2 (streaming): the simulation itself.
        let sim = sim_config(n_servers);
        let window = (Timestamp::ZERO, Timestamp::from_days(config.days as u64));
        let report = simulate_stream(requests(&config), &sim, Box::new(OracleSource), window);

        let wall = started.elapsed();
        let (rss_kb, hwm_kb) = memory_kb();
        println!(
            "{:>10}  {:>5}  {:>8}  {:>10}  {:>9}  {:>9}  {:>8.2}  {:>9.1}  {:>9.1}",
            target,
            config.days,
            n_servers,
            report.n_arrivals - report.n_failures,
            report.n_failures,
            report.peak_live_vms,
            wall.as_secs_f64(),
            rss_kb as f64 / 1024.0,
            hwm_kb as f64 / 1024.0,
        );
        let label = format!("rung_{target}");
        bench.set_result(&label, report_row(&report, n_servers));
        bench.set_span(&format!("scale.{label}.wall_ns"), wall.as_nanos() as u64);
        bench.set_span(&format!("scale.{label}.rss_kb"), rss_kb);
        bench.set_span(&format!("scale.{label}.hwm_kb"), hwm_kb);

        // Smallest rung: prove the streaming path equals the
        // materialized one, byte for byte.
        if i == 0 {
            let trace = Trace::generate(&config);
            let reqs = VmRequest::stream(&trace, window.0, window.1, 16);
            let materialized = simulate(&reqs, &sim, Box::new(OracleSource), window);
            let a = serde_json::to_vec(&report).expect("report serializes");
            let b = serde_json::to_vec(&materialized).expect("report serializes");
            assert_eq!(a, b, "streaming and materialized SimReports must be byte-identical");
            println!("{:>10}  streaming report byte-identical to materialized run", "");
            bench.set_result("streaming_matches_materialized", true);
        }

        // Mid rung (second-largest when there are several): exercise the
        // deterministic parallel per-cluster merge.
        if rungs.len() > 1 && i == rungs.len() - 2 {
            let started = Instant::now();
            let reqs: Vec<VmRequest> = requests(&config).collect();
            let n_clusters = 4;
            // Subscription-hash partitioning is uneven; 30% slack per
            // cluster absorbs the imbalance the shared fleet hid.
            let per_cluster =
                sim_config((n_servers as f64 * 1.3 / n_clusters as f64).ceil() as usize);
            let make = || Box::new(OracleSource) as Box<dyn P95Source>;
            let merged = simulate_partitioned(
                &reqs,
                &per_cluster,
                &make,
                window,
                n_clusters,
                rc_ml_pool_workers(),
            );
            println!(
                "{:>10}  partitioned x{}: failures {} of {} ({:.2}s)",
                "",
                n_clusters,
                merged.n_failures,
                merged.n_arrivals,
                started.elapsed().as_secs_f64()
            );
            bench
                .set_result("partitioned", report_row(&merged, per_cluster.n_servers * n_clusters));
        }
    }

    rc_bench::rule(110);
    let run_after = registry.snapshot();
    bench.set_counter_deltas(&run_after, &run_before);
    let path = bench.write_default("BENCH_scale.json").expect("write report");
    println!("report: {}", path.display());
}

fn rc_ml_pool_workers() -> usize {
    rc_ml::pool::default_workers().min(4)
}
