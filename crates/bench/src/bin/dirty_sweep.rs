//! Dirty-telemetry sweep: corruption rate 0 → 30% through the hardened
//! pipeline — quarantined counts per category, the publish/blocked
//! decision against a shared store, and surviving-model accuracy.
//!
//! Stdout is deterministic for a fixed `RC_DIRTY_SEED` (default below)
//! and `RC_SCALE`; progress goes to stderr, so two runs byte-diff clean.

use std::time::Instant;

use rc_core::{run_pipeline, PipelineConfig, PipelineError};
use rc_obs::BenchReport;
use rc_store::Store;
use rc_trace::{DirtyPlan, Trace, TraceConfig};
use serde::Value;

fn main() {
    let started = Instant::now();
    let seed: u64 =
        std::env::var("RC_DIRTY_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0x5059_2017);
    let s = rc_bench::scale();
    let config = TraceConfig {
        seed: 0x5059_2017,
        days: 30,
        n_subscriptions: ((400.0 * s) as usize).max(150),
        target_vms: ((12_000.0 * s) as usize).max(4_000),
        n_regions: 4,
    };
    eprintln!(
        "[rc-bench] dirty sweep: {} days, {} subscriptions, ~{} VMs, seed {seed:#x}",
        config.days, config.n_subscriptions, config.target_vms
    );
    let trace = Trace::generate(&config);
    let pipeline_config = PipelineConfig::fast(config.days as u32);

    println!("Dirty-telemetry sweep (seed {seed:#x}): cleanup quarantine and the publish gate");
    println!(
        "{:>5} {:>9} {:>9} {:>7} | {:>5} {:>5} {:>5} {:>5} {:>5} | {:>5}  decision",
        "rate", "extracted", "cleaned", "quar.", "dup", "util", "skew", "trunc", "orph", "acc."
    );
    rc_bench::rule(96);

    // Rates publish into one shared store, so each survivor is also gated
    // against the previously published version (ε-regression).
    let registry = rc_obs::global();
    let sweep_before = registry.snapshot();
    let mut bench = BenchReport::new("dirty");
    bench
        .set_config("scale", s)
        .set_config("dirty_seed", seed)
        .set_config("days", config.days as u64)
        .set_config("subscriptions", config.n_subscriptions as u64);
    let store = Store::in_memory();
    for rate_pct in [0u32, 5, 10, 15, 20, 25, 30] {
        let rate = rate_pct as f64 / 100.0;
        eprintln!("[rc-bench] corrupting at {rate_pct}% and running the pipeline...");
        let (dirty, _) = DirtyPlan::uniform(seed, rate).apply(&trace);
        let row_head = format!("{rate_pct:>4}%");
        match run_pipeline(&dirty, &pipeline_config) {
            Ok(output) => {
                let q = &output.quarantine;
                assert!(q.balanced(), "unbalanced quarantine accounting: {q}");
                let mean_acc = output.reports.iter().map(|r| r.accuracy).sum::<f64>()
                    / output.reports.len().max(1) as f64;
                let decision = match output.publish(&store, 0.5) {
                    Ok(version) => format!("published v{version}"),
                    Err(PipelineError::SanityCheckFailed { metric, accuracy }) => {
                        format!("blocked: {metric} below floor ({accuracy:.3})")
                    }
                    Err(PipelineError::PublishBlocked { metric, accuracy, previous }) => {
                        format!("blocked: {metric} regressed {accuracy:.3} < {previous:.3} - eps")
                    }
                    Err(other) => format!("blocked: {other}"),
                };
                println!(
                    "{row_head} {:>9} {:>9} {:>7} | {:>5} {:>5} {:>5} {:>5} {:>5} | {:>5.3}  {}",
                    q.extracted,
                    q.cleaned,
                    q.quarantined(),
                    q.duplicates,
                    q.invalid_util,
                    q.clock_skew,
                    q.truncated,
                    q.orphaned,
                    mean_acc,
                    decision
                );
                bench.set_result(
                    &format!("rate_{rate_pct}pct"),
                    Value::Object(vec![
                        ("extracted".to_string(), Value::U64(q.extracted)),
                        ("cleaned".to_string(), Value::U64(q.cleaned)),
                        ("quarantined".to_string(), Value::U64(q.quarantined())),
                        ("duplicates".to_string(), Value::U64(q.duplicates)),
                        ("invalid_util".to_string(), Value::U64(q.invalid_util)),
                        ("clock_skew".to_string(), Value::U64(q.clock_skew)),
                        ("truncated".to_string(), Value::U64(q.truncated)),
                        ("orphaned".to_string(), Value::U64(q.orphaned)),
                        ("mean_accuracy".to_string(), Value::F64(mean_acc)),
                        ("decision".to_string(), Value::Str(decision)),
                    ]),
                );
            }
            Err(err) => {
                println!(
                    "{row_head} {:>9} {:>9} {:>7} | {:>5} {:>5} {:>5} {:>5} {:>5} | {:>5}  pipeline failed: {err}",
                    "-", "-", "-", "-", "-", "-", "-", "-", "-"
                );
                bench.set_result(
                    &format!("rate_{rate_pct}pct"),
                    Value::Object(vec![(
                        "pipeline_error".to_string(),
                        Value::Str(err.to_string()),
                    )]),
                );
            }
        }
    }
    let sweep_after = registry.snapshot();
    bench.set_counter_deltas(&sweep_after, &sweep_before);
    bench.set_span_timings(rc_obs::global_tracer(), "pipeline.");
    bench.set_span("bench.total", started.elapsed().as_nanos() as u64);
    match bench.write_default("BENCH_dirty.json") {
        Ok(path) => eprintln!("[rc-bench] wrote {}", path.display()),
        Err(e) => eprintln!("[rc-bench] report write failed: {e}"),
    }
    rc_bench::rule(96);
    println!(
        "quarantine invariant: extracted == cleaned + quarantined held at every rate; \
         the store only ever served complete versions"
    );
}
