//! Figure 1: CDFs of average and P95-of-max CPU utilization, split by
//! first-party / third-party / all VMs.

use rc_analysis::utilization_cdfs;
use rc_bench::experiment_trace;

fn main() {
    let trace = experiment_trace();
    let cdfs = utilization_cdfs(&trace);
    let xs: Vec<f64> = (0..=20).map(|i| i as f64 * 0.05).collect();

    println!("Figure 1: CDF of CPU utilization (fraction of VMs below X)");
    println!(
        "{:>6} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "util", "avg:1st", "avg:3rd", "avg:all", "p95:1st", "p95:3rd", "p95:all"
    );
    rc_bench::rule(72);
    for &x in &xs {
        println!(
            "{:>5.0}% | {:>9.3} {:>9.3} {:>9.3} | {:>9.3} {:>9.3} {:>9.3}",
            x * 100.0,
            cdfs.avg.first.fraction_below(x),
            cdfs.avg.third.fraction_below(x),
            cdfs.avg.all.fraction_below(x),
            cdfs.p95_max.first.fraction_below(x),
            cdfs.p95_max.third.fraction_below(x),
            cdfs.p95_max.all.fraction_below(x),
        );
    }
    rc_bench::rule(72);
    println!(
        "paper anchors: 60% of VMs below 20% avg (ours: {}); 40% below 50% P95 (ours: {})",
        rc_bench::pct(cdfs.avg.all.fraction_below(0.20)),
        rc_bench::pct(cdfs.p95_max.all.fraction_below(0.50)),
    );
}
