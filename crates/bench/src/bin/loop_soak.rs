//! Multi-day chaos soak of the continuous control loop (`rc-loop`).
//!
//! Drives a [`LoopController`] through a scripted multi-day schedule in
//! which every lifecycle transition the loop supports — and every chaos
//! fault kind the plan can inject — fires at least once:
//!
//! - tick 0: bootstrap training promotes the first model set;
//! - tick 6: a cadence retrain meets a heavily corrupted telemetry
//!   window and fails cleanly (one degraded tick, nothing published);
//! - tick 8: a permanent workload surge begins — the *leading* monitor
//!   trips on the input sketch the same tick, before a single label
//!   resolves, and the loop retrains and recovers immediately;
//! - tick 11: a correlated brownout takes out one store key shard;
//!   tick 12: the collector's clock skews between windows — both are
//!   journaled and neither perturbs the loop (blast radius held);
//! - tick 14: one metric's trainer faults; the pipeline isolates it and
//!   promotes the surviving models;
//! - ticks 17–21: telemetry quality ramps down slowly; leading drift
//!   trips at tick 17 and retrains at 18 — three ticks before label
//!   drift appears at 20 — then the label watchdog rolls the
//!   degradation-fitted model back and the publish gate blocks
//!   candidates trained on the worst windows;
//! - tick 22: the recovery retrain's manifest flip races a concurrent
//!   manual publish; the CAS backs off with a typed `PublishRace`
//!   instead of overwriting, and the next tick carries on;
//! - ticks 24–25: a transient anomaly tricks the loop into promoting a
//!   model fitted to the anomaly; the post-flip watchdog catches the
//!   regression at tick 27, rolls back, quarantines the bad content
//!   digest, and retrains back out of the drift;
//! - ticks 31–32: the anomaly repeats identically — the deterministic
//!   retrain reproduces the quarantined bytes and is blocked before any
//!   write (`rc_loop_quarantine_blocked`), twice;
//! - tick 33: the recovery candidate (trained on garbled telemetry) is
//!   rejected in shadow with the store byte-untouched;
//! - tick 39: the store fails mid-publish; the flip aborts with the
//!   manifest consistent and the loop keeps running.
//!
//! The run is a pure function of `RC_LOOP_SEED`: stdout, the journal
//! digest, the store fingerprint, and the deterministic sections of
//! `BENCH_loop.json` are byte-identical across same-seed runs (CI
//! double-runs this binary and diffs the report).
//!
//! Environment: `RC_LOOP_SEED` (default `0xC0FFEE`) selects the fleet;
//! `RC_SCALE` scales the per-window VM count (floored to keep the
//! training pipeline viable); `RC_REPORT_DIR` redirects the report.

use std::io::Write as _;

use rc_loop::{ChaosPlan, LoopConfig, LoopController, LoopEvent, RetrainReason, WorkloadShift};
use rc_obs::BenchReport;
use rc_types::PredictionMetric;

/// Default soak seed; override with `RC_LOOP_SEED`.
const DEFAULT_SEED: u64 = 0xC0_FFEE;

/// A transient downward anomaly layered on top of the surge: utilization
/// collapses for the window(s) it covers, then snaps back. Both episodes
/// use the same transform so the drift-triggered retrain reproduces
/// byte-identical models — which is what exercises the quarantine block.
fn anomaly(from_tick: u32, until_tick: u32) -> WorkloadShift {
    WorkloadShift {
        from_tick,
        until_tick,
        base_mul: 0.35,
        base_add: 0.05,
        p95_mul: 0.4,
        p95_add: 0.08,
        ramp_ticks: 0,
    }
}

/// The scripted soak schedule. Every chaos entry is keyed to a tick
/// where the cadence or the drift monitor forces a retrain, so each
/// fault lands on the code path it is meant to exercise.
fn soak_config(seed: u64) -> LoopConfig {
    let window_vms = ((2_600.0 * rc_bench::scale()) as usize).max(2_200);
    LoopConfig {
        seed,
        ticks: 42,
        window_vms,
        retrain_every: 6,
        shifts: vec![WorkloadShift::surge(8), anomaly(24, 26), anomaly(31, 33)],
        chaos: ChaosPlan {
            dirty_at: vec![(6, 0.9)],
            fail_train_at: vec![
                // Every trainer faults at tick 6: the whole retrain fails
                // (the dirty window is the story; the fault guarantees it).
                (6, PredictionMetric::ALL.to_vec()),
                (14, vec![PredictionMetric::WorkloadClass]),
            ],
            outage_after_puts: vec![(39, 2)],
            degrade_candidate_at: vec![33],
            // Tick 11: a correlated brownout of one key shard — no store
            // traffic touches it this tick, so the only trace is the
            // journal line; the tick-end heal bounds the blast radius.
            brownout_at: vec![(11, 3)],
            // Ticks 17–21: telemetry quality ramps down slowly; every
            // reading stays valid, but the distribution creeps until the
            // leading monitor trips — before label accuracy falls.
            degrade_telemetry: vec![(17, 22)],
            // Tick 12: the collector's clock jumps between windows.
            // Lifetimes are unshifted, so the sketch — and the loop —
            // shrug it off.
            clock_skew_at: vec![12],
            // Tick 22: a manual operator publish races the recovery
            // retrain's manifest flip; the CAS backs off with a typed
            // race instead of overwriting.
            manual_publish_at: vec![22],
            ..ChaosPlan::default()
        },
        ..LoopConfig::default()
    }
}

/// One deterministic line per journal event.
fn describe(event: &LoopEvent) -> String {
    match event {
        LoopEvent::WindowIngested { vms, quarantined } => {
            format!("window ingested: {vms} VMs ({quarantined} quarantined)")
        }
        LoopEvent::DriftDetected { metric } => format!("drift detected: {metric}"),
        LoopEvent::RetrainScheduled { reason } => match reason {
            RetrainReason::Bootstrap => "retrain scheduled: bootstrap".to_string(),
            RetrainReason::Drift { metrics } => {
                format!("retrain scheduled: drift on {}", metrics.join(", "))
            }
            RetrainReason::LeadingDrift { features } => {
                format!("retrain scheduled: leading drift on {}", features.join(", "))
            }
            RetrainReason::Cadence => "retrain scheduled: cadence".to_string(),
        },
        LoopEvent::RetrainFailed { error } => format!("retrain failed: {error}"),
        LoopEvent::MetricQuarantined { metric } => format!("metric quarantined: {metric}"),
        LoopEvent::ShadowEvaluated { serving_mean, candidate_mean } => {
            format!("shadow evaluated: serving {serving_mean:.4} vs candidate {candidate_mean:.4}")
        }
        LoopEvent::ShadowRejected { reason } => format!("shadow rejected: {reason}"),
        LoopEvent::QuarantineBlocked { digest } => {
            format!("quarantine blocked promotion: digest {digest:#018x}")
        }
        LoopEvent::Promoted { version } => format!("promoted: manifest v{version}"),
        LoopEvent::PublishFailed { error } => format!("publish failed: {error}"),
        LoopEvent::RolledBack { to_version, quarantined_digest } => {
            format!("rolled back to v{to_version}, quarantined digest {quarantined_digest:#018x}")
        }
        LoopEvent::RollbackUnavailable => "rollback unavailable: no earlier good version".into(),
        LoopEvent::LeadingDriftDetected { feature, psi } => {
            format!("leading drift detected: {feature} (psi {psi:.3})")
        }
        LoopEvent::ChaosInjected { kind } => format!("chaos injected: {kind}"),
        LoopEvent::PublishRaceDetected { expected, actual } => {
            format!("publish race detected: expected manifest v{expected}, found v{actual}")
        }
    }
}

fn main() {
    let seed = std::env::var("RC_LOOP_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim();
            s.strip_prefix("0x")
                .map(|hex| u64::from_str_radix(hex, 16).ok())
                .unwrap_or_else(|| s.parse().ok())
        })
        .unwrap_or(DEFAULT_SEED);
    let config = soak_config(seed);
    let ticks = config.ticks;

    eprintln!("loop_soak: seed {seed:#x}, {ticks} ticks, {} VMs/window", config.window_vms);
    let mut controller = LoopController::new(config.clone());
    let before = controller.registry().snapshot();
    for tick in 0..ticks {
        controller.run_tick();
        eprint!("\rtick {}/{ticks}", tick + 1);
        std::io::stderr().flush().ok();
    }
    eprintln!();
    let after = controller.registry().snapshot();

    // Deterministic stdout: the full journal, then the summary.
    println!("control-loop soak: seed {seed:#x}, {ticks} simulated days");
    rc_bench::rule(72);
    for entry in controller.journal() {
        println!("day {:>2}  {}", entry.tick, describe(&entry.event));
    }
    rc_bench::rule(72);
    let summary = controller.summary();
    println!(
        "retrains {} (failures {}), shadow evals {} (rejections {}), promotions {}",
        summary.retrains,
        summary.retrain_failures,
        summary.shadow_evals,
        summary.shadow_rejections,
        summary.promotions,
    );
    println!(
        "rollbacks {}, quarantine-blocked {}, degraded ticks {}, final manifest v{}",
        summary.rollbacks,
        summary.quarantine_blocked,
        summary.degraded_ticks,
        summary.final_version,
    );
    println!(
        "leading trips {}, publish races {}, chaos injections {}",
        summary.leading_trips, summary.publish_races, summary.chaos_injected,
    );
    println!(
        "end-to-end accuracy: loop {:.4} vs frozen-first-model baseline {:.4}",
        summary.live_accuracy, summary.frozen_accuracy,
    );
    for row in &summary.per_metric {
        println!("  {:<22} loop {:.4}  frozen {:.4}", row.metric, row.live, row.frozen);
    }
    println!(
        "journal digest {:#018x}, store fingerprint {:#018x}",
        summary.journal_digest, summary.store_fingerprint,
    );

    let mut report = BenchReport::new("loop");
    report
        .set_config("seed", seed)
        .set_config("ticks", ticks)
        .set_config("window_days", config.window_days)
        .set_config("window_vms", config.window_vms as u64)
        .set_config("n_subscriptions", config.n_subscriptions as u64)
        .set_config("retrain_every", config.retrain_every)
        .set_config("watch_ticks", config.watch_ticks)
        .set_result("summary", &summary)
        .set_result("accuracy_gain", summary.live_accuracy - summary.frozen_accuracy)
        .set_counter_deltas(&after, &before);
    match report.write_default("BENCH_loop.json") {
        Ok(path) => eprintln!("report: {}", path.display()),
        Err(e) => eprintln!("report write failed: {e}"),
    }
}
