//! §6.2 main comparison: Baseline / Naive / RC-informed-soft /
//! RC-informed-hard / RC-soft-right / RC-soft-wrong at the default limits
//! (MAX_OVERSUB = 125%, MAX_UTIL = 100%), with each variant's rule-chain
//! activity (relaxations, Algorithm 1 rejections) read from the rc-obs
//! registry the scheduler itself writes into.
//!
//! Besides the stdout table, writes a machine-readable `BENCH_sched.json`
//! (schema in `rc_obs::report`): per-variant reports and registry deltas
//! in the deterministic sections, wall-clock totals in `spans`.

use std::time::Instant;

use rc_bench::counter_delta;
use rc_bench::scheduler_harness::{print_row, Harness, Variant};
use rc_obs::BenchReport;
use serde::Serialize;

fn main() {
    let started = Instant::now();
    let harness = Harness::build(rc_bench::experiment_trace());
    let registry = rc_obs::global();
    let mut bench = BenchReport::new("sched");
    bench
        .set_config("scale", rc_bench::scale())
        .set_config("arrivals", harness.requests.len() as u64)
        .set_config("n_servers", harness.n_servers as u64)
        .set_config("max_oversub", 1.25)
        .set_config("max_util", 1.0);
    println!(
        "Section 6.2: scheduler comparison ({} arrivals, {} servers x 16 cores / 112 GB, test month)",
        harness.requests.len(),
        harness.n_servers
    );
    println!("MAX_OVERSUB = 125%, MAX_UTIL = 100%");
    rc_bench::rule(120);
    let sweep_before = registry.snapshot();
    for variant in Variant::ALL {
        let before = registry.snapshot();
        let report = harness.run(variant, 1.25, 1.0);
        let after = registry.snapshot();
        print_row(&report);
        println!(
            "{:<18}   registry: placements {:>7}   soft-rule relaxations {:>6}   util-cap rejections {:>8}",
            "",
            counter_delta(&after, &before, rc_obs::SCHED_PLACEMENTS),
            counter_delta(&after, &before, rc_obs::SCHED_RULE_RELAXATIONS),
            counter_delta(&after, &before, rc_obs::SCHED_UTIL_CAP_REJECTIONS),
        );
        bench.set_result(&report.policy, report.to_value());
    }
    let sweep_after = registry.snapshot();
    bench.set_counter_deltas(&sweep_after, &sweep_before);
    bench.set_span("bench.total", started.elapsed().as_nanos() as u64);
    match bench.write_default("BENCH_sched.json") {
        Ok(path) => eprintln!("[scheduler_compare] wrote {}", path.display()),
        Err(e) => eprintln!("[scheduler_compare] report write failed: {e}"),
    }
    rc_bench::rule(120);
    println!("paper shape: Baseline ~0.25% failures, 0 readings >100%;");
    println!("  RC-informed soft/hard: no failures, few readings >100%;");
    println!("  Naive: no failures, ~6x RC's readings; RC-soft-wrong: ~3x RC's readings.");
}
