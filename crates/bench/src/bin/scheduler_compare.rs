//! §6.2 main comparison: Baseline / Naive / RC-informed-soft /
//! RC-informed-hard / RC-soft-right / RC-soft-wrong at the default limits
//! (MAX_OVERSUB = 125%, MAX_UTIL = 100%), with each variant's rule-chain
//! activity (relaxations, Algorithm 1 rejections) read from the rc-obs
//! registry the scheduler itself writes into.

use rc_bench::counter_delta;
use rc_bench::scheduler_harness::{print_row, Harness, Variant};

fn main() {
    let harness = Harness::build(rc_bench::experiment_trace());
    let registry = rc_obs::global();
    println!(
        "Section 6.2: scheduler comparison ({} arrivals, {} servers x 16 cores / 112 GB, test month)",
        harness.requests.len(),
        harness.n_servers
    );
    println!("MAX_OVERSUB = 125%, MAX_UTIL = 100%");
    rc_bench::rule(120);
    for variant in Variant::ALL {
        let before = registry.snapshot();
        let report = harness.run(variant, 1.25, 1.0);
        let after = registry.snapshot();
        print_row(&report);
        println!(
            "{:<18}   registry: placements {:>7}   soft-rule relaxations {:>6}   util-cap rejections {:>8}",
            "",
            counter_delta(&after, &before, rc_obs::SCHED_PLACEMENTS),
            counter_delta(&after, &before, rc_obs::SCHED_RULE_RELAXATIONS),
            counter_delta(&after, &before, rc_obs::SCHED_UTIL_CAP_REJECTIONS),
        );
    }
    rc_bench::rule(120);
    println!("paper shape: Baseline ~0.25% failures, 0 readings >100%;");
    println!("  RC-informed soft/hard: no failures, few readings >100%;");
    println!("  Naive: no failures, ~6x RC's readings; RC-soft-wrong: ~3x RC's readings.");
}
