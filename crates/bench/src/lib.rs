//! Shared machinery for the experiment harness.
//!
//! Every paper table and figure has a binary in `src/bin/` that prints the
//! corresponding rows/series from a synthetic trace. Binaries share one
//! trace/pipeline configuration, scalable through the `RC_SCALE`
//! environment variable (default 1.0 ≈ a 90-day, ~80k-VM trace — small
//! enough for minutes-scale runs, large enough for stable distributions;
//! the paper's absolute counts scale linearly).

use rc_core::{run_pipeline, PipelineConfig, PipelineOutput};
use rc_trace::{Trace, TraceConfig};

/// The experiment scale factor from `RC_SCALE` (clamped to `[0.05, 10]`).
pub fn scale() -> f64 {
    std::env::var("RC_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.05, 10.0)
}

/// The trace configuration all experiment binaries share.
pub fn experiment_trace_config() -> TraceConfig {
    let s = scale();
    TraceConfig {
        seed: 0x5059_2017, // SOSP 2017
        days: 90,
        n_subscriptions: ((2_000.0 * s) as usize).max(200),
        target_vms: ((80_000.0 * s) as usize).max(5_000),
        n_regions: 4,
    }
}

/// Generates the shared experiment trace (prints progress to stderr).
pub fn experiment_trace() -> Trace {
    let config = experiment_trace_config();
    eprintln!(
        "[rc-bench] generating trace: {} days, {} subscriptions, ~{} VMs (RC_SCALE={})",
        config.days,
        config.n_subscriptions,
        config.target_vms,
        scale()
    );
    let trace = Trace::generate(&config);
    eprintln!(
        "[rc-bench] generated {} VMs, {} deployments",
        trace.n_vms(),
        trace.deployments.len()
    );
    trace
}

/// The pipeline configuration used for Table 1 / Table 4 / Figure 10.
///
/// Forest/boosting sizes sit between the test-suite "fast" settings and
/// production-sized ensembles; accuracy saturates well before this.
pub fn experiment_pipeline_config(days: u32) -> PipelineConfig {
    let mut config = PipelineConfig::for_days(days);
    config.forest.n_trees = 32;
    config.gbt.n_rounds = 30;
    config
}

/// Runs the pipeline on the shared trace (the slow step of the ML
/// experiments), with progress logging.
pub fn experiment_pipeline(trace: &Trace) -> PipelineOutput {
    eprintln!("[rc-bench] running offline pipeline (train {} days)...", trace.config.days * 2 / 3);
    let started = std::time::Instant::now();
    let output = run_pipeline(trace, &experiment_pipeline_config(trace.config.days))
        .expect("pipeline on experiment trace");
    eprintln!("[rc-bench] pipeline done in {:.1?}", started.elapsed());
    output
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Prints a horizontal rule sized for the experiment tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Percentile of a sorted slice (`q` in `[0, 1]`).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "need samples");
    let idx = ((sorted.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// How much a counter grew between two registry snapshots (0 when absent).
pub fn counter_delta(
    after: &rc_obs::MetricsSnapshot,
    before: &rc_obs::MetricsSnapshot,
    name: &str,
) -> u64 {
    after.counter(name).unwrap_or(0).saturating_sub(before.counter(name).unwrap_or(0))
}

/// The observations a histogram gained between two registry snapshots
/// (empty when the histogram is absent from both).
pub fn histogram_delta(
    after: &rc_obs::MetricsSnapshot,
    before: &rc_obs::MetricsSnapshot,
    name: &str,
) -> rc_obs::HistogramSnapshot {
    match (after.histogram(name), before.histogram(name)) {
        (Some(a), Some(b)) => a.delta(b),
        (Some(a), None) => a.clone(),
        (None, _) => rc_obs::HistogramSnapshot {
            name: name.to_string(),
            count: 0,
            sum: 0,
            buckets: Vec::new(),
        },
    }
}

/// Shared setup for the §6.2 scheduler experiments.
pub mod scheduler_harness {
    use std::collections::HashMap;
    use std::sync::Arc;

    use rc_core::{ClientConfig, RcClient, SubscriptionFeatures, TrainedModel};
    use rc_ml::Classifier;
    use rc_scheduler::{
        simulate, suggest_server_count, NoSource, OracleSource, P95Source, PolicyKind,
        SchedulerConfig, SimConfig, SimReport, VmRequest, WrongSource,
    };
    use rc_store::Store;
    use rc_trace::Trace;
    use rc_types::metrics::PredictionMetric;
    use rc_types::time::Timestamp;
    use rc_types::vm::SubscriptionId;

    /// A [`P95Source`] that models RC's production behaviour: feature data
    /// is refreshed by periodic background pushes, so a request uses the
    /// latest snapshot published at or before its deployment time.
    pub struct RefreshingSource {
        model: Arc<TrainedModel>,
        /// `(published_at_secs, records)`, ascending.
        refreshes: Arc<Vec<(u64, HashMap<SubscriptionId, SubscriptionFeatures>)>>,
    }

    impl RefreshingSource {
        /// Builds the source from a pipeline output.
        pub fn new(output: &rc_core::PipelineOutput) -> Self {
            RefreshingSource {
                model: Arc::new(output.model(PredictionMetric::P95MaxCpuUtil).clone()),
                refreshes: Arc::new(output.feature_refreshes.clone()),
            }
        }
    }

    impl P95Source for RefreshingSource {
        fn predict_p95(&self, req: &VmRequest) -> Option<(usize, f64)> {
            let t = req.inputs.deployment_time.as_secs();
            // Latest snapshot published at or before the request.
            let idx = self.refreshes.partition_point(|(at, _)| *at <= t);
            let (_, records) = self.refreshes.get(idx.wrapping_sub(1))?;
            let sub = records.get(&req.inputs.subscription)?;
            if sub.is_empty() {
                return None;
            }
            let features = self.model.spec.features(&req.inputs, sub);
            let (bucket, score) = self.model.predict(&features);
            Some((bucket, score))
        }
    }

    /// Everything a scheduler experiment needs: live RC predictions and
    /// the test month's arrival stream.
    pub struct Harness {
        /// The underlying trace.
        pub trace: Trace,
        /// Client serving live predictions from the trained models.
        pub client: RcClient,
        /// Pipeline output (models + feature refreshes).
        pub output: rc_core::PipelineOutput,
        /// Arrivals of the test month.
        pub requests: Vec<VmRequest>,
        /// Utilization-accounting window.
        pub window: (Timestamp, Timestamp),
        /// Fleet size calibrated so Baseline sits at its capacity cliff.
        pub n_servers: usize,
    }

    /// A §6.2 policy variant, including the prediction-quality endpoints.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Variant {
        /// No oversubscription, no production split.
        Baseline,
        /// Oversubscription without predictions.
        Naive,
        /// Algorithm 1, soft utilization rule, live RC predictions.
        RcInformedSoft,
        /// Algorithm 1, hard utilization rule, live RC predictions.
        RcInformedHard,
        /// Soft rule with oracle predictions (RC-soft-right).
        RcSoftRight,
        /// Soft rule with always-wrong predictions (RC-soft-wrong).
        RcSoftWrong,
    }

    impl Variant {
        /// All six §6.2 variants in the paper's order.
        pub const ALL: [Variant; 6] = [
            Variant::Baseline,
            Variant::Naive,
            Variant::RcInformedSoft,
            Variant::RcInformedHard,
            Variant::RcSoftRight,
            Variant::RcSoftWrong,
        ];

        /// Display label.
        pub const fn label(self) -> &'static str {
            match self {
                Variant::Baseline => "Baseline",
                Variant::Naive => "Naive",
                Variant::RcInformedSoft => "RC-informed-soft",
                Variant::RcInformedHard => "RC-informed-hard",
                Variant::RcSoftRight => "RC-soft-right",
                Variant::RcSoftWrong => "RC-soft-wrong",
            }
        }

        /// The rule-chain policy behind the variant.
        pub const fn policy(self) -> PolicyKind {
            match self {
                Variant::Baseline => PolicyKind::Baseline,
                Variant::Naive => PolicyKind::NaiveOversub,
                Variant::RcInformedHard => PolicyKind::RcInformedHard,
                _ => PolicyKind::RcInformedSoft,
            }
        }
    }

    impl Harness {
        /// Builds the harness: train models on the first two thirds of the
        /// trace, publish, build the test month's request stream, and
        /// calibrate the fleet size so Baseline fails ~0.25% of arrivals
        /// (the paper's operating point: "0.25% of failures ... 2.5x
        /// higher than what we consider acceptable").
        pub fn build(trace: Trace) -> Harness {
            let output = crate::experiment_pipeline(&trace);
            let store = Store::in_memory();
            output.publish(&store, 0.5).expect("publish");
            let client = RcClient::new(store, ClientConfig::default());
            assert!(client.initialize(), "client must initialize");

            let test_start = Timestamp::from_days(trace.config.days as u64 * 2 / 3);
            let window_end = Timestamp::from_days(trace.config.days as u64);
            eprintln!("[rc-bench] building request stream for the test month...");
            let unfiltered = VmRequest::stream(&trace, test_start, window_end, 16);
            // Cluster selection keeps deployments that cannot fit this
            // cluster out of its stream; cap them at ~8% of the fleet (the
            // paper's largest deployments vs its 14k-core cluster).
            let fleet_cores = 16.0 * suggest_server_count(&unfiltered, 16.0, 1.0) as f64;
            let cap = ((fleet_cores * 0.08) as u32).max(64);
            let requests =
                VmRequest::stream_filtered(&trace, test_start, window_end, 16, Some(cap));
            eprintln!(
                "[rc-bench] {} arrivals in the test month ({} routed to larger clusters; deployment cap {} cores)",
                requests.len(),
                unfiltered.len() - requests.len(),
                cap
            );

            // Calibrate fleet size: search headroom for ~0.25% Baseline
            // failures.
            eprintln!("[rc-bench] calibrating fleet size to Baseline's capacity cliff...");
            let mut best = (f64::INFINITY, suggest_server_count(&requests, 16.0, 1.0));
            for headroom in [0.92, 0.95, 0.97, 0.99, 1.01, 1.04] {
                let n = suggest_server_count(&requests, 16.0, headroom);
                let report = run_with(
                    &requests,
                    n,
                    Variant::Baseline,
                    &output,
                    (test_start, window_end),
                    1.25,
                    1.0,
                    0.0,
                    4,
                );
                let miss = (report.failure_rate() - 0.0025).abs();
                eprintln!(
                    "[rc-bench]   headroom {headroom}: {n} servers -> {:.3}% failures",
                    report.failure_rate() * 100.0
                );
                if miss < best.0 {
                    best = (miss, n);
                }
            }
            eprintln!("[rc-bench] fleet size: {} servers", best.1);

            Harness {
                trace,
                client,
                output,
                requests,
                window: (test_start, window_end),
                n_servers: best.1,
            }
        }

        /// Runs one variant with the given limits.
        pub fn run(&self, variant: Variant, max_oversub: f64, max_util: f64) -> SimReport {
            self.run_shifted(variant, max_oversub, max_util, 0.0, 0)
        }

        /// Runs one variant with a utilization shift and bucket shift (the
        /// "+25% utilization" sensitivity study).
        pub fn run_shifted(
            &self,
            variant: Variant,
            max_oversub: f64,
            max_util: f64,
            util_shift: f64,
            bucket_shift: usize,
        ) -> SimReport {
            let mut report = run_with(
                &self.requests,
                self.n_servers,
                variant,
                &self.output,
                self.window,
                max_oversub,
                max_util,
                util_shift,
                1,
            );
            report.policy = variant.label().to_string();
            if bucket_shift > 0 {
                // Re-run with the shift applied inside the scheduler.
                let mut config = sim_config(self.n_servers, variant, max_oversub, max_util);
                config.util_shift = util_shift;
                config.scheduler.bucket_shift = bucket_shift;
                config.tick_stride = 1;
                let mut r = simulate(
                    &self.requests,
                    &config,
                    source_for(variant, &self.output),
                    self.window,
                );
                r.policy = variant.label().to_string();
                return r;
            }
            report
        }
    }

    fn sim_config(
        n_servers: usize,
        variant: Variant,
        max_oversub: f64,
        max_util: f64,
    ) -> SimConfig {
        let mut scheduler = SchedulerConfig::new(variant.policy());
        scheduler.max_oversub = max_oversub;
        scheduler.max_util = max_util;
        SimConfig {
            n_servers,
            cores_per_server: 16.0,
            memory_per_server_gb: 112.0,
            scheduler,
            util_shift: 0.0,
            tick_stride: 1,
            obs_tick_secs: rc_scheduler::OBS_TICK_DAILY,
            accuracy: None,
        }
    }

    fn source_for(variant: Variant, output: &rc_core::PipelineOutput) -> Box<dyn P95Source> {
        match variant {
            // Live predictions with periodically-pushed feature data —
            // RC's production configuration.
            Variant::RcInformedSoft | Variant::RcInformedHard => {
                Box::new(RefreshingSource::new(output))
            }
            Variant::RcSoftRight => Box::new(OracleSource),
            Variant::RcSoftWrong => Box::new(WrongSource),
            Variant::Baseline | Variant::Naive => Box::new(NoSource),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_with(
        requests: &[VmRequest],
        n_servers: usize,
        variant: Variant,
        output: &rc_core::PipelineOutput,
        window: (Timestamp, Timestamp),
        max_oversub: f64,
        max_util: f64,
        util_shift: f64,
        tick_stride: u64,
    ) -> SimReport {
        let mut config = sim_config(n_servers, variant, max_oversub, max_util);
        config.util_shift = util_shift;
        config.tick_stride = tick_stride;
        simulate(requests, &config, source_for(variant, output), window)
    }

    /// Prints a report row.
    pub fn print_row(report: &SimReport) {
        println!(
            "{:<18} failures {:>6} ({:>6.3}%, {:>5} prod)   >100% readings {:>7} of {:>9}   mean alloc {:>5.1}%   util {:>5.1}%   oversub srv {:>5.1}",
            report.policy,
            report.n_failures,
            report.failure_rate() * 100.0,
            report.n_failures_production,
            report.readings_above_100,
            report.total_readings,
            report.mean_alloc_fraction * 100.0,
            report.mean_util_fraction * 100.0,
            report.mean_oversubscribable_servers
        );
    }
}
