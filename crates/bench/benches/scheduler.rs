//! Criterion benches for the scheduler: single-placement latency (the
//! §6.2 note that "the VM scheduler must be optimized for high
//! throughput" given bursty arrivals) and short end-to-end simulations.

use criterion::{criterion_group, criterion_main, Criterion};
use rc_scheduler::{
    simulate, NoSource, OracleSource, PolicyKind, Scheduler, SchedulerConfig, SimConfig, VmRequest,
};
use rc_trace::{Trace, TraceConfig};
use rc_types::time::Timestamp;

fn requests() -> Vec<VmRequest> {
    let trace = Trace::generate(&TraceConfig {
        target_vms: 6_000,
        n_subscriptions: 250,
        days: 20,
        ..TraceConfig::small()
    });
    VmRequest::stream(&trace, Timestamp::ZERO, Timestamp::from_days(20), 16)
}

fn bench_scheduler(c: &mut Criterion) {
    let reqs = requests();

    c.bench_function("schedule_one_vm_880_servers", |b| {
        let mut scheduler = Scheduler::new(
            880,
            16.0,
            112.0,
            SchedulerConfig::new(PolicyKind::RcInformedSoft),
            Box::new(OracleSource),
        );
        // Pre-load some occupancy so eligibility checks do real work.
        for r in reqs.iter().take(2_000) {
            let _ = scheduler.schedule(r);
        }
        let mut i = 2_000usize;
        b.iter(|| {
            let r = &reqs[i % reqs.len()];
            i += 1;
            if let Some(p) = scheduler.schedule(r) {
                scheduler.complete(r, p);
            }
        })
    });

    let mut group = c.benchmark_group("simulate_20d");
    group.sample_size(10);
    for policy in [PolicyKind::Baseline, PolicyKind::RcInformedSoft] {
        group.bench_function(policy.label(), |b| {
            let n = rc_scheduler::suggest_server_count(&reqs, 16.0, 1.0);
            b.iter(|| {
                let config = SimConfig {
                    n_servers: n,
                    cores_per_server: 16.0,
                    memory_per_server_gb: 112.0,
                    scheduler: SchedulerConfig::new(policy),
                    util_shift: 0.0,
                    tick_stride: 12,
                    obs_tick_secs: rc_scheduler::OBS_TICK_DAILY,
                    accuracy: None,
                };
                let source: Box<dyn rc_scheduler::P95Source> = if policy.uses_predictions() {
                    Box::new(OracleSource)
                } else {
                    Box::new(NoSource)
                };
                simulate(&reqs, &config, source, (Timestamp::ZERO, Timestamp::from_days(20)))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_scheduler
}
criterion_main!(benches);
