//! Criterion benches for the learning substrate: tree / forest / boosting
//! training throughput and FFT classification.

use criterion::{criterion_group, criterion_main, Criterion};
use rc_ml::{
    detect_diurnal_periodicity, BinnedDataset, Dataset, DecisionTree, GradientBoosting,
    GradientBoostingConfig, PeriodicityConfig, RandomForest, RandomForestConfig, TreeConfig,
};

fn synthetic(n: usize, nf: usize) -> Dataset {
    let mut d = Dataset::new(nf, 4);
    let mut state = 1u64;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5
    };
    for _ in 0..n {
        let row: Vec<f64> = (0..nf).map(|_| next()).collect();
        let label = ((row[0] + 0.5).clamp(0.0, 0.999) * 4.0) as usize;
        d.push(&row, label);
    }
    d
}

fn bench_training(c: &mut Criterion) {
    let data = synthetic(5_000, 24);
    let binned = BinnedDataset::build(&data);

    c.bench_function("tree_fit_5k_x24", |b| {
        b.iter(|| DecisionTree::fit(&binned, &TreeConfig::default()))
    });

    c.bench_function("forest_fit_8x_5k_x24", |b| {
        let config = RandomForestConfig { n_trees: 8, ..RandomForestConfig::default() };
        b.iter(|| RandomForest::fit(&binned, &config))
    });

    c.bench_function("gbt_fit_10r_5k_x24", |b| {
        let config = GradientBoostingConfig { n_rounds: 10, ..Default::default() };
        b.iter(|| GradientBoosting::fit(&binned, &config))
    });

    let forest = RandomForest::fit(&binned, &RandomForestConfig::default());
    let row: Vec<f64> = (0..24).map(|i| i as f64 / 24.0 - 0.5).collect();
    c.bench_function("forest_predict", |b| {
        b.iter(|| rc_ml::Classifier::predict_proba(&forest, &row))
    });

    // FFT classification of a 6-day, 5-minute series (the §3.6 analysis).
    let series: Vec<f64> = (0..6 * 288)
        .map(|i| 0.4 + 0.3 * (2.0 * std::f64::consts::PI * i as f64 / 288.0).sin())
        .collect();
    c.bench_function("fft_periodicity_6day_series", |b| {
        b.iter(|| detect_diurnal_periodicity(&series, &PeriodicityConfig::default()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_training
}
criterion_main!(benches);
