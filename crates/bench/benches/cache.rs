//! Criterion benches for the client-side caches (§6.1: a result-cache hit
//! costs ~1.3 us at p99 — essentially a key hash plus a table lookup).

use criterion::{criterion_group, criterion_main, Criterion};
use rc_core::{ClientInputs, Prediction, ResultCache, ShardedResultCache};
use rc_types::time::Timestamp;
use rc_types::vm::{OsType, Party, ProdTag, SubscriptionId, VmRole};

fn inputs(i: u64) -> ClientInputs {
    ClientInputs {
        subscription: SubscriptionId((i % 1000) as u32),
        party: Party::First,
        role: VmRole::Iaas,
        prod: ProdTag::Production,
        os: OsType::Linux,
        sku_index: (i % 15) as usize,
        deployment_time: Timestamp::from_hours(i % 720),
        deployment_size_hint: (i % 20) as u32,
        service: None,
    }
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache_key_hash", |b| {
        let i = inputs(42);
        b.iter(|| std::hint::black_box(i.cache_key("VM_P95UTIL")))
    });

    c.bench_function("result_cache_hit", |b| {
        let mut cache = ResultCache::new(1 << 20);
        for k in 0..100_000u64 {
            cache.insert(k, Prediction { value: 1, score: 0.9 });
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 100_000;
            std::hint::black_box(cache.get(k))
        })
    });

    c.bench_function("result_cache_miss", |b| {
        let mut cache = ResultCache::new(1 << 20);
        let mut k = 1_000_000u64;
        b.iter(|| {
            k += 1;
            std::hint::black_box(cache.get(k))
        })
    });

    c.bench_function("result_cache_insert_with_eviction", |b| {
        let mut cache = ResultCache::new(10_000);
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            cache.insert(k, Prediction { value: 2, score: 0.8 });
        })
    });

    // The sharded cache behind RcClient: same single-thread costs, plus
    // the batch probe that locks each touched shard once.
    c.bench_function("sharded_cache_hit", |b| {
        let cache = ShardedResultCache::new(1 << 20, ShardedResultCache::default_shards());
        for k in 0..100_000u64 {
            cache.insert(k, Prediction { value: 1, score: 0.9 });
        }
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 100_000;
            std::hint::black_box(cache.get(k))
        })
    });

    c.bench_function("sharded_cache_insert_with_eviction", |b| {
        let cache = ShardedResultCache::new(10_000, ShardedResultCache::default_shards());
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            cache.insert(k, Prediction { value: 2, score: 0.8 });
        })
    });

    c.bench_function("sharded_cache_get_batch_64", |b| {
        let cache = ShardedResultCache::new(1 << 20, ShardedResultCache::default_shards());
        for k in 0..100_000u64 {
            cache.insert(k, Prediction { value: 1, score: 0.9 });
        }
        let mut base = 0u64;
        b.iter(|| {
            base = (base + 64) % 100_000;
            let keys: Vec<u64> = (base..base + 64).collect();
            std::hint::black_box(cache.get_batch(&keys))
        })
    });
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
