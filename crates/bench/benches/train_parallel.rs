//! Training wall-clock: the worker pool's effect on `RandomForest::fit`
//! (one task per tree) and on `run_pipeline` (the six per-metric models
//! trained concurrently).

use std::time::Instant;

use rc_ml::{BinnedDataset, Dataset, RandomForest, RandomForestConfig};
use rc_trace::{Trace, TraceConfig};

fn synthetic(n: usize, nf: usize) -> Dataset {
    let mut d = Dataset::new(nf, 4);
    let mut state = 1u64;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5
    };
    for _ in 0..n {
        let row: Vec<f64> = (0..nf).map(|_| next()).collect();
        let label = ((row[0] + 0.5).clamp(0.0, 0.999) * 4.0) as usize;
        d.push(&row, label);
    }
    d
}

fn main() {
    let workers = rc_ml::pool::default_workers();
    println!("training wall-clock, serial vs worker pool ({workers} workers available)");
    rc_bench::rule(72);

    // Forest: 32 trees over 20k x 24, one pool task per tree.
    let data = synthetic(20_000, 24);
    let binned = BinnedDataset::build(&data);
    let serial_cfg = RandomForestConfig { n_trees: 32, n_threads: 1, ..Default::default() };
    let pooled_cfg = RandomForestConfig { n_trees: 32, n_threads: 0, ..Default::default() };
    let t = Instant::now();
    let f1 = RandomForest::fit(&binned, &serial_cfg);
    let serial = t.elapsed();
    let t = Instant::now();
    let f2 = RandomForest::fit(&binned, &pooled_cfg);
    let pooled = t.elapsed();
    // Same seed, same trees: scheduling must not change the model.
    assert_eq!(rc_ml::to_bytes(&f1), rc_ml::to_bytes(&f2), "forest must be schedule-invariant");
    println!(
        "forest_fit 32 trees, 20k x 24:   1 thread {serial:>8.2?}   pool {pooled:>8.2?}   speedup {:.2}x",
        serial.as_secs_f64() / pooled.as_secs_f64()
    );

    // Pipeline: six per-metric models trained and validated concurrently.
    let trace = Trace::generate(&TraceConfig {
        target_vms: 8_000,
        n_subscriptions: 300,
        days: 24,
        ..TraceConfig::small()
    });
    let mut serial_cfg = rc_core::PipelineConfig::fast(24);
    serial_cfg.train_workers = 1;
    let mut pooled_cfg = rc_core::PipelineConfig::fast(24);
    pooled_cfg.train_workers = 0;
    let t = Instant::now();
    let o1 = rc_core::run_pipeline(&trace, &serial_cfg).expect("serial pipeline");
    let serial = t.elapsed();
    let t = Instant::now();
    let o2 = rc_core::run_pipeline(&trace, &pooled_cfg).expect("pooled pipeline");
    let pooled = t.elapsed();
    assert_eq!(o1.reports.len(), o2.reports.len());
    for (a, b) in o1.reports.iter().zip(&o2.reports) {
        assert_eq!(a.metric, b.metric, "metric order must be preserved under the pool");
    }
    println!(
        "run_pipeline 6 models, 8k VMs:   1 worker {serial:>8.2?}   pool {pooled:>8.2?}   speedup {:.2}x",
        serial.as_secs_f64() / pooled.as_secs_f64()
    );
}
