//! Criterion benches for the simulated store: raw in-process operations
//! and the latency-model sampling that reproduces §6.1's 2.9 / 5.6 ms
//! quantiles.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rc_store::{LatencyModel, Store};

fn bench_store(c: &mut Criterion) {
    let store = Store::in_memory();
    let record = vec![0u8; 850];
    store.put("features/0", record.clone().into()).unwrap();

    c.bench_function("store_get_latest_850B", |b| {
        b.iter(|| store.get_latest("features/0").unwrap())
    });

    c.bench_function("store_put_850B", |b| {
        b.iter(|| store.put("features/bench", record.clone().into()).unwrap())
    });

    c.bench_function("latency_model_sample", |b| {
        let model = LatencyModel::paper_store();
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| std::hint::black_box(model.sample_us(&mut rng)))
    });
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
