//! Criterion benches for the rc-obs hot-path instruments. The predict
//! path records one histogram observation and bumps a handful of
//! counters per call, so a single record/increment must stay well under
//! 100 ns — it is a relaxed atomic RMW (plus two for the histogram's
//! count/sum), with no locks and no allocation.

use criterion::{criterion_group, criterion_main, Criterion};
use rc_obs::{Counter, Histogram, Registry};

fn bench_obs(c: &mut Criterion) {
    c.bench_function("counter_increment", |b| {
        let counter = Counter::new();
        b.iter(|| counter.increment());
    });

    c.bench_function("histogram_record", |b| {
        let histogram = Histogram::new();
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            histogram.record(std::hint::black_box(v >> 40));
        });
    });

    c.bench_function("histogram_record_duration", |b| {
        let histogram = Histogram::new();
        let d = std::time::Duration::from_nanos(1_375);
        b.iter(|| histogram.record_duration(std::hint::black_box(d)));
    });

    // Handles resolved once, then shared — the pattern every layer uses.
    c.bench_function("registry_held_handle_record", |b| {
        let registry = Registry::new();
        let histogram = registry.histogram("bench_latency_ns");
        b.iter(|| histogram.record(std::hint::black_box(1_234)));
    });

    // Direct wall-clock check of the <100 ns hot-path budget, independent
    // of criterion's own calibration: 10M records amortize timer overhead.
    let histogram = Histogram::new();
    const N: u64 = 10_000_000;
    let start = std::time::Instant::now();
    for v in 0..N {
        histogram.record(std::hint::black_box(v & 0xFFFF));
    }
    let ns_per_record = start.elapsed().as_nanos() as f64 / N as f64;
    println!("histogram_record direct measurement: {ns_per_record:.1} ns per record");
    assert!(
        ns_per_record < 100.0,
        "{ns_per_record:.1} ns per record exceeds the 100 ns hot-path budget"
    );
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
