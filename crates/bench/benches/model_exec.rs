//! Criterion bench for Figure 10: model-execution latency per metric on
//! the client's predict path (result-cache misses vs hits).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rc_core::{labels::vm_inputs, run_pipeline, ClientConfig, PipelineConfig, RcClient};
use rc_store::Store;
use rc_trace::{Trace, TraceConfig};
use rc_types::{PredictionMetric, VmId};

struct World {
    trace: Trace,
    client: RcClient,
}

fn world() -> World {
    let config =
        TraceConfig { target_vms: 8_000, n_subscriptions: 300, days: 30, ..TraceConfig::small() };
    let trace = Trace::generate(&config);
    let output = run_pipeline(&trace, &PipelineConfig::fast(30)).expect("pipeline");
    let store = Store::in_memory();
    output.publish(&store, 0.5).expect("publish");
    let client = RcClient::new(store, ClientConfig::default());
    assert!(client.initialize());
    World { trace, client }
}

fn bench_model_exec(c: &mut Criterion) {
    let w = world();
    let inputs: Vec<_> =
        (0..w.trace.n_vms() as u64).step_by(7).map(|i| vm_inputs(&w.trace, VmId(i))).collect();

    let mut group = c.benchmark_group("predict_single_miss");
    for metric in PredictionMetric::ALL {
        let mut next = 0usize;
        group.bench_function(metric.model_name(), |b| {
            b.iter_batched(
                || {
                    // Fresh input each iteration so the result cache misses
                    // and the model actually executes.
                    let i = inputs[next % inputs.len()];
                    next += 1;
                    w.client.clear_result_cache();
                    i
                },
                |i| w.client.predict_single(metric.model_name(), &i),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();

    let hit_inputs = vm_inputs(&w.trace, VmId(1));
    let _ = w.client.predict_single("VM_P95UTIL", &hit_inputs);
    c.bench_function("predict_single_hit", |b| {
        b.iter(|| w.client.predict_single("VM_P95UTIL", &hit_inputs))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_model_exec
}
criterion_main!(benches);
