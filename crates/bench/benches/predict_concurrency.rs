//! Multi-threaded `predict_single` throughput: the sharded result cache
//! vs the old single-mutex layout (`result_cache_shards: 1`).
//!
//! Not a criterion bench: the unit of interest is aggregate ops/s across
//! a thread group, so each configuration runs one timed phase over a
//! pre-warmed cache (the §6.1 steady state, where nearly every request is
//! a result-cache hit and the lock is the bottleneck).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use rc_core::labels::vm_inputs;
use rc_core::{ClientConfig, RcClient};
use rc_store::Store;
use rc_trace::{Trace, TraceConfig};
use rc_types::vm::VmId;

const MEASURE: Duration = Duration::from_millis(400);
const WORKING_SET: u64 = 2_048;

fn world() -> (Trace, Store) {
    let trace = Trace::generate(&TraceConfig {
        target_vms: 5_000,
        n_subscriptions: 200,
        days: 24,
        ..TraceConfig::small()
    });
    let output = rc_core::run_pipeline(&trace, &rc_core::PipelineConfig::fast(24))
        .expect("pipeline on bench trace");
    let store = Store::in_memory();
    output.publish(&store, 0.5).expect("publish");
    (trace, store)
}

/// Aggregate ops/s for `n_threads` hammering a pre-warmed client.
fn run_group(trace: &Trace, store: &Store, n_shards: usize, n_threads: usize) -> f64 {
    let config = ClientConfig { result_cache_shards: n_shards, ..ClientConfig::default() };
    let client = RcClient::new(store.clone(), config);
    assert!(client.initialize());

    // Warm the cache so the timed phase measures hit-path contention.
    let inputs: Vec<_> =
        (0..WORKING_SET).map(|i| vm_inputs(trace, VmId(i % trace.n_vms() as u64))).collect();
    for inp in &inputs {
        let _ = client.predict_single("VM_P95UTIL", inp);
    }

    let barrier = Arc::new(Barrier::new(n_threads + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..n_threads)
        .map(|t| {
            let c = client.clone();
            let barrier = barrier.clone();
            let stop = stop.clone();
            let inputs = inputs.clone();
            std::thread::spawn(move || {
                barrier.wait();
                let mut ops = 0u64;
                // Offset start positions so threads fan out across shards.
                let mut i = (t as u64 * WORKING_SET) / 4;
                while !stop.load(Ordering::Relaxed) {
                    i = (i + 1) % WORKING_SET;
                    std::hint::black_box(c.predict_single("VM_P95UTIL", &inputs[i as usize]));
                    ops += 1;
                }
                ops
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    std::thread::sleep(MEASURE);
    stop.store(true, Ordering::Relaxed);
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    total as f64 / started.elapsed().as_secs_f64()
}

fn main() {
    let (trace, store) = world();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "predict_single throughput, warmed cache ({cores} cores; \
         1 shard = old single-mutex layout)"
    );
    println!(
        "{:<10} {:>16} {:>16} {:>9}",
        "threads", "1 shard (ops/s)", "sharded (ops/s)", "speedup"
    );
    rc_bench::rule(56);
    for n_threads in [1usize, 2, 4, 8] {
        let single = run_group(&trace, &store, 1, n_threads);
        let sharded = run_group(&trace, &store, 0, n_threads);
        println!("{:<10} {:>16.0} {:>16.0} {:>8.2}x", n_threads, single, sharded, sharded / single);
    }
}
