//! The six predicted metrics of Tables 1, 3 and 4 of the paper.

use serde::{Deserialize, Serialize};

/// A VM behaviour metric Resource Central learns to predict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictionMetric {
    /// Average virtual CPU utilization over the VM's life (Random Forest).
    AvgCpuUtil,
    /// 95th percentile of the per-interval maximum CPU utilization
    /// (Random Forest). This is the metric Algorithm 1 consumes.
    P95MaxCpuUtil,
    /// Maximum deployment size in number of VMs (Gradient Boosting Tree).
    DeploymentSizeVms,
    /// Maximum deployment size in number of cores (Gradient Boosting Tree).
    DeploymentSizeCores,
    /// VM lifetime (Gradient Boosting Tree).
    Lifetime,
    /// Workload class: interactive vs delay-insensitive (FFT labelling +
    /// Gradient Boosting Tree).
    WorkloadClass,
}

impl PredictionMetric {
    /// All metrics, in the row order of Tables 1 and 4.
    pub const ALL: [PredictionMetric; 6] = [
        PredictionMetric::AvgCpuUtil,
        PredictionMetric::P95MaxCpuUtil,
        PredictionMetric::DeploymentSizeVms,
        PredictionMetric::DeploymentSizeCores,
        PredictionMetric::Lifetime,
        PredictionMetric::WorkloadClass,
    ];

    /// Model name used in client API calls (Algorithm 1 calls
    /// `predict_single(VM_P95UTIL, ...)`).
    pub const fn model_name(self) -> &'static str {
        match self {
            PredictionMetric::AvgCpuUtil => "VM_AVGUTIL",
            PredictionMetric::P95MaxCpuUtil => "VM_P95UTIL",
            PredictionMetric::DeploymentSizeVms => "DEP_SIZE_VMS",
            PredictionMetric::DeploymentSizeCores => "DEP_SIZE_CORES",
            PredictionMetric::Lifetime => "VM_LIFETIME",
            PredictionMetric::WorkloadClass => "VM_CLASS",
        }
    }

    /// Parses a model name back into the metric.
    ///
    /// Returns `None` for unknown model names.
    pub fn from_model_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|m| m.model_name() == name)
    }

    /// Human-readable row label as printed in Table 4.
    pub const fn label(self) -> &'static str {
        match self {
            PredictionMetric::AvgCpuUtil => "Avg CPU utilization",
            PredictionMetric::P95MaxCpuUtil => "P95 CPU utilization",
            PredictionMetric::DeploymentSizeVms => "Deploy size (#VMs)",
            PredictionMetric::DeploymentSizeCores => "Deploy size (#cores)",
            PredictionMetric::Lifetime => "Lifetime",
            PredictionMetric::WorkloadClass => "Workload class",
        }
    }

    /// Number of prediction buckets for the metric (Table 3).
    pub const fn n_buckets(self) -> usize {
        match self {
            PredictionMetric::WorkloadClass => 2,
            _ => 4,
        }
    }

    /// Dense index of the metric, usable for arrays over all metrics.
    pub const fn index(self) -> usize {
        match self {
            PredictionMetric::AvgCpuUtil => 0,
            PredictionMetric::P95MaxCpuUtil => 1,
            PredictionMetric::DeploymentSizeVms => 2,
            PredictionMetric::DeploymentSizeCores => 3,
            PredictionMetric::Lifetime => 4,
            PredictionMetric::WorkloadClass => 5,
        }
    }
}

impl std::fmt::Display for PredictionMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_names_round_trip() {
        for m in PredictionMetric::ALL {
            assert_eq!(PredictionMetric::from_model_name(m.model_name()), Some(m));
        }
        assert_eq!(PredictionMetric::from_model_name("NOPE"), None);
    }

    #[test]
    fn indices_are_dense() {
        for (i, m) in PredictionMetric::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
    }

    #[test]
    fn bucket_counts_match_table3() {
        for m in PredictionMetric::ALL {
            let expect = if m == PredictionMetric::WorkloadClass { 2 } else { 4 };
            assert_eq!(m.n_buckets(), expect);
        }
    }
}
