//! Time handling for traces and simulation.
//!
//! All trace and simulation time is expressed in whole seconds since the
//! start of the observation window. The paper's dataset starts on
//! November 16, 2016 — a Wednesday — so diurnal/weekly helpers assume the
//! trace epoch falls on [`EPOCH_WEEKDAY`] at midnight local time.

use serde::{Deserialize, Serialize};

/// Seconds between consecutive telemetry readings (the paper reports VM
/// utilization every 5 minutes).
pub const TELEMETRY_INTERVAL: Duration = Duration::from_minutes(5);

/// Weekday of the trace epoch: 0 = Monday … 6 = Sunday.
///
/// November 16, 2016 was a Wednesday.
pub const EPOCH_WEEKDAY: u32 = 2;

/// A point in trace time, in whole seconds since the trace epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

/// A span of trace time, in whole seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl Timestamp {
    /// The trace epoch (t = 0).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Builds a timestamp from whole seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs)
    }

    /// Builds a timestamp from whole minutes since the epoch.
    pub const fn from_minutes(mins: u64) -> Self {
        Timestamp(mins * 60)
    }

    /// Builds a timestamp from whole hours since the epoch.
    pub const fn from_hours(hours: u64) -> Self {
        Timestamp(hours * 3600)
    }

    /// Builds a timestamp from whole days since the epoch.
    pub const fn from_days(days: u64) -> Self {
        Timestamp(days * 86_400)
    }

    /// Seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Fractional hours since the epoch.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// Fractional days since the epoch.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / 86_400.0
    }

    /// Hour of the (local) day in `[0, 24)`, fractional.
    pub fn hour_of_day(self) -> f64 {
        (self.0 % 86_400) as f64 / 3600.0
    }

    /// Whole day index since the epoch.
    pub const fn day_index(self) -> u64 {
        self.0 / 86_400
    }

    /// Weekday of this timestamp: 0 = Monday … 6 = Sunday.
    pub const fn weekday(self) -> u32 {
        ((self.day_index() as u32) + EPOCH_WEEKDAY) % 7
    }

    /// True when the timestamp falls on a Saturday or Sunday.
    pub const fn is_weekend(self) -> bool {
        self.weekday() >= 5
    }

    /// Index of the enclosing 5-minute telemetry interval.
    pub const fn telemetry_slot(self) -> u64 {
        self.0 / TELEMETRY_INTERVAL.0
    }

    /// Saturating difference `self - earlier`.
    pub const fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Timestamp advanced by `d`.
    pub const fn plus(self, d: Duration) -> Timestamp {
        Timestamp(self.0 + d.0)
    }

    /// Timestamp moved back by `d`, saturating at the epoch.
    pub const fn minus(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }

    /// The smaller of two timestamps.
    pub fn min(self, other: Timestamp) -> Timestamp {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two timestamps.
    pub fn max(self, other: Timestamp) -> Timestamp {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Builds a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs)
    }

    /// Builds a duration from whole minutes.
    pub const fn from_minutes(mins: u64) -> Self {
        Duration(mins * 60)
    }

    /// Builds a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        Duration(hours * 3600)
    }

    /// Builds a duration from whole days.
    pub const fn from_days(days: u64) -> Self {
        Duration(days * 86_400)
    }

    /// Whole seconds in this duration.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Fractional minutes in this duration.
    pub fn as_minutes_f64(self) -> f64 {
        self.0 as f64 / 60.0
    }

    /// Fractional hours in this duration.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// Fractional days in this duration.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / 86_400.0
    }
}

impl std::ops::Add<Duration> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: Duration) -> Timestamp {
        self.plus(rhs)
    }
}

impl std::ops::Sub<Timestamp> for Timestamp {
    type Output = Duration;

    fn sub(self, rhs: Timestamp) -> Duration {
        self.since(rhs)
    }
}

impl std::ops::Add for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl std::ops::Sub for Duration {
    type Output = Duration;

    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t+{}s", self.0)
    }
}

impl std::fmt::Display for Duration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.0;
        if s < 60 {
            write!(f, "{s}s")
        } else if s < 3600 {
            write!(f, "{:.1}m", s as f64 / 60.0)
        } else if s < 86_400 {
            write!(f, "{:.1}h", s as f64 / 3600.0)
        } else {
            write!(f, "{:.1}d", s as f64 / 86_400.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weekday_of_epoch_is_wednesday() {
        assert_eq!(Timestamp::ZERO.weekday(), 2);
        assert!(!Timestamp::ZERO.is_weekend());
    }

    #[test]
    fn weekend_detection() {
        // Epoch is Wednesday; +3 days = Saturday, +4 = Sunday, +5 = Monday.
        assert!(Timestamp::from_days(3).is_weekend());
        assert!(Timestamp::from_days(4).is_weekend());
        assert!(!Timestamp::from_days(5).is_weekend());
    }

    #[test]
    fn hour_of_day_wraps() {
        let t = Timestamp::from_hours(25);
        assert!((t.hour_of_day() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn telemetry_slots_are_five_minutes() {
        assert_eq!(Timestamp::from_secs(0).telemetry_slot(), 0);
        assert_eq!(Timestamp::from_secs(299).telemetry_slot(), 0);
        assert_eq!(Timestamp::from_secs(300).telemetry_slot(), 1);
    }

    #[test]
    fn arithmetic_saturates() {
        let a = Timestamp::from_secs(10);
        let b = Timestamp::from_secs(20);
        assert_eq!(a.since(b), Duration::ZERO);
        assert_eq!(b.since(a), Duration::from_secs(10));
        assert_eq!(a.minus(Duration::from_secs(100)), Timestamp::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Duration::from_secs(30).to_string(), "30s");
        assert_eq!(Duration::from_minutes(90).to_string(), "1.5h");
        assert_eq!(Duration::from_days(2).to_string(), "2.0d");
    }
}
