//! Telemetry records: what the fabric reports about every VM.
//!
//! The paper's dataset contains, per VM: identity (VM / deployment /
//! subscription), role, size (max core/memory allocation), and min/avg/max
//! resource utilization reported every 5 minutes. [`VmRecord`] and
//! [`UtilReading`] mirror that schema.

use serde::{Deserialize, Serialize};

use crate::time::{Duration, Timestamp};
use crate::vm::{
    DeploymentId, OsType, Party, ProdTag, RegionId, SubscriptionId, VmId, VmRole, VmSku, VmType,
};

/// One 5-minute CPU utilization reading for a VM.
///
/// Values are fractions of the VM's *allocated* virtual CPU in `[0, 1]`:
/// `min <= avg <= max` within the interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilReading {
    /// Start of the 5-minute interval.
    pub ts: Timestamp,
    /// Minimum utilization observed in the interval.
    pub min: f64,
    /// Average utilization over the interval.
    pub avg: f64,
    /// Maximum utilization observed in the interval.
    pub max: f64,
}

impl UtilReading {
    /// Builds a reading, clamping each component to `[0, 1]` and restoring
    /// the `min <= avg <= max` ordering if the inputs violate it.
    pub fn new(ts: Timestamp, min: f64, avg: f64, max: f64) -> Self {
        let clamp = |v: f64| v.clamp(0.0, 1.0);
        let (mut min, mut avg, mut max) = (clamp(min), clamp(avg), clamp(max));
        if min > avg {
            std::mem::swap(&mut min, &mut avg);
        }
        if avg > max {
            std::mem::swap(&mut avg, &mut max);
        }
        if min > avg {
            std::mem::swap(&mut min, &mut avg);
        }
        UtilReading { ts, min, avg, max }
    }

    /// True when the reading satisfies its ordering and range invariants.
    pub fn is_valid(&self) -> bool {
        (0.0..=1.0).contains(&self.min)
            && (0.0..=1.0).contains(&self.max)
            && self.min <= self.avg
            && self.avg <= self.max
    }
}

/// The static description of one VM over its whole life.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmRecord {
    /// VM identity.
    pub vm_id: VmId,
    /// Owning subscription.
    pub subscription: SubscriptionId,
    /// Deployment the VM belongs to.
    pub deployment: DeploymentId,
    /// Region the deployment targets.
    pub region: RegionId,
    /// First- or third-party customer.
    pub party: Party,
    /// VM role (IaaS or PaaS functional role).
    pub role: VmRole,
    /// Production annotation (relevant to oversubscription).
    pub prod: ProdTag,
    /// Guest operating system.
    pub os: OsType,
    /// Requested size (max core/memory allocation).
    pub sku: VmSku,
    /// Creation time.
    pub created: Timestamp,
    /// Termination time (exclusive end of life).
    pub deleted: Timestamp,
}

impl VmRecord {
    /// The VM's type, implied by its role.
    pub fn vm_type(&self) -> VmType {
        self.role.vm_type()
    }

    /// Lifetime from creation to termination.
    pub fn lifetime(&self) -> Duration {
        self.deleted.since(self.created)
    }

    /// Core-hours consumed, assuming the full core allocation for the whole
    /// lifetime (the accounting the paper uses for "core hours").
    pub fn core_hours(&self) -> f64 {
        self.sku.cores as f64 * self.lifetime().as_hours_f64()
    }

    /// True when the VM is alive at `t` (creation inclusive, deletion
    /// exclusive).
    pub fn alive_at(&self, t: Timestamp) -> bool {
        self.created <= t && t < self.deleted
    }

    /// Number of whole 5-minute telemetry readings this VM produces.
    pub fn reading_count(&self) -> u64 {
        self.lifetime().as_secs() / crate::time::TELEMETRY_INTERVAL.as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::SKU_CATALOG;

    fn sample_record(created: u64, deleted: u64) -> VmRecord {
        VmRecord {
            vm_id: VmId(1),
            subscription: SubscriptionId(7),
            deployment: DeploymentId(3),
            region: RegionId(0),
            party: Party::Third,
            role: VmRole::Iaas,
            prod: ProdTag::Production,
            os: OsType::Linux,
            sku: SKU_CATALOG[2], // A2: 2 cores
            created: Timestamp::from_secs(created),
            deleted: Timestamp::from_secs(deleted),
        }
    }

    #[test]
    fn reading_restores_invariants() {
        let r = UtilReading::new(Timestamp::ZERO, 0.9, 0.1, 0.5);
        assert!(r.is_valid());
        let r = UtilReading::new(Timestamp::ZERO, -1.0, 2.0, 0.5);
        assert!(r.is_valid());
        assert_eq!(r.min, 0.0);
        assert_eq!(r.max, 1.0);
    }

    #[test]
    fn lifetime_and_core_hours() {
        let r = sample_record(0, 7200); // 2 hours on 2 cores.
        assert_eq!(r.lifetime(), Duration::from_hours(2));
        assert!((r.core_hours() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn alive_at_bounds() {
        let r = sample_record(100, 200);
        assert!(!r.alive_at(Timestamp::from_secs(99)));
        assert!(r.alive_at(Timestamp::from_secs(100)));
        assert!(r.alive_at(Timestamp::from_secs(199)));
        assert!(!r.alive_at(Timestamp::from_secs(200)));
    }

    #[test]
    fn reading_count_is_floor_of_lifetime() {
        assert_eq!(sample_record(0, 299).reading_count(), 0);
        assert_eq!(sample_record(0, 300).reading_count(), 1);
        assert_eq!(sample_record(0, 3600).reading_count(), 12);
    }
}
