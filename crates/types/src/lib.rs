//! Shared domain types for the Resource Central reproduction.
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! - [`time`]: timestamps, the 5-minute telemetry interval, diurnal helpers.
//! - [`vm`]: VM identity, type (IaaS/PaaS), party (first/third), SKU catalog.
//! - [`telemetry`]: per-interval utilization readings and VM records.
//! - [`buckets`]: the prediction buckets of Table 3 of the paper.
//! - [`metrics`]: the six predicted metrics of Table 1/4.
//!
//! The types are deliberately plain (mostly `Copy` newtypes and enums) so the
//! trace generator, the ML pipeline, and the scheduler simulator can exchange
//! them without conversion layers.

pub mod buckets;
pub mod metrics;
pub mod telemetry;
pub mod time;
pub mod vm;

pub use buckets::{
    Bucketizer, DeploymentSizeBucketizer, LifetimeBucketizer, UtilizationBucketizer, WorkloadClass,
    WorkloadClassBucketizer,
};
pub use metrics::PredictionMetric;
pub use telemetry::{UtilReading, VmRecord};
pub use time::{Duration, Timestamp, TELEMETRY_INTERVAL};
pub use vm::{
    ClusterId, DeploymentId, OsType, Party, ProdTag, RegionId, SubscriptionId, VmId, VmRole, VmSku,
    VmType, SKU_CATALOG,
};
