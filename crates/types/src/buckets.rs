//! Prediction buckets (Table 3 of the paper).
//!
//! Resource Central formulates numeric predictions as *classification over
//! buckets* rather than regression, because buckets are easier to predict
//! ("it is easier to predict that utilization will be in the 50% to 75%
//! bucket than predict that it will be exactly 53%"). When a numeric value
//! is needed, the client converts the bucket back with a [`BucketValue`]
//! policy (lowest / middle / highest value of the bucket).

use serde::{Deserialize, Serialize};

use crate::time::Duration;

/// How to convert a predicted bucket back to a representative number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BucketValue {
    /// The lowest value of the bucket (optimistic for utilization).
    Lowest,
    /// The midpoint of the bucket.
    Middle,
    /// The highest value of the bucket (conservative for utilization;
    /// Algorithm 1 uses `Highest_Util_in_Bucket`).
    Highest,
}

/// Maps a metric's raw value into one of a small number of buckets.
///
/// Implementations must be *total* (every valid value maps to a bucket) and
/// *monotone* (larger values never map to smaller buckets).
pub trait Bucketizer {
    /// The raw value type being bucketed.
    type Value;

    /// Number of buckets.
    fn n_buckets(&self) -> usize;

    /// Bucket index in `[0, n_buckets)` for `value`.
    fn bucket(&self, value: &Self::Value) -> usize;

    /// Human-readable label for bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= n_buckets()`.
    fn label(&self, i: usize) -> String;
}

/// CPU-utilization buckets: 0–25%, 25–50%, 50–75%, 75–100%.
///
/// Used both for average and 95th-percentile-of-max utilization. Values are
/// fractions in `[0, 1]`; bucket boundaries are inclusive on the low side.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UtilizationBucketizer;

impl UtilizationBucketizer {
    /// Upper bound (as a fraction) of bucket `i`.
    ///
    /// Algorithm 1 multiplies `Highest_Util_in_Bucket[pred]` by the VM's
    /// core allocation to get a conservative utilization estimate.
    ///
    /// # Panics
    ///
    /// Panics when `i >= 4`.
    pub fn highest_util_in_bucket(i: usize) -> f64 {
        match i {
            0 => 0.25,
            1 => 0.50,
            2 => 0.75,
            3 => 1.00,
            _ => panic!("utilization bucket index out of range: {i}"),
        }
    }

    /// Representative value of bucket `i` under a [`BucketValue`] policy.
    ///
    /// # Panics
    ///
    /// Panics when `i >= 4`.
    pub fn representative(i: usize, policy: BucketValue) -> f64 {
        assert!(i < 4, "utilization bucket index out of range: {i}");
        let lo = i as f64 * 0.25;
        let hi = lo + 0.25;
        match policy {
            BucketValue::Lowest => lo,
            BucketValue::Middle => (lo + hi) / 2.0,
            BucketValue::Highest => hi,
        }
    }
}

impl Bucketizer for UtilizationBucketizer {
    type Value = f64;

    fn n_buckets(&self) -> usize {
        4
    }

    fn bucket(&self, value: &f64) -> usize {
        let v = value.clamp(0.0, 1.0);
        // 0.25 and 0.5 and 0.75 fall into the upper bucket; 1.0 stays in 3.
        ((v / 0.25) as usize).min(3)
    }

    fn label(&self, i: usize) -> String {
        match i {
            0 => "0-25%".into(),
            1 => "25-50%".into(),
            2 => "50-75%".into(),
            3 => "75-100%".into(),
            _ => panic!("utilization bucket index out of range: {i}"),
        }
    }
}

/// Deployment-size buckets: 1, 2–10, 11–100, >100 (used both for #VMs and
/// #cores).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeploymentSizeBucketizer;

impl Bucketizer for DeploymentSizeBucketizer {
    type Value = u64;

    fn n_buckets(&self) -> usize {
        4
    }

    fn bucket(&self, value: &u64) -> usize {
        match *value {
            0 | 1 => 0,
            2..=10 => 1,
            11..=100 => 2,
            _ => 3,
        }
    }

    fn label(&self, i: usize) -> String {
        match i {
            0 => "1".into(),
            1 => ">1 & <=10".into(),
            2 => ">10 & <=100".into(),
            3 => ">100".into(),
            _ => panic!("deployment-size bucket index out of range: {i}"),
        }
    }
}

/// Lifetime buckets: <=15 min, 15–60 min, 1–24 h, >24 h.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LifetimeBucketizer;

impl Bucketizer for LifetimeBucketizer {
    type Value = Duration;

    fn n_buckets(&self) -> usize {
        4
    }

    fn bucket(&self, value: &Duration) -> usize {
        let s = value.as_secs();
        if s <= 15 * 60 {
            0
        } else if s <= 60 * 60 {
            1
        } else if s <= 24 * 3600 {
            2
        } else {
            3
        }
    }

    fn label(&self, i: usize) -> String {
        match i {
            0 => "<=15 mins".into(),
            1 => ">15 & <=60 mins".into(),
            2 => ">1 & <=24 hs".into(),
            3 => ">24 hs".into(),
            _ => panic!("lifetime bucket index out of range: {i}"),
        }
    }
}

/// The two workload classes inferred by the FFT periodicity analysis (§3.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Batch / background / dev-test workloads tolerant of contention.
    DelayInsensitive,
    /// Potentially interactive workloads with diurnal periodicity; must not
    /// be tightly packed or power-capped.
    Interactive,
}

impl WorkloadClass {
    /// Human-readable label.
    pub const fn label(self) -> &'static str {
        match self {
            WorkloadClass::DelayInsensitive => "delay-insensitive",
            WorkloadClass::Interactive => "interactive",
        }
    }

    /// Numbering used by Figure 8 (1 = delay-insensitive, 2 = interactive).
    pub const fn as_number(self) -> u8 {
        match self {
            WorkloadClass::DelayInsensitive => 1,
            WorkloadClass::Interactive => 2,
        }
    }
}

/// Bucketizer over [`WorkloadClass`], for symmetry with the numeric metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadClassBucketizer;

impl Bucketizer for WorkloadClassBucketizer {
    type Value = WorkloadClass;

    fn n_buckets(&self) -> usize {
        2
    }

    fn bucket(&self, value: &WorkloadClass) -> usize {
        match value {
            WorkloadClass::DelayInsensitive => 0,
            WorkloadClass::Interactive => 1,
        }
    }

    fn label(&self, i: usize) -> String {
        match i {
            0 => "delay-insensitive".into(),
            1 => "interactive".into(),
            _ => panic!("workload-class bucket index out of range: {i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_bucket_edges() {
        let b = UtilizationBucketizer;
        assert_eq!(b.bucket(&0.0), 0);
        assert_eq!(b.bucket(&0.2499), 0);
        assert_eq!(b.bucket(&0.25), 1);
        assert_eq!(b.bucket(&0.50), 2);
        assert_eq!(b.bucket(&0.75), 3);
        assert_eq!(b.bucket(&1.0), 3);
        assert_eq!(b.bucket(&2.0), 3); // clamped
        assert_eq!(b.bucket(&-0.5), 0); // clamped
    }

    #[test]
    fn utilization_representatives() {
        assert_eq!(UtilizationBucketizer::representative(0, BucketValue::Lowest), 0.0);
        assert_eq!(UtilizationBucketizer::representative(1, BucketValue::Middle), 0.375);
        assert_eq!(UtilizationBucketizer::representative(3, BucketValue::Highest), 1.0);
        for i in 0..4 {
            assert_eq!(
                UtilizationBucketizer::highest_util_in_bucket(i),
                UtilizationBucketizer::representative(i, BucketValue::Highest)
            );
        }
    }

    #[test]
    fn deployment_bucket_edges() {
        let b = DeploymentSizeBucketizer;
        assert_eq!(b.bucket(&1), 0);
        assert_eq!(b.bucket(&2), 1);
        assert_eq!(b.bucket(&10), 1);
        assert_eq!(b.bucket(&11), 2);
        assert_eq!(b.bucket(&100), 2);
        assert_eq!(b.bucket(&101), 3);
    }

    #[test]
    fn lifetime_bucket_edges() {
        let b = LifetimeBucketizer;
        assert_eq!(b.bucket(&Duration::from_minutes(15)), 0);
        assert_eq!(b.bucket(&Duration::from_secs(15 * 60 + 1)), 1);
        assert_eq!(b.bucket(&Duration::from_minutes(60)), 1);
        assert_eq!(b.bucket(&Duration::from_hours(24)), 2);
        assert_eq!(b.bucket(&Duration::from_secs(24 * 3600 + 1)), 3);
    }

    #[test]
    fn labels_cover_all_buckets() {
        let u = UtilizationBucketizer;
        let d = DeploymentSizeBucketizer;
        let l = LifetimeBucketizer;
        let w = WorkloadClassBucketizer;
        for i in 0..4 {
            assert!(!u.label(i).is_empty());
            assert!(!d.label(i).is_empty());
            assert!(!l.label(i).is_empty());
        }
        for i in 0..2 {
            assert!(!w.label(i).is_empty());
        }
    }

    #[test]
    fn class_numbering_matches_figure8() {
        assert_eq!(WorkloadClass::DelayInsensitive.as_number(), 1);
        assert_eq!(WorkloadClass::Interactive.as_number(), 2);
    }
}
