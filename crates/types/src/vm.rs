//! VM identity, classification, and the SKU catalog.
//!
//! Terminology follows §3 of the paper: customers own *subscriptions*;
//! a subscription deploys groups of VMs (*deployments*) into a *region*;
//! every VM in a deployment lands in one *cluster* of that region. Each VM
//! has a *role* (IaaS, or a PaaS functional role), belongs to a first- or
//! third-party customer, and — for first-party subscriptions — carries a
//! production/non-production annotation used by the oversubscription rule
//! of Algorithm 1.

use serde::{Deserialize, Serialize};

/// Unique identifier of a VM within a trace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct VmId(pub u64);

/// Unique identifier of a customer subscription.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SubscriptionId(pub u32);

/// Unique identifier of a VM deployment (a managed group of VMs).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct DeploymentId(pub u64);

/// Unique identifier of a region (one or more datacenters).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RegionId(pub u16);

/// Unique identifier of a server cluster within a region.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClusterId(pub u16);

/// Whether a VM belongs to a first-party (internal / first-party service) or
/// third-party (external customer) workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Party {
    /// Internal Microsoft workloads and first-party services.
    First,
    /// External customer workloads.
    Third,
}

impl Party {
    /// All parties, in display order.
    pub const ALL: [Party; 2] = [Party::First, Party::Third];

    /// Human-readable label used by the characterization harness.
    pub const fn label(self) -> &'static str {
        match self {
            Party::First => "first-party",
            Party::Third => "third-party",
        }
    }
}

/// IaaS vs PaaS VM type (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmType {
    /// Infrastructure-as-a-Service VM: reveals no role information.
    Iaas,
    /// Platform-as-a-Service VM: has a functional role.
    Paas,
}

impl VmType {
    /// Human-readable label.
    pub const fn label(self) -> &'static str {
        match self {
            VmType::Iaas => "IaaS",
            VmType::Paas => "PaaS",
        }
    }
}

/// Production vs non-production annotation on first-party subscriptions.
///
/// The oversubscription rule (Algorithm 1) only oversubscribes physical CPUs
/// with non-production VMs. Third-party VMs are always treated as
/// [`ProdTag::Production`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProdTag {
    /// Customer-facing or otherwise production workload; never oversubscribed.
    Production,
    /// Internal, test, or batch workload eligible for oversubscription.
    NonProduction,
}

/// Guest operating system — one of the attributes with predictive value (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OsType {
    /// A Windows guest.
    Windows,
    /// A Linux guest.
    Linux,
}

/// The VM role — IaaS VMs all share the opaque "IaaS" role, while PaaS VMs
/// declare a functional role (§3.1: "PaaS defines functional roles for VMs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmRole {
    /// Opaque IaaS VM; the platform learns nothing from the role.
    Iaas,
    /// PaaS web (front-end) server, likely customer-facing.
    PaasWebServer,
    /// PaaS background worker.
    PaasWorker,
    /// PaaS cache / in-memory tier.
    PaasCache,
    /// PaaS data-management role (storage, database fleet).
    PaasData,
}

impl VmRole {
    /// All roles, in display order.
    pub const ALL: [VmRole; 5] = [
        VmRole::Iaas,
        VmRole::PaasWebServer,
        VmRole::PaasWorker,
        VmRole::PaasCache,
        VmRole::PaasData,
    ];

    /// Human-readable role name.
    pub const fn label(self) -> &'static str {
        match self {
            VmRole::Iaas => "IaaS",
            VmRole::PaasWebServer => "PaaS-Web",
            VmRole::PaasWorker => "PaaS-Worker",
            VmRole::PaasCache => "PaaS-Cache",
            VmRole::PaasData => "PaaS-Data",
        }
    }

    /// The VM type implied by the role.
    pub const fn vm_type(self) -> VmType {
        match self {
            VmRole::Iaas => VmType::Iaas,
            _ => VmType::Paas,
        }
    }

    /// Dense index used as an ML feature.
    pub const fn index(self) -> usize {
        match self {
            VmRole::Iaas => 0,
            VmRole::PaasWebServer => 1,
            VmRole::PaasWorker => 2,
            VmRole::PaasCache => 3,
            VmRole::PaasData => 4,
        }
    }
}

/// A VM size: the maximum core and memory allocation the owner requested.
///
/// Serializes as just the SKU name; deserialization looks the name up in
/// [`SKU_CATALOG`], so the `&'static str` field never needs owned storage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmSku {
    /// SKU name (A-/D-series naming, matching the 2016-era Azure offerings).
    pub name: &'static str,
    /// Number of virtual CPU cores.
    pub cores: u32,
    /// Memory allocation in GBytes.
    pub memory_gb: f64,
}

impl VmSku {
    /// Index of this SKU in [`SKU_CATALOG`], used as an ML feature.
    ///
    /// # Panics
    ///
    /// Panics if the SKU is not from the catalog; all SKUs in traces are.
    pub fn catalog_index(&self) -> usize {
        SKU_CATALOG
            .iter()
            .position(|s| s.name == self.name)
            .expect("SKU must come from SKU_CATALOG")
    }
}

/// The SKU catalog: 2016-era Azure A- and D-series sizes.
///
/// Cores span 1–32 and memory 0.75–448 GB, covering every bar of Figures 2–3
/// of the paper (1/2/4/8/16+ cores; 0.75/1.75/3.5/7/14/>14 GB).
pub const SKU_CATALOG: [VmSku; 15] = [
    VmSku { name: "A0", cores: 1, memory_gb: 0.75 },
    VmSku { name: "A1", cores: 1, memory_gb: 1.75 },
    VmSku { name: "A2", cores: 2, memory_gb: 3.5 },
    VmSku { name: "A3", cores: 4, memory_gb: 7.0 },
    VmSku { name: "A4", cores: 8, memory_gb: 14.0 },
    VmSku { name: "A5", cores: 2, memory_gb: 14.0 },
    VmSku { name: "A6", cores: 4, memory_gb: 28.0 },
    VmSku { name: "A7", cores: 8, memory_gb: 56.0 },
    VmSku { name: "D1", cores: 1, memory_gb: 3.5 },
    VmSku { name: "D2", cores: 2, memory_gb: 7.0 },
    VmSku { name: "D3", cores: 4, memory_gb: 14.0 },
    VmSku { name: "D4", cores: 8, memory_gb: 28.0 },
    VmSku { name: "D13", cores: 8, memory_gb: 56.0 },
    VmSku { name: "D14", cores: 16, memory_gb: 112.0 },
    VmSku { name: "G5", cores: 32, memory_gb: 448.0 },
];

// SKUs serialize as their catalog name alone; the cores/memory columns
// are reconstituted from the catalog on the way back in.
impl Serialize for VmSku {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name.to_string())
    }
}

impl Deserialize for VmSku {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let name = v.as_str().ok_or_else(|| serde::Error::ty("VmSku", "string"))?;
        sku_by_name(name)
            .copied()
            .ok_or_else(|| serde::Error::msg(format!("unknown SKU name: {name}")))
    }
}

/// Looks up a SKU by name.
///
/// Returns `None` when no catalog entry has that name.
pub fn sku_by_name(name: &str) -> Option<&'static VmSku> {
    SKU_CATALOG.iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_indices_round_trip() {
        for (i, sku) in SKU_CATALOG.iter().enumerate() {
            assert_eq!(sku.catalog_index(), i);
            assert_eq!(sku_by_name(sku.name), Some(sku));
        }
        assert_eq!(sku_by_name("Z99"), None);
    }

    #[test]
    fn roles_imply_types() {
        assert_eq!(VmRole::Iaas.vm_type(), VmType::Iaas);
        assert_eq!(VmRole::PaasWebServer.vm_type(), VmType::Paas);
        assert_eq!(VmRole::PaasData.vm_type(), VmType::Paas);
    }

    #[test]
    fn role_indices_are_dense_and_unique() {
        let mut seen = [false; VmRole::ALL.len()];
        for r in VmRole::ALL {
            assert!(!seen[r.index()], "duplicate role index");
            seen[r.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn catalog_covers_paper_size_bars() {
        // Figures 2-3 bucket VMs at 1/2/4/8/16+ cores and
        // 0.75/1.75/3.5/7/14/>14 GB; the catalog must populate each bar.
        for cores in [1, 2, 4, 8, 16] {
            assert!(SKU_CATALOG.iter().any(|s| s.cores == cores));
        }
        for mem in [0.75, 1.75, 3.5, 7.0, 14.0, 56.0] {
            assert!(SKU_CATALOG.iter().any(|s| (s.memory_gb - mem).abs() < 1e-9));
        }
    }
}
