//! From-scratch machine learning for the Resource Central reproduction.
//!
//! Table 1 of the paper names three modeling approaches: Random Forests
//! (utilization metrics), Extreme Gradient Boosting Trees (deployment size,
//! lifetime, workload class), and the Fast Fourier Transform (periodicity
//! labelling for the workload class). Rust's ML ecosystem is thin, so this
//! crate implements all three, plus the shared machinery they need:
//!
//! - [`dataset`]: feature matrices with quantile binning for fast splits.
//! - [`tree`]: CART classification trees (gini impurity).
//! - [`forest`]: bagged random forests with per-split feature subsampling,
//!   trained in parallel on the scoped worker pool.
//! - [`pool`]: a minimal scoped worker pool (dynamic dispatch over
//!   `std::thread::scope`) shared by forest training and the offline
//!   pipeline's per-metric fan-out.
//! - [`gbt`]: second-order gradient boosting with softmax multi-class loss
//!   (the XGBoost formulation: leaf value = -G / (H + lambda)).
//! - [`fft`]: an iterative radix-2 FFT and a diurnal periodicity detector.
//! - [`eval`]: confusion matrices, accuracy, precision/recall, and the
//!   confidence-thresholded P-theta / R-theta of Table 4.
//!
//! All models implement [`Classifier`], predict class probabilities, and
//! serialize with serde so the client library can cache them and account
//! for their size (Table 1's "model size" column).

pub mod dataset;
pub mod eval;
pub mod fft;
pub mod forest;
pub mod gbt;
pub mod pool;
pub mod tree;

pub use dataset::{BinnedDataset, Dataset};
pub use eval::{ConfusionMatrix, ThresholdedEval};
pub use fft::{detect_diurnal_periodicity, fft_in_place, Complex, PeriodicityConfig};
pub use forest::{RandomForest, RandomForestConfig};
pub use gbt::{GradientBoosting, GradientBoostingConfig};
pub use tree::{DecisionTree, TreeConfig};

use serde::{de::DeserializeOwned, Serialize};

/// A trained multi-class classifier producing per-class probabilities.
pub trait Classifier {
    /// Number of classes the model distinguishes.
    fn n_classes(&self) -> usize;

    /// Class-probability vector for one feature row.
    ///
    /// The returned vector has length [`Classifier::n_classes`], every entry
    /// lies in `[0, 1]`, and the entries sum to 1 (up to rounding).
    fn predict_proba(&self, features: &[f64]) -> Vec<f64>;

    /// Most likely class and its probability (the "confidence score" the
    /// Resource Central client exposes to callers).
    fn predict(&self, features: &[f64]) -> (usize, f64) {
        let probs = self.predict_proba(features);
        let (mut best, mut best_p) = (0, f64::NEG_INFINITY);
        for (i, &p) in probs.iter().enumerate() {
            if p > best_p {
                best = i;
                best_p = p;
            }
        }
        (best, best_p)
    }
}

/// Size in bytes of a model's serialized form.
///
/// Used to populate Table 1's "model size" column and to account for client
/// cache footprints.
///
/// # Panics
///
/// Panics if the model fails to serialize, which only happens for
/// non-finite floats; trained models never contain them.
pub fn serialized_size<M: Serialize>(model: &M) -> usize {
    serde_json::to_vec(model).expect("model serialization").len()
}

/// Deserializes a model from bytes fetched from the store.
pub fn from_bytes<M: DeserializeOwned>(bytes: &[u8]) -> Result<M, serde_json::Error> {
    serde_json::from_slice(bytes)
}

/// Serializes a model to bytes for publication to the store.
///
/// # Panics
///
/// Panics if the model fails to serialize (non-finite floats only).
pub fn to_bytes<M: Serialize>(model: &M) -> Vec<u8> {
    serde_json::to_vec(model).expect("model serialization")
}
