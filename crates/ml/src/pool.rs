//! A minimal scoped worker pool.
//!
//! The registry dependencies are vendored shims, so there is no rayon;
//! this module provides the one primitive the workspace's parallel code
//! needs: run `n_tasks` independent closures across `n_workers` scoped
//! threads and collect the results *in task order*. Dispatch is dynamic
//! (a shared atomic cursor), so uneven tasks — trees of different depth,
//! models of different family — load-balance without any up-front
//! chunking. Workers borrow from the caller's stack via
//! [`std::thread::scope`], which also guarantees every worker is joined
//! before `run` returns; a panicking task is resumed on the caller.
//!
//! With `n_workers <= 1` (or a single task) the pool degrades to a plain
//! serial loop on the calling thread — no spawn cost, identical results.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Picks the pool width for "use whatever the machine has" callers.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(4, |p| p.get())
}

/// Runs `task(0..n_tasks)` across `n_workers` scoped threads and returns
/// the results ordered by task index.
///
/// The worker count is clamped to `[1, n_tasks]`. Results are collected
/// per worker and reassembled by index, so the output order is
/// deterministic regardless of scheduling.
///
/// # Panics
///
/// Re-raises the panic of any panicking task on the calling thread.
pub fn run<R, F>(n_workers: usize, n_tasks: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n_tasks == 0 {
        return Vec::new();
    }
    let n_workers = n_workers.clamp(1, n_tasks);
    let registry = rc_obs::global();
    registry.counter(rc_obs::ML_POOL_SCOPES).increment();
    registry.counter(rc_obs::ML_POOL_TASKS).add(n_tasks as u64);
    if n_workers == 1 {
        return (0..n_tasks).map(task).collect();
    }
    registry.counter(rc_obs::ML_POOL_WORKERS_SPAWNED).add(n_workers as u64);

    let cursor = AtomicUsize::new(0);
    let task = &task;
    let cursor = &cursor;
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n_tasks {
                            return done;
                        }
                        done.push((i, task(i)));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
            .collect()
    });

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n_tasks);
    slots.resize_with(n_tasks, || None);
    for (i, r) in per_worker.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots.into_iter().map(|r| r.expect("pool dispatched every task index")).collect()
}

/// Maps `f` over `items` with [`run`], preserving item order.
pub fn map<T, R, F>(n_workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run(n_workers, items.len(), |i| f(i, &items[i]))
}

/// What one fault-isolated task produced: the result, or the panic
/// payload rendered as a message.
pub type TaskResult<R> = Result<R, String>;

/// Like [`run`], but with per-task fault isolation: a panicking task is
/// caught and reported as `Err(message)` in its slot instead of taking
/// the whole fan-out (and its sibling tasks' results) down with it.
///
/// Output order is task-index order, exactly as [`run`]. The pipeline
/// uses this to quarantine one metric's failed training while the other
/// five train, validate, and publish.
pub fn try_run<R, F>(n_workers: usize, n_tasks: usize, task: F) -> Vec<TaskResult<R>>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    run(n_workers, n_tasks, |i| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(i))).map_err(|panic| {
            if let Some(msg) = panic.downcast_ref::<&str>() {
                (*msg).to_string()
            } else if let Some(msg) = panic.downcast_ref::<String>() {
                msg.clone()
            } else {
                "task panicked".to_string()
            }
        })
    })
}

/// Maps `f` over `items` with [`try_run`], preserving item order.
pub fn try_map<T, R, F>(n_workers: usize, items: &[T], f: F) -> Vec<TaskResult<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    try_run(n_workers, items.len(), |i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn preserves_task_order() {
        let out = super::run(4, 100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_task_exactly_once() {
        let seen = Mutex::new(HashSet::new());
        super::run(3, 64, |i| {
            assert!(seen.lock().unwrap().insert(i), "task {i} dispatched twice");
        });
        assert_eq!(seen.lock().unwrap().len(), 64);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = super::run(1, 33, |i| i as u64 * i as u64);
        let parallel = super::run(8, 33, |i| i as u64 * i as u64);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn map_passes_items_through() {
        let items = vec!["a", "bb", "ccc"];
        let out = super::map(2, &items, |i, s| (i, s.len()));
        assert_eq!(out, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn workers_clamp_to_task_count() {
        // 100 workers over 2 tasks must not panic or lose results.
        let out = super::run(100, 2, |i| i);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn empty_task_list_is_a_no_op() {
        let out: Vec<u8> = super::run(4, 0, |_| unreachable!("no tasks to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn load_balances_dynamically() {
        // One deliberately slow task must not serialize the rest behind
        // it: with 2 workers the fast tasks drain on the other thread.
        let concurrent_peak = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        super::run(2, 16, |i| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            concurrent_peak.fetch_max(now, Ordering::SeqCst);
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(concurrent_peak.load(Ordering::SeqCst) >= 2, "workers never overlapped");
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn task_panic_propagates() {
        super::run(2, 4, |i| {
            if i == 3 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn try_run_isolates_a_panicking_task() {
        // Silence the default panic hook for the intentional panic so the
        // test log stays readable; restore it afterwards.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = super::try_run(2, 5, |i| {
            if i == 2 {
                panic!("metric {i} exploded");
            }
            i * 10
        });
        std::panic::set_hook(hook);
        assert_eq!(out.len(), 5);
        for (i, slot) in out.iter().enumerate() {
            if i == 2 {
                let err = slot.as_ref().unwrap_err();
                assert!(err.contains("exploded"), "got: {err}");
            } else {
                assert_eq!(*slot.as_ref().unwrap(), i * 10);
            }
        }
    }

    #[test]
    fn try_map_matches_map_when_nothing_panics() {
        let items = vec![1u64, 2, 3, 4];
        let safe: Vec<u64> =
            super::try_map(3, &items, |_, x| x * x).into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(safe, super::map(3, &items, |_, x| x * x));
    }
}
