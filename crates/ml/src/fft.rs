//! Fast Fourier Transform and diurnal periodicity detection (§3.6).
//!
//! The paper classifies a VM as *potentially interactive* when its average
//! CPU utilization time series shows periodic behaviour at the diurnal
//! scale, detected with an FFT over (at least) 3 days of 5-minute samples.
//! [`detect_diurnal_periodicity`] reproduces that analysis: detrend the
//! series, transform, and compare the spectral power near the 24-hour
//! frequency (and its first harmonic) against the typical off-peak power.

use serde::{Deserialize, Serialize};

/// A complex number, minimal and `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Builds a complex number from its parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Squared magnitude `re^2 + im^2`.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;

    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;

    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;

    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

/// In-place iterative radix-2 Cooley-Tukey FFT.
///
/// Set `inverse` for the inverse transform; the inverse is scaled by `1/n`
/// so that a forward+inverse round trip is the identity.
///
/// # Panics
///
/// Panics when `data.len()` is not a power of two.
pub fn fft_in_place(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for j in 0..len / 2 {
                let u = data[i + j];
                let v = data[i + j + len / 2] * w;
                data[i + j] = u + v;
                data[i + j + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
    if inverse {
        let inv_n = 1.0 / n as f64;
        for x in data.iter_mut() {
            x.re *= inv_n;
            x.im *= inv_n;
        }
    }
}

/// Power spectrum of a real series, padded with its mean to the next power
/// of two. Returns one power value per non-negative frequency bin
/// (`0..=n/2`) along with the padded length `n`.
pub fn power_spectrum(series: &[f64]) -> (Vec<f64>, usize) {
    let n = series.len().next_power_of_two().max(2);
    let mean =
        if series.is_empty() { 0.0 } else { series.iter().sum::<f64>() / series.len() as f64 };
    let mut buf: Vec<Complex> = series
        .iter()
        .map(|&v| Complex::new(v - mean, 0.0))
        .chain(std::iter::repeat(Complex::new(0.0, 0.0)))
        .take(n)
        .collect();
    fft_in_place(&mut buf, false);
    let spectrum = buf[..=n / 2].iter().map(|c| c.norm_sq()).collect();
    (spectrum, n)
}

/// Configuration for the diurnal periodicity detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PeriodicityConfig {
    /// Seconds between consecutive samples (the paper's telemetry uses 300).
    pub sample_interval_secs: f64,
    /// The target period in seconds (diurnal = 86 400).
    pub target_period_secs: f64,
    /// Relative half-width of the accepted frequency band around the target
    /// (0.25 accepts periods within ±25% of 24 h).
    pub band_tolerance: f64,
    /// How many times the median spectral power the diurnal band must reach
    /// to be called periodic.
    pub power_ratio_threshold: f64,
    /// Minimum series length in *target periods* (the paper requires 3 days
    /// for a reliable diurnal pattern).
    pub min_periods: f64,
    /// Also credit the first harmonic (12 h) band, which strengthens
    /// detection of asymmetric day/night shapes.
    pub use_first_harmonic: bool,
}

impl Default for PeriodicityConfig {
    fn default() -> Self {
        PeriodicityConfig {
            sample_interval_secs: 300.0,
            target_period_secs: 86_400.0,
            band_tolerance: 0.25,
            power_ratio_threshold: 8.0,
            min_periods: 3.0,
            use_first_harmonic: true,
        }
    }
}

/// Outcome of a periodicity test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodicityResult {
    /// True when the series shows significant power at the target period.
    pub periodic: bool,
    /// Ratio of peak band power to median spectral power (the test statistic).
    pub power_ratio: f64,
    /// True when the series was long enough to test at all.
    pub enough_data: bool,
}

/// Tests a utilization time series for diurnal periodicity.
///
/// Returns `enough_data == false` (and `periodic == false`) when the series
/// spans fewer than `config.min_periods` target periods — these VMs fall in
/// the paper's "Unknown" class.
pub fn detect_diurnal_periodicity(series: &[f64], config: &PeriodicityConfig) -> PeriodicityResult {
    let span_secs = series.len() as f64 * config.sample_interval_secs;
    if span_secs < config.min_periods * config.target_period_secs || series.len() < 8 {
        return PeriodicityResult { periodic: false, power_ratio: 0.0, enough_data: false };
    }
    let (spectrum, n) = power_spectrum(series);
    // Frequency of bin k is k / (n * dt) cycles per second.
    let bin_freq = 1.0 / (n as f64 * config.sample_interval_secs);
    let target_freq = 1.0 / config.target_period_secs;

    let band_power = |center_freq: f64| -> f64 {
        let lo = center_freq * (1.0 - config.band_tolerance);
        let hi = center_freq * (1.0 + config.band_tolerance);
        let k_lo = ((lo / bin_freq).floor().max(1.0)) as usize;
        let k_hi = ((hi / bin_freq).ceil() as usize).min(spectrum.len() - 1);
        spectrum[k_lo..=k_hi.max(k_lo)].iter().copied().fold(0.0, f64::max)
    };

    let mut peak = band_power(target_freq);
    if config.use_first_harmonic {
        peak = peak.max(band_power(2.0 * target_freq));
    }

    // Median of the strictly positive-frequency spectrum as the noise floor.
    let mut sorted: Vec<f64> = spectrum[1..].to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite power"));
    let median = sorted[sorted.len() / 2].max(1e-12);

    let power_ratio = peak / median;
    PeriodicityResult {
        periodic: power_ratio >= config.power_ratio_threshold,
        power_ratio,
        enough_data: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_matches_naive_dft() {
        let input: Vec<f64> = vec![1.0, 2.0, 0.5, -1.0, 0.0, 3.0, -2.0, 0.25];
        let mut data: Vec<Complex> = input.iter().map(|&v| Complex::new(v, 0.0)).collect();
        fft_in_place(&mut data, false);
        let n = input.len();
        for (k, got) in data.iter().enumerate() {
            let mut expect = Complex::default();
            for (t, &x) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                expect = expect + Complex::new(x * ang.cos(), x * ang.sin());
            }
            assert!((got.re - expect.re).abs() < 1e-9, "bin {k}");
            assert!((got.im - expect.im).abs() < 1e-9, "bin {k}");
        }
    }

    #[test]
    fn fft_inverse_round_trip() {
        let mut data: Vec<Complex> =
            (0..64).map(|i| Complex::new((i as f64 * 0.7).sin(), 0.0)).collect();
        let orig = data.clone();
        fft_in_place(&mut data, false);
        fft_in_place(&mut data, true);
        for (a, b) in data.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-9);
            assert!(a.im.abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut data = vec![Complex::default(); 6];
        fft_in_place(&mut data, false);
    }

    /// A synthetic diurnal series: 5-minute samples over `days` days.
    fn diurnal_series(days: usize, amplitude: f64, noise: f64) -> Vec<f64> {
        let samples = days * 288;
        let mut state = 1234u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        (0..samples)
            .map(|i| {
                let hours = i as f64 * 300.0 / 3600.0;
                let phase = 2.0 * std::f64::consts::PI * hours / 24.0;
                0.4 + amplitude * phase.sin() + noise * next()
            })
            .collect()
    }

    #[test]
    fn detects_diurnal_signal() {
        let series = diurnal_series(4, 0.25, 0.05);
        let r = detect_diurnal_periodicity(&series, &PeriodicityConfig::default());
        assert!(r.enough_data);
        assert!(r.periodic, "ratio = {}", r.power_ratio);
    }

    #[test]
    fn rejects_flat_noise() {
        let series = diurnal_series(4, 0.0, 0.05);
        let r = detect_diurnal_periodicity(&series, &PeriodicityConfig::default());
        assert!(r.enough_data);
        assert!(!r.periodic, "ratio = {}", r.power_ratio);
    }

    #[test]
    fn short_series_is_unknown() {
        let series = diurnal_series(2, 0.25, 0.05);
        let r = detect_diurnal_periodicity(&series, &PeriodicityConfig::default());
        assert!(!r.enough_data);
        assert!(!r.periodic);
    }

    #[test]
    fn detects_asymmetric_daily_pattern_via_harmonic() {
        // A spiky "business hours" square-ish wave has strong harmonics.
        let samples = 4 * 288;
        let series: Vec<f64> = (0..samples)
            .map(|i| {
                let hour = (i as f64 * 300.0 / 3600.0) % 24.0;
                if (9.0..17.0).contains(&hour) {
                    0.8
                } else {
                    0.1
                }
            })
            .collect();
        let r = detect_diurnal_periodicity(&series, &PeriodicityConfig::default());
        assert!(r.periodic, "ratio = {}", r.power_ratio);
    }

    #[test]
    fn power_spectrum_peak_at_known_frequency() {
        // 128 samples, period 16 => frequency bin 8.
        let series: Vec<f64> =
            (0..128).map(|i| (2.0 * std::f64::consts::PI * i as f64 / 16.0).cos()).collect();
        let (spec, n) = power_spectrum(&series);
        assert_eq!(n, 128);
        let peak_bin =
            spec.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert_eq!(peak_bin, 8);
    }
}
