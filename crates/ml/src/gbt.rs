//! Extreme gradient boosting trees with softmax multi-class loss.
//!
//! This is the XGBoost formulation: each boosting round fits one regression
//! tree per class to the first/second-order gradients of the softmax
//! cross-entropy, split gain is the regularized second-order score
//! `1/2 (G_L^2/(H_L+lambda) + G_R^2/(H_R+lambda) - G^2/(H+lambda)) - gamma`,
//! and leaf values are the Newton step `-G / (H + lambda)` scaled by the
//! learning rate.

use serde::{Deserialize, Serialize};

use crate::dataset::{BinnedDataset, MAX_BINS};
use crate::Classifier;

/// Hyperparameters for [`GradientBoosting`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GradientBoostingConfig {
    /// Number of boosting rounds (trees per class).
    pub n_rounds: usize,
    /// Maximum depth of each regression tree.
    pub max_depth: usize,
    /// Shrinkage applied to every leaf value.
    pub learning_rate: f64,
    /// L2 regularization on leaf values (XGBoost's lambda).
    pub lambda: f64,
    /// Minimum gain required to split (XGBoost's gamma).
    pub gamma: f64,
    /// Minimum hessian mass in a child (XGBoost's min_child_weight).
    pub min_child_weight: f64,
}

impl Default for GradientBoostingConfig {
    fn default() -> Self {
        GradientBoostingConfig {
            n_rounds: 40,
            max_depth: 6,
            learning_rate: 0.2,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
        }
    }
}

/// One node of a regression tree in the boosted ensemble.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum RegNode {
    /// Terminal node carrying the (already shrunk) score contribution.
    Leaf { value: f64 },
    /// Internal node: rows with `features[feature] <= threshold` go left.
    Split { feature: u32, threshold: f64, left: u32, right: u32 },
}

/// A regression tree fit to gradients, arena-allocated.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RegTree {
    nodes: Vec<RegNode>,
}

impl RegTree {
    /// Raw score contribution for one feature row.
    fn score(&self, features: &[f64]) -> f64 {
        let mut id = 0u32;
        loop {
            match &self.nodes[id as usize] {
                RegNode::Leaf { value } => return *value,
                RegNode::Split { feature, threshold, left, right } => {
                    id = if features[*feature as usize] <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

/// Scratch state for growing one regression tree.
struct RegGrower<'a, 'b> {
    data: &'a BinnedDataset<'b>,
    grad: &'a [f64],
    hess: &'a [f64],
    config: &'a GradientBoostingConfig,
    nodes: Vec<RegNode>,
    feature_gain: Vec<f64>,
}

impl RegGrower<'_, '_> {
    fn grow(&mut self, indices: &mut [u32], depth: usize) -> u32 {
        let (g, h): (f64, f64) = indices
            .iter()
            .fold((0.0, 0.0), |(g, h), &i| (g + self.grad[i as usize], h + self.hess[i as usize]));
        if depth < self.config.max_depth && indices.len() >= 2 {
            if let Some((feature, bin, gain)) = self.best_split(indices, g, h) {
                self.feature_gain[feature] += gain;
                let threshold = self.data.threshold(feature, bin);
                let mut mid = 0;
                for i in 0..indices.len() {
                    if self.data.code(indices[i] as usize, feature) <= bin {
                        indices.swap(i, mid);
                        mid += 1;
                    }
                }
                let id = self.nodes.len() as u32;
                self.nodes.push(RegNode::Leaf { value: 0.0 });
                let (li, ri) = indices.split_at_mut(mid);
                let left = self.grow(li, depth + 1);
                let right = self.grow(ri, depth + 1);
                self.nodes[id as usize] =
                    RegNode::Split { feature: feature as u32, threshold, left, right };
                return id;
            }
        }
        let value = -g / (h + self.config.lambda) * self.config.learning_rate;
        let id = self.nodes.len() as u32;
        self.nodes.push(RegNode::Leaf { value });
        id
    }

    /// Best (feature, bin, gain) under the second-order gain criterion.
    fn best_split(
        &self,
        indices: &[u32],
        g_total: f64,
        h_total: f64,
    ) -> Option<(usize, usize, f64)> {
        let nf = self.data.source().n_features();
        let parent_score = g_total * g_total / (h_total + self.config.lambda);
        let mut best: Option<(usize, usize, f64)> = None;
        let mut gh = [(0.0f64, 0.0f64); MAX_BINS];
        for f in 0..nf {
            let n_bins = self.data.n_bins(f);
            if n_bins < 2 {
                continue;
            }
            gh[..n_bins].fill((0.0, 0.0));
            for &i in indices {
                let b = self.data.code(i as usize, f);
                let e = &mut gh[b];
                e.0 += self.grad[i as usize];
                e.1 += self.hess[i as usize];
            }
            let (mut gl, mut hl) = (0.0, 0.0);
            for (b, &(bg, bh)) in gh.iter().enumerate().take(n_bins - 1) {
                gl += bg;
                hl += bh;
                let gr = g_total - gl;
                let hr = h_total - hl;
                if hl < self.config.min_child_weight || hr < self.config.min_child_weight {
                    continue;
                }
                let gain = 0.5
                    * (gl * gl / (hl + self.config.lambda) + gr * gr / (hr + self.config.lambda)
                        - parent_score)
                    - self.config.gamma;
                if gain > 1e-12 && best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((f, b, gain));
                }
            }
        }
        best
    }
}

/// A trained gradient-boosted multi-class classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GradientBoosting {
    /// `rounds x n_classes` regression trees, row-major by round.
    trees: Vec<RegTree>,
    n_classes: usize,
    /// Per-class prior log-odds used as the initial score.
    base_score: Vec<f64>,
    /// Accumulated split gain per feature.
    feature_gain: Vec<f64>,
}

impl GradientBoosting {
    /// Trains a boosted ensemble on `data`.
    ///
    /// # Panics
    ///
    /// Panics when `data` is empty or the config requests zero rounds.
    pub fn fit(data: &BinnedDataset<'_>, config: &GradientBoostingConfig) -> Self {
        assert!(config.n_rounds > 0, "boosting needs at least one round");
        let n = data.source().len();
        assert!(n > 0, "cannot fit on zero rows");
        let k = data.source().n_classes();
        let nf = data.source().n_features();

        // Prior log-probabilities keep early rounds sane for skewed classes.
        let dist = data.source().class_distribution();
        let base_score: Vec<f64> = dist.iter().map(|&p| (p.max(1e-6)).ln()).collect();

        // scores[i * k + c] = current raw score of row i for class c.
        let mut scores = vec![0.0f64; n * k];
        for row in scores.chunks_mut(k) {
            row.copy_from_slice(&base_score);
        }

        let mut trees = Vec::with_capacity(config.n_rounds * k);
        let mut feature_gain = vec![0.0; nf];
        let mut grad = vec![0.0f64; n];
        let mut hess = vec![0.0f64; n];
        let mut probs = vec![0.0f64; k];
        let mut all: Vec<u32> = (0..n as u32).collect();

        for _round in 0..config.n_rounds {
            for c in 0..k {
                // Softmax gradients for class c.
                for i in 0..n {
                    softmax_into(&scores[i * k..(i + 1) * k], &mut probs);
                    let p = probs[c];
                    let y = f64::from(data.source().label(i) == c);
                    grad[i] = p - y;
                    hess[i] = (p * (1.0 - p)).max(1e-12);
                }
                let mut grower = RegGrower {
                    data,
                    grad: &grad,
                    hess: &hess,
                    config,
                    nodes: Vec::new(),
                    feature_gain: vec![0.0; nf],
                };
                grower.grow(&mut all, 0);
                for (a, g) in feature_gain.iter_mut().zip(&grower.feature_gain) {
                    *a += g;
                }
                let tree = RegTree { nodes: grower.nodes };
                for i in 0..n {
                    scores[i * k + c] += tree.score(data.source().row(i));
                }
                trees.push(tree);
            }
        }

        GradientBoosting { trees, n_classes: k, base_score, feature_gain }
    }

    /// Number of regression trees in the ensemble (rounds × classes).
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Accumulated split gain per feature (unnormalized importance).
    pub fn feature_importance(&self) -> &[f64] {
        &self.feature_gain
    }
}

impl Classifier for GradientBoosting {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        let k = self.n_classes;
        let mut scores = self.base_score.clone();
        for (t, tree) in self.trees.iter().enumerate() {
            scores[t % k] += tree.score(features);
        }
        let mut probs = vec![0.0; k];
        softmax_into(&scores, &mut probs);
        probs
    }
}

/// Writes `softmax(scores)` into `out`.
fn softmax_into(scores: &[f64], out: &mut [f64]) {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for (o, &s) in out.iter_mut().zip(scores) {
        let e = (s - max).exp();
        *o = e;
        sum += e;
    }
    for o in out.iter_mut() {
        *o /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn spiralish(n: usize) -> Dataset {
        // Three classes separated by thresholds on x0 with a noisy channel.
        let mut d = Dataset::new(3, 3);
        let mut state = 99u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        for _ in 0..n {
            let x = next() * 3.0;
            let c = if x < -0.5 {
                0
            } else if x < 0.5 {
                1
            } else {
                2
            };
            d.push(&[x + next() * 0.1, next(), next()], c);
        }
        d
    }

    #[test]
    fn learns_thresholds() {
        let d = spiralish(600);
        let b = BinnedDataset::build(&d);
        let g = GradientBoosting::fit(&b, &GradientBoostingConfig::default());
        let correct = (0..d.len()).filter(|&i| g.predict(d.row(i)).0 == d.label(i)).count();
        assert!(correct as f64 / d.len() as f64 > 0.95, "got {correct}/600");
    }

    #[test]
    fn softmax_is_a_distribution() {
        let mut out = [0.0; 3];
        softmax_into(&[1.0, 2.0, 3.0], &mut out);
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(out[2] > out[1] && out[1] > out[0]);
    }

    #[test]
    fn softmax_handles_extremes() {
        let mut out = [0.0; 2];
        softmax_into(&[1000.0, -1000.0], &mut out);
        assert!((out[0] - 1.0).abs() < 1e-12);
        assert!(out[1] >= 0.0);
    }

    #[test]
    fn skewed_classes_get_prior() {
        // 99:1 class skew; base score should favor the majority class on
        // uninformative inputs.
        let mut d = Dataset::new(1, 2);
        for i in 0..500 {
            d.push(&[0.0], usize::from(i % 100 == 0));
        }
        let b = BinnedDataset::build(&d);
        let cfg = GradientBoostingConfig { n_rounds: 3, ..Default::default() };
        let g = GradientBoosting::fit(&b, &cfg);
        let p = g.predict_proba(&[0.0]);
        assert!(p[0] > 0.9, "majority prior should dominate: {p:?}");
    }

    #[test]
    fn probabilities_on_simplex() {
        let d = spiralish(200);
        let b = BinnedDataset::build(&d);
        let g = GradientBoosting::fit(
            &b,
            &GradientBoostingConfig { n_rounds: 10, ..Default::default() },
        );
        for i in (0..d.len()).step_by(11) {
            let p = g.predict_proba(d.row(i));
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn serde_round_trip() {
        let d = spiralish(200);
        let b = BinnedDataset::build(&d);
        let g = GradientBoosting::fit(
            &b,
            &GradientBoostingConfig { n_rounds: 5, ..Default::default() },
        );
        let back: GradientBoosting = crate::from_bytes(&crate::to_bytes(&g)).unwrap();
        for i in 0..d.len() {
            assert_eq!(g.predict(d.row(i)).0, back.predict(d.row(i)).0);
        }
    }

    #[test]
    fn more_rounds_do_not_hurt_train_accuracy() {
        let d = spiralish(400);
        let b = BinnedDataset::build(&d);
        let acc = |rounds| {
            let g = GradientBoosting::fit(
                &b,
                &GradientBoostingConfig { n_rounds: rounds, ..Default::default() },
            );
            (0..d.len()).filter(|&i| g.predict(d.row(i)).0 == d.label(i)).count()
        };
        assert!(acc(30) >= acc(2));
    }
}
