//! Bagged random forests over [`DecisionTree`]s.
//!
//! Each member tree trains on a bootstrap resample of the rows and examines
//! a random subset of features at every split (`sqrt(n_features)` by
//! default, the standard Breiman setting). Member training is embarrassingly
//! parallel and runs on the scoped worker pool ([`crate::pool`]), one task
//! per tree so deep and shallow members load-balance dynamically.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::dataset::BinnedDataset;
use crate::tree::{DecisionTree, TreeConfig};
use crate::Classifier;

/// Hyperparameters for a [`RandomForest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForestConfig {
    /// Number of member trees.
    pub n_trees: usize,
    /// Settings for each member tree. `features_per_split = None` here means
    /// "use `sqrt(n_features)`" (unlike a bare tree, where it means "all").
    pub tree: TreeConfig,
    /// Fraction of the training set drawn (with replacement) per tree.
    pub bootstrap_fraction: f64,
    /// Number of worker threads; `0` picks the available parallelism.
    pub n_threads: usize,
    /// Master RNG seed; member seeds derive deterministically from it.
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            n_trees: 48,
            tree: TreeConfig { max_depth: 14, ..TreeConfig::default() },
            bootstrap_fraction: 1.0,
            n_threads: 0,
            seed: 0x5eed,
        }
    }
}

/// A trained random forest classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Trains a forest on `data`.
    ///
    /// # Panics
    ///
    /// Panics when `data` is empty or `config.n_trees == 0`.
    pub fn fit(data: &BinnedDataset<'_>, config: &RandomForestConfig) -> Self {
        assert!(config.n_trees > 0, "a forest needs at least one tree");
        let n = data.source().len();
        assert!(n > 0, "cannot fit a forest on zero rows");
        let n_classes = data.source().n_classes();
        let n_features = data.source().n_features();
        let per_split = config
            .tree
            .features_per_split
            .unwrap_or_else(|| (n_features as f64).sqrt().ceil() as usize)
            .max(1);
        let sample = ((n as f64) * config.bootstrap_fraction).round().max(1.0) as usize;

        let n_threads =
            if config.n_threads == 0 { crate::pool::default_workers() } else { config.n_threads };

        // One pool task per tree: member seeds derive from the tree index,
        // so the forest is identical however the tasks are scheduled.
        let trees = crate::pool::run(n_threads, config.n_trees, |k| {
            let seed = config.seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(k as u64);
            let mut rng = StdRng::seed_from_u64(seed);
            let indices: Vec<u32> = (0..sample).map(|_| rng.gen_range(0..n) as u32).collect();
            let cfg = TreeConfig {
                features_per_split: Some(per_split),
                seed: seed ^ 0xabcd_1234,
                ..config.tree.clone()
            };
            DecisionTree::fit_on(data, &indices, &cfg)
        });

        RandomForest { trees, n_classes }
    }

    /// Number of member trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Mean per-feature gini gain across members (unnormalized importance).
    pub fn feature_importance(&self) -> Vec<f64> {
        if self.trees.is_empty() {
            return Vec::new();
        }
        let nf = self.trees[0].feature_gain().len();
        let mut acc = vec![0.0; nf];
        for t in &self.trees {
            for (a, g) in acc.iter_mut().zip(t.feature_gain()) {
                *a += g;
            }
        }
        let n = self.trees.len() as f64;
        acc.iter_mut().for_each(|a| *a /= n);
        acc
    }
}

impl Classifier for RandomForest {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0f64; self.n_classes];
        for t in &self.trees {
            for (a, p) in acc.iter_mut().zip(t.predict_proba(features)) {
                *a += p;
            }
        }
        let n = self.trees.len() as f64;
        acc.iter_mut().for_each(|a| *a /= n);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    /// Four-class dataset: class = 2*(x0>0) + (x1>0), with noise features.
    fn quadrants(n: usize) -> Dataset {
        let mut d = Dataset::new(4, 4);
        let mut state = 7u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        for _ in 0..n {
            let x0 = next() * 2.0;
            let x1 = next() * 2.0;
            let c = 2 * usize::from(x0 > 0.0) + usize::from(x1 > 0.0);
            d.push(&[x0, x1, next(), next()], c);
        }
        d
    }

    #[test]
    fn learns_quadrants() {
        let d = quadrants(800);
        let b = BinnedDataset::build(&d);
        let cfg = RandomForestConfig { n_trees: 24, ..RandomForestConfig::default() };
        let f = RandomForest::fit(&b, &cfg);
        let correct = (0..d.len()).filter(|&i| f.predict(d.row(i)).0 == d.label(i)).count();
        assert!(correct as f64 / d.len() as f64 > 0.93, "got {correct}/800");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = quadrants(200);
        let b = BinnedDataset::build(&d);
        let cfg = RandomForestConfig { n_trees: 8, n_threads: 2, ..RandomForestConfig::default() };
        let f1 = RandomForest::fit(&b, &cfg);
        let f2 = RandomForest::fit(&b, &cfg);
        for i in 0..d.len() {
            assert_eq!(f1.predict_proba(d.row(i)), f2.predict_proba(d.row(i)));
        }
    }

    #[test]
    fn probabilities_average_to_simplex() {
        let d = quadrants(300);
        let b = BinnedDataset::build(&d);
        let cfg = RandomForestConfig { n_trees: 8, ..RandomForestConfig::default() };
        let f = RandomForest::fit(&b, &cfg);
        for i in (0..d.len()).step_by(17) {
            let p = f.predict_proba(d.row(i));
            // Leaf probabilities are stored as f32, so tolerate rounding.
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-5);
            assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn importance_finds_informative_features() {
        let d = quadrants(600);
        let b = BinnedDataset::build(&d);
        let cfg = RandomForestConfig { n_trees: 16, ..RandomForestConfig::default() };
        let f = RandomForest::fit(&b, &cfg);
        let imp = f.feature_importance();
        assert!(imp[0] > imp[2] && imp[0] > imp[3]);
        assert!(imp[1] > imp[2] && imp[1] > imp[3]);
    }

    #[test]
    fn serde_round_trip() {
        let d = quadrants(200);
        let b = BinnedDataset::build(&d);
        let cfg = RandomForestConfig { n_trees: 4, ..RandomForestConfig::default() };
        let f = RandomForest::fit(&b, &cfg);
        let back: RandomForest = crate::from_bytes(&crate::to_bytes(&f)).unwrap();
        assert_eq!(back.n_trees(), 4);
        for i in 0..d.len() {
            assert_eq!(f.predict(d.row(i)).0, back.predict(d.row(i)).0);
        }
    }
}
