//! Feature matrices and quantile binning.
//!
//! Tree growing in this crate is histogram-based (the LightGBM/XGBoost
//! approach): every feature is discretized once into at most
//! [`MAX_BINS`] quantile bins, and split search scans per-bin statistics
//! instead of sorting samples at every node. [`BinnedDataset`] holds the
//! discretized view plus the bin-edge values needed to emit real-valued
//! thresholds, so trained trees predict directly on raw feature rows.

use serde::{Deserialize, Serialize};

/// Maximum number of histogram bins per feature.
pub const MAX_BINS: usize = 64;

/// A dense row-major feature matrix with integer class labels.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Row-major feature values; `rows * n_features` entries.
    features: Vec<f64>,
    /// One class label per row.
    labels: Vec<usize>,
    /// Number of columns.
    n_features: usize,
    /// Number of distinct classes (labels are `0..n_classes`).
    n_classes: usize,
    /// Optional column names for reporting feature importance.
    feature_names: Vec<String>,
}

impl Dataset {
    /// Creates an empty dataset with the given schema.
    ///
    /// # Panics
    ///
    /// Panics when `n_features == 0` or `n_classes < 2`.
    pub fn new(n_features: usize, n_classes: usize) -> Self {
        assert!(n_features > 0, "datasets need at least one feature");
        assert!(n_classes >= 2, "classification needs at least two classes");
        Dataset {
            features: Vec::new(),
            labels: Vec::new(),
            n_features,
            n_classes,
            feature_names: (0..n_features).map(|i| format!("f{i}")).collect(),
        }
    }

    /// Replaces the default `f0..fN` column names.
    ///
    /// # Panics
    ///
    /// Panics when the name count does not match the feature count.
    pub fn set_feature_names(&mut self, names: Vec<String>) {
        assert_eq!(names.len(), self.n_features, "one name per feature");
        self.feature_names = names;
    }

    /// Column names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Appends one labelled row.
    ///
    /// # Panics
    ///
    /// Panics when the row width or label is out of schema.
    pub fn push(&mut self, row: &[f64], label: usize) {
        assert_eq!(row.len(), self.n_features, "row width mismatch");
        assert!(label < self.n_classes, "label out of range");
        self.features.extend_from_slice(row);
        self.labels.push(label);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The feature row at `idx`.
    pub fn row(&self, idx: usize) -> &[f64] {
        let start = idx * self.n_features;
        &self.features[start..start + self.n_features]
    }

    /// The label of row `idx`.
    pub fn label(&self, idx: usize) -> usize {
        self.labels[idx]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Empirical class distribution (fraction of rows per class).
    pub fn class_distribution(&self) -> Vec<f64> {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        let n = self.len().max(1) as f64;
        counts.into_iter().map(|c| c as f64 / n).collect()
    }

    /// Splits row indices into a train/test partition with the first
    /// `train_fraction` of rows (callers shuffle beforehand if needed;
    /// the RC pipeline splits *by time*, which is order-preserving).
    pub fn split_indices(&self, train_fraction: f64) -> (Vec<usize>, Vec<usize>) {
        let cut = ((self.len() as f64) * train_fraction.clamp(0.0, 1.0)).round() as usize;
        ((0..cut).collect(), (cut..self.len()).collect())
    }

    /// Builds a new dataset containing only the given rows.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.n_features, self.n_classes);
        out.feature_names = self.feature_names.clone();
        for &i in indices {
            out.push(self.row(i), self.label(i));
        }
        out
    }
}

/// A dataset discretized into quantile bins for histogram split search.
#[derive(Debug, Clone)]
pub struct BinnedDataset<'a> {
    /// Borrowed source dataset.
    source: &'a Dataset,
    /// Row-major bin codes, same shape as the source feature matrix.
    codes: Vec<u8>,
    /// Per-feature ascending bin upper-edge values. A sample with code `b`
    /// for feature `f` satisfies `value <= edges[f][b]`; splitting "left"
    /// at bin `b` means `value <= edges[f][b]`.
    edges: Vec<Vec<f64>>,
}

impl<'a> BinnedDataset<'a> {
    /// Discretizes `source` into at most [`MAX_BINS`] quantile bins per
    /// feature.
    ///
    /// # Panics
    ///
    /// Panics when the source dataset is empty.
    pub fn build(source: &'a Dataset) -> Self {
        assert!(!source.is_empty(), "cannot bin an empty dataset");
        let n = source.len();
        let nf = source.n_features();
        let mut edges = Vec::with_capacity(nf);
        // Quantile edges per feature.
        let mut col: Vec<f64> = Vec::with_capacity(n);
        for f in 0..nf {
            col.clear();
            col.extend((0..n).map(|r| source.row(r)[f]));
            col.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
            col.dedup();
            let distinct = col.len();
            let n_bins = distinct.min(MAX_BINS);
            let mut fe = Vec::with_capacity(n_bins);
            if distinct <= MAX_BINS {
                fe.extend_from_slice(&col);
            } else {
                for b in 1..=n_bins {
                    let q = b as f64 / n_bins as f64;
                    let idx = ((distinct - 1) as f64 * q).round() as usize;
                    fe.push(col[idx]);
                }
                fe.dedup();
            }
            // The last edge must dominate every value.
            if let Some(last) = fe.last_mut() {
                *last = f64::INFINITY;
            }
            edges.push(fe);
        }
        // Assign codes by binary search over the edges.
        let mut codes = vec![0u8; n * nf];
        for r in 0..n {
            let row = source.row(r);
            for f in 0..nf {
                let fe = &edges[f];
                let v = row[f];
                // First edge >= v.
                let mut lo = 0usize;
                let mut hi = fe.len() - 1;
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if v <= fe[mid] {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                codes[r * nf + f] = lo as u8;
            }
        }
        BinnedDataset { source, codes, edges }
    }

    /// The source dataset.
    pub fn source(&self) -> &Dataset {
        self.source
    }

    /// Number of bins for feature `f`.
    pub fn n_bins(&self, f: usize) -> usize {
        self.edges[f].len()
    }

    /// Bin code of row `r`, feature `f`.
    pub fn code(&self, r: usize, f: usize) -> usize {
        self.codes[r * self.source.n_features() + f] as usize
    }

    /// Real-valued threshold for "go left" when splitting feature `f` at
    /// bin `b`: samples with `value <= threshold` go left.
    ///
    /// Returns `f64::INFINITY` for the last bin (a degenerate split).
    pub fn threshold(&self, f: usize, b: usize) -> f64 {
        self.edges[f][b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(2, 2);
        for i in 0..10 {
            let v = i as f64;
            d.push(&[v, -v], (i >= 5) as usize);
        }
        d
    }

    #[test]
    fn push_and_row_access() {
        let d = toy();
        assert_eq!(d.len(), 10);
        assert_eq!(d.row(3), &[3.0, -3.0]);
        assert_eq!(d.label(3), 0);
        assert_eq!(d.label(7), 1);
    }

    #[test]
    fn class_distribution_sums_to_one() {
        let d = toy();
        let dist = d.class_distribution();
        assert_eq!(dist.len(), 2);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((dist[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn split_preserves_order() {
        let d = toy();
        let (train, test) = d.split_indices(0.7);
        assert_eq!(train.len(), 7);
        assert_eq!(test, vec![7, 8, 9]);
    }

    #[test]
    fn subset_copies_rows() {
        let d = toy();
        let s = d.subset(&[0, 9]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(1), &[9.0, -9.0]);
        assert_eq!(s.label(1), 1);
    }

    #[test]
    fn binning_respects_thresholds() {
        let d = toy();
        let b = BinnedDataset::build(&d);
        for r in 0..d.len() {
            for f in 0..2 {
                let code = b.code(r, f);
                let v = d.row(r)[f];
                assert!(v <= b.threshold(f, code));
                if code > 0 {
                    assert!(v > b.threshold(f, code - 1));
                }
            }
        }
    }

    #[test]
    fn binning_caps_bins() {
        let mut d = Dataset::new(1, 2);
        for i in 0..1000 {
            d.push(&[i as f64], i % 2);
        }
        let b = BinnedDataset::build(&d);
        assert!(b.n_bins(0) <= MAX_BINS);
        assert!(b.n_bins(0) >= MAX_BINS / 2);
    }

    #[test]
    fn last_threshold_dominates() {
        let d = toy();
        let b = BinnedDataset::build(&d);
        for f in 0..2 {
            assert!(b.threshold(f, b.n_bins(f) - 1).is_infinite());
        }
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn push_rejects_bad_width() {
        let mut d = Dataset::new(2, 2);
        d.push(&[1.0], 0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn push_rejects_bad_label() {
        let mut d = Dataset::new(2, 2);
        d.push(&[1.0, 2.0], 5);
    }
}
