//! Model evaluation: confusion matrices and Table 4's quality measures.
//!
//! Table 4 reports, per metric: overall accuracy; per-bucket true share,
//! precision and recall; and `P^theta` / `R^theta` — precision and coverage
//! when the client discards predictions whose best confidence score falls
//! below a threshold (the paper uses theta = 0.6). We define:
//!
//! - `P^theta`: fraction of *retained* predictions that are correct
//!   (micro-averaged precision of the confident predictions), and
//! - `R^theta`: fraction of all test samples that still receive a
//!   prediction (coverage) — "without substantially hurting recall" in the
//!   paper's phrasing means this stays high as theta rises.

use serde::{Deserialize, Serialize};

/// A square confusion matrix over `n_classes` classes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    n_classes: usize,
    /// Row-major counts: `counts[truth * n_classes + predicted]`.
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    ///
    /// # Panics
    ///
    /// Panics when `n_classes == 0`.
    pub fn new(n_classes: usize) -> Self {
        assert!(n_classes > 0, "need at least one class");
        ConfusionMatrix { n_classes, counts: vec![0; n_classes * n_classes] }
    }

    /// Records one (truth, prediction) pair.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.n_classes && predicted < self.n_classes);
        self.counts[truth * self.n_classes + predicted] += 1;
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Total number of recorded pairs.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Count at (truth, predicted).
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.n_classes + predicted]
    }

    /// Overall accuracy. Returns 0 for an empty matrix.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.n_classes).map(|c| self.count(c, c)).sum();
        correct as f64 / total as f64
    }

    /// Fraction of samples whose true class is `c` (Table 4's "%" column).
    pub fn true_share(&self, c: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let row: u64 = (0..self.n_classes).map(|p| self.count(c, p)).sum();
        row as f64 / total as f64
    }

    /// Precision for class `c`: true positives / predicted positives.
    ///
    /// Returns 0 when the class is never predicted.
    pub fn precision(&self, c: usize) -> f64 {
        let predicted: u64 = (0..self.n_classes).map(|t| self.count(t, c)).sum();
        if predicted == 0 {
            return 0.0;
        }
        self.count(c, c) as f64 / predicted as f64
    }

    /// Recall for class `c`: true positives / actual positives.
    ///
    /// Returns 0 when the class never occurs.
    pub fn recall(&self, c: usize) -> f64 {
        let actual: u64 = (0..self.n_classes).map(|p| self.count(c, p)).sum();
        if actual == 0 {
            return 0.0;
        }
        self.count(c, c) as f64 / actual as f64
    }

    /// Merges another matrix into this one.
    ///
    /// # Panics
    ///
    /// Panics when the class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.n_classes, other.n_classes);
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// Accumulates the confidence-thresholded quality measures of Table 4.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ThresholdedEval {
    /// Confidence threshold theta.
    pub theta: f64,
    /// Samples seen.
    pub total: u64,
    /// Samples whose best score reached theta (predictions retained).
    pub retained: u64,
    /// Retained samples predicted correctly.
    pub retained_correct: u64,
}

impl ThresholdedEval {
    /// Creates an accumulator with the given threshold.
    pub fn new(theta: f64) -> Self {
        ThresholdedEval { theta, ..Default::default() }
    }

    /// Records one prediction with its confidence score.
    pub fn record(&mut self, truth: usize, predicted: usize, score: f64) {
        self.total += 1;
        if score >= self.theta {
            self.retained += 1;
            if truth == predicted {
                self.retained_correct += 1;
            }
        }
    }

    /// `P^theta`: precision of the retained predictions.
    ///
    /// Returns 0 when nothing was retained.
    pub fn precision(&self) -> f64 {
        if self.retained == 0 {
            return 0.0;
        }
        self.retained_correct as f64 / self.retained as f64
    }

    /// `R^theta`: coverage — fraction of samples that keep a prediction.
    ///
    /// Returns 0 when no samples were seen.
    pub fn recall(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.retained as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new(3);
        // truth 0: 8 correct, 2 predicted as 1.
        for _ in 0..8 {
            m.record(0, 0);
        }
        for _ in 0..2 {
            m.record(0, 1);
        }
        // truth 1: 5 correct, 5 predicted as 2.
        for _ in 0..5 {
            m.record(1, 1);
        }
        for _ in 0..5 {
            m.record(1, 2);
        }
        // truth 2: 10 correct.
        for _ in 0..10 {
            m.record(2, 2);
        }
        m
    }

    #[test]
    fn accuracy_and_shares() {
        let m = sample_matrix();
        assert_eq!(m.total(), 30);
        assert!((m.accuracy() - 23.0 / 30.0).abs() < 1e-12);
        assert!((m.true_share(0) - 10.0 / 30.0).abs() < 1e-12);
        assert!((m.true_share(2) - 10.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn precision_and_recall() {
        let m = sample_matrix();
        assert!((m.precision(0) - 1.0).abs() < 1e-12); // 8 / 8
        assert!((m.recall(0) - 0.8).abs() < 1e-12); // 8 / 10
        assert!((m.precision(1) - 5.0 / 7.0).abs() < 1e-12); // 5 / (2+5)
        assert!((m.recall(1) - 0.5).abs() < 1e-12);
        assert!((m.precision(2) - 10.0 / 15.0).abs() < 1e-12);
        assert!((m.recall(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_class_yields_zero_not_nan() {
        let mut m = ConfusionMatrix::new(2);
        m.record(0, 0);
        assert_eq!(m.precision(1), 0.0);
        assert_eq!(m.recall(1), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = sample_matrix();
        let b = sample_matrix();
        a.merge(&b);
        assert_eq!(a.total(), 60);
        assert_eq!(a.count(2, 2), 20);
    }

    #[test]
    fn thresholded_eval_filters_low_confidence() {
        let mut e = ThresholdedEval::new(0.6);
        e.record(0, 0, 0.9); // retained, correct
        e.record(0, 1, 0.8); // retained, wrong
        e.record(1, 1, 0.3); // dropped
        e.record(1, 0, 0.5); // dropped
        assert_eq!(e.total, 4);
        assert_eq!(e.retained, 2);
        assert!((e.precision() - 0.5).abs() < 1e-12);
        assert!((e.recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn thresholded_eval_empty_is_zero() {
        let e = ThresholdedEval::new(0.6);
        assert_eq!(e.precision(), 0.0);
        assert_eq!(e.recall(), 0.0);
    }
}
