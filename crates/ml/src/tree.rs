//! CART classification trees with gini impurity and histogram split search.
//!
//! Trees grow depth-first over a [`BinnedDataset`]: at every node the
//! per-(bin, class) histogram of each candidate feature is scanned once to
//! find the split with the best gini gain. Feature subsampling per split is
//! supported so [`crate::forest::RandomForest`] can decorrelate its members.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::dataset::BinnedDataset;
use crate::Classifier;

/// Hyperparameters for growing a [`DecisionTree`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum number of samples a leaf may hold.
    pub min_samples_leaf: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of features examined per split; `None` examines all.
    pub features_per_split: Option<usize>,
    /// Minimum gini gain for a split to be accepted.
    pub min_gain: f64,
    /// RNG seed for feature subsampling.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 12,
            min_samples_leaf: 2,
            min_samples_split: 4,
            features_per_split: None,
            min_gain: 1e-9,
            seed: 0,
        }
    }
}

/// One node of a tree, stored in an arena indexed by `u32`.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    /// Terminal node carrying the class distribution of its training rows.
    Leaf { probs: Vec<f32> },
    /// Internal node: rows with `features[feature] <= threshold` go left.
    Split { feature: u32, threshold: f64, left: u32, right: u32 },
}

/// A trained CART classification tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
    n_features: usize,
    /// Total gini gain contributed by each feature, for importance reports.
    feature_gain: Vec<f64>,
}

impl DecisionTree {
    /// Grows a tree on all rows of `data`.
    ///
    /// # Panics
    ///
    /// Panics when `data` is empty.
    pub fn fit(data: &BinnedDataset<'_>, config: &TreeConfig) -> Self {
        let indices: Vec<u32> = (0..data.source().len() as u32).collect();
        Self::fit_on(data, &indices, config)
    }

    /// Grows a tree on the given subset of row indices (used by bagging).
    ///
    /// # Panics
    ///
    /// Panics when `indices` is empty.
    pub fn fit_on(data: &BinnedDataset<'_>, indices: &[u32], config: &TreeConfig) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on zero rows");
        let n_classes = data.source().n_classes();
        let n_features = data.source().n_features();
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_classes,
            n_features,
            feature_gain: vec![0.0; n_features],
        };
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut idx = indices.to_vec();
        tree.grow(data, &mut idx, 0, config, &mut rng);
        tree
    }

    /// Recursively grows the subtree for `indices`, returning its node id.
    fn grow(
        &mut self,
        data: &BinnedDataset<'_>,
        indices: &mut [u32],
        depth: usize,
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> u32 {
        let counts = self.class_counts(data, indices);
        let total = indices.len();
        let impurity = gini(&counts, total);
        let stop = depth >= config.max_depth || total < config.min_samples_split || impurity <= 0.0;
        if !stop {
            if let Some(split) = self.best_split(data, indices, &counts, impurity, config, rng) {
                let (feature, bin, gain) = split;
                self.feature_gain[feature] += gain * total as f64;
                let threshold = data.threshold(feature, bin);
                // Partition in place: left = code <= bin.
                let mut mid = 0;
                for i in 0..indices.len() {
                    if data.code(indices[i] as usize, feature) <= bin {
                        indices.swap(i, mid);
                        mid += 1;
                    }
                }
                debug_assert!(mid > 0 && mid < indices.len());
                // Reserve this node's slot before children are appended.
                let id = self.nodes.len() as u32;
                self.nodes.push(Node::Leaf { probs: Vec::new() });
                let (left_idx, right_idx) = indices.split_at_mut(mid);
                let left = self.grow(data, left_idx, depth + 1, config, rng);
                let right = self.grow(data, right_idx, depth + 1, config, rng);
                self.nodes[id as usize] =
                    Node::Split { feature: feature as u32, threshold, left, right };
                return id;
            }
        }
        let probs = counts.iter().map(|&c| (c as f64 / total as f64) as f32).collect();
        let id = self.nodes.len() as u32;
        self.nodes.push(Node::Leaf { probs });
        id
    }

    /// Class counts over the rows in `indices`.
    fn class_counts(&self, data: &BinnedDataset<'_>, indices: &[u32]) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &i in indices {
            counts[data.source().label(i as usize)] += 1;
        }
        counts
    }

    /// Finds the (feature, bin, gain) with the best gini gain, or `None`
    /// when no admissible split improves on `impurity`.
    fn best_split(
        &self,
        data: &BinnedDataset<'_>,
        indices: &[u32],
        counts: &[usize],
        impurity: f64,
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> Option<(usize, usize, f64)> {
        let total = indices.len();
        let mut candidates: Vec<usize> = (0..self.n_features).collect();
        if let Some(k) = config.features_per_split {
            candidates.shuffle(rng);
            candidates.truncate(k.max(1).min(self.n_features));
        }
        let mut best: Option<(usize, usize, f64)> = None;
        // Per-(bin, class) histogram, reused across features.
        let mut hist = vec![0usize; crate::dataset::MAX_BINS * self.n_classes];
        for &f in &candidates {
            let n_bins = data.n_bins(f);
            if n_bins < 2 {
                continue;
            }
            hist[..n_bins * self.n_classes].fill(0);
            for &i in indices {
                let b = data.code(i as usize, f);
                hist[b * self.n_classes + data.source().label(i as usize)] += 1;
            }
            // Scan split points: left = bins 0..=b.
            let mut left_counts = vec![0usize; self.n_classes];
            let mut left_total = 0usize;
            for b in 0..n_bins - 1 {
                for c in 0..self.n_classes {
                    left_counts[c] += hist[b * self.n_classes + c];
                }
                left_total = left_counts.iter().sum();
                let right_total = total - left_total;
                if left_total < config.min_samples_leaf || right_total < config.min_samples_leaf {
                    continue;
                }
                let right_counts: Vec<usize> =
                    counts.iter().zip(&left_counts).map(|(&t, &l)| t - l).collect();
                let w_left = left_total as f64 / total as f64;
                let w_right = right_total as f64 / total as f64;
                let gain = impurity
                    - w_left * gini(&left_counts, left_total)
                    - w_right * gini(&right_counts, right_total);
                if gain > config.min_gain && best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((f, b, gain));
                }
            }
            let _ = left_total;
        }
        best
    }

    /// Number of nodes in the tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the tree (a lone leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], id: u32) -> usize {
            match &nodes[id as usize] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }

    /// Accumulated gini gain per feature (unnormalized importance).
    pub fn feature_gain(&self) -> &[f64] {
        &self.feature_gain
    }
}

impl Classifier for DecisionTree {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        let mut id = 0u32;
        loop {
            match &self.nodes[id as usize] {
                Node::Leaf { probs } => {
                    return probs.iter().map(|&p| p as f64).collect();
                }
                Node::Split { feature, threshold, left, right } => {
                    id = if features[*feature as usize] <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

/// Gini impurity of a class-count vector over `total` samples.
fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    /// Two gaussian-ish blobs separable on feature 0.
    fn blobs(n: usize) -> Dataset {
        let mut d = Dataset::new(3, 2);
        let mut state = 42u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        for i in 0..n {
            let c = i % 2;
            let x0 = c as f64 * 2.0 + next() * 0.8;
            d.push(&[x0, next(), next()], c);
        }
        d
    }

    #[test]
    fn learns_separable_blobs() {
        let d = blobs(400);
        let b = BinnedDataset::build(&d);
        let tree = DecisionTree::fit(&b, &TreeConfig::default());
        let mut correct = 0;
        for i in 0..d.len() {
            if tree.predict(d.row(i)).0 == d.label(i) {
                correct += 1;
            }
        }
        assert!(correct as f64 / d.len() as f64 > 0.95, "got {correct}/400");
    }

    #[test]
    fn gini_basics() {
        assert_eq!(gini(&[10, 0], 10), 0.0);
        assert!((gini(&[5, 5], 10) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[0, 0], 0), 0.0);
    }

    #[test]
    fn pure_node_is_single_leaf() {
        let mut d = Dataset::new(1, 2);
        for i in 0..20 {
            d.push(&[i as f64], 0);
        }
        let b = BinnedDataset::build(&d);
        let tree = DecisionTree::fit(&b, &TreeConfig::default());
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.depth(), 0);
        let probs = tree.predict_proba(&[5.0]);
        assert!((probs[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn respects_max_depth() {
        let d = blobs(400);
        let b = BinnedDataset::build(&d);
        let cfg = TreeConfig { max_depth: 2, ..TreeConfig::default() };
        let tree = DecisionTree::fit(&b, &cfg);
        assert!(tree.depth() <= 2);
    }

    #[test]
    fn probabilities_are_normalized() {
        let d = blobs(200);
        let b = BinnedDataset::build(&d);
        let tree = DecisionTree::fit(&b, &TreeConfig::default());
        for i in 0..d.len() {
            let p = tree.predict_proba(d.row(i));
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn informative_feature_gets_the_gain() {
        let d = blobs(400);
        let b = BinnedDataset::build(&d);
        let tree = DecisionTree::fit(&b, &TreeConfig::default());
        let g = tree.feature_gain();
        assert!(g[0] > g[1] && g[0] > g[2], "feature 0 should dominate: {g:?}");
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let d = blobs(200);
        let b = BinnedDataset::build(&d);
        let tree = DecisionTree::fit(&b, &TreeConfig::default());
        let bytes = crate::to_bytes(&tree);
        let back: DecisionTree = crate::from_bytes(&bytes).unwrap();
        for i in 0..d.len() {
            assert_eq!(tree.predict(d.row(i)).0, back.predict(d.row(i)).0);
        }
    }
}
