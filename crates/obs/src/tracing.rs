//! Lightweight structured tracing: scoped span timers and point events
//! in a bounded ring buffer.
//!
//! This is deliberately not on the per-prediction hot path — spans take
//! a mutex on finish. They instrument the coarse-grained paths (pipeline
//! stages, publishes, store recoveries) where one event per stage is
//! noise-free and the lock is uncontended.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Serialize, Value};

/// One recorded event: a completed span or an instantaneous event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Sequence number, allocated when the span/event is *created*
    /// (process-wide per tracer), so children can reference a parent
    /// that has not finished yet.
    pub seq: u64,
    /// The enclosing span's `seq` for hierarchical spans; `None` for
    /// roots and plain events.
    pub parent_seq: Option<u64>,
    /// Event name (e.g. `pipeline.train`).
    pub name: String,
    /// Span duration; `None` for instantaneous events.
    pub duration_ns: Option<u64>,
    /// Structured key=value payload.
    pub fields: Vec<(String, Value)>,
}

impl TraceEvent {
    /// The event as one JSON object (one line, no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut obj = vec![
            ("seq".to_string(), Value::U64(self.seq)),
            ("name".to_string(), Value::Str(self.name.clone())),
        ];
        if let Some(parent) = self.parent_seq {
            obj.push(("parent_seq".to_string(), Value::U64(parent)));
        }
        if let Some(ns) = self.duration_ns {
            obj.push(("duration_ns".to_string(), Value::U64(ns)));
        }
        for (k, v) in &self.fields {
            obj.push((k.clone(), v.clone()));
        }
        let bytes = serde_json::to_vec(&Value::Object(obj))
            .expect("trace fields contain no non-finite floats");
        String::from_utf8(bytes).expect("serde_json emits UTF-8")
    }
}

struct TracerInner {
    events: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    /// Sequence-number allocator. Not a push counter: spans take their
    /// seq at creation, so it can run ahead of `recorded`.
    seq: AtomicU64,
    /// Events pushed into the ring (retained or since evicted).
    recorded: AtomicU64,
    dropped: AtomicU64,
}

/// A bounded recorder of spans and events.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// A tracer retaining at most `capacity` events (oldest dropped).
    pub fn new(capacity: usize) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                events: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
                capacity: capacity.max(1),
                seq: AtomicU64::new(0),
                recorded: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Starts a root span; it records itself when dropped (or via
    /// [`Span::finish`]).
    pub fn span(&self, name: &str) -> Span {
        self.span_inner(name, None)
    }

    /// Starts a span nested under `parent`: its event records
    /// `parent_seq = parent.seq()`, so consumers can reassemble the
    /// hierarchy (e.g. publish → gate → store-write).
    pub fn child_span(&self, parent: &Span, name: &str) -> Span {
        self.span_inner(name, Some(parent.seq()))
    }

    fn span_inner(&self, name: &str, parent_seq: Option<u64>) -> Span {
        Span {
            tracer: self.clone(),
            seq: self.inner.seq.fetch_add(1, Ordering::Relaxed),
            parent_seq,
            name: name.to_string(),
            start: Instant::now(),
            fields: Vec::new(),
            finished: false,
        }
    }

    /// Records an instantaneous structured event.
    pub fn event(&self, name: &str, fields: Vec<(String, Value)>) {
        self.push(TraceEvent {
            seq: self.inner.seq.fetch_add(1, Ordering::Relaxed),
            parent_seq: None,
            name: name.to_string(),
            duration_ns: None,
            fields,
        });
    }

    fn push(&self, event: TraceEvent) {
        let mut events = self.inner.events.lock().expect("tracer lock");
        self.inner.recorded.fetch_add(1, Ordering::Relaxed);
        if events.len() == self.inner.capacity {
            events.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.events.lock().expect("tracer lock").iter().cloned().collect()
    }

    /// How many events were discarded — evicted by the ring bound or
    /// flushed by [`clear`](Tracer::clear).
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// How many events were ever recorded. Invariant:
    /// `recorded() == events().len() + dropped()`.
    pub fn recorded(&self) -> u64 {
        self.inner.recorded.load(Ordering::Relaxed)
    }

    /// Retained events as JSON lines (one object per line).
    pub fn dump_json_lines(&self) -> String {
        let events = self.inner.events.lock().expect("tracer lock");
        let mut out = String::new();
        for e in events.iter() {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Discards all retained events. The discarded events count toward
    /// `dropped`, so `recorded == retained + dropped` keeps holding.
    pub fn clear(&self) {
        let mut events = self.inner.events.lock().expect("tracer lock");
        self.inner.dropped.fetch_add(events.len() as u64, Ordering::Relaxed);
        events.clear();
    }
}

/// An in-flight scoped timer; records a [`TraceEvent`] with its wall
/// duration when finished or dropped.
pub struct Span {
    tracer: Tracer,
    seq: u64,
    parent_seq: Option<u64>,
    name: String,
    start: Instant,
    fields: Vec<(String, Value)>,
    finished: bool,
}

impl Span {
    /// The span's sequence number (allocated at creation); child spans
    /// record it as their `parent_seq`.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Starts a child span of this one (same tracer).
    pub fn child(&self, name: &str) -> Span {
        let tracer = self.tracer.clone();
        tracer.child_span(self, name)
    }

    /// Attaches a structured field (any shim-serializable value).
    pub fn record(&mut self, key: &str, value: impl Serialize) -> &mut Self {
        self.fields.push((key.to_string(), value.to_value()));
        self
    }

    /// Ends the span now and records it.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let elapsed = self.start.elapsed();
        self.tracer.push(TraceEvent {
            seq: self.seq,
            parent_seq: self.parent_seq,
            name: std::mem::take(&mut self.name),
            duration_ns: Some(elapsed.as_nanos().min(u64::MAX as u128) as u64),
            fields: std::mem::take(&mut self.fields),
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

/// A span's name/duration pair as summarized by helpers like
/// [`crate::Tracer::events`] consumers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name.
    pub name: String,
    /// Wall duration in nanoseconds.
    pub duration_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_duration_and_fields() {
        let tracer = Tracer::new(16);
        {
            let mut span = tracer.span("work");
            span.record("items", 3u64).record("kind", "test");
        }
        let events = tracer.events();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.name, "work");
        assert!(e.duration_ns.is_some());
        assert_eq!(e.fields.len(), 2);
        let line = e.to_json_line();
        assert!(line.contains("\"name\":\"work\""), "{line}");
        assert!(line.contains("\"items\":3"), "{line}");
        assert!(line.contains("\"kind\":\"test\""), "{line}");
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let tracer = Tracer::new(4);
        for i in 0..10u64 {
            tracer.event("e", vec![("i".to_string(), Value::U64(i))]);
        }
        let events = tracer.events();
        assert_eq!(events.len(), 4);
        assert_eq!(tracer.dropped(), 6);
        assert_eq!(events[0].fields[0].1, Value::U64(6));
        let dump = tracer.dump_json_lines();
        assert_eq!(dump.lines().count(), 4);
    }

    #[test]
    fn explicit_finish_records_once() {
        let tracer = Tracer::new(8);
        let span = tracer.span("once");
        span.finish();
        assert_eq!(tracer.events().len(), 1);
    }

    #[test]
    fn clear_accounts_evictions_in_dropped() {
        // The invariant `recorded == retained + dropped` must survive
        // any mix of ring evictions and explicit clears.
        let tracer = Tracer::new(4);
        for _ in 0..6 {
            tracer.event("e", Vec::new());
        }
        assert_eq!(tracer.recorded(), 6);
        assert_eq!(tracer.dropped(), 2);
        tracer.clear();
        assert_eq!(tracer.events().len(), 0);
        assert_eq!(tracer.dropped(), 6, "cleared events must count as dropped");
        assert_eq!(tracer.recorded(), tracer.events().len() as u64 + tracer.dropped());
        // And keeps holding as recording resumes.
        for _ in 0..9 {
            tracer.event("e", Vec::new());
        }
        assert_eq!(tracer.recorded(), tracer.events().len() as u64 + tracer.dropped());
    }

    #[test]
    fn child_spans_record_their_parent_seq() {
        let tracer = Tracer::new(16);
        let parent = tracer.span("publish");
        {
            let gate = tracer.child_span(&parent, "publish.gate");
            let _write = gate.child("publish.gate.store_write");
        }
        parent.finish();
        let events = tracer.events();
        assert_eq!(events.len(), 3);
        // Children finish (and record) before the parent, but reference
        // the parent's pre-allocated seq.
        let find = |name: &str| events.iter().find(|e| e.name == name).expect("event");
        let publish = find("publish");
        let gate = find("publish.gate");
        let write = find("publish.gate.store_write");
        assert_eq!(publish.parent_seq, None);
        assert_eq!(gate.parent_seq, Some(publish.seq));
        assert_eq!(write.parent_seq, Some(gate.seq));
        assert!(gate.to_json_line().contains("\"parent_seq\""));
    }
}
