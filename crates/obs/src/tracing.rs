//! Lightweight structured tracing: scoped span timers and point events
//! in a bounded ring buffer.
//!
//! This is deliberately not on the per-prediction hot path — spans take
//! a mutex on finish. They instrument the coarse-grained paths (pipeline
//! stages, publishes, store recoveries) where one event per stage is
//! noise-free and the lock is uncontended.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Serialize, Value};

/// One recorded event: a completed span or an instantaneous event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Monotonic sequence number (process-wide per tracer).
    pub seq: u64,
    /// Event name (e.g. `pipeline.train`).
    pub name: String,
    /// Span duration; `None` for instantaneous events.
    pub duration_ns: Option<u64>,
    /// Structured key=value payload.
    pub fields: Vec<(String, Value)>,
}

impl TraceEvent {
    /// The event as one JSON object (one line, no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut obj = vec![
            ("seq".to_string(), Value::U64(self.seq)),
            ("name".to_string(), Value::Str(self.name.clone())),
        ];
        if let Some(ns) = self.duration_ns {
            obj.push(("duration_ns".to_string(), Value::U64(ns)));
        }
        for (k, v) in &self.fields {
            obj.push((k.clone(), v.clone()));
        }
        let bytes = serde_json::to_vec(&Value::Object(obj))
            .expect("trace fields contain no non-finite floats");
        String::from_utf8(bytes).expect("serde_json emits UTF-8")
    }
}

struct TracerInner {
    events: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
}

/// A bounded recorder of spans and events.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// A tracer retaining at most `capacity` events (oldest dropped).
    pub fn new(capacity: usize) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                events: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
                capacity: capacity.max(1),
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Starts a span; it records itself when dropped (or via
    /// [`Span::finish`]).
    pub fn span(&self, name: &str) -> Span {
        Span {
            tracer: self.clone(),
            name: name.to_string(),
            start: Instant::now(),
            fields: Vec::new(),
            finished: false,
        }
    }

    /// Records an instantaneous structured event.
    pub fn event(&self, name: &str, fields: Vec<(String, Value)>) {
        self.push(TraceEvent {
            seq: self.inner.seq.fetch_add(1, Ordering::Relaxed),
            name: name.to_string(),
            duration_ns: None,
            fields,
        });
    }

    fn push(&self, event: TraceEvent) {
        let mut events = self.inner.events.lock().expect("tracer lock");
        if events.len() == self.inner.capacity {
            events.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.events.lock().expect("tracer lock").iter().cloned().collect()
    }

    /// How many events were evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Retained events as JSON lines (one object per line).
    pub fn dump_json_lines(&self) -> String {
        let events = self.inner.events.lock().expect("tracer lock");
        let mut out = String::new();
        for e in events.iter() {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Discards all retained events (the drop counter is kept).
    pub fn clear(&self) {
        self.inner.events.lock().expect("tracer lock").clear();
    }
}

/// An in-flight scoped timer; records a [`TraceEvent`] with its wall
/// duration when finished or dropped.
pub struct Span {
    tracer: Tracer,
    name: String,
    start: Instant,
    fields: Vec<(String, Value)>,
    finished: bool,
}

impl Span {
    /// Attaches a structured field (any shim-serializable value).
    pub fn record(&mut self, key: &str, value: impl Serialize) -> &mut Self {
        self.fields.push((key.to_string(), value.to_value()));
        self
    }

    /// Ends the span now and records it.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let elapsed = self.start.elapsed();
        self.tracer.push(TraceEvent {
            seq: self.tracer.inner.seq.fetch_add(1, Ordering::Relaxed),
            name: std::mem::take(&mut self.name),
            duration_ns: Some(elapsed.as_nanos().min(u64::MAX as u128) as u64),
            fields: std::mem::take(&mut self.fields),
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

/// A span's name/duration pair as summarized by helpers like
/// [`crate::Tracer::events`] consumers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name.
    pub name: String,
    /// Wall duration in nanoseconds.
    pub duration_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_duration_and_fields() {
        let tracer = Tracer::new(16);
        {
            let mut span = tracer.span("work");
            span.record("items", 3u64).record("kind", "test");
        }
        let events = tracer.events();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.name, "work");
        assert!(e.duration_ns.is_some());
        assert_eq!(e.fields.len(), 2);
        let line = e.to_json_line();
        assert!(line.contains("\"name\":\"work\""), "{line}");
        assert!(line.contains("\"items\":3"), "{line}");
        assert!(line.contains("\"kind\":\"test\""), "{line}");
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let tracer = Tracer::new(4);
        for i in 0..10u64 {
            tracer.event("e", vec![("i".to_string(), Value::U64(i))]);
        }
        let events = tracer.events();
        assert_eq!(events.len(), 4);
        assert_eq!(tracer.dropped(), 6);
        assert_eq!(events[0].fields[0].1, Value::U64(6));
        let dump = tracer.dump_json_lines();
        assert_eq!(dump.lines().count(), 4);
    }

    #[test]
    fn explicit_finish_records_once() {
        let tracer = Tracer::new(8);
        let span = tracer.span("once");
        span.finish();
        assert_eq!(tracer.events().len(), 1);
    }
}
