//! Observability for the Resource Central reproduction.
//!
//! Two facilities, both cheap enough for the predict hot path:
//!
//! - **Metrics** ([`Registry`], [`Counter`], [`Gauge`], [`Histogram`]):
//!   lock-free once a handle is held — every `record`/`increment` is a
//!   relaxed atomic op, no locks, no allocation. Histograms use
//!   log-linear buckets (32 linear sub-buckets per power of two, ≈3%
//!   relative error) so p50/p95/p99 extraction needs no sample storage.
//! - **Tracing** ([`Tracer`], [`Span`]): scoped timers and structured
//!   `key=value` events in a bounded ring buffer, dumpable as JSON
//!   lines. Spans are for the coarse-grained paths (pipeline stages,
//!   publishes), not per-prediction work.
//!
//! Both have process-wide defaults ([`global`], [`global_tracer`]) so
//! layers can meter themselves without plumbing a handle through every
//! constructor; bench binaries snapshot the same registry the layers
//! write to, which is what lets them drop their hand-rolled accounting.

mod metrics;
mod names;
mod snapshot;
mod tracing;

pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use names::*;
pub use snapshot::{
    BucketCount, CounterSnapshot, GaugeSnapshot, HistogramSnapshot, MetricsSnapshot,
};
pub use tracing::{Span, SpanRecord, TraceEvent, Tracer};

use std::sync::OnceLock;

/// The process-wide default metrics registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// The process-wide default tracer (4096-event ring).
pub fn global_tracer() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(|| Tracer::new(4096))
}
