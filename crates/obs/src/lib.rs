//! Observability for the Resource Central reproduction.
//!
//! Two facilities, both cheap enough for the predict hot path:
//!
//! - **Metrics** ([`Registry`], [`Counter`], [`Gauge`], [`Histogram`]):
//!   lock-free once a handle is held — every `record`/`increment` is a
//!   relaxed atomic op, no locks, no allocation. Histograms use
//!   log-linear buckets (32 linear sub-buckets per power of two, ≈3%
//!   relative error) so p50/p95/p99 extraction needs no sample storage.
//! - **Tracing** ([`Tracer`], [`Span`]): scoped timers and structured
//!   `key=value` events in a bounded ring buffer, dumpable as JSON
//!   lines; spans nest via [`Tracer::child_span`]. Spans are for the
//!   coarse-grained paths (pipeline stages, publishes), not
//!   per-prediction work.
//! - **Windowed instruments** ([`WindowedCounter`],
//!   [`WindowedHistogram`]): epoch-bucket rings advanced by an explicit
//!   logical-clock `tick()` — rolling rates and p50/p95/p99 alongside
//!   the cumulative views, with no wall clock involved.
//! - **Accuracy tracking** ([`AccuracyTracker`]): pairs predicted
//!   buckets with observed outcomes, maintains rolling accuracy and
//!   per-bucket confusion, and raises a [`DriftSignal`] when rolling
//!   accuracy falls away from the published training-time baseline.
//! - **Bench reports** ([`report`]): the versioned `BENCH_*.json`
//!   schema and writer the bench binaries use.
//!
//! The core facilities have process-wide defaults ([`global`],
//! [`global_tracer`], [`global_accuracy`]) so
//! layers can meter themselves without plumbing a handle through every
//! constructor; bench binaries snapshot the same registry the layers
//! write to, which is what lets them drop their hand-rolled accounting.

mod accuracy;
mod alloc;
mod distribution;
mod metrics;
mod names;
pub mod report;
mod snapshot;
mod tracing;
mod window;

pub use accuracy::{
    acc_confusion_name, acc_gauge_name, AccuracyTracker, CalibrationRow, DriftConfig, DriftSignal,
    DEFAULT_BASELINE,
};
pub use alloc::{thread_allocations, CountingAllocator};
pub use distribution::{
    counts_psi, feature_gauge_name, FeatureHistogram, LeadingDrift, LeadingDriftConfig,
    LeadingDriftMonitor, LeadingObservation, WindowSketch, SKETCH_BINS,
};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use names::*;
pub use report::BenchReport;
pub use snapshot::{
    BucketCount, CounterSnapshot, GaugeSnapshot, HistogramSnapshot, MetricsSnapshot,
    WindowedCounterSnapshot, WindowedHistogramSnapshot,
};
pub use tracing::{Span, SpanRecord, TraceEvent, Tracer};
pub use window::{WindowedCounter, WindowedHistogram, DEFAULT_WINDOW};

use std::sync::OnceLock;

/// The process-wide default metrics registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// The process-wide default tracer (4096-event ring).
pub fn global_tracer() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(|| Tracer::new(4096))
}

/// The process-wide default accuracy tracker; its gauges land in
/// [`global`]'s registry. Layers report predictions/outcomes here when
/// no explicit tracker is injected.
pub fn global_accuracy() -> &'static AccuracyTracker {
    static GLOBAL: OnceLock<AccuracyTracker> = OnceLock::new();
    GLOBAL.get_or_init(|| AccuracyTracker::with_registry(global().clone(), DriftConfig::default()))
}
