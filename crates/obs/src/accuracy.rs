//! Live prediction-accuracy tracking and drift detection.
//!
//! The serving layers report `(metric, predicted_bucket)` at predict
//! time; whoever observes ground truth (the simulator, when a VM's
//! lifetime/utilization resolves) feeds back `(metric, observed_bucket)`.
//! The tracker pairs them by caller-supplied id and maintains, per
//! metric:
//!
//! - cumulative and **rolling** accuracy (the rolling side rides on
//!   [`WindowedCounter`]s ticked by the same logical clock as the rest
//!   of the windowed instruments — no wall clock anywhere);
//! - a predicted × observed **confusion matrix** and a calibration
//!   summary derived from it;
//! - a [`DriftSignal`] comparing rolling accuracy against the
//!   training-time accuracy recorded in the published manifest, with
//!   hysteresis so one noisy epoch doesn't flap the signal.
//!
//! Everything is exported as gauges in a [`Registry`]
//! (`rc_acc_rolling{metric=...}`, `rc_acc_confusion{metric=...,p=...,o=...}`,
//! …) so snapshots and Prometheus exposition carry the live accuracy
//! picture alongside the rest of the metrics.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

use serde::Value;

use crate::metrics::{Counter, Gauge, Registry};
use crate::names::{
    ACC_BASELINE, ACC_CONFUSION, ACC_CUMULATIVE, ACC_DRIFT, ACC_DRIFT_TRANSITIONS, ACC_ROLLING,
};
use crate::window::WindowedCounter;

/// Unresolved predictions retained per metric before new ones are shed.
const MAX_PENDING: usize = 1 << 16;
/// Hard cap on confusion-matrix dimensions (buckets).
const MAX_BUCKETS: usize = 32;

/// The baseline assumed for a metric whose training-time accuracy was
/// never recorded (absent from the published manifest). Without this
/// fallback such a metric could *never* trip the drift signal, however
/// badly it served — a silent hole in the watchdog. The value sits just
/// above the publish gate's default 0.5 accuracy floor: any model worth
/// serving validated above it, so rolling accuracy far below is
/// drift-worthy even with no manifest entry to compare against. An
/// explicit [`AccuracyTracker::set_baseline`] always overrides it.
pub const DEFAULT_BASELINE: f64 = 0.6;

/// The drift verdict for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DriftSignal {
    /// Rolling accuracy is consistent with the training-time baseline
    /// (or there is not yet enough data to say otherwise).
    #[default]
    Stable,
    /// Rolling accuracy has sat below `baseline - tolerance` for at
    /// least `trip_ticks` consecutive ticks.
    Drifting,
}

/// Hysteresis parameters for [`DriftSignal`] evaluation.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Epochs spanned by the rolling accuracy window.
    pub window: usize,
    /// Trip threshold: breach when `rolling < baseline - tolerance`.
    pub tolerance: f64,
    /// Clear threshold: recovery when `rolling >= baseline - clear_margin`.
    /// Must be tighter than `tolerance` for real hysteresis.
    pub clear_margin: f64,
    /// Consecutive breaching ticks before `Stable -> Drifting`.
    pub trip_ticks: u32,
    /// Consecutive recovered ticks before `Drifting -> Stable`.
    pub clear_ticks: u32,
    /// Minimum outcomes inside the window for a verdict at all.
    pub min_samples: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window: crate::window::DEFAULT_WINDOW,
            tolerance: 0.10,
            clear_margin: 0.05,
            trip_ticks: 2,
            clear_ticks: 2,
            min_samples: 20,
        }
    }
}

/// One calibration row: how predictions of bucket `predicted` fared.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationRow {
    /// The predicted bucket.
    pub predicted: usize,
    /// Resolved outcomes for that prediction.
    pub outcomes: u64,
    /// Fraction where observed == predicted.
    pub hit_rate: f64,
    /// Mean observed bucket for that prediction.
    pub mean_observed: f64,
}

/// Gauge name for a per-metric accuracy series (labels are embedded in
/// the flat registry name; the syntax is valid Prometheus exposition).
pub fn acc_gauge_name(series: &str, metric: &str) -> String {
    format!("{series}{{metric=\"{metric}\"}}")
}

/// Gauge name for one confusion-matrix cell.
pub fn acc_confusion_name(metric: &str, predicted: usize, observed: usize) -> String {
    format!("{ACC_CONFUSION}{{metric=\"{metric}\",p=\"{predicted}\",o=\"{observed}\"}}")
}

struct MetricState {
    baseline: Option<f64>,
    /// id -> predicted bucket, awaiting its outcome.
    pending: BTreeMap<u64, usize>,
    /// `confusion[predicted][observed]`, grown on demand.
    confusion: Vec<Vec<u64>>,
    predictions: u64,
    outcomes: u64,
    correct: u64,
    unmatched: u64,
    dropped_pending: u64,
    win_correct: WindowedCounter,
    win_outcomes: WindowedCounter,
    breach_ticks: u32,
    ok_ticks: u32,
    signal: DriftSignal,
    /// Signal flips in either direction since this state was created.
    transitions: u64,
    g_rolling: Gauge,
    g_cumulative: Gauge,
    g_drift: Gauge,
    g_baseline: Gauge,
}

impl MetricState {
    fn new(registry: &Registry, config: &DriftConfig, metric: &str) -> Self {
        MetricState {
            baseline: None,
            pending: BTreeMap::new(),
            confusion: Vec::new(),
            predictions: 0,
            outcomes: 0,
            correct: 0,
            unmatched: 0,
            dropped_pending: 0,
            win_correct: WindowedCounter::new(config.window),
            win_outcomes: WindowedCounter::new(config.window),
            breach_ticks: 0,
            ok_ticks: 0,
            signal: DriftSignal::Stable,
            transitions: 0,
            g_rolling: registry.gauge(&acc_gauge_name(ACC_ROLLING, metric)),
            g_cumulative: registry.gauge(&acc_gauge_name(ACC_CUMULATIVE, metric)),
            g_drift: registry.gauge(&acc_gauge_name(ACC_DRIFT, metric)),
            g_baseline: registry.gauge(&acc_gauge_name(ACC_BASELINE, metric)),
        }
    }

    fn grow_to(&mut self, bucket: usize) {
        let need = bucket + 1;
        if self.confusion.len() < need {
            for row in &mut self.confusion {
                row.resize(need, 0);
            }
            while self.confusion.len() < need {
                self.confusion.push(vec![0; need]);
            }
        }
    }

    fn rolling(&self) -> Option<f64> {
        let outcomes = self.win_outcomes.window_sum();
        if outcomes == 0 {
            return None;
        }
        Some(self.win_correct.window_sum() as f64 / outcomes as f64)
    }

    fn cumulative(&self) -> Option<f64> {
        if self.outcomes == 0 {
            return None;
        }
        Some(self.correct as f64 / self.outcomes as f64)
    }
}

/// Pairs predictions with observed outcomes and tracks rolling accuracy,
/// confusion, calibration, and drift per metric.
pub struct AccuracyTracker {
    registry: Registry,
    config: DriftConfig,
    metrics: Mutex<BTreeMap<String, MetricState>>,
    c_transitions: Counter,
}

impl fmt::Debug for AccuracyTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let metrics = self.metrics.lock().expect("accuracy lock");
        f.debug_struct("AccuracyTracker").field("metrics", &metrics.len()).finish()
    }
}

impl Default for AccuracyTracker {
    fn default() -> Self {
        AccuracyTracker::new(DriftConfig::default())
    }
}

impl AccuracyTracker {
    /// A tracker exporting gauges into its own private registry.
    pub fn new(config: DriftConfig) -> Self {
        AccuracyTracker::with_registry(Registry::new(), config)
    }

    /// A tracker exporting gauges into `registry`.
    pub fn with_registry(registry: Registry, config: DriftConfig) -> Self {
        let c_transitions = registry.counter(ACC_DRIFT_TRANSITIONS);
        AccuracyTracker { registry, config, metrics: Mutex::new(BTreeMap::new()), c_transitions }
    }

    /// The registry the accuracy gauges live in.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    fn with_state<R>(&self, metric: &str, f: impl FnOnce(&mut MetricState) -> R) -> R {
        let mut metrics = self.metrics.lock().expect("accuracy lock");
        if !metrics.contains_key(metric) {
            metrics
                .insert(metric.to_string(), MetricState::new(&self.registry, &self.config, metric));
        }
        f(metrics.get_mut(metric).expect("state just inserted"))
    }

    /// Reports a prediction at predict time. `id` is whatever the caller
    /// will use to report the outcome later (e.g. the VM id). A second
    /// prediction under the same id supersedes the first.
    pub fn record_prediction(&self, metric: &str, id: u64, predicted_bucket: usize) {
        self.with_state(metric, |state| {
            state.predictions += 1;
            if state.pending.len() >= MAX_PENDING && !state.pending.contains_key(&id) {
                state.dropped_pending += 1;
            } else {
                state.pending.insert(id, predicted_bucket.min(MAX_BUCKETS - 1));
            }
        });
    }

    /// Sets the training-time accuracy baseline (from the published
    /// manifest's `ModelEntry::accuracy`) the drift signal compares
    /// rolling accuracy against.
    pub fn set_baseline(&self, metric: &str, accuracy: f64) {
        self.with_state(metric, |state| {
            state.baseline = Some(accuracy);
            state.g_baseline.set(accuracy);
        });
    }

    /// Feeds back the observed bucket for a previously reported
    /// prediction. Returns `false` (and counts the outcome as unmatched)
    /// when no pending prediction exists under `id`.
    pub fn record_outcome(&self, metric: &str, id: u64, observed_bucket: usize) -> bool {
        let registry = self.registry.clone();
        self.with_state(metric, |state| {
            let Some(predicted) = state.pending.remove(&id) else {
                state.unmatched += 1;
                return false;
            };
            let observed = observed_bucket.min(MAX_BUCKETS - 1);
            state.grow_to(predicted.max(observed));
            state.confusion[predicted][observed] += 1;
            state.outcomes += 1;
            state.win_outcomes.increment();
            if predicted == observed {
                state.correct += 1;
                state.win_correct.increment();
            }
            if let Some(c) = state.cumulative() {
                state.g_cumulative.set(c);
            }
            registry
                .gauge(&acc_confusion_name(metric, predicted, observed))
                .set(state.confusion[predicted][observed] as f64);
            true
        })
    }

    /// Advances the logical clock: rotates every metric's rolling window
    /// and re-evaluates its drift signal with hysteresis.
    pub fn tick(&self) {
        let mut metrics = self.metrics.lock().expect("accuracy lock");
        for state in metrics.values_mut() {
            state.win_correct.tick();
            state.win_outcomes.tick();
            let window_outcomes = state.win_outcomes.window_sum();
            let rolling = state.rolling();
            if let Some(r) = rolling {
                state.g_rolling.set(r);
            }
            if let Some(rolling) = rolling {
                // A metric never seeded from a manifest still gets a
                // verdict, against [`DEFAULT_BASELINE`] — "no baseline"
                // must not mean "can never trip".
                let baseline = state.baseline.unwrap_or(DEFAULT_BASELINE);
                if window_outcomes >= self.config.min_samples {
                    if rolling < baseline - self.config.tolerance {
                        state.breach_ticks += 1;
                        state.ok_ticks = 0;
                    } else if rolling >= baseline - self.config.clear_margin {
                        state.ok_ticks += 1;
                        state.breach_ticks = 0;
                    } else {
                        // Inside the hysteresis band: hold the signal.
                        state.breach_ticks = 0;
                        state.ok_ticks = 0;
                    }
                    let next = match state.signal {
                        DriftSignal::Stable if state.breach_ticks >= self.config.trip_ticks => {
                            DriftSignal::Drifting
                        }
                        DriftSignal::Drifting if state.ok_ticks >= self.config.clear_ticks => {
                            DriftSignal::Stable
                        }
                        same => same,
                    };
                    if next != state.signal {
                        state.signal = next;
                        state.transitions += 1;
                        self.c_transitions.increment();
                    }
                }
            }
            state.g_drift.set(if state.signal == DriftSignal::Drifting { 1.0 } else { 0.0 });
        }
    }

    /// Signal flips (`Stable` ⇄ `Drifting`, either direction) for
    /// `metric` since the tracker first saw it. The sum across metrics
    /// reconciles with the `rc_acc_drift_transitions` registry delta.
    pub fn drift_transitions(&self, metric: &str) -> u64 {
        self.metrics.lock().expect("accuracy lock").get(metric).map_or(0, |s| s.transitions)
    }

    /// The current drift verdict for `metric` (`Stable` when unknown).
    pub fn drift(&self, metric: &str) -> DriftSignal {
        self.metrics
            .lock()
            .expect("accuracy lock")
            .get(metric)
            .map(|s| s.signal)
            .unwrap_or_default()
    }

    /// Rolling accuracy over the live window; `None` without outcomes.
    pub fn rolling_accuracy(&self, metric: &str) -> Option<f64> {
        self.metrics.lock().expect("accuracy lock").get(metric).and_then(|s| s.rolling())
    }

    /// Accuracy over every outcome ever resolved; `None` without
    /// outcomes.
    pub fn cumulative_accuracy(&self, metric: &str) -> Option<f64> {
        self.metrics.lock().expect("accuracy lock").get(metric).and_then(|s| s.cumulative())
    }

    /// The training-time baseline, if one was set.
    pub fn baseline(&self, metric: &str) -> Option<f64> {
        self.metrics.lock().expect("accuracy lock").get(metric).and_then(|s| s.baseline)
    }

    /// Predictions reported for `metric` (matched or not).
    pub fn predictions(&self, metric: &str) -> u64 {
        self.metrics.lock().expect("accuracy lock").get(metric).map_or(0, |s| s.predictions)
    }

    /// Outcomes resolved against a pending prediction.
    pub fn outcomes(&self, metric: &str) -> u64 {
        self.metrics.lock().expect("accuracy lock").get(metric).map_or(0, |s| s.outcomes)
    }

    /// Outcomes that arrived with no pending prediction.
    pub fn unmatched_outcomes(&self, metric: &str) -> u64 {
        self.metrics.lock().expect("accuracy lock").get(metric).map_or(0, |s| s.unmatched)
    }

    /// Predictions still awaiting an outcome.
    pub fn pending(&self, metric: &str) -> usize {
        self.metrics.lock().expect("accuracy lock").get(metric).map_or(0, |s| s.pending.len())
    }

    /// The `confusion[predicted][observed]` matrix (square, possibly
    /// empty).
    pub fn confusion(&self, metric: &str) -> Vec<Vec<u64>> {
        self.metrics
            .lock()
            .expect("accuracy lock")
            .get(metric)
            .map(|s| s.confusion.clone())
            .unwrap_or_default()
    }

    /// Per-predicted-bucket calibration derived from the confusion
    /// matrix (rows with no outcomes are omitted).
    pub fn calibration(&self, metric: &str) -> Vec<CalibrationRow> {
        let metrics = self.metrics.lock().expect("accuracy lock");
        let Some(state) = metrics.get(metric) else {
            return Vec::new();
        };
        let mut rows = Vec::new();
        for (p, row) in state.confusion.iter().enumerate() {
            let n: u64 = row.iter().sum();
            if n == 0 {
                continue;
            }
            let weighted: u64 = row.iter().enumerate().map(|(o, c)| o as u64 * c).sum();
            rows.push(CalibrationRow {
                predicted: p,
                outcomes: n,
                hit_rate: row[p] as f64 / n as f64,
                mean_observed: weighted as f64 / n as f64,
            });
        }
        rows
    }

    /// Metrics the tracker has seen, ascending by name.
    pub fn metric_names(&self) -> Vec<String> {
        self.metrics.lock().expect("accuracy lock").keys().cloned().collect()
    }

    /// The whole tracker as one JSON value (per metric: counts, rolling
    /// vs cumulative vs baseline accuracy, drift, confusion,
    /// calibration) — the shape `rc_obs::report` embeds.
    pub fn summary(&self) -> Value {
        let metrics = self.metrics.lock().expect("accuracy lock");
        let mut out = Vec::new();
        for (name, state) in metrics.iter() {
            let opt = |v: Option<f64>| v.map(Value::F64).unwrap_or(Value::Null);
            let confusion = Value::Array(
                state
                    .confusion
                    .iter()
                    .map(|row| Value::Array(row.iter().map(|&c| Value::U64(c)).collect()))
                    .collect(),
            );
            out.push((
                name.clone(),
                Value::Object(vec![
                    ("predictions".to_string(), Value::U64(state.predictions)),
                    ("outcomes".to_string(), Value::U64(state.outcomes)),
                    ("correct".to_string(), Value::U64(state.correct)),
                    ("unmatched".to_string(), Value::U64(state.unmatched)),
                    ("pending".to_string(), Value::U64(state.pending.len() as u64)),
                    ("rolling".to_string(), opt(state.rolling())),
                    ("cumulative".to_string(), opt(state.cumulative())),
                    ("baseline".to_string(), opt(state.baseline)),
                    (
                        "drift".to_string(),
                        Value::Str(
                            match state.signal {
                                DriftSignal::Stable => "stable",
                                DriftSignal::Drifting => "drifting",
                            }
                            .to_string(),
                        ),
                    ),
                    ("confusion".to_string(), confusion),
                ]),
            ));
        }
        Value::Object(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_predictions_with_outcomes_and_builds_confusion() {
        let t = AccuracyTracker::new(DriftConfig::default());
        t.record_prediction("m", 1, 0);
        t.record_prediction("m", 2, 1);
        t.record_prediction("m", 3, 1);
        assert!(t.record_outcome("m", 1, 0)); // hit
        assert!(t.record_outcome("m", 2, 3)); // miss
        assert!(t.record_outcome("m", 3, 1)); // hit
        assert!(!t.record_outcome("m", 99, 0)); // never predicted
        assert_eq!(t.predictions("m"), 3);
        assert_eq!(t.outcomes("m"), 3);
        assert_eq!(t.unmatched_outcomes("m"), 1);
        assert_eq!(t.pending("m"), 0);
        assert_eq!(t.cumulative_accuracy("m"), Some(2.0 / 3.0));
        let c = t.confusion("m");
        assert_eq!(c[0][0], 1);
        assert_eq!(c[1][3], 1);
        assert_eq!(c[1][1], 1);
        // Row/column sums reconcile with outcomes.
        let total: u64 = c.iter().flatten().sum();
        assert_eq!(total, t.outcomes("m"));
    }

    #[test]
    fn calibration_rows_summarize_confusion_rows() {
        let t = AccuracyTracker::new(DriftConfig::default());
        for (id, (p, o)) in [(0usize, 0usize), (0, 0), (0, 2), (3, 3)].iter().enumerate() {
            t.record_prediction("m", id as u64, *p);
            t.record_outcome("m", id as u64, *o);
        }
        let rows = t.calibration("m");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].predicted, 0);
        assert_eq!(rows[0].outcomes, 3);
        assert!((rows[0].hit_rate - 2.0 / 3.0).abs() < 1e-12);
        assert!((rows[0].mean_observed - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(rows[1].predicted, 3);
        assert_eq!(rows[1].hit_rate, 1.0);
    }

    #[test]
    fn drift_trips_after_consecutive_breaches_and_clears_with_hysteresis() {
        let config = DriftConfig {
            window: 4,
            tolerance: 0.2,
            clear_margin: 0.05,
            trip_ticks: 2,
            clear_ticks: 2,
            min_samples: 5,
        };
        let t = AccuracyTracker::new(config);
        t.set_baseline("m", 0.9);
        let mut id = 0u64;
        let mut feed = |hits: usize, misses: usize, t: &AccuracyTracker| {
            for _ in 0..hits {
                t.record_prediction("m", id, 1);
                t.record_outcome("m", id, 1);
                id += 1;
            }
            for _ in 0..misses {
                t.record_prediction("m", id, 1);
                t.record_outcome("m", id, 2);
                id += 1;
            }
        };
        // Healthy epochs: rolling 1.0 — stable.
        feed(10, 0, &t);
        t.tick();
        assert_eq!(t.drift("m"), DriftSignal::Stable);
        // One bad epoch is not enough (trip_ticks = 2).
        feed(0, 30, &t);
        t.tick();
        assert_eq!(t.drift("m"), DriftSignal::Stable);
        feed(0, 30, &t);
        t.tick();
        assert_eq!(t.drift("m"), DriftSignal::Drifting);
        // Recovery must also persist for clear_ticks epochs, and the old
        // bad epochs must leave the window first.
        feed(40, 0, &t);
        t.tick();
        assert_eq!(t.drift("m"), DriftSignal::Drifting);
        for _ in 0..4 {
            feed(40, 0, &t);
            t.tick();
        }
        assert_eq!(t.drift("m"), DriftSignal::Stable);
    }

    /// Window 2 makes the rolling view exactly the previous epoch's
    /// ratio after each `tick` (the fresh current bucket is empty), and
    /// every threshold here is exact in binary (0.75 − 0.25 = 0.5,
    /// 0.75 − 0.125 = 0.625), so the boundary comparisons are precise.
    fn boundary_config(trip_ticks: u32, clear_ticks: u32) -> DriftConfig {
        DriftConfig {
            window: 2,
            tolerance: 0.25,
            clear_margin: 0.125,
            trip_ticks,
            clear_ticks,
            min_samples: 5,
        }
    }

    fn feed_epoch(t: &AccuracyTracker, id: &mut u64, hits: usize, misses: usize) {
        for _ in 0..hits {
            t.record_prediction("m", *id, 1);
            t.record_outcome("m", *id, 1);
            *id += 1;
        }
        for _ in 0..misses {
            t.record_prediction("m", *id, 1);
            t.record_outcome("m", *id, 2);
            *id += 1;
        }
        t.tick();
    }

    /// Regression (the baseline-seeding hole): a metric that never got a
    /// manifest baseline must still trip against [`DEFAULT_BASELINE`]
    /// instead of silently never evaluating.
    #[test]
    fn metric_without_baseline_trips_against_the_default() {
        let t = AccuracyTracker::new(boundary_config(2, 2));
        let mut id = 0;
        // No set_baseline call anywhere. Rolling 0.0 < 0.6 - 0.25.
        feed_epoch(&t, &mut id, 0, 10);
        assert_eq!(t.drift("m"), DriftSignal::Stable, "trip_ticks = 2 needs a second epoch");
        feed_epoch(&t, &mut id, 0, 10);
        assert_eq!(t.drift("m"), DriftSignal::Drifting);
        assert_eq!(t.baseline("m"), None, "the fallback must not masquerade as a real baseline");
        // Healthy epochs against the same default baseline clear it.
        feed_epoch(&t, &mut id, 10, 0);
        feed_epoch(&t, &mut id, 10, 0);
        assert_eq!(t.drift("m"), DriftSignal::Stable);
    }

    /// Boundary: `trip_ticks = 1` trips on the very first breaching
    /// epoch and clears on the very first recovered one.
    #[test]
    fn trip_after_one_tick_boundary() {
        let t = AccuracyTracker::new(boundary_config(1, 1));
        t.set_baseline("m", 0.75);
        let mut id = 0;
        // Exactly at the trip threshold (rolling 0.5 = baseline -
        // tolerance): the breach comparison is strict, so no trip even
        // with trip_ticks = 1.
        feed_epoch(&t, &mut id, 5, 5);
        assert_eq!(t.drift("m"), DriftSignal::Stable, "threshold itself is not a breach");
        // Just below: one epoch suffices.
        feed_epoch(&t, &mut id, 4, 6);
        assert_eq!(t.drift("m"), DriftSignal::Drifting);
        // At the clear threshold (rolling 0.625 = baseline -
        // clear_margin, inclusive): one epoch clears.
        feed_epoch(&t, &mut id, 5, 3);
        assert_eq!(t.drift("m"), DriftSignal::Stable);
        assert_eq!(t.drift_transitions("m"), 2);
    }

    /// Boundary: accuracy flapping around the threshold — alternating
    /// breach/recover epochs, and epochs sitting exactly on the trip
    /// threshold — never accumulates enough consecutive ticks to flip
    /// the signal, so the transition count stays zero; a sustained
    /// breach then counts exactly one transition however long it lasts.
    #[test]
    fn flapping_at_the_threshold_never_double_counts_transitions() {
        let t = AccuracyTracker::new(boundary_config(2, 2));
        t.set_baseline("m", 0.75);
        let mut id = 0;
        for _ in 0..10 {
            feed_epoch(&t, &mut id, 4, 6); // 0.4: breach (1 tick)
            feed_epoch(&t, &mut id, 8, 2); // 0.8: recovered (resets)
        }
        assert_eq!(t.drift("m"), DriftSignal::Stable);
        assert_eq!(t.drift_transitions("m"), 0, "flapping must not flip the signal");
        for _ in 0..10 {
            feed_epoch(&t, &mut id, 5, 5); // exactly baseline - tolerance
        }
        assert_eq!(t.drift("m"), DriftSignal::Stable);
        assert_eq!(t.drift_transitions("m"), 0, "the threshold itself is not a breach");
        // Sustained breach: one Stable→Drifting transition, not one per
        // breaching epoch.
        for _ in 0..10 {
            feed_epoch(&t, &mut id, 0, 10);
        }
        assert_eq!(t.drift("m"), DriftSignal::Drifting);
        assert_eq!(t.drift_transitions("m"), 1);
        // Sustained recovery: exactly one more.
        for _ in 0..10 {
            feed_epoch(&t, &mut id, 10, 0);
        }
        assert_eq!(t.drift("m"), DriftSignal::Stable);
        assert_eq!(t.drift_transitions("m"), 2);
    }

    /// Per-metric transition counts reconcile with the
    /// `rc_acc_drift_transitions` registry delta.
    #[test]
    fn transition_counts_reconcile_with_registry_deltas() {
        let reg = Registry::new();
        let before = reg.snapshot().counter(ACC_DRIFT_TRANSITIONS).unwrap_or(0);
        let t = AccuracyTracker::with_registry(reg.clone(), boundary_config(1, 1));
        t.set_baseline("a", 0.75);
        t.set_baseline("b", 0.75);
        let mut id = 0;
        let mut feed = |metric: &str, hits: usize, misses: usize| {
            for _ in 0..hits {
                t.record_prediction(metric, id, 1);
                t.record_outcome(metric, id, 1);
                id += 1;
            }
            for _ in 0..misses {
                t.record_prediction(metric, id, 1);
                t.record_outcome(metric, id, 2);
                id += 1;
            }
        };
        // "a" trips and clears (2 transitions); "b" only trips (1).
        feed("a", 0, 10);
        feed("b", 10, 0);
        t.tick();
        feed("a", 10, 0);
        feed("b", 0, 10);
        t.tick();
        t.tick();
        assert_eq!(t.drift("a"), DriftSignal::Stable);
        assert_eq!(t.drift("b"), DriftSignal::Drifting);
        let per_metric = t.drift_transitions("a") + t.drift_transitions("b");
        assert_eq!(per_metric, 3);
        let after = reg.snapshot().counter(ACC_DRIFT_TRANSITIONS).unwrap_or(0);
        assert_eq!(after - before, per_metric, "registry delta must reconcile");
    }

    #[test]
    fn gauges_are_exported_into_the_registry() {
        let reg = Registry::new();
        let t = AccuracyTracker::with_registry(reg.clone(), DriftConfig::default());
        t.set_baseline("m", 0.8);
        t.record_prediction("m", 1, 2);
        t.record_outcome("m", 1, 2);
        t.tick();
        let snap = reg.snapshot();
        assert_eq!(snap.gauge(&acc_gauge_name(ACC_BASELINE, "m")), Some(0.8));
        assert_eq!(snap.gauge(&acc_gauge_name(ACC_CUMULATIVE, "m")), Some(1.0));
        assert_eq!(snap.gauge(&acc_gauge_name(ACC_ROLLING, "m")), Some(1.0));
        assert_eq!(snap.gauge(&acc_gauge_name(ACC_DRIFT, "m")), Some(0.0));
        assert_eq!(snap.gauge(&acc_confusion_name("m", 2, 2)), Some(1.0));
        let text = snap.to_prometheus_text();
        assert!(text.contains("rc_acc_rolling{metric=\"m\"} 1"));
        assert!(text.contains("rc_acc_confusion{metric=\"m\",p=\"2\",o=\"2\"} 1"));
    }

    #[test]
    fn summary_is_serializable_json() {
        let t = AccuracyTracker::new(DriftConfig::default());
        t.record_prediction("m", 1, 0);
        t.record_outcome("m", 1, 1);
        let v = t.summary();
        let bytes = serde_json::to_vec(&v).expect("summary serializes");
        assert!(!bytes.is_empty());
    }
}
