//! Streaming feature-distribution sketches and the leading drift
//! indicator.
//!
//! The [`crate::AccuracyTracker`]'s [`crate::DriftSignal`] is a *lagging*
//! signal: it needs labeled outcomes, so a shifted workload serves bad
//! predictions for however long labels take to resolve plus the
//! hysteresis. The input feature distribution moves *first* — before a
//! single outcome lands. This module watches it:
//!
//! - [`FeatureHistogram`]: a fixed-bin streaming histogram over one
//!   feature's values in one ingested window — O(bins) memory however
//!   many records stream through, serializable so a training-time
//!   baseline can be persisted next to the manifest it describes;
//! - [`WindowSketch`]: the per-feature histogram set for one window;
//! - PSI ([`FeatureHistogram::psi`]) and KS ([`FeatureHistogram::ks`])
//!   divergences between two histograms over the same bins;
//! - [`LeadingDriftMonitor`]: compares each ingested window's sketch
//!   against a baseline sketch captured from the serving model's
//!   training window, and maintains a typed [`LeadingDrift`] signal per
//!   feature with the same trip/clear hysteresis shape as the label
//!   tracker — so one noisy window doesn't flap the signal, but a
//!   sustained shift trips it ticks before accuracy falls.
//!
//! Gauges land in a [`Registry`] as `rc_loop_leading_psi{feature=...}` /
//! `rc_loop_leading_drift{feature=...}`, next to the label-based
//! `rc_acc_*` families they front-run.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::metrics::{Counter, Gauge, Registry};
use crate::names::{LOOP_LEADING_DRIFT, LOOP_LEADING_PSI, LOOP_LEADING_TRIPS};

/// Bins per feature histogram. Coarse enough that a few thousand
/// records fill every bin a workload actually occupies, fine enough
/// that a mean shift of a few bins registers clearly in PSI.
pub const SKETCH_BINS: usize = 16;

/// Additive smoothing mass per bin when converting counts to
/// probabilities: keeps PSI finite when a bin is empty on one side.
const PSI_EPSILON: f64 = 1e-4;

/// Gauge name for a per-feature distribution series (labels embedded in
/// the flat registry name, valid Prometheus exposition — the same
/// scheme as [`crate::acc_gauge_name`]).
pub fn feature_gauge_name(series: &str, feature: &str) -> String {
    format!("{series}{{feature=\"{feature}\"}}")
}

/// A fixed-bin streaming histogram over one feature.
///
/// Values clamp into `[lo, hi]`; non-finite values are dropped (the
/// cleanup stage quarantines them anyway, but the sketch must never be
/// poisoned by one leaking through).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureHistogram {
    /// Inclusive lower bound of the value range.
    pub lo: f64,
    /// Inclusive upper bound of the value range.
    pub hi: f64,
    /// Per-bin counts, length [`SKETCH_BINS`].
    pub counts: Vec<u64>,
    /// Total recorded values (= sum of `counts`).
    pub total: u64,
}

impl FeatureHistogram {
    /// An empty histogram over `[lo, hi]` (swapped bounds are fixed up,
    /// a degenerate range widens to a unit interval).
    pub fn new(lo: f64, hi: f64) -> Self {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let hi = if hi > lo { hi } else { lo + 1.0 };
        FeatureHistogram { lo, hi, counts: vec![0; SKETCH_BINS], total: 0 }
    }

    /// Records one value (clamped into range; non-finite dropped).
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let clamped = value.clamp(self.lo, self.hi);
        let frac = (clamped - self.lo) / (self.hi - self.lo);
        let bin = ((frac * SKETCH_BINS as f64) as usize).min(SKETCH_BINS - 1);
        self.counts[bin] += 1;
        self.total += 1;
    }

    /// Smoothed probability of `bin`.
    fn p(&self, bin: usize) -> f64 {
        (self.counts[bin] as f64 + PSI_EPSILON)
            / (self.total as f64 + SKETCH_BINS as f64 * PSI_EPSILON)
    }

    /// Population Stability Index versus `other` over the same bins:
    /// `Σ (p_i − q_i) · ln(p_i / q_i)`, smoothed so empty bins stay
    /// finite. Symmetric, ≥ 0, 0 iff the smoothed distributions match.
    /// The usual reading: < 0.1 noise, 0.1–0.25 moderate shift, > 0.25
    /// a shift that demands action.
    pub fn psi(&self, other: &FeatureHistogram) -> f64 {
        (0..SKETCH_BINS)
            .map(|i| {
                let (p, q) = (self.p(i), other.p(i));
                (p - q) * (p / q).ln()
            })
            .sum()
    }

    /// Kolmogorov–Smirnov statistic versus `other`: the maximum
    /// absolute CDF gap, in `[0, 1]`. Reported alongside PSI because it
    /// reacts to a concentrated shift that PSI's bin-by-bin sum dilutes.
    pub fn ks(&self, other: &FeatureHistogram) -> f64 {
        if self.total == 0 || other.total == 0 {
            return 0.0;
        }
        let (mut ca, mut cb, mut worst) = (0.0f64, 0.0f64, 0.0f64);
        for i in 0..SKETCH_BINS {
            ca += self.counts[i] as f64 / self.total as f64;
            cb += other.counts[i] as f64 / other.total as f64;
            worst = worst.max((ca - cb).abs());
        }
        worst
    }
}

/// PSI between two raw bucket-count slices (ragged lengths are padded
/// with empty buckets). This is the serving-vs-candidate
/// prediction-distribution check: feed it the two models' predicted
/// bucket counts over the same shadow slice and a large value means the
/// candidate *predicts from a different world* than the serving model —
/// worth refusing even when its headline accuracy looks fine.
pub fn counts_psi(a: &[u64], b: &[u64]) -> f64 {
    let n = a.len().max(b.len()).max(1);
    let (ta, tb) = (a.iter().sum::<u64>() as f64, b.iter().sum::<u64>() as f64);
    let smooth = n as f64 * PSI_EPSILON;
    (0..n)
        .map(|i| {
            let ca = a.get(i).copied().unwrap_or(0) as f64;
            let cb = b.get(i).copied().unwrap_or(0) as f64;
            let p = (ca + PSI_EPSILON) / (ta + smooth);
            let q = (cb + PSI_EPSILON) / (tb + smooth);
            (p - q) * (p / q).ln()
        })
        .sum()
}

/// The per-feature histogram set for one ingested window. Features are
/// keyed by name in a `BTreeMap`, so iteration order — and therefore
/// every derived journal and report — is deterministic.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WindowSketch {
    /// Histograms by feature name.
    pub features: BTreeMap<String, FeatureHistogram>,
}

impl WindowSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        WindowSketch::default()
    }

    /// Records one value for `feature`, creating its histogram over
    /// `[lo, hi]` on first sight (later calls keep the original range).
    pub fn record(&mut self, feature: &str, lo: f64, hi: f64, value: f64) {
        self.features
            .entry(feature.to_string())
            .or_insert_with(|| FeatureHistogram::new(lo, hi))
            .record(value);
    }

    /// Smallest per-feature sample count (0 for an empty sketch) — the
    /// monitor's `min_samples` gate looks at the weakest feature.
    pub fn min_total(&self) -> u64 {
        self.features.values().map(|h| h.total).min().unwrap_or(0)
    }

    /// Per-feature PSI versus `baseline`, ascending by feature name;
    /// features absent from either side are skipped.
    pub fn psi_vs(&self, baseline: &WindowSketch) -> Vec<(String, f64)> {
        self.features
            .iter()
            .filter_map(|(name, h)| baseline.features.get(name).map(|b| (name.clone(), h.psi(b))))
            .collect()
    }

    /// Serializes for persistence next to the manifest version it
    /// describes.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails, which requires non-finite bounds;
    /// [`FeatureHistogram::new`] only accepts what callers pass — keep
    /// ranges finite.
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("sketch serialization")
    }

    /// Decodes persisted sketch bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<WindowSketch> {
        serde_json::from_slice(bytes).ok()
    }
}

/// The leading-drift verdict for one feature — deliberately the same
/// two-state shape as [`crate::DriftSignal`], because the loop treats
/// them identically downstream; only the evidence differs (input
/// distributions here, labeled outcomes there).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LeadingDrift {
    /// The feature's window distribution is consistent with the
    /// baseline (or there is not yet enough data / no baseline).
    #[default]
    Stable,
    /// PSI has sat above the trip threshold for `trip_ticks`
    /// consecutive windows.
    Drifting,
}

/// Hysteresis parameters for [`LeadingDrift`] evaluation — the
/// distribution-side mirror of [`crate::DriftConfig`].
#[derive(Debug, Clone)]
pub struct LeadingDriftConfig {
    /// Trip threshold: a window breaches when `psi > psi_trip`.
    pub psi_trip: f64,
    /// Clear threshold: a window counts as recovered when
    /// `psi <= psi_clear`. Must be below `psi_trip` for real
    /// hysteresis; in between, the signal holds.
    pub psi_clear: f64,
    /// Consecutive breaching windows before `Stable -> Drifting`.
    pub trip_ticks: u32,
    /// Consecutive recovered windows before `Drifting -> Stable`.
    pub clear_ticks: u32,
    /// Minimum samples in a window's weakest feature for a verdict.
    pub min_samples: u64,
}

impl Default for LeadingDriftConfig {
    fn default() -> Self {
        LeadingDriftConfig {
            psi_trip: 0.25,
            psi_clear: 0.10,
            trip_ticks: 1,
            clear_ticks: 2,
            min_samples: 200,
        }
    }
}

/// One feature's verdict from a [`LeadingDriftMonitor::observe`] pass.
#[derive(Debug, Clone, PartialEq)]
pub struct LeadingObservation {
    /// The feature observed.
    pub feature: String,
    /// Its PSI versus the baseline this window.
    pub psi: f64,
    /// The signal *after* this window's hysteresis update.
    pub signal: LeadingDrift,
    /// True exactly when this window flipped `Stable -> Drifting`.
    pub tripped: bool,
}

struct FeatureState {
    breach_ticks: u32,
    ok_ticks: u32,
    signal: LeadingDrift,
    g_psi: Gauge,
    g_drift: Gauge,
}

/// Watches ingested-window sketches against a training-time baseline
/// and maintains a hysteresis-filtered [`LeadingDrift`] signal per
/// feature. Owned by one controller, advanced once per window via
/// [`LeadingDriftMonitor::observe`] — no interior locking.
pub struct LeadingDriftMonitor {
    registry: Registry,
    config: LeadingDriftConfig,
    baseline: Option<WindowSketch>,
    features: BTreeMap<String, FeatureState>,
    c_trips: Counter,
}

impl LeadingDriftMonitor {
    /// A monitor exporting gauges into `registry`.
    pub fn with_registry(registry: Registry, config: LeadingDriftConfig) -> Self {
        let c_trips = registry.counter(LOOP_LEADING_TRIPS);
        LeadingDriftMonitor { registry, config, baseline: None, features: BTreeMap::new(), c_trips }
    }

    /// A monitor with a private registry.
    pub fn new(config: LeadingDriftConfig) -> Self {
        LeadingDriftMonitor::with_registry(Registry::new(), config)
    }

    /// Installs (or clears) the baseline sketch and resets every
    /// feature's hysteresis state: a new baseline means a new reference
    /// frame, so accumulated breach/ok streaks are meaningless.
    pub fn set_baseline(&mut self, baseline: Option<WindowSketch>) {
        self.baseline = baseline;
        for state in self.features.values_mut() {
            state.breach_ticks = 0;
            state.ok_ticks = 0;
            state.signal = LeadingDrift::Stable;
            state.g_drift.set(0.0);
        }
    }

    /// The installed baseline, if any.
    pub fn baseline(&self) -> Option<&WindowSketch> {
        self.baseline.as_ref()
    }

    /// Advances one window: PSI per feature versus the baseline, then
    /// the hysteresis update. Returns one observation per feature
    /// shared by the window and the baseline, ascending by name; empty
    /// when no baseline is installed or the window is too thin.
    pub fn observe(&mut self, window: &WindowSketch) -> Vec<LeadingObservation> {
        let Some(baseline) = &self.baseline else {
            return Vec::new();
        };
        if window.min_total() < self.config.min_samples {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (feature, psi) in window.psi_vs(baseline) {
            let state = self.features.entry(feature.clone()).or_insert_with(|| FeatureState {
                breach_ticks: 0,
                ok_ticks: 0,
                signal: LeadingDrift::Stable,
                g_psi: self.registry.gauge(&feature_gauge_name(LOOP_LEADING_PSI, &feature)),
                g_drift: self.registry.gauge(&feature_gauge_name(LOOP_LEADING_DRIFT, &feature)),
            });
            state.g_psi.set(psi);
            if psi > self.config.psi_trip {
                state.breach_ticks += 1;
                state.ok_ticks = 0;
            } else if psi <= self.config.psi_clear {
                state.ok_ticks += 1;
                state.breach_ticks = 0;
            } else {
                // Inside the hysteresis band: hold the signal.
                state.breach_ticks = 0;
                state.ok_ticks = 0;
            }
            let mut tripped = false;
            match state.signal {
                LeadingDrift::Stable if state.breach_ticks >= self.config.trip_ticks => {
                    state.signal = LeadingDrift::Drifting;
                    tripped = true;
                    self.c_trips.increment();
                }
                LeadingDrift::Drifting if state.ok_ticks >= self.config.clear_ticks => {
                    state.signal = LeadingDrift::Stable;
                }
                _ => {}
            }
            state.g_drift.set(if state.signal == LeadingDrift::Drifting { 1.0 } else { 0.0 });
            out.push(LeadingObservation { feature, psi, signal: state.signal, tripped });
        }
        out
    }

    /// The current verdict for `feature` (`Stable` when unknown).
    pub fn signal(&self, feature: &str) -> LeadingDrift {
        self.features.get(feature).map(|s| s.signal).unwrap_or_default()
    }

    /// Features currently `Drifting`, ascending by name.
    pub fn drifting_features(&self) -> Vec<String> {
        self.features
            .iter()
            .filter(|(_, s)| s.signal == LeadingDrift::Drifting)
            .map(|(name, _)| name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(lo: f64, hi: f64, values: impl IntoIterator<Item = f64>) -> FeatureHistogram {
        let mut h = FeatureHistogram::new(lo, hi);
        for v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn identical_distributions_have_near_zero_psi_and_ks() {
        let a = filled(0.0, 1.0, (0..1000).map(|i| (i % 100) as f64 / 100.0));
        let b = a.clone();
        assert!(a.psi(&b).abs() < 1e-9, "psi {}", a.psi(&b));
        assert_eq!(a.ks(&b), 0.0);
    }

    #[test]
    fn shifted_distribution_raises_psi_and_ks() {
        let a = filled(0.0, 1.0, (0..1000).map(|i| 0.2 + 0.1 * ((i % 10) as f64 / 10.0)));
        let b = filled(0.0, 1.0, (0..1000).map(|i| 0.6 + 0.1 * ((i % 10) as f64 / 10.0)));
        assert!(a.psi(&b) > 1.0, "disjoint supports must dominate the trip threshold");
        assert!(a.ks(&b) > 0.9);
        // PSI is symmetric under the smoothed formula.
        assert!((a.psi(&b) - b.psi(&a)).abs() < 1e-9);
    }

    #[test]
    fn sub_bin_mean_shift_lands_between_noise_and_action() {
        // A half-bin (0.03 over 1/16-wide bins) shift of a wide uniform
        // distribution: boundary bins trade a few percent of mass.
        let a = filled(0.0, 1.0, (0..2000).map(|i| 0.20 + 0.50 * ((i % 97) as f64 / 97.0)));
        let b = filled(0.0, 1.0, (0..2000).map(|i| 0.23 + 0.50 * ((i % 97) as f64 / 97.0)));
        let psi = a.psi(&b);
        assert!(psi > 0.02 && psi < 1.0, "a sub-bin drift should register, not explode: {psi}");
    }

    #[test]
    fn values_clamp_and_non_finite_are_dropped() {
        let mut h = FeatureHistogram::new(0.0, 1.0);
        h.record(-5.0);
        h.record(7.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.total, 2, "clamped values count, non-finite do not");
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[SKETCH_BINS - 1], 1);
    }

    #[test]
    fn sketch_round_trips_through_bytes() {
        let mut s = WindowSketch::new();
        for i in 0..500 {
            s.record("util_base", 0.0, 1.0, (i % 50) as f64 / 50.0);
            s.record("cores", 0.0, 64.0, (i % 8) as f64);
        }
        let decoded = WindowSketch::from_bytes(&s.to_bytes()).expect("round trip");
        assert_eq!(decoded, s);
        assert!(WindowSketch::from_bytes(b"garbage").is_none());
        assert_eq!(s.min_total(), 500);
    }

    #[test]
    fn counts_psi_flags_prediction_shift_and_pads_ragged_slices() {
        assert!(counts_psi(&[100, 100, 100], &[100, 100, 100]).abs() < 1e-9);
        let shifted = counts_psi(&[300, 0, 0], &[0, 0, 300]);
        assert!(shifted > 1.0, "fully moved mass must dominate: {shifted}");
        let padded = counts_psi(&[150, 150], &[150, 150, 0]);
        assert!(padded.abs() < 1e-6, "padding with empty buckets is the identity: {padded}");
    }

    fn sketch_around(center: f64, n: usize) -> WindowSketch {
        let mut s = WindowSketch::new();
        for i in 0..n {
            s.record("f", 0.0, 1.0, center + 0.05 * ((i % 11) as f64 / 11.0));
        }
        s
    }

    #[test]
    fn monitor_trips_with_hysteresis_and_clears_on_recovery() {
        let config = LeadingDriftConfig {
            psi_trip: 0.25,
            psi_clear: 0.10,
            trip_ticks: 2,
            clear_ticks: 2,
            min_samples: 100,
        };
        let mut monitor = LeadingDriftMonitor::new(config);
        // No baseline: observation is a no-op.
        assert!(monitor.observe(&sketch_around(0.5, 500)).is_empty());
        monitor.set_baseline(Some(sketch_around(0.3, 500)));

        // Matching window: stable.
        let obs = monitor.observe(&sketch_around(0.3, 500));
        assert_eq!(obs.len(), 1);
        assert!(obs[0].psi < 0.10);
        assert_eq!(monitor.signal("f"), LeadingDrift::Stable);

        // One shifted window is not enough (trip_ticks = 2)...
        monitor.observe(&sketch_around(0.7, 500));
        assert_eq!(monitor.signal("f"), LeadingDrift::Stable);
        // ...the second trips, and reports the transition exactly once.
        let obs = monitor.observe(&sketch_around(0.7, 500));
        assert!(obs[0].tripped);
        assert_eq!(monitor.signal("f"), LeadingDrift::Drifting);
        assert_eq!(monitor.drifting_features(), vec!["f".to_string()]);
        let obs = monitor.observe(&sketch_around(0.7, 500));
        assert!(!obs[0].tripped, "an already-drifting feature must not re-trip");

        // Recovery needs clear_ticks consecutive quiet windows.
        monitor.observe(&sketch_around(0.3, 500));
        assert_eq!(monitor.signal("f"), LeadingDrift::Drifting);
        monitor.observe(&sketch_around(0.3, 500));
        assert_eq!(monitor.signal("f"), LeadingDrift::Stable);
    }

    #[test]
    fn thin_windows_and_baseline_swaps_reset_cleanly() {
        let mut monitor = LeadingDriftMonitor::new(LeadingDriftConfig {
            trip_ticks: 1,
            min_samples: 100,
            ..LeadingDriftConfig::default()
        });
        monitor.set_baseline(Some(sketch_around(0.3, 500)));
        // Too thin for a verdict.
        assert!(monitor.observe(&sketch_around(0.9, 50)).is_empty());
        assert_eq!(monitor.signal("f"), LeadingDrift::Stable);
        // Thick enough: trips immediately (trip_ticks = 1).
        monitor.observe(&sketch_around(0.9, 500));
        assert_eq!(monitor.signal("f"), LeadingDrift::Drifting);
        // A new baseline resets the signal — new reference frame.
        monitor.set_baseline(Some(sketch_around(0.9, 500)));
        assert_eq!(monitor.signal("f"), LeadingDrift::Stable);
        let obs = monitor.observe(&sketch_around(0.9, 500));
        assert_eq!(obs[0].signal, LeadingDrift::Stable, "the shifted world is the new normal");
    }

    #[test]
    fn trips_land_in_the_registry_counter_and_gauges() {
        let reg = Registry::new();
        let mut monitor = LeadingDriftMonitor::with_registry(
            reg.clone(),
            LeadingDriftConfig { trip_ticks: 1, min_samples: 100, ..LeadingDriftConfig::default() },
        );
        monitor.set_baseline(Some(sketch_around(0.2, 400)));
        monitor.observe(&sketch_around(0.8, 400));
        let snap = reg.snapshot();
        assert_eq!(snap.counter(LOOP_LEADING_TRIPS), Some(1));
        assert_eq!(snap.gauge(&feature_gauge_name(LOOP_LEADING_DRIFT, "f")), Some(1.0));
        assert!(snap.gauge(&feature_gauge_name(LOOP_LEADING_PSI, "f")).unwrap() > 0.25);
    }
}
