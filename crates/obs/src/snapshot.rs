//! Point-in-time captures of registry state.
//!
//! Snapshots are plain serde-serializable data: bench binaries diff them
//! (`delta`) to isolate one phase's activity, extract quantiles, dump
//! them as JSON, or render Prometheus text exposition.

use serde::{Deserialize, Serialize};

use crate::metrics::{bucket_midpoint, bucket_upper_bound};

/// One histogram bucket's occupancy (sparse — zero buckets omitted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Bucket index in the log-linear layout.
    pub index: u32,
    /// Observations in the bucket.
    pub count: u64,
}

/// A counter's name and value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Value at capture time.
    pub value: u64,
}

/// A gauge's name and level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Level at capture time.
    pub value: f64,
}

/// A histogram's full (sparse) state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Occupied buckets, ascending by index.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// The `q`-quantile (e.g. `0.99`) as a bucket-midpoint estimate;
    /// 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return bucket_midpoint(b.index as usize) as f64;
            }
        }
        self.buckets.last().map_or(0.0, |b| bucket_midpoint(b.index as usize) as f64)
    }

    /// Mean observed value; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The observations recorded *after* `earlier` was captured
    /// (per-bucket subtraction). `earlier` must be an older snapshot of
    /// the same histogram.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = Vec::with_capacity(self.buckets.len());
        let mut old = earlier.buckets.iter().peekable();
        for b in &self.buckets {
            let mut count = b.count;
            while let Some(o) = old.peek() {
                if o.index < b.index {
                    old.next();
                } else {
                    if o.index == b.index {
                        count = count.saturating_sub(o.count);
                    }
                    break;
                }
            }
            if count > 0 {
                buckets.push(BucketCount { index: b.index, count });
            }
        }
        HistogramSnapshot {
            name: self.name.clone(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets,
        }
    }
}

/// A windowed counter's cumulative and rolling state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowedCounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Cumulative count since creation.
    pub total: u64,
    /// Sum over the live window.
    pub window_sum: u64,
    /// Count retired out of the window by ticks
    /// (`window_sum + expired == total` at quiescence).
    pub expired: u64,
    /// Logical-clock epoch at capture time.
    pub epoch: u64,
    /// Ring length in epochs.
    pub window_len: u64,
    /// `window_sum` averaged over the epochs covered so far.
    pub rate_per_tick: f64,
}

/// A windowed histogram's cumulative and rolling distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowedHistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Logical-clock epoch at capture time.
    pub epoch: u64,
    /// Ring length in epochs.
    pub window_len: u64,
    /// Distribution since creation.
    pub cumulative: HistogramSnapshot,
    /// The live window's epochs merged (rolling p50/p95/p99 come from
    /// here).
    pub rolling: HistogramSnapshot,
}

/// Everything a registry held at capture time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, ascending by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, ascending by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, ascending by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// All windowed counters, ascending by name.
    pub windowed_counters: Vec<WindowedCounterSnapshot>,
    /// All windowed histograms, ascending by name.
    pub windowed_histograms: Vec<WindowedHistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Looks up a counter's value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// Looks up a gauge's level by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Looks up a windowed counter by name.
    pub fn windowed_counter(&self, name: &str) -> Option<&WindowedCounterSnapshot> {
        self.windowed_counters.iter().find(|c| c.name == name)
    }

    /// Looks up a windowed histogram by name.
    pub fn windowed_histogram(&self, name: &str) -> Option<&WindowedHistogramSnapshot> {
        self.windowed_histograms.iter().find(|h| h.name == name)
    }

    /// Serializes the snapshot as JSON.
    pub fn to_json(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("snapshot contains no non-finite floats")
    }

    /// Renders Prometheus text exposition: counters, gauges, cumulative
    /// histogram series with `le` labels, and the windowed instruments
    /// (totals plus `_window_sum`/`_window_rate` gauges and rolling
    /// quantile gauges).
    pub fn to_prometheus_text(&self) -> String {
        use std::fmt::Write;

        // Gauge names may embed labels (`rc_acc_rolling{metric="..."}`);
        // the TYPE line must name the bare metric, once per family.
        fn base(name: &str) -> &str {
            name.split('{').next().unwrap_or(name)
        }
        fn write_histogram(out: &mut String, h: &HistogramSnapshot, name: &str) {
            writeln!(out, "# TYPE {name} histogram").expect("write to String");
            let mut cumulative = 0u64;
            for b in &h.buckets {
                cumulative += b.count;
                writeln!(
                    out,
                    "{}_bucket{{le=\"{}\"}} {}",
                    name,
                    bucket_upper_bound(b.index as usize),
                    cumulative
                )
                .expect("write to String");
            }
            writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count).expect("write to String");
            writeln!(out, "{name}_sum {}", h.sum).expect("write to String");
            writeln!(out, "{name}_count {}", h.count).expect("write to String");
        }

        let mut out = String::new();
        for c in &self.counters {
            writeln!(out, "# TYPE {} counter", base(&c.name)).expect("write to String");
            writeln!(out, "{} {}", c.name, c.value).expect("write to String");
        }
        let mut last_family = "";
        for g in &self.gauges {
            let family = base(&g.name);
            if family != last_family {
                writeln!(out, "# TYPE {family} gauge").expect("write to String");
                last_family = family;
            }
            writeln!(out, "{} {}", g.name, g.value).expect("write to String");
        }
        for h in &self.histograms {
            write_histogram(&mut out, h, &h.name);
        }
        for w in &self.windowed_counters {
            writeln!(out, "# TYPE {}_total counter", w.name).expect("write to String");
            writeln!(out, "{}_total {}", w.name, w.total).expect("write to String");
            writeln!(out, "# TYPE {}_window_sum gauge", w.name).expect("write to String");
            writeln!(out, "{}_window_sum {}", w.name, w.window_sum).expect("write to String");
            writeln!(out, "# TYPE {}_window_rate gauge", w.name).expect("write to String");
            writeln!(out, "{}_window_rate {}", w.name, w.rate_per_tick).expect("write to String");
        }
        for w in &self.windowed_histograms {
            write_histogram(&mut out, &w.cumulative, &w.name);
            for (label, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                writeln!(out, "# TYPE {}_rolling_{label} gauge", w.name).expect("write to String");
                writeln!(out, "{}_rolling_{label} {}", w.name, w.rolling.quantile(q))
                    .expect("write to String");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, Registry};

    #[test]
    fn delta_isolates_new_observations() {
        let h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let before = h.snapshot("h");
        for v in [1_000u64, 2_000] {
            h.record(v);
        }
        let after = h.snapshot("h");
        let delta = after.delta(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 3_000);
        assert!(delta.quantile(0.5) >= 900.0, "p50 of delta should sit near 1000-2000");
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let reg = Registry::new();
        reg.counter("a").add(3);
        reg.gauge("g").set(1.25);
        reg.histogram("h").record(500);
        let snap = reg.snapshot();
        let json = snap.to_json();
        let back: MetricsSnapshot = serde_json::from_slice(&json).expect("parses");
        assert_eq!(snap, back);
    }

    #[test]
    fn prometheus_text_contains_all_series() {
        let reg = Registry::new();
        reg.counter("rc_test_total").add(7);
        reg.gauge("rc_test_level").set(0.5);
        let h = reg.histogram("rc_test_latency_ns");
        h.record(100);
        h.record(200_000);
        let text = reg.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE rc_test_total counter"));
        assert!(text.contains("rc_test_total 7"));
        assert!(text.contains("# TYPE rc_test_level gauge"));
        assert!(text.contains("# TYPE rc_test_latency_ns histogram"));
        assert!(text.contains("rc_test_latency_ns_count 2"));
        assert!(text.contains("le=\"+Inf\"}} 2".replace("}}", "}").as_str()));
    }

    #[test]
    fn prometheus_text_covers_windowed_instruments_and_labeled_gauges() {
        let reg = Registry::new();
        reg.gauge("rc_acc_rolling{metric=\"a\"}").set(0.75);
        reg.gauge("rc_acc_rolling{metric=\"b\"}").set(0.5);
        reg.windowed_counter("rc_test_w").add(9);
        let wh = reg.windowed_histogram("rc_test_wlat");
        wh.record(1_000);
        let text = reg.snapshot().to_prometheus_text();
        // One TYPE line per gauge family, bare name, both series present.
        assert_eq!(text.matches("# TYPE rc_acc_rolling gauge").count(), 1);
        assert!(text.contains("rc_acc_rolling{metric=\"a\"} 0.75"));
        assert!(text.contains("rc_acc_rolling{metric=\"b\"} 0.5"));
        assert!(text.contains("rc_test_w_total 9"));
        assert!(text.contains("rc_test_w_window_sum 9"));
        assert!(text.contains("rc_test_wlat_count 1"));
        assert!(text.contains("rc_test_wlat_rolling_p95"));
    }
}
