//! Point-in-time captures of registry state.
//!
//! Snapshots are plain serde-serializable data: bench binaries diff them
//! (`delta`) to isolate one phase's activity, extract quantiles, dump
//! them as JSON, or render Prometheus text exposition.

use serde::{Deserialize, Serialize};

use crate::metrics::{bucket_midpoint, bucket_upper_bound};

/// One histogram bucket's occupancy (sparse — zero buckets omitted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Bucket index in the log-linear layout.
    pub index: u32,
    /// Observations in the bucket.
    pub count: u64,
}

/// A counter's name and value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Value at capture time.
    pub value: u64,
}

/// A gauge's name and level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Level at capture time.
    pub value: f64,
}

/// A histogram's full (sparse) state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Occupied buckets, ascending by index.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// The `q`-quantile (e.g. `0.99`) as a bucket-midpoint estimate;
    /// 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return bucket_midpoint(b.index as usize) as f64;
            }
        }
        self.buckets.last().map_or(0.0, |b| bucket_midpoint(b.index as usize) as f64)
    }

    /// Mean observed value; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The observations recorded *after* `earlier` was captured
    /// (per-bucket subtraction). `earlier` must be an older snapshot of
    /// the same histogram.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = Vec::with_capacity(self.buckets.len());
        let mut old = earlier.buckets.iter().peekable();
        for b in &self.buckets {
            let mut count = b.count;
            while let Some(o) = old.peek() {
                if o.index < b.index {
                    old.next();
                } else {
                    if o.index == b.index {
                        count = count.saturating_sub(o.count);
                    }
                    break;
                }
            }
            if count > 0 {
                buckets.push(BucketCount { index: b.index, count });
            }
        }
        HistogramSnapshot {
            name: self.name.clone(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets,
        }
    }
}

/// Everything a registry held at capture time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, ascending by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, ascending by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, ascending by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Looks up a counter's value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// Looks up a gauge's level by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serializes the snapshot as JSON.
    pub fn to_json(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("snapshot contains no non-finite floats")
    }

    /// Renders Prometheus text exposition (counters, gauges, and
    /// cumulative histogram series with `le` labels).
    pub fn to_prometheus_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for c in &self.counters {
            writeln!(out, "# TYPE {} counter", c.name).expect("write to String");
            writeln!(out, "{} {}", c.name, c.value).expect("write to String");
        }
        for g in &self.gauges {
            writeln!(out, "# TYPE {} gauge", g.name).expect("write to String");
            writeln!(out, "{} {}", g.name, g.value).expect("write to String");
        }
        for h in &self.histograms {
            writeln!(out, "# TYPE {} histogram", h.name).expect("write to String");
            let mut cumulative = 0u64;
            for b in &h.buckets {
                cumulative += b.count;
                writeln!(
                    out,
                    "{}_bucket{{le=\"{}\"}} {}",
                    h.name,
                    bucket_upper_bound(b.index as usize),
                    cumulative
                )
                .expect("write to String");
            }
            writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", h.name, h.count).expect("write to String");
            writeln!(out, "{}_sum {}", h.name, h.sum).expect("write to String");
            writeln!(out, "{}_count {}", h.name, h.count).expect("write to String");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, Registry};

    #[test]
    fn delta_isolates_new_observations() {
        let h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let before = h.snapshot("h");
        for v in [1_000u64, 2_000] {
            h.record(v);
        }
        let after = h.snapshot("h");
        let delta = after.delta(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 3_000);
        assert!(delta.quantile(0.5) >= 900.0, "p50 of delta should sit near 1000-2000");
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let reg = Registry::new();
        reg.counter("a").add(3);
        reg.gauge("g").set(1.25);
        reg.histogram("h").record(500);
        let snap = reg.snapshot();
        let json = snap.to_json();
        let back: MetricsSnapshot = serde_json::from_slice(&json).expect("parses");
        assert_eq!(snap, back);
    }

    #[test]
    fn prometheus_text_contains_all_series() {
        let reg = Registry::new();
        reg.counter("rc_test_total").add(7);
        reg.gauge("rc_test_level").set(0.5);
        let h = reg.histogram("rc_test_latency_ns");
        h.record(100);
        h.record(200_000);
        let text = reg.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE rc_test_total counter"));
        assert!(text.contains("rc_test_total 7"));
        assert!(text.contains("# TYPE rc_test_level gauge"));
        assert!(text.contains("# TYPE rc_test_latency_ns histogram"));
        assert!(text.contains("rc_test_latency_ns_count 2"));
        assert!(text.contains("le=\"+Inf\"}} 2".replace("}}", "}").as_str()));
    }
}
