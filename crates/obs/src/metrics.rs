//! Metric instruments and the registry that owns them.
//!
//! Handles (`Counter`, `Gauge`, `Histogram`) are cheap `Arc` clones of
//! shared atomic state: hot paths register once, keep the handle, and
//! every update thereafter is a relaxed atomic RMW — no locks. The
//! registry's own maps are behind an `RwLock`, but that lock is touched
//! only at registration and snapshot time, never on the update path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crossbeam::utils::CachePadded;

use crate::snapshot::{
    BucketCount, CounterSnapshot, GaugeSnapshot, HistogramSnapshot, MetricsSnapshot,
};
use crate::window::{WindowedCounter, WindowedHistogram};

/// A monotonically increasing count.
///
/// The atomic lives alone on its cache line: hot-path counters (predict
/// lookups/hits/misses) are bumped by every serving thread, and without
/// padding, counters that happen to be allocated adjacently ping-pong a
/// shared line between cores — the `obs_overhead` bench showed that
/// false sharing, not the RMW itself, dominates contended cost.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<CachePadded<AtomicU64>>,
}

impl Counter {
    /// A free-standing counter (registry-less, e.g. for tests).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn increment(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time level (stored as `f64` bits in an atomic),
/// cache-line padded for the same reason as [`Counter`] — the in-flight
/// gauge is adjusted twice per predict by every serving thread.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    bits: Arc<CachePadded<AtomicU64>>,
}

impl Gauge {
    /// A free-standing gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the level.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Atomically adds `delta` to the level (compare-exchange loop on
    /// the f64 bits), so concurrent adjusters never lose updates the way
    /// racing `get`+`set` pairs would.
    #[inline]
    pub fn add(&self, delta: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Atomically subtracts `delta` from the level.
    #[inline]
    pub fn sub(&self, delta: f64) {
        self.add(-delta);
    }

    /// Current level.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Log-linear histogram bucketing parameters.
///
/// Values below 32 get exact unit buckets; above that, each power of two
/// splits into 32 linear sub-buckets, bounding relative error at ~3%.
/// Values at or above 2^42 (≈73 minutes in nanoseconds) saturate into
/// the final bucket.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS; // 32
const MAX_EXP: u32 = 42;
pub(crate) const N_BUCKETS: usize = ((MAX_EXP - SUB_BITS) as usize) * SUB as usize + SUB as usize;

/// Maps a recorded value to its bucket index.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // >= SUB_BITS
        let idx = ((exp - SUB_BITS) as u64 * SUB + (v >> (exp - SUB_BITS))) as usize;
        idx.min(N_BUCKETS - 1)
    }
}

/// The *exclusive* upper bound of bucket `index` (every value in the
/// bucket is `< upper`); used for Prometheus `le` labels.
pub(crate) fn bucket_upper_bound(index: usize) -> u64 {
    bucket_lower_bound(index) + bucket_width(index)
}

/// A representative value for bucket `index` (its midpoint), used when
/// extracting quantiles.
pub(crate) fn bucket_midpoint(index: usize) -> u64 {
    let lower = bucket_lower_bound(index);
    let width = bucket_width(index);
    lower + width / 2
}

/// The inclusive lower bound of bucket `index`.
pub(crate) fn bucket_lower_bound(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB {
        index
    } else {
        let chunk = index / SUB; // >= 1
        let sub = index % SUB;
        (SUB + sub) << (chunk - 1)
    }
}

/// The width of bucket `index` (1 for the unit buckets).
pub(crate) fn bucket_width(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB {
        1
    } else {
        1 << (index / SUB - 1)
    }
}

/// A fixed-bucket latency/size distribution.
///
/// `record` is wait-free: one relaxed `fetch_add` on the bucket plus two
/// on count/sum. Quantiles are computed from snapshots, never from live
/// state, so readers don't perturb writers.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

#[derive(Debug)]
struct HistogramInner {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A free-standing histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: buckets.into_boxed_slice(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation (atomics only — safe on the hot path).
    #[inline]
    pub fn record(&self, value: u64) {
        let inner = &*self.inner;
        inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Captures current bucket contents (sparse: zero buckets omitted).
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let inner = &*self.inner;
        let mut buckets = Vec::new();
        for (i, b) in inner.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push(BucketCount { index: i as u32, count: c });
            }
        }
        HistogramSnapshot {
            name: name.to_string(),
            count: inner.count.load(Ordering::Relaxed),
            sum: inner.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Owns named instruments; cheap to clone (shared state).
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

#[derive(Default)]
struct RegistryInner {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
    windowed_counters: RwLock<BTreeMap<String, WindowedCounter>>,
    windowed_histograms: RwLock<BTreeMap<String, WindowedHistogram>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, registering it on first use. Callers on
    /// hot paths should hold the returned handle rather than re-looking
    /// it up per event.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.counters.read().expect("registry lock").get(name) {
            return c.clone();
        }
        self.inner
            .counters
            .write()
            .expect("registry lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.inner.gauges.read().expect("registry lock").get(name) {
            return g.clone();
        }
        self.inner
            .gauges
            .write()
            .expect("registry lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.inner.histograms.read().expect("registry lock").get(name) {
            return h.clone();
        }
        self.inner
            .histograms
            .write()
            .expect("registry lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The windowed counter named `name`, registering it on first use
    /// with the default window length.
    pub fn windowed_counter(&self, name: &str) -> WindowedCounter {
        if let Some(c) = self.inner.windowed_counters.read().expect("registry lock").get(name) {
            return c.clone();
        }
        self.inner
            .windowed_counters
            .write()
            .expect("registry lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The windowed histogram named `name`, registering it on first use
    /// with the default window length.
    pub fn windowed_histogram(&self, name: &str) -> WindowedHistogram {
        if let Some(h) = self.inner.windowed_histograms.read().expect("registry lock").get(name) {
            return h.clone();
        }
        self.inner
            .windowed_histograms
            .write()
            .expect("registry lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Advances the logical clock of every windowed instrument by one
    /// epoch. What an epoch *is* (a simulated day, a bench phase, …) is
    /// the caller's contract — the registry only rotates the rings.
    pub fn tick(&self) {
        for c in self.inner.windowed_counters.read().expect("registry lock").values() {
            c.tick();
        }
        for h in self.inner.windowed_histograms.read().expect("registry lock").values() {
            h.tick();
        }
    }

    /// Captures every instrument's current state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .inner
            .counters
            .read()
            .expect("registry lock")
            .iter()
            .map(|(name, c)| CounterSnapshot { name: name.clone(), value: c.get() })
            .collect();
        let gauges = self
            .inner
            .gauges
            .read()
            .expect("registry lock")
            .iter()
            .map(|(name, g)| GaugeSnapshot { name: name.clone(), value: g.get() })
            .collect();
        let histograms = self
            .inner
            .histograms
            .read()
            .expect("registry lock")
            .iter()
            .map(|(name, h)| h.snapshot(name))
            .collect();
        let windowed_counters = self
            .inner
            .windowed_counters
            .read()
            .expect("registry lock")
            .iter()
            .map(|(name, c)| c.snapshot(name))
            .collect();
        let windowed_histograms = self
            .inner
            .windowed_histograms
            .read()
            .expect("registry lock")
            .iter()
            .map(|(name, h)| h.snapshot(name))
            .collect();
        MetricsSnapshot { counters, gauges, histograms, windowed_counters, windowed_histograms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_unit_range_is_exact() {
        for v in 0..32u64 {
            assert_eq!(bucket_index(v), v as usize);
        }
    }

    #[test]
    fn bucket_bounds_are_contiguous_and_monotone() {
        // Every bucket's lower bound equals the previous bucket's lower
        // bound plus its width — no gaps, no overlaps.
        for i in 1..N_BUCKETS {
            assert_eq!(
                bucket_lower_bound(i),
                bucket_lower_bound(i - 1) + bucket_width(i - 1),
                "discontinuity at bucket {i}"
            );
        }
    }

    #[test]
    fn bucket_index_maps_into_own_bounds() {
        // Probe boundary values around every power of two.
        for exp in 0..50u32 {
            for delta in [-1i64, 0, 1] {
                let v = (1u64 << exp.min(62)).saturating_add_signed(delta);
                let i = bucket_index(v);
                assert!(i < N_BUCKETS);
                if i < N_BUCKETS - 1 {
                    assert!(
                        v >= bucket_lower_bound(i) && v < bucket_lower_bound(i) + bucket_width(i),
                        "v={v} landed in bucket {i} [{}, {})",
                        bucket_lower_bound(i),
                        bucket_lower_bound(i) + bucket_width(i)
                    );
                }
            }
        }
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        // Midpoint error vs the true value stays within one bucket width:
        // <= 1/32 relative for the log-linear region.
        for v in [100u64, 1_000, 50_000, 1_000_000, 123_456_789] {
            let i = bucket_index(v);
            let mid = bucket_midpoint(i) as f64;
            let err = (mid - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 32.0 + 1e-9, "v={v} err={err}");
        }
    }

    #[test]
    fn saturates_at_max() {
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn registry_returns_shared_handles() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.increment();
        b.increment();
        assert_eq!(reg.counter("x").get(), 2);
        assert_eq!(reg.snapshot().counter("x"), Some(2));
    }

    #[test]
    fn concurrent_increments_from_many_threads_are_lossless() {
        let reg = Registry::new();
        let counter = reg.counter("contended");
        let hist = reg.histogram("contended_hist");
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 50_000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let counter = counter.clone();
                let hist = hist.clone();
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        counter.increment();
                        hist.record(t as u64 * 1000 + i % 97);
                    }
                });
            }
        });
        assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
        assert_eq!(hist.count(), THREADS as u64 * PER_THREAD);
        let snap = hist.snapshot("contended_hist");
        let bucket_total: u64 = snap.buckets.iter().map(|b| b.count).sum();
        assert_eq!(bucket_total, THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn gauge_add_sub_is_lossless_under_contention() {
        let g = Gauge::new();
        const THREADS: usize = 8;
        const PER_THREAD: usize = 10_000;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let g = g.clone();
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        g.add(1.0);
                        g.sub(1.0);
                        g.add(2.0);
                    }
                });
            }
        });
        assert_eq!(g.get(), (THREADS * PER_THREAD * 2) as f64);
    }

    #[test]
    fn registry_ticks_windowed_instruments_together() {
        let reg = Registry::new();
        let c = reg.windowed_counter("w_ops");
        let h = reg.windowed_histogram("w_lat");
        c.add(5);
        h.record(100);
        assert_eq!(reg.windowed_counter("w_ops").total(), 5, "handles are shared");
        reg.tick();
        assert_eq!(c.epoch(), 1);
        assert_eq!(h.epoch(), 1);
        let snap = reg.snapshot();
        let wc = snap.windowed_counter("w_ops").expect("windowed counter in snapshot");
        assert_eq!(wc.total, 5);
        assert_eq!(wc.window_sum + wc.expired, wc.total);
        let wh = snap.windowed_histogram("w_lat").expect("windowed histogram in snapshot");
        assert_eq!(wh.cumulative.count, 1);
    }

    #[test]
    fn quantiles_match_known_distribution() {
        // 10_000 observations of 1..=10_000: p50 ≈ 5000, p95 ≈ 9500,
        // p99 ≈ 9900, each within the 1/32 bucket resolution.
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let snap = h.snapshot("u");
        for (q, expected) in [(0.50, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = snap.quantile(q);
            let err = (got - expected).abs() / expected;
            assert!(err < 0.05, "q={q}: got {got}, expected {expected}");
        }
        assert_eq!(snap.count, 10_000);
        let mean = snap.mean();
        assert!((mean - 5_000.5).abs() / 5_000.5 < 0.05, "mean {mean}");
    }
}
